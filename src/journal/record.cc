#include "journal/record.h"

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <sys/stat.h>
#include <utility>

#include "common/check.h"
#include "core/experiment.h"
#include "journal/replayer.h"
#include "journal/serialize.h"
#include "placement/baselines.h"
#include "sim/cluster_sim.h"

namespace netpack {
namespace journal {

namespace {

bool
fileExists(const std::string &path)
{
    std::ifstream is(path);
    return is.good();
}

/** Canonical JSON of a config (cheap structural equality). */
std::string
configJson(const ExperimentConfig &config)
{
    std::ostringstream oss;
    obs::JsonWriter json(oss, 0);
    writeExperimentConfig(json, config);
    return oss.str();
}

std::string
traceJson(const std::vector<JobSpec> &jobs)
{
    std::ostringstream oss;
    obs::JsonWriter json(oss, 0);
    json.beginArray();
    for (const JobSpec &spec : jobs)
        writeJobSpec(json, spec);
    json.endArray();
    return oss.str();
}

/** A salvaged journal: header plus every parseable event. */
struct LoadedJournal
{
    JournalHeader header;
    std::vector<JournalEvent> events;
};

/**
 * Load as much of @p path as parses. A journal interrupted mid-write
 * legitimately ends in a truncated line, so event-level errors end the
 * load rather than failing it; a bad header means it is not a resumable
 * journal at all (nullopt).
 */
std::optional<LoadedJournal>
tryLoad(const std::string &path)
{
    try {
        JournalReader reader(path);
        LoadedJournal loaded;
        loaded.header = reader.header();
        JournalEvent event;
        try {
            while (reader.next(event))
                loaded.events.push_back(std::move(event));
        } catch (const ConfigError &) {
            // Truncated tail: keep the events parsed so far.
        }
        return loaded;
    } catch (const ConfigError &) {
        return std::nullopt;
    }
}

/** Step the active run to completion, snapshotting on schedule. */
RunMetrics
drive(ClusterSimulator &sim, JournalWriter &writer,
      const ExperimentConfig &config, Seconds snapshotEvery)
{
    const bool snapshotting =
        snapshotEvery > 0.0 && config.fidelity == Fidelity::Flow;
    Seconds nextSnapshot = sim.currentTime() + snapshotEvery;
    while (sim.step()) {
        if (snapshotting && sim.currentTime() >= nextSnapshot) {
            writer.writeSnapshot(sim.currentTime(), sim.captureSnapshot());
            nextSnapshot = sim.currentTime() + snapshotEvery;
        }
    }
    return sim.finish();
}

} // namespace

RecordOutcome
recordRun(const ExperimentConfig &config, const JobTrace &trace,
          const RecordOptions &options)
{
    NETPACK_REQUIRE(!options.path.empty(),
                    "recordRun needs a journal path");
    RecordOutcome outcome;

    JournalHeader header;
    header.label = options.label;
    header.config = config;
    header.trace = trace.jobs();

    // Try to pick up a previous attempt at this exact run.
    std::optional<LoadedJournal> previous;
    if (options.resume && fileExists(options.path)) {
        previous = tryLoad(options.path);
        if (previous &&
            (configJson(previous->header.config) != configJson(config) ||
             traceJson(previous->header.trace) != traceJson(header.trace)))
            previous.reset(); // different experiment; re-record
    }

    if (previous && !previous->events.empty() &&
        previous->events.back().kind == EventKind::RunEnd) {
        outcome.metrics = *previous->events.back().metrics;
        outcome.eventsWritten = previous->events.size();
        for (const JournalEvent &event : previous->events)
            if (event.kind == EventKind::Snapshot)
                ++outcome.snapshotsWritten;
        outcome.reused = true;
        return outcome;
    }

    // Locate the resume point (latest snapshot of the salvaged prefix).
    std::size_t snapshotIndex = 0;
    bool haveSnapshot = false;
    if (previous) {
        for (std::size_t i = previous->events.size(); i > 0; --i) {
            if (previous->events[i - 1].kind == EventKind::Snapshot) {
                snapshotIndex = i - 1;
                haveSnapshot = true;
                break;
            }
        }
    }

    ClusterTopology topo(config.cluster);
    ClusterSimulator sim(topo, makeNetworkModel(config, topo),
                         makePlacerByName(config.placer, config.seed),
                         config.sim);

    // Write to a sibling temp file and rename over the original so an
    // interruption during the rewrite never destroys the old journal.
    const std::string tmp = options.path + ".tmp";
    {
        JournalWriter writer(tmp, header);
        if (haveSnapshot) {
            for (std::size_t i = 0; i <= snapshotIndex; ++i)
                writer.writeEvent(previous->events[i]);
            sim.restoreSnapshot(
                trace, *previous->events[snapshotIndex].snapshot);
            outcome.resumed = true;
        } else {
            sim.begin(trace);
        }
        sim.setJournal(&writer);
        outcome.metrics =
            drive(sim, writer, config, options.snapshotEvery);
        writer.writeRunEnd(outcome.metrics);
        outcome.eventsWritten = writer.eventsWritten();
        outcome.snapshotsWritten = writer.snapshotsWritten();
    }
    std::remove(options.path.c_str());
    NETPACK_REQUIRE(std::rename(tmp.c_str(), options.path.c_str()) == 0,
                    "cannot move journal into place: " << options.path);
    return outcome;
}

void
ensureDirectory(const std::string &dir)
{
    if (dir.empty())
        return;
    // Create each path segment in turn (POSIX mkdir is single-level).
    std::string prefix;
    std::size_t pos = 0;
    while (pos != std::string::npos) {
        const std::size_t slash = dir.find('/', pos + 1);
        prefix = slash == std::string::npos ? dir : dir.substr(0, slash);
        pos = slash;
        if (prefix.empty() || prefix == "." || prefix == "..")
            continue;
        if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
            throw ConfigError("cannot create journal directory '" +
                              prefix + "'");
    }
}

std::string
sanitizeLabel(const std::string &label)
{
    std::string out;
    out.reserve(label.size());
    for (char c : label) {
        const bool safe = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' || c == '.' ||
                          c == '_';
        out.push_back(safe ? c : '_');
    }
    return out.empty() ? "run" : out;
}

} // namespace journal
} // namespace netpack
