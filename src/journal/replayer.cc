#include "journal/replayer.h"

#include <sstream>
#include <utility>

#include "common/check.h"
#include "core/experiment.h"
#include "journal/serialize.h"
#include "obs/json.h"
#include "placement/baselines.h"
#include "sim/cluster_sim.h"

namespace netpack {
namespace journal {

namespace {

/** Canonical string of one JSON-writable value (diff rendering). */
template <typename WriteFn>
std::string
jsonOf(WriteFn &&write)
{
    std::ostringstream oss;
    obs::JsonWriter json(oss, 0);
    write(json);
    return oss.str();
}

/**
 * The event rendered as an ordered (field, canonical value) list. Two
 * events are identical iff their kinds and field lists are — doubles go
 * through JsonWriter's %.17g, so "equal strings" means "equal bits".
 */
std::vector<std::pair<std::string, std::string>>
eventFields(const JournalEvent &event)
{
    std::vector<std::pair<std::string, std::string>> fields;
    auto add = [&](const std::string &name, auto &&write) {
        fields.emplace_back(name, jsonOf(write));
    };
    if (event.kind != EventKind::RunEnd)
        add("t", [&](obs::JsonWriter &json) { json.value(event.t); });
    switch (event.kind) {
    case EventKind::Arrival:
        add("job",
            [&](obs::JsonWriter &json) { json.value(event.job.value); });
        break;
    case EventKind::JobStart:
        add("job",
            [&](obs::JsonWriter &json) { json.value(event.job.value); });
        add("placement", [&](obs::JsonWriter &json) {
            writePlacement(json, event.placed.front().placement);
        });
        break;
    case EventKind::Placement:
        add("round",
            [&](obs::JsonWriter &json) { json.value(event.round); });
        add("placed", [&](obs::JsonWriter &json) {
            json.beginArray();
            for (const PlacedJob &job : event.placed)
                writePlacedJob(json, job);
            json.endArray();
        });
        add("scores", [&](obs::JsonWriter &json) {
            if (!event.hasScores) {
                json.value("<none>");
                return;
            }
            json.beginArray();
            for (double score : event.scores)
                json.value(score);
            json.endArray();
        });
        add("deferred", [&](obs::JsonWriter &json) {
            json.beginArray();
            for (const auto &[id, value] : event.deferred) {
                json.beginArray();
                json.value(id.value);
                json.value(value);
                json.endArray();
            }
            json.endArray();
        });
        break;
    case EventKind::JobFinish:
        add("job",
            [&](obs::JsonWriter &json) { json.value(event.job.value); });
        add("record", [&](obs::JsonWriter &json) {
            writeJobRecord(json, *event.record);
        });
        break;
    case EventKind::ServerFailure:
        add("server",
            [&](obs::JsonWriter &json) { json.value(event.server.value); });
        add("downtime",
            [&](obs::JsonWriter &json) { json.value(event.downtime); });
        add("victims", [&](obs::JsonWriter &json) {
            json.beginArray();
            for (JobId victim : event.victims)
                json.value(victim.value);
            json.endArray();
        });
        break;
    case EventKind::ServerRecovery:
        add("server",
            [&](obs::JsonWriter &json) { json.value(event.server.value); });
        break;
    case EventKind::Rebalance:
        add("jobs_changed",
            [&](obs::JsonWriter &json) { json.value(event.jobsChanged); });
        add("reverted", [&](obs::JsonWriter &json) {
            json.value(event.revertedToAllEnabled);
        });
        add("changed", [&](obs::JsonWriter &json) {
            json.beginArray();
            for (const PlacedJob &job : event.changed)
                writePlacedJob(json, job);
            json.endArray();
        });
        break;
    case EventKind::Waterfill:
        add("stats", [&](obs::JsonWriter &json) {
            writeContextStats(json, event.stats);
        });
        break;
    case EventKind::Snapshot:
    case EventKind::RunEnd:
        break;
    }
    return fields;
}

/** First field-level difference between two same-index events. */
std::optional<ReplayDivergence>
diffEvents(const JournalEvent &recorded, const JournalEvent &replayed)
{
    ReplayDivergence divergence;
    divergence.kind = recorded.kind;
    if (recorded.kind != replayed.kind) {
        divergence.field = "kind";
        divergence.recorded = eventKindName(recorded.kind);
        divergence.replayed = eventKindName(replayed.kind);
        return divergence;
    }
    const auto recordedFields = eventFields(recorded);
    const auto replayedFields = eventFields(replayed);
    NETPACK_CHECK(recordedFields.size() == replayedFields.size());
    for (std::size_t i = 0; i < recordedFields.size(); ++i) {
        if (recordedFields[i].second == replayedFields[i].second)
            continue;
        divergence.field = recordedFields[i].first;
        divergence.recorded = recordedFields[i].second;
        divergence.replayed = replayedFields[i].second;
        return divergence;
    }
    return std::nullopt;
}

// --- hook-argument -> JournalEvent builders (mirror JournalWriter) ------

JournalEvent
arrivalEvent(Seconds now, const JobSpec &spec)
{
    JournalEvent event;
    event.kind = EventKind::Arrival;
    event.t = now;
    event.job = spec.id;
    return event;
}

JournalEvent
placementEvent(Seconds now, long long round,
               const std::vector<PlacedJob> &placed,
               const std::vector<double> *scores,
               const std::vector<JobSpec> &deferred)
{
    JournalEvent event;
    event.kind = EventKind::Placement;
    event.t = now;
    event.round = round;
    event.placed = placed;
    if (scores != nullptr) {
        event.hasScores = true;
        event.scores = *scores;
    }
    for (const JobSpec &spec : deferred)
        event.deferred.emplace_back(spec.id, spec.value);
    return event;
}

JournalEvent
jobStartEvent(Seconds now, const JobSpec &spec, const Placement &placement)
{
    JournalEvent event;
    event.kind = EventKind::JobStart;
    event.t = now;
    event.job = spec.id;
    event.placed.push_back(PlacedJob{spec.id, placement});
    return event;
}

JournalEvent
jobFinishEvent(Seconds now, const JobRecord &record)
{
    JournalEvent event;
    event.kind = EventKind::JobFinish;
    event.t = now;
    event.job = record.spec.id;
    event.record = std::make_shared<JobRecord>(record);
    return event;
}

/**
 * Compares the replayed event stream against the recorded one, keeping
 * only the first divergence (the run still completes so the final
 * metrics comparison happens either way).
 */
class VerifySink : public SimJournalSink
{
  public:
    explicit VerifySink(const std::vector<const JournalEvent *> &recorded)
        : recorded_(recorded)
    {}

    void onArrival(Seconds now, const JobSpec &spec) override
    {
        compare(arrivalEvent(now, spec));
    }

    void onPlacement(Seconds now, long long round,
                     const std::vector<PlacedJob> &placed,
                     const std::vector<double> *scores,
                     const std::vector<JobSpec> &deferred) override
    {
        compare(placementEvent(now, round, placed, scores, deferred));
    }

    void onJobStart(Seconds now, const JobSpec &spec,
                    const Placement &placement) override
    {
        compare(jobStartEvent(now, spec, placement));
    }

    void onJobFinish(Seconds now, const JobRecord &record) override
    {
        compare(jobFinishEvent(now, record));
    }

    void onServerFailure(Seconds now, ServerId server, Seconds downtime,
                         const std::vector<JobId> &victims) override
    {
        JournalEvent event;
        event.kind = EventKind::ServerFailure;
        event.t = now;
        event.server = server;
        event.downtime = downtime;
        event.victims = victims;
        compare(event);
    }

    void onServerRecovery(Seconds now, ServerId server) override
    {
        JournalEvent event;
        event.kind = EventKind::ServerRecovery;
        event.t = now;
        event.server = server;
        compare(event);
    }

    void onRebalance(Seconds now, const RebalanceOutcome &outcome) override
    {
        JournalEvent event;
        event.kind = EventKind::Rebalance;
        event.t = now;
        event.jobsChanged = outcome.assignment.jobsChanged;
        event.revertedToAllEnabled = outcome.assignment.revertedToAllEnabled;
        event.changed = outcome.changed;
        compare(event);
    }

    void onWaterfill(Seconds now,
                     const PlacementContext::Stats &stats) override
    {
        JournalEvent event;
        event.kind = EventKind::Waterfill;
        event.t = now;
        event.stats = stats;
        compare(event);
    }

    std::size_t compared() const { return index_; }

    const std::optional<ReplayDivergence> &divergence() const
    {
        return divergence_;
    }

    /** Flag recorded events the replay never produced. */
    void finishStream()
    {
        if (divergence_ || index_ >= recorded_.size())
            return;
        ReplayDivergence divergence;
        divergence.eventIndex = index_;
        divergence.kind = recorded_[index_]->kind;
        divergence.field = "stream";
        divergence.recorded = eventKindName(recorded_[index_]->kind);
        divergence.replayed = "<end of replay>";
        divergence_ = divergence;
    }

  private:
    void compare(const JournalEvent &replayed)
    {
        if (divergence_)
            return;
        if (index_ >= recorded_.size()) {
            ReplayDivergence divergence;
            divergence.eventIndex = index_;
            divergence.kind = replayed.kind;
            divergence.field = "stream";
            divergence.recorded = "<end of recorded events>";
            divergence.replayed = eventKindName(replayed.kind);
            divergence_ = divergence;
            return;
        }
        if (auto diff = diffEvents(*recorded_[index_], replayed)) {
            diff->eventIndex = index_;
            divergence_ = *diff;
            return;
        }
        ++index_;
    }

    const std::vector<const JournalEvent *> &recorded_;
    std::size_t index_ = 0;
    std::optional<ReplayDivergence> divergence_;
};

/**
 * Final-metrics comparison, placementSeconds excluded (wall-clock).
 * @return the first differing field, as a run_end divergence
 */
std::optional<ReplayDivergence>
diffMetrics(const RunMetrics &recorded, const RunMetrics &replayed,
            std::size_t eventIndex)
{
    std::vector<std::pair<std::string, std::pair<std::string, std::string>>>
        fields;
    auto add = [&](const std::string &name, auto &&writeA, auto &&writeB) {
        fields.emplace_back(
            name, std::make_pair(jsonOf(writeA), jsonOf(writeB)));
    };
    auto records = [](const RunMetrics &m) {
        return [&m](obs::JsonWriter &json) {
            json.beginArray();
            for (const JobRecord &record : m.records)
                writeJobRecord(json, record);
            json.endArray();
        };
    };
    add("run_end.records", records(recorded), records(replayed));
    auto scalar = [](double x) {
        return [x](obs::JsonWriter &json) { json.value(x); };
    };
    auto integer = [](long long x) {
        return [x](obs::JsonWriter &json) { json.value(x); };
    };
    add("run_end.makespan", scalar(recorded.makespan),
        scalar(replayed.makespan));
    add("run_end.placement_rounds", integer(recorded.placementRounds),
        integer(replayed.placementRounds));
    add("run_end.avg_gpu_utilization", scalar(recorded.avgGpuUtilization),
        scalar(replayed.avgGpuUtilization));
    add("run_end.job_restarts", integer(recorded.jobRestarts),
        integer(replayed.jobRestarts));
    add("run_end.avg_fragmentation", scalar(recorded.avgFragmentation),
        scalar(replayed.avgFragmentation));
    for (const auto &[name, values] : fields) {
        if (values.first == values.second)
            continue;
        ReplayDivergence divergence;
        divergence.eventIndex = eventIndex;
        divergence.kind = EventKind::RunEnd;
        divergence.field = name;
        divergence.recorded = values.first;
        divergence.replayed = values.second;
        return divergence;
    }
    return std::nullopt;
}

/** The simulator of the journal's recorded experiment. */
struct ReplaySim
{
    explicit ReplaySim(const ExperimentConfig &config)
        : topo(config.cluster),
          sim(topo, makeNetworkModel(config, topo),
              makePlacerByName(config.placer, config.seed), config.sim)
    {}

    ClusterTopology topo;
    ClusterSimulator sim;
};

} // namespace

std::string
ReplayDivergence::describe() const
{
    std::ostringstream oss;
    oss << "event #" << eventIndex << " (" << eventKindName(kind) << "): "
        << field << " — recorded " << recorded << ", replayed " << replayed;
    return oss.str();
}

Replayer::Replayer(const std::string &path) : path_(path)
{
    JournalReader reader(path);
    header_ = reader.header();
    events_ = reader.readAll();
    unknownSkipped_ = reader.unknownKindsSkipped();
}

bool
Replayer::hasSnapshot() const
{
    for (const JournalEvent &event : events_)
        if (event.kind == EventKind::Snapshot)
            return true;
    return false;
}

std::size_t
Replayer::lastSnapshotIndex() const
{
    for (std::size_t i = events_.size(); i > 0; --i)
        if (events_[i - 1].kind == EventKind::Snapshot)
            return i - 1;
    throw ConfigError("journal has no snapshot events: " + path_);
}

bool
Replayer::complete() const
{
    return !events_.empty() && events_.back().kind == EventKind::RunEnd;
}

const RunMetrics &
Replayer::recordedMetrics() const
{
    NETPACK_REQUIRE(complete(),
                    "journal does not end in run_end (incomplete run): "
                        << path_);
    return *events_.back().metrics;
}

VerifyResult
Replayer::verify() const
{
    std::vector<const JournalEvent *> stream;
    for (const JournalEvent &event : events_)
        if (event.kind != EventKind::Snapshot &&
            event.kind != EventKind::RunEnd)
            stream.push_back(&event);

    ReplaySim replay(header_.config);
    VerifySink sink(stream);
    replay.sim.setJournal(&sink);
    VerifyResult result;
    result.metrics = replay.sim.run(header_.jobTrace());
    sink.finishStream();
    result.eventsCompared = sink.compared();
    result.divergence = sink.divergence();
    if (!result.divergence && complete())
        result.divergence = diffMetrics(recordedMetrics(), result.metrics,
                                        stream.size());
    result.ok = !result.divergence.has_value();
    return result;
}

RunMetrics
Replayer::resume(SimJournalSink *sink) const
{
    ReplaySim replay(header_.config);
    replay.sim.setJournal(sink);
    JobTrace trace = header_.jobTrace();
    if (!hasSnapshot())
        return replay.sim.run(trace);
    const JournalEvent &snapshot = events_[lastSnapshotIndex()];
    replay.sim.restoreSnapshot(trace, *snapshot.snapshot);
    while (replay.sim.step()) {
    }
    return replay.sim.finish();
}

WhatIfResult
Replayer::whatIf(const std::string &placer, long long swapRound) const
{
    WhatIfResult result;
    result.recorded = recordedMetrics();
    result.placer = placer;

    ReplaySim replay(header_.config);
    JobTrace trace = header_.jobTrace();
    replay.sim.begin(trace);
    while (!replay.sim.done() && replay.sim.placementRounds() < swapRound)
        replay.sim.step();
    result.swapRound = replay.sim.placementRounds();
    replay.sim.swapPlacer(makePlacerByName(placer, header_.config.seed));
    while (replay.sim.step()) {
    }
    result.whatIf = replay.sim.finish();
    return result;
}

} // namespace journal
} // namespace netpack
