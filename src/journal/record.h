/**
 * @file
 * The recording driver: run an experiment with a JournalWriter attached,
 * taking periodic snapshots, and — when asked to resume — pick an
 * interrupted run back up from its journal's latest snapshot instead of
 * starting over. Snapshot restore is bit-identical to never having
 * stopped, so a resumed run's metrics equal the uninterrupted run's
 * (tests/journal_test.cc asserts this). Shared by exec::runSweep
 * (--resume on sweep cells) and the bench harness (--journal).
 */

#ifndef NETPACK_JOURNAL_RECORD_H
#define NETPACK_JOURNAL_RECORD_H

#include <string>

#include "journal/journal.h"

namespace netpack {
namespace journal {

/** Parameters of one recorded run. */
struct RecordOptions
{
    /** Journal file path (JSONL). */
    std::string path;
    /** Header label (e.g. the sweep run label). */
    std::string label;
    /**
     * Simulated seconds between snapshot events; 0 disables snapshots.
     * Ignored under packet fidelity (no snapshot support) — events are
     * still recorded.
     */
    Seconds snapshotEvery = 0.0;
    /**
     * When true and @p path already holds a journal of this run:
     * reuse its recorded metrics if it is complete, or restore its
     * latest snapshot and record the continuation if it is not.
     */
    bool resume = false;
};

/** What recordRun did and produced. */
struct RecordOutcome
{
    RunMetrics metrics;
    /** Event lines in the final journal (prefix included on resume). */
    std::size_t eventsWritten = 0;
    /** Snapshot events among them. */
    std::size_t snapshotsWritten = 0;
    /** A complete journal was found; metrics come from its run_end. */
    bool reused = false;
    /** An incomplete journal's snapshot was restored and continued. */
    bool resumed = false;
};

/**
 * Run @p config over @p trace, recording the journal to options.path
 * (see RecordOptions for the resume semantics). On resume the journal
 * is rewritten atomically: surviving prefix first, then the
 * continuation's events, so the result is always one consistent file.
 */
RecordOutcome recordRun(const ExperimentConfig &config,
                        const JobTrace &trace,
                        const RecordOptions &options);

/** Create @p dir (and parents) if missing; ConfigError on failure. */
void ensureDirectory(const std::string &dir);

/** @p label reduced to journal-filename-safe characters. */
std::string sanitizeLabel(const std::string &label);

} // namespace journal
} // namespace netpack

#endif // NETPACK_JOURNAL_RECORD_H
