#include "journal/serialize.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace netpack {
namespace journal {

namespace {

int
readInt(const obs::JsonValue &value)
{
    return static_cast<int>(value.asInt64());
}

/** Emit a double, preserving non-finite values as JsonWriter strings. */
void
writeKvDouble(obs::JsonWriter &json, std::string_view key, double x)
{
    json.key(key);
    json.value(x);
}

void
writeServerFailure(obs::JsonWriter &json, const ServerFailure &failure)
{
    json.beginObject();
    json.kv("t", failure.time);
    json.kv("server", failure.server.value);
    json.kv("downtime", failure.downtime);
    json.endObject();
}

ServerFailure
readServerFailure(const obs::JsonValue &value)
{
    ServerFailure failure;
    failure.time = readDouble(value.at("t"));
    failure.server = ServerId(readInt(value.at("server")));
    failure.downtime = readDouble(value.at("downtime"));
    return failure;
}

} // namespace

void
writeSteadyState(obs::JsonWriter &json, const SteadyState &steady)
{
    json.beginObject();
    // jobRate is unordered in memory; serialize id-ascending so equal
    // states always produce equal bytes.
    std::vector<std::pair<JobId, Gbps>> rates(steady.jobRate.begin(),
                                              steady.jobRate.end());
    std::sort(rates.begin(), rates.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    json.key("job_rate");
    json.beginArray();
    for (const auto &[id, rate] : rates) {
        json.beginArray();
        json.value(id.value);
        json.value(rate);
        json.endArray();
    }
    json.endArray();
    json.key("link_residual");
    json.beginArray();
    for (Gbps residual : steady.linkResidual)
        json.value(residual);
    json.endArray();
    json.key("pat_residual");
    json.beginArray();
    for (Gbps residual : steady.patResidual)
        json.value(residual);
    json.endArray();
    json.key("link_flows");
    json.beginArray();
    for (int flows : steady.linkFlows)
        json.value(flows);
    json.endArray();
    json.endObject();
}

SteadyState
readSteadyState(const obs::JsonValue &value)
{
    SteadyState steady;
    for (const obs::JsonValue &pair : value.at("job_rate").items()) {
        const auto &items = pair.items();
        NETPACK_REQUIRE(items.size() == 2,
                        "job_rate entry must be an [id, rate] pair");
        steady.jobRate[JobId(readInt(items[0]))] = readDouble(items[1]);
    }
    for (const obs::JsonValue &residual : value.at("link_residual").items())
        steady.linkResidual.push_back(readDouble(residual));
    for (const obs::JsonValue &residual : value.at("pat_residual").items())
        steady.patResidual.push_back(readDouble(residual));
    for (const obs::JsonValue &flows : value.at("link_flows").items())
        steady.linkFlows.push_back(readInt(flows));
    return steady;
}

void
writeContextState(obs::JsonWriter &json,
                  const PlacementContext::State &state)
{
    json.beginObject();
    json.key("running");
    json.beginArray();
    for (const PlacedJob &job : state.running)
        writePlacedJob(json, job);
    json.endArray();
    json.key("cached");
    writeSteadyState(json, state.cached);
    json.kv("valid", state.valid);
    json.kv("structural", state.structural);
    json.key("dirty_links");
    json.beginArray();
    for (LinkId link : state.dirtyLinks)
        json.value(link.value);
    json.endArray();
    json.key("dirty_racks");
    json.beginArray();
    for (RackId rack : state.dirtyRacks)
        json.value(rack.value);
    json.endArray();
    json.key("stats");
    writeContextStats(json, state.stats);
    json.endObject();
}

PlacementContext::State
readContextState(const obs::JsonValue &value)
{
    PlacementContext::State state;
    for (const obs::JsonValue &job : value.at("running").items())
        state.running.push_back(readPlacedJob(job));
    state.cached = readSteadyState(value.at("cached"));
    state.valid = value.at("valid").asBool();
    state.structural = value.at("structural").asBool();
    for (const obs::JsonValue &link : value.at("dirty_links").items())
        state.dirtyLinks.push_back(LinkId(readInt(link)));
    for (const obs::JsonValue &rack : value.at("dirty_racks").items())
        state.dirtyRacks.push_back(RackId(readInt(rack)));
    state.stats = readContextStats(value.at("stats"));
    return state;
}

void
writeRngState(obs::JsonWriter &json, const Rng::State &state)
{
    json.beginObject();
    json.key("words");
    json.beginArray();
    for (std::uint64_t word : state.words)
        json.value(word);
    json.endArray();
    json.kv("cached_normal", state.cachedNormal);
    json.kv("has_cached_normal", state.hasCachedNormal);
    json.endObject();
}

Rng::State
readRngState(const obs::JsonValue &value)
{
    Rng::State state;
    const auto &words = value.at("words").items();
    NETPACK_REQUIRE(words.size() == state.words.size(),
                    "RNG state must carry " << state.words.size()
                                            << " words");
    for (std::size_t i = 0; i < words.size(); ++i)
        state.words[i] = words[i].asUInt64();
    state.cachedNormal = readDouble(value.at("cached_normal"));
    state.hasCachedNormal = value.at("has_cached_normal").asBool();
    return state;
}

void
writeClusterConfig(obs::JsonWriter &json, const ClusterConfig &config)
{
    json.beginObject();
    json.kv("num_racks", config.numRacks);
    json.kv("servers_per_rack", config.serversPerRack);
    json.kv("gpus_per_server", config.gpusPerServer);
    json.kv("server_link_gbps", config.serverLinkGbps);
    json.kv("oversubscription", config.oversubscription);
    json.kv("tor_pat_gbps", config.torPatGbps);
    json.kv("rtt", config.rtt);
    json.kv("racks_per_pod", config.racksPerPod);
    json.kv("pod_oversubscription", config.podOversubscription);
    json.endObject();
}

ClusterConfig
readClusterConfig(const obs::JsonValue &value)
{
    ClusterConfig config;
    config.numRacks = readInt(value.at("num_racks"));
    config.serversPerRack = readInt(value.at("servers_per_rack"));
    config.gpusPerServer = readInt(value.at("gpus_per_server"));
    config.serverLinkGbps = readDouble(value.at("server_link_gbps"));
    config.oversubscription = readDouble(value.at("oversubscription"));
    config.torPatGbps = readDouble(value.at("tor_pat_gbps"));
    config.rtt = readDouble(value.at("rtt"));
    config.racksPerPod = readInt(value.at("racks_per_pod"));
    config.podOversubscription =
        readDouble(value.at("pod_oversubscription"));
    return config;
}

void
writeGpuHoldings(obs::JsonWriter &json,
                 const std::vector<GpuLedger::Holding> &holdings)
{
    json.beginArray();
    for (const GpuLedger::Holding &holding : holdings) {
        json.beginObject();
        json.kv("job", holding.job.value);
        json.key("servers");
        json.beginArray();
        for (const auto &[server, count] : holding.servers) {
            json.beginArray();
            json.value(server.value);
            json.value(count);
            json.endArray();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
}

std::vector<GpuLedger::Holding>
readGpuHoldings(const obs::JsonValue &value)
{
    std::vector<GpuLedger::Holding> holdings;
    for (const obs::JsonValue &entry : value.items()) {
        GpuLedger::Holding holding;
        holding.job = JobId(static_cast<int>(entry.at("job").asInt64()));
        for (const obs::JsonValue &pair : entry.at("servers").items()) {
            const auto &items = pair.items();
            NETPACK_REQUIRE(items.size() == 2,
                            "servers entry must be a [server, count] "
                            "pair");
            holding.servers.emplace_back(
                ServerId(static_cast<int>(items[0].asInt64())),
                static_cast<int>(items[1].asInt64()));
        }
        holdings.push_back(std::move(holding));
    }
    return holdings;
}

namespace {

void
writeSimConfig(obs::JsonWriter &json, const SimConfig &config)
{
    json.beginObject();
    json.kv("placement_period", config.placementPeriod);
    json.kv("starvation_boost", config.starvationBoost);
    json.kv("max_sim_time", config.maxSimTime);
    json.kv("sample_period", config.samplePeriod);
    json.kv("ina_rebalance_period", config.inaRebalancePeriod);
    json.key("failures");
    json.beginArray();
    for (const ServerFailure &failure : config.failures)
        writeServerFailure(json, failure);
    json.endArray();
    json.kv("checkpoint_iters", config.checkpointIters);
    json.endObject();
}

SimConfig
readSimConfig(const obs::JsonValue &value)
{
    SimConfig config;
    config.placementPeriod = readDouble(value.at("placement_period"));
    config.starvationBoost = readDouble(value.at("starvation_boost"));
    config.maxSimTime = readDouble(value.at("max_sim_time"));
    config.samplePeriod = readDouble(value.at("sample_period"));
    config.inaRebalancePeriod =
        readDouble(value.at("ina_rebalance_period"));
    for (const obs::JsonValue &failure : value.at("failures").items())
        config.failures.push_back(readServerFailure(failure));
    config.checkpointIters = value.at("checkpoint_iters").asInt64();
    return config;
}

void
writePacketConfig(obs::JsonWriter &json, const PacketModelConfig &config)
{
    json.beginObject();
    json.kv("additive_increase", config.additiveIncrease);
    json.kv("multiplicative_decrease", config.multiplicativeDecrease);
    json.kv("max_rate", config.maxRate);
    json.kv("initial_rate", config.initialRate);
    json.kv("min_rate", config.minRate);
    json.kv("synchronous_ina", config.synchronousIna);
    json.kv("sync_realloc_period", config.syncReallocPeriod);
    json.kv("model_hash_collisions", config.modelHashCollisions);
    json.kv("convergence_slots", config.convergenceSlots);
    json.kv("rate_ema_alpha", config.rateEmaAlpha);
    json.endObject();
}

PacketModelConfig
readPacketConfig(const obs::JsonValue &value)
{
    PacketModelConfig config;
    config.additiveIncrease = readDouble(value.at("additive_increase"));
    config.multiplicativeDecrease =
        readDouble(value.at("multiplicative_decrease"));
    config.maxRate = readDouble(value.at("max_rate"));
    config.initialRate = readDouble(value.at("initial_rate"));
    config.minRate = readDouble(value.at("min_rate"));
    config.synchronousIna = value.at("synchronous_ina").asBool();
    config.syncReallocPeriod =
        readDouble(value.at("sync_realloc_period"));
    config.modelHashCollisions =
        value.at("model_hash_collisions").asBool();
    config.convergenceSlots = readInt(value.at("convergence_slots"));
    config.rateEmaAlpha = readDouble(value.at("rate_ema_alpha"));
    return config;
}

} // namespace

double
readDouble(const obs::JsonValue &value)
{
    if (value.kind() == obs::JsonValue::Kind::String) {
        const std::string &s = value.asString();
        if (s == "inf")
            return std::numeric_limits<double>::infinity();
        if (s == "-inf")
            return -std::numeric_limits<double>::infinity();
        if (s == "nan")
            return std::numeric_limits<double>::quiet_NaN();
        throw ConfigError("expected a number, got string \"" + s + "\"");
    }
    return value.asDouble();
}

void
writePlacement(obs::JsonWriter &json, const Placement &placement)
{
    json.beginObject();
    json.key("workers");
    json.beginArray();
    for (const auto &[server, count] : placement.workers) {
        json.beginArray();
        json.value(server.value);
        json.value(count);
        json.endArray();
    }
    json.endArray();
    json.kv("ps", placement.psServer.value);
    json.key("extra_ps");
    json.beginArray();
    for (ServerId server : placement.extraPsServers)
        json.value(server.value);
    json.endArray();
    json.key("ina");
    json.beginArray();
    for (RackId rack : placement.inaRacks)
        json.value(rack.value);
    json.endArray();
    // Emitted only for non-default backends so PS-only journals stay
    // byte-identical to netpack.journal/1 output; readers default the
    // absent key to ps_ina.
    if (placement.backend != BackendKind::PsIna)
        json.kv("backend", backendName(placement.backend));
    json.endObject();
}

Placement
readPlacement(const obs::JsonValue &value)
{
    Placement placement;
    for (const obs::JsonValue &pair : value.at("workers").items()) {
        const auto &items = pair.items();
        NETPACK_REQUIRE(items.size() == 2,
                        "workers entry must be a [server, count] pair");
        placement.workers[ServerId(readInt(items[0]))] = readInt(items[1]);
    }
    placement.psServer = ServerId(readInt(value.at("ps")));
    for (const obs::JsonValue &server : value.at("extra_ps").items())
        placement.extraPsServers.push_back(ServerId(readInt(server)));
    for (const obs::JsonValue &rack : value.at("ina").items())
        placement.inaRacks.insert(RackId(readInt(rack)));
    if (const obs::JsonValue *backend = value.find("backend"))
        placement.backend = backendFromName(backend->asString());
    return placement;
}

void
writeJobSpec(obs::JsonWriter &json, const JobSpec &spec)
{
    json.beginObject();
    json.kv("id", spec.id.value);
    json.kv("model", spec.modelName);
    json.kv("gpus", spec.gpuDemand);
    json.kv("submit", spec.submitTime);
    json.kv("iters", spec.iterations);
    json.kv("value", spec.value);
    if (spec.backend != BackendKind::PsIna)
        json.kv("backend", backendName(spec.backend));
    json.endObject();
}

JobSpec
readJobSpec(const obs::JsonValue &value)
{
    JobSpec spec;
    spec.id = JobId(readInt(value.at("id")));
    spec.modelName = value.at("model").asString();
    spec.gpuDemand = readInt(value.at("gpus"));
    spec.submitTime = readDouble(value.at("submit"));
    spec.iterations = value.at("iters").asInt64();
    spec.value = readDouble(value.at("value"));
    if (const obs::JsonValue *backend = value.find("backend"))
        spec.backend = backendFromName(backend->asString());
    return spec;
}

void
writePlacedJob(obs::JsonWriter &json, const PlacedJob &job)
{
    json.beginObject();
    json.kv("job", job.id.value);
    json.key("placement");
    writePlacement(json, job.placement);
    json.endObject();
}

PlacedJob
readPlacedJob(const obs::JsonValue &value)
{
    PlacedJob job;
    job.id = JobId(readInt(value.at("job")));
    job.placement = readPlacement(value.at("placement"));
    return job;
}

void
writeJobRecord(obs::JsonWriter &json, const JobRecord &record)
{
    json.beginObject();
    json.key("spec");
    writeJobSpec(json, record.spec);
    json.key("placement");
    writePlacement(json, record.placement);
    json.kv("submit", record.submitTime);
    json.kv("start", record.startTime);
    json.kv("finish", record.finishTime);
    json.endObject();
}

JobRecord
readJobRecord(const obs::JsonValue &value)
{
    JobRecord record;
    record.spec = readJobSpec(value.at("spec"));
    record.placement = readPlacement(value.at("placement"));
    record.submitTime = readDouble(value.at("submit"));
    record.startTime = readDouble(value.at("start"));
    record.finishTime = readDouble(value.at("finish"));
    return record;
}

void
writeRunMetrics(obs::JsonWriter &json, const RunMetrics &metrics)
{
    json.beginObject();
    json.key("records");
    json.beginArray();
    for (const JobRecord &record : metrics.records)
        writeJobRecord(json, record);
    json.endArray();
    writeKvDouble(json, "makespan", metrics.makespan);
    writeKvDouble(json, "placement_seconds", metrics.placementSeconds);
    json.kv("placement_rounds",
            static_cast<std::int64_t>(metrics.placementRounds));
    writeKvDouble(json, "avg_gpu_utilization", metrics.avgGpuUtilization);
    json.kv("job_restarts",
            static_cast<std::int64_t>(metrics.jobRestarts));
    writeKvDouble(json, "avg_fragmentation", metrics.avgFragmentation);
    json.endObject();
}

RunMetrics
readRunMetrics(const obs::JsonValue &value)
{
    RunMetrics metrics;
    for (const obs::JsonValue &record : value.at("records").items())
        metrics.records.push_back(readJobRecord(record));
    metrics.makespan = readDouble(value.at("makespan"));
    metrics.placementSeconds =
        readDouble(value.at("placement_seconds"));
    metrics.placementRounds = value.at("placement_rounds").asInt64();
    metrics.avgGpuUtilization =
        readDouble(value.at("avg_gpu_utilization"));
    metrics.jobRestarts = value.at("job_restarts").asInt64();
    metrics.avgFragmentation =
        readDouble(value.at("avg_fragmentation"));
    return metrics;
}

void
writeContextStats(obs::JsonWriter &json,
                  const PlacementContext::Stats &stats)
{
    json.beginObject();
    json.kv("full", stats.fullEstimates);
    json.kv("incremental", stats.incrementalEstimates);
    json.kv("cache_hits", stats.cacheHits);
    json.kv("jobs_reconverged", stats.jobsReconverged);
    json.kv("view_rebuilds", stats.viewRebuilds);
    json.kv("view_reuses", stats.viewReuses);
    json.endObject();
}

PlacementContext::Stats
readContextStats(const obs::JsonValue &value)
{
    PlacementContext::Stats stats;
    stats.fullEstimates = value.at("full").asInt64();
    stats.incrementalEstimates = value.at("incremental").asInt64();
    stats.cacheHits = value.at("cache_hits").asInt64();
    stats.jobsReconverged = value.at("jobs_reconverged").asInt64();
    stats.viewRebuilds = value.at("view_rebuilds").asInt64();
    stats.viewReuses = value.at("view_reuses").asInt64();
    return stats;
}

void
writeSnapshot(obs::JsonWriter &json, const SimSnapshot &snap)
{
    json.beginObject();
    json.kv("now", snap.now);
    json.kv("next_epoch", snap.nextEpoch);
    json.kv("next_sample", snap.nextSample);
    json.kv("next_rebalance", snap.nextRebalance);
    json.kv("next_arrival", snap.nextArrival);
    json.kv("next_failure", snap.nextFailure);
    json.key("pending");
    json.beginArray();
    for (const JobSpec &spec : snap.pending)
        writeJobSpec(json, spec);
    json.endArray();
    json.key("active");
    json.beginArray();
    for (const SimSnapshot::ActiveJob &job : snap.active) {
        json.beginObject();
        json.key("spec");
        writeJobSpec(json, job.spec);
        json.key("placement");
        writePlacement(json, job.placement);
        json.kv("start", job.startTime);
        json.kv("remaining", job.remainingIters);
        json.endObject();
    }
    json.endArray();
    json.key("recoveries");
    json.beginArray();
    for (const auto &[when, server] : snap.recoveries) {
        json.beginArray();
        json.value(when);
        json.value(server);
        json.endArray();
    }
    json.endArray();
    json.key("gpu_holdings");
    writeGpuHoldings(json, snap.gpuHoldings);
    json.kv("gpu_busy_time", snap.gpuBusyTime);
    json.kv("fragmentation_time", snap.fragmentationTime);
    json.key("metrics");
    writeRunMetrics(json, snap.metrics);
    json.key("context");
    writeContextState(json, snap.context);
    if (snap.hasPlacerRng) {
        json.key("placer_rng");
        writeRngState(json, snap.placerRng);
    }
    json.endObject();
}

SimSnapshot
readSnapshot(const obs::JsonValue &value)
{
    SimSnapshot snap;
    snap.now = readDouble(value.at("now"));
    snap.nextEpoch = readDouble(value.at("next_epoch"));
    snap.nextSample = readDouble(value.at("next_sample"));
    snap.nextRebalance = readDouble(value.at("next_rebalance"));
    snap.nextArrival = value.at("next_arrival").asUInt64();
    snap.nextFailure = value.at("next_failure").asUInt64();
    for (const obs::JsonValue &spec : value.at("pending").items())
        snap.pending.push_back(readJobSpec(spec));
    for (const obs::JsonValue &job : value.at("active").items()) {
        SimSnapshot::ActiveJob entry;
        entry.spec = readJobSpec(job.at("spec"));
        entry.placement = readPlacement(job.at("placement"));
        entry.startTime = readDouble(job.at("start"));
        entry.remainingIters = readDouble(job.at("remaining"));
        snap.active.push_back(std::move(entry));
    }
    for (const obs::JsonValue &pair : value.at("recoveries").items()) {
        const auto &items = pair.items();
        NETPACK_REQUIRE(items.size() == 2,
                        "recoveries entry must be a [time, server] pair");
        snap.recoveries.emplace_back(readDouble(items[0]),
                                     readInt(items[1]));
    }
    snap.gpuHoldings = readGpuHoldings(value.at("gpu_holdings"));
    snap.gpuBusyTime = readDouble(value.at("gpu_busy_time"));
    snap.fragmentationTime = readDouble(value.at("fragmentation_time"));
    snap.metrics = readRunMetrics(value.at("metrics"));
    snap.context = readContextState(value.at("context"));
    if (const obs::JsonValue *rng = value.find("placer_rng")) {
        snap.hasPlacerRng = true;
        snap.placerRng = readRngState(*rng);
    }
    return snap;
}

void
writeExperimentConfig(obs::JsonWriter &json, const ExperimentConfig &config)
{
    json.beginObject();
    json.key("cluster");
    writeClusterConfig(json, config.cluster);
    json.key("sim");
    writeSimConfig(json, config.sim);
    json.key("packet");
    writePacketConfig(json, config.packet);
    json.kv("fidelity",
            config.fidelity == Fidelity::Flow ? "flow" : "packet");
    json.kv("placer", config.placer);
    json.kv("seed", config.seed);
    json.endObject();
}

ExperimentConfig
readExperimentConfig(const obs::JsonValue &value)
{
    ExperimentConfig config;
    config.cluster = readClusterConfig(value.at("cluster"));
    config.sim = readSimConfig(value.at("sim"));
    config.packet = readPacketConfig(value.at("packet"));
    const std::string &fidelity = value.at("fidelity").asString();
    if (fidelity == "flow") {
        config.fidelity = Fidelity::Flow;
    } else if (fidelity == "packet") {
        config.fidelity = Fidelity::Packet;
    } else {
        throw ConfigError("unknown fidelity '" + fidelity + "'");
    }
    config.placer = value.at("placer").asString();
    config.seed = value.at("seed").asUInt64();
    return config;
}

} // namespace journal
} // namespace netpack
