/**
 * @file
 * JSON (de)serialization of the domain types the journal records:
 * job specs, placements, run metrics, experiment configs, and the full
 * mid-run SimSnapshot. Writers emit through obs::JsonWriter (%.17g
 * doubles, so IEEE values round-trip bit-exactly through strtod);
 * readers consume obs::JsonValue trees with strict validation —
 * missing or mistyped fields are ConfigErrors, matching the journal's
 * "malformed input is bad data, not a bug" contract. Non-finite
 * doubles (disabled-schedule sentinels like nextSample = +inf) travel
 * as the strings JsonWriter already emits for them.
 */

#ifndef NETPACK_JOURNAL_SERIALIZE_H
#define NETPACK_JOURNAL_SERIALIZE_H

#include <vector>

#include "core/experiment.h"
#include "obs/json.h"
#include "sim/sim_snapshot.h"
#include "topology/gpu_ledger.h"

namespace netpack {
namespace journal {

/** Read a double that may be a number or an "inf"/"-inf"/"nan" string. */
double readDouble(const obs::JsonValue &value);

void writePlacement(obs::JsonWriter &json, const Placement &placement);
Placement readPlacement(const obs::JsonValue &value);

void writeJobSpec(obs::JsonWriter &json, const JobSpec &spec);
JobSpec readJobSpec(const obs::JsonValue &value);

void writePlacedJob(obs::JsonWriter &json, const PlacedJob &job);
PlacedJob readPlacedJob(const obs::JsonValue &value);

void writeJobRecord(obs::JsonWriter &json, const JobRecord &record);
JobRecord readJobRecord(const obs::JsonValue &value);

void writeRunMetrics(obs::JsonWriter &json, const RunMetrics &metrics);
RunMetrics readRunMetrics(const obs::JsonValue &value);

void writeContextStats(obs::JsonWriter &json,
                       const PlacementContext::Stats &stats);
PlacementContext::Stats readContextStats(const obs::JsonValue &value);

void writeSnapshot(obs::JsonWriter &json, const SimSnapshot &snap);
SimSnapshot readSnapshot(const obs::JsonValue &value);

/**
 * Piecewise state serializers, shared between the SimSnapshot above and
 * the serve daemon's WAL snapshots (src/serve/wal.h), which persist a
 * PlacementContext + GpuLedger without a surrounding simulator. Same
 * byte-exact round-trip contract as everything else here.
 */
void writeSteadyState(obs::JsonWriter &json, const SteadyState &steady);
SteadyState readSteadyState(const obs::JsonValue &value);

void writeContextState(obs::JsonWriter &json,
                       const PlacementContext::State &state);
PlacementContext::State readContextState(const obs::JsonValue &value);

void writeRngState(obs::JsonWriter &json, const Rng::State &state);
Rng::State readRngState(const obs::JsonValue &value);

void writeClusterConfig(obs::JsonWriter &json, const ClusterConfig &config);
ClusterConfig readClusterConfig(const obs::JsonValue &value);

void writeGpuHoldings(obs::JsonWriter &json,
                      const std::vector<GpuLedger::Holding> &holdings);
std::vector<GpuLedger::Holding>
readGpuHoldings(const obs::JsonValue &value);

void writeExperimentConfig(obs::JsonWriter &json,
                           const ExperimentConfig &config);
ExperimentConfig readExperimentConfig(const obs::JsonValue &value);

} // namespace journal
} // namespace netpack

#endif // NETPACK_JOURNAL_SERIALIZE_H
