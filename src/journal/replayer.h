/**
 * @file
 * Deterministic replay over a recorded journal. Three modes:
 *
 *  - verify: rebuild the experiment from the journal header, re-run it,
 *    and compare every lifecycle event the simulator emits against the
 *    recorded stream — placements, scores, deferrals, failures,
 *    rebalances, water-filling counters, final metrics. The first
 *    divergence is reported with its event index and a field-level
 *    diff; zero divergences is the acceptance bar for the determinism
 *    contract (bit-identical floats included).
 *
 *  - resume: restore the latest snapshot event and run the remainder of
 *    the trace, optionally recording into a fresh sink. Proven
 *    bit-identical to never having stopped.
 *
 *  - what-if: replay the recorded prefix up to a chosen placement
 *    round, swap in a different placer, and run the rest — the
 *    counterfactual JCT/DE against the recorded outcome, at a fraction
 *    of a full sweep's cost.
 */

#ifndef NETPACK_JOURNAL_REPLAYER_H
#define NETPACK_JOURNAL_REPLAYER_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "journal/journal.h"

namespace netpack {
namespace journal {

/** A field-level mismatch between a recorded and a replayed event. */
struct ReplayDivergence
{
    /** Index into the recorded event stream (snapshots excluded). */
    std::size_t eventIndex = 0;
    /** Kind of the recorded event at that index. */
    EventKind kind = EventKind::Arrival;
    /** Which field disagreed ("kind" when the kinds differ). */
    std::string field;
    std::string recorded;
    std::string replayed;

    /** One-line human rendering. */
    std::string describe() const;
};

/** Outcome of a verify pass. */
struct VerifyResult
{
    /** True when every event and the final metrics matched. */
    bool ok = false;
    /** Events compared (recorded stream, snapshots/run_end excluded). */
    std::size_t eventsCompared = 0;
    /** The first divergence, when !ok. */
    std::optional<ReplayDivergence> divergence;
    /** Metrics of the re-run. */
    RunMetrics metrics;
};

/** Outcome of a what-if replay. */
struct WhatIfResult
{
    /** Metrics of the recorded run (from its run_end event). */
    RunMetrics recorded;
    /** Metrics with the placer swapped at @p swapRound. */
    RunMetrics whatIf;
    /** The placement round at which the swap happened. */
    long long swapRound = 0;
    /** The replacement placer. */
    std::string placer;
};

/** Drives the three replay modes over one loaded journal. */
class Replayer
{
  public:
    /** Load @p path: header plus the full event stream. */
    explicit Replayer(const std::string &path);

    const JournalHeader &header() const { return header_; }
    const std::vector<JournalEvent> &events() const { return events_; }

    /** Whether the journal holds at least one snapshot event. */
    bool hasSnapshot() const;

    /**
     * Index (into events()) of the last snapshot event; ConfigError
     * when the journal has none.
     */
    std::size_t lastSnapshotIndex() const;

    /** Whether the journal ends with a run_end event (run completed). */
    bool complete() const;

    /** The recorded final metrics; ConfigError when !complete(). */
    const RunMetrics &recordedMetrics() const;

    /** Re-run and compare (see file comment). */
    VerifyResult verify() const;

    /**
     * Restore the latest snapshot (or begin fresh when none) and run to
     * completion. Events of the continuation are mirrored to @p sink
     * when non-null.
     */
    RunMetrics resume(SimJournalSink *sink = nullptr) const;

    /**
     * Replay with @p placer swapped in once placementRounds() reaches
     * @p swapRound. Requires complete() (the comparison baseline).
     */
    WhatIfResult whatIf(const std::string &placer,
                        long long swapRound) const;

  private:
    std::string path_;
    JournalHeader header_;
    std::vector<JournalEvent> events_;
    std::size_t unknownSkipped_ = 0;
};

} // namespace journal
} // namespace netpack

#endif // NETPACK_JOURNAL_REPLAYER_H
