/**
 * @file
 * netpack::journal — the event-sourced run journal. One JSONL file per
 * run: a versioned header line (schema "netpack.journal/2") embedding
 * the full ExperimentConfig and trace so the file is self-contained,
 * followed by one typed event per line covering the whole cluster
 * lifecycle — arrival, placement decision (workers, PSes, INA, scores),
 * job start/finish/deferral, server failure/recovery, rebalance
 * outcome, water-filling summary — plus inline snapshot events (full
 * SimSnapshot state) and a closing run_end with the final metrics.
 *
 * JournalWriter implements SimJournalSink, so recording is one
 * setJournal() call on the simulator. JournalReader validates strictly
 * (malformed lines are ConfigErrors with line numbers) but reads
 * tolerantly across schema growth: event kinds it does not know are
 * skipped and counted, the same contract the Philly trace parser uses
 * for malformed rows.
 */

#ifndef NETPACK_JOURNAL_JOURNAL_H
#define NETPACK_JOURNAL_JOURNAL_H

#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "sim/journal_sink.h"
#include "sim/sim_snapshot.h"
#include "workload/trace.h"

namespace netpack {
namespace journal {

/**
 * Version tag of the journal line format. /2 adds the optional
 * "backend" field on job specs and placements (absent = ps_ina), so /1
 * files read back unchanged — JournalReader accepts both.
 */
inline constexpr const char *kJournalSchema = "netpack.journal/2";

/** Previous schema, still accepted by JournalReader. */
inline constexpr const char *kJournalSchemaV1 = "netpack.journal/1";

/** The self-describing first line of every journal. */
struct JournalHeader
{
    /** Free-form run label (sweep cell name, bench figure...). */
    std::string label;
    /** Everything needed to re-create the simulator. */
    ExperimentConfig config;
    /** The complete input trace. */
    std::vector<JobSpec> trace;

    /** The trace as a JobTrace (replay input). */
    JobTrace jobTrace() const { return JobTrace(trace); }
};

/** Discriminator of a journal event line. */
enum class EventKind
{
    Arrival,
    JobStart,
    Placement,
    JobFinish,
    ServerFailure,
    ServerRecovery,
    Rebalance,
    Waterfill,
    Snapshot,
    RunEnd,
};

/** The journal wire name of @p kind. */
const char *eventKindName(EventKind kind);

/**
 * One parsed journal event. A flat record: only the fields of the
 * event's kind are meaningful (heavy payloads sit behind shared_ptrs
 * so the vector-of-events a replay loads stays cheap to copy).
 */
struct JournalEvent
{
    EventKind kind = EventKind::Arrival;
    /** Simulation time (absent for run_end). */
    Seconds t = 0.0;

    /** Arrival / job_start / job_finish. */
    JobId job;

    /** Placement decision. */
    long long round = 0;
    std::vector<PlacedJob> placed;
    bool hasScores = false;
    std::vector<double> scores;
    /** (job, aged value) of the jobs deferred by this round. */
    std::vector<std::pair<JobId, double>> deferred;

    /** Server failure / recovery. */
    ServerId server;
    Seconds downtime = 0.0;
    std::vector<JobId> victims;

    /** Rebalance outcome. */
    long long jobsChanged = 0;
    bool revertedToAllEnabled = false;
    std::vector<PlacedJob> changed;

    /** Water-filling summary (cumulative counters). */
    PlacementContext::Stats stats;

    /** job_finish payload. */
    std::shared_ptr<JobRecord> record;

    /** Snapshot payload. */
    std::shared_ptr<SimSnapshot> snapshot;

    /** run_end payload. */
    std::shared_ptr<RunMetrics> metrics;
};

/**
 * Records one run as JSONL. Implements SimJournalSink so the simulator
 * streams events directly; snapshots and the closing run_end are
 * written by the driver (exec sweep, bench harness, tests).
 */
class JournalWriter : public SimJournalSink
{
  public:
    /** Open @p path (truncating) and write the header line. */
    JournalWriter(const std::string &path, const JournalHeader &header);
    ~JournalWriter() override;

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    // --- SimJournalSink -------------------------------------------------
    void onArrival(Seconds now, const JobSpec &spec) override;
    void onPlacement(Seconds now, long long round,
                     const std::vector<PlacedJob> &placed,
                     const std::vector<double> *scores,
                     const std::vector<JobSpec> &deferred) override;
    void onJobStart(Seconds now, const JobSpec &spec,
                    const Placement &placement) override;
    void onJobFinish(Seconds now, const JobRecord &record) override;
    void onServerFailure(Seconds now, ServerId server, Seconds downtime,
                         const std::vector<JobId> &victims) override;
    void onServerRecovery(Seconds now, ServerId server) override;
    void onRebalance(Seconds now, const RebalanceOutcome &outcome) override;
    void onWaterfill(Seconds now,
                     const PlacementContext::Stats &stats) override;

    /** Append a full state snapshot event. */
    void writeSnapshot(Seconds now, const SimSnapshot &snap);

    /** Append the closing run_end event and flush. */
    void writeRunEnd(const RunMetrics &metrics);

    /**
     * Re-append an already-parsed event (journal rewriting on resume:
     * the surviving prefix of the old journal is copied into the new
     * one before recording continues).
     */
    void writeEvent(const JournalEvent &event);

    /** Event lines written so far (header excluded). */
    std::size_t eventsWritten() const { return eventsWritten_; }

    /** Snapshot events among them. */
    std::size_t snapshotsWritten() const { return snapshotsWritten_; }

    /** Flush buffered lines to disk. */
    void flush();

  private:
    /** Emit one compact line (shared epilogue of every event). */
    void writeLine(const std::string &line);

    std::ofstream os_;
    std::string path_;
    std::size_t eventsWritten_ = 0;
    std::size_t snapshotsWritten_ = 0;
};

/**
 * Streaming reader over a journal file. The header is parsed eagerly
 * (constructor); events are pulled with next(). Unknown event kinds
 * are skipped and counted; anything else malformed — bad JSON, missing
 * fields, wrong schema — is a ConfigError naming the line.
 */
class JournalReader
{
  public:
    explicit JournalReader(const std::string &path);

    /** The parsed header line. */
    const JournalHeader &header() const { return header_; }

    /**
     * Parse the next known event into @p out; false at end of file.
     * Unknown kinds are skipped (and counted) transparently.
     */
    bool next(JournalEvent &out);

    /** Events successfully parsed so far. */
    std::size_t eventsRead() const { return eventsRead_; }

    /** Unknown-kind lines skipped so far. */
    std::size_t unknownKindsSkipped() const { return unknownSkipped_; }

    /** Read every remaining event (convenience). */
    std::vector<JournalEvent> readAll();

  private:
    std::ifstream is_;
    std::string path_;
    JournalHeader header_;
    std::size_t lineNumber_ = 0;
    std::size_t eventsRead_ = 0;
    std::size_t unknownSkipped_ = 0;
};

} // namespace journal
} // namespace netpack

#endif // NETPACK_JOURNAL_JOURNAL_H
