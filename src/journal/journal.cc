#include "journal/journal.h"

#include <sstream>
#include <utility>

#include "common/check.h"
#include "journal/serialize.h"
#include "obs/json.h"

namespace netpack {
namespace journal {

namespace {

/** The wire names, indexed by EventKind. */
constexpr const char *kKindNames[] = {
    "arrival",        "job_start", "placement", "job_finish",
    "server_failure", "server_recovery", "rebalance", "waterfill",
    "snapshot",       "run_end",
};

} // namespace

const char *
eventKindName(EventKind kind)
{
    return kKindNames[static_cast<int>(kind)];
}

// --- JournalWriter ------------------------------------------------------

JournalWriter::JournalWriter(const std::string &path,
                             const JournalHeader &header)
    : os_(path, std::ios::trunc), path_(path)
{
    NETPACK_REQUIRE(os_.good(),
                    "cannot open journal file for writing: " << path);
    std::ostringstream line;
    obs::JsonWriter json(line, 0);
    json.beginObject();
    json.kv("schema", kJournalSchema);
    json.kv("kind", "header");
    json.kv("label", header.label);
    json.key("config");
    writeExperimentConfig(json, header.config);
    json.key("trace");
    json.beginArray();
    for (const JobSpec &spec : header.trace)
        writeJobSpec(json, spec);
    json.endArray();
    json.endObject();
    os_ << line.str() << '\n';
}

JournalWriter::~JournalWriter()
{
    flush();
}

void
JournalWriter::writeLine(const std::string &line)
{
    os_ << line << '\n';
    ++eventsWritten_;
    NETPACK_REQUIRE(os_.good(), "journal write failed: " << path_);
}

void
JournalWriter::onArrival(Seconds now, const JobSpec &spec)
{
    std::ostringstream line;
    obs::JsonWriter json(line, 0);
    json.beginObject();
    json.kv("kind", "arrival");
    json.kv("t", now);
    json.kv("job", spec.id.value);
    json.endObject();
    writeLine(line.str());
}

void
JournalWriter::onPlacement(Seconds now, long long round,
                           const std::vector<PlacedJob> &placed,
                           const std::vector<double> *scores,
                           const std::vector<JobSpec> &deferred)
{
    std::ostringstream line;
    obs::JsonWriter json(line, 0);
    json.beginObject();
    json.kv("kind", "placement");
    json.kv("t", now);
    json.kv("round", round);
    json.key("placed");
    json.beginArray();
    for (const PlacedJob &job : placed)
        writePlacedJob(json, job);
    json.endArray();
    if (scores != nullptr) {
        json.key("scores");
        json.beginArray();
        for (double score : *scores)
            json.value(score);
        json.endArray();
    }
    json.key("deferred");
    json.beginArray();
    for (const JobSpec &spec : deferred) {
        json.beginArray();
        json.value(spec.id.value);
        json.value(spec.value);
        json.endArray();
    }
    json.endArray();
    json.endObject();
    writeLine(line.str());
}

void
JournalWriter::onJobStart(Seconds now, const JobSpec &spec,
                          const Placement &placement)
{
    std::ostringstream line;
    obs::JsonWriter json(line, 0);
    json.beginObject();
    json.kv("kind", "job_start");
    json.kv("t", now);
    json.kv("job", spec.id.value);
    json.key("placement");
    writePlacement(json, placement);
    json.endObject();
    writeLine(line.str());
}

void
JournalWriter::onJobFinish(Seconds now, const JobRecord &record)
{
    std::ostringstream line;
    obs::JsonWriter json(line, 0);
    json.beginObject();
    json.kv("kind", "job_finish");
    json.kv("t", now);
    json.kv("job", record.spec.id.value);
    json.key("record");
    writeJobRecord(json, record);
    json.endObject();
    writeLine(line.str());
}

void
JournalWriter::onServerFailure(Seconds now, ServerId server,
                               Seconds downtime,
                               const std::vector<JobId> &victims)
{
    std::ostringstream line;
    obs::JsonWriter json(line, 0);
    json.beginObject();
    json.kv("kind", "server_failure");
    json.kv("t", now);
    json.kv("server", server.value);
    json.kv("downtime", downtime);
    json.key("victims");
    json.beginArray();
    for (JobId victim : victims)
        json.value(victim.value);
    json.endArray();
    json.endObject();
    writeLine(line.str());
}

void
JournalWriter::onServerRecovery(Seconds now, ServerId server)
{
    std::ostringstream line;
    obs::JsonWriter json(line, 0);
    json.beginObject();
    json.kv("kind", "server_recovery");
    json.kv("t", now);
    json.kv("server", server.value);
    json.endObject();
    writeLine(line.str());
}

void
JournalWriter::onRebalance(Seconds now, const RebalanceOutcome &outcome)
{
    std::ostringstream line;
    obs::JsonWriter json(line, 0);
    json.beginObject();
    json.kv("kind", "rebalance");
    json.kv("t", now);
    json.kv("jobs_changed",
            static_cast<std::int64_t>(outcome.assignment.jobsChanged));
    json.kv("reverted", outcome.assignment.revertedToAllEnabled);
    json.key("changed");
    json.beginArray();
    for (const PlacedJob &job : outcome.changed)
        writePlacedJob(json, job);
    json.endArray();
    json.endObject();
    writeLine(line.str());
}

void
JournalWriter::onWaterfill(Seconds now, const PlacementContext::Stats &stats)
{
    std::ostringstream line;
    obs::JsonWriter json(line, 0);
    json.beginObject();
    json.kv("kind", "waterfill");
    json.kv("t", now);
    json.key("stats");
    writeContextStats(json, stats);
    json.endObject();
    writeLine(line.str());
}

void
JournalWriter::writeSnapshot(Seconds now, const SimSnapshot &snap)
{
    std::ostringstream line;
    obs::JsonWriter json(line, 0);
    json.beginObject();
    json.kv("kind", "snapshot");
    json.kv("t", now);
    json.key("state");
    journal::writeSnapshot(json, snap);
    json.endObject();
    writeLine(line.str());
    ++snapshotsWritten_;
    flush(); // snapshots are resume points; make them durable immediately
}

void
JournalWriter::writeRunEnd(const RunMetrics &metrics)
{
    std::ostringstream line;
    obs::JsonWriter json(line, 0);
    json.beginObject();
    json.kv("kind", "run_end");
    json.key("metrics");
    writeRunMetrics(json, metrics);
    json.endObject();
    writeLine(line.str());
    flush();
}

void
JournalWriter::writeEvent(const JournalEvent &event)
{
    switch (event.kind) {
    case EventKind::Arrival: {
        // Re-emitting needs only the id; synthesize a spec shell.
        JobSpec spec;
        spec.id = event.job;
        onArrival(event.t, spec);
        return;
    }
    case EventKind::JobStart: {
        NETPACK_CHECK_MSG(!event.placed.empty(),
                          "job_start event carries its placement");
        JobSpec spec;
        spec.id = event.job;
        onJobStart(event.t, spec, event.placed.front().placement);
        return;
    }
    case EventKind::Placement:
        onPlacement(event.t, event.round, event.placed,
                    event.hasScores ? &event.scores : nullptr,
                    [&] {
                        std::vector<JobSpec> deferred;
                        for (const auto &[id, value] : event.deferred) {
                            JobSpec spec;
                            spec.id = id;
                            spec.value = value;
                            deferred.push_back(spec);
                        }
                        return deferred;
                    }());
        return;
    case EventKind::JobFinish:
        NETPACK_CHECK_MSG(event.record != nullptr,
                          "job_finish event carries its record");
        onJobFinish(event.t, *event.record);
        return;
    case EventKind::ServerFailure:
        onServerFailure(event.t, event.server, event.downtime,
                        event.victims);
        return;
    case EventKind::ServerRecovery:
        onServerRecovery(event.t, event.server);
        return;
    case EventKind::Rebalance: {
        RebalanceOutcome outcome;
        outcome.assignment.jobsChanged =
            static_cast<int>(event.jobsChanged);
        outcome.assignment.revertedToAllEnabled =
            event.revertedToAllEnabled;
        outcome.changed = event.changed;
        onRebalance(event.t, outcome);
        return;
    }
    case EventKind::Waterfill:
        onWaterfill(event.t, event.stats);
        return;
    case EventKind::Snapshot:
        NETPACK_CHECK_MSG(event.snapshot != nullptr,
                          "snapshot event carries its state");
        writeSnapshot(event.t, *event.snapshot);
        return;
    case EventKind::RunEnd:
        NETPACK_CHECK_MSG(event.metrics != nullptr,
                          "run_end event carries its metrics");
        writeRunEnd(*event.metrics);
        return;
    }
    NETPACK_CHECK_MSG(false, "unhandled event kind");
}

void
JournalWriter::flush()
{
    os_.flush();
}

// --- JournalReader ------------------------------------------------------

JournalReader::JournalReader(const std::string &path)
    : is_(path), path_(path)
{
    NETPACK_REQUIRE(is_.good(),
                    "cannot open journal file for reading: " << path);
    std::string line;
    NETPACK_REQUIRE(std::getline(is_, line),
                    "journal is empty (no header line): " << path);
    ++lineNumber_;
    try {
        obs::JsonValue doc = obs::parseJson(line);
        const std::string &schema = doc.at("schema").asString();
        NETPACK_REQUIRE(schema == kJournalSchema ||
                            schema == kJournalSchemaV1,
                        "unsupported journal schema '"
                            << schema << "' (expected " << kJournalSchema
                            << " or " << kJournalSchemaV1 << ")");
        NETPACK_REQUIRE(doc.at("kind").asString() == "header",
                        "first journal line must be the header");
        header_.label = doc.at("label").asString();
        header_.config = readExperimentConfig(doc.at("config"));
        for (const obs::JsonValue &spec : doc.at("trace").items())
            header_.trace.push_back(readJobSpec(spec));
    } catch (const ConfigError &e) {
        throw ConfigError(path_ + ":1: " + e.what());
    }
}

bool
JournalReader::next(JournalEvent &out)
{
    std::string line;
    while (std::getline(is_, line)) {
        ++lineNumber_;
        if (line.empty())
            continue;
        try {
            obs::JsonValue doc = obs::parseJson(line);
            const std::string &kind = doc.at("kind").asString();
            out = JournalEvent();
            if (kind == "arrival") {
                out.kind = EventKind::Arrival;
                out.t = readDouble(doc.at("t"));
                out.job = JobId(static_cast<int>(doc.at("job").asInt64()));
            } else if (kind == "job_start") {
                out.kind = EventKind::JobStart;
                out.t = readDouble(doc.at("t"));
                out.job = JobId(static_cast<int>(doc.at("job").asInt64()));
                PlacedJob placed;
                placed.id = out.job;
                placed.placement = readPlacement(doc.at("placement"));
                out.placed.push_back(std::move(placed));
            } else if (kind == "placement") {
                out.kind = EventKind::Placement;
                out.t = readDouble(doc.at("t"));
                out.round = doc.at("round").asInt64();
                for (const obs::JsonValue &job : doc.at("placed").items())
                    out.placed.push_back(readPlacedJob(job));
                if (const obs::JsonValue *scores = doc.find("scores")) {
                    out.hasScores = true;
                    for (const obs::JsonValue &score : scores->items())
                        out.scores.push_back(readDouble(score));
                }
                for (const obs::JsonValue &pair :
                     doc.at("deferred").items()) {
                    const auto &items = pair.items();
                    NETPACK_REQUIRE(items.size() == 2,
                                    "deferred entry must be a "
                                    "[job, value] pair");
                    out.deferred.emplace_back(
                        JobId(static_cast<int>(items[0].asInt64())),
                        readDouble(items[1]));
                }
            } else if (kind == "job_finish") {
                out.kind = EventKind::JobFinish;
                out.t = readDouble(doc.at("t"));
                out.job = JobId(static_cast<int>(doc.at("job").asInt64()));
                out.record = std::make_shared<JobRecord>(
                    readJobRecord(doc.at("record")));
            } else if (kind == "server_failure") {
                out.kind = EventKind::ServerFailure;
                out.t = readDouble(doc.at("t"));
                out.server =
                    ServerId(static_cast<int>(doc.at("server").asInt64()));
                out.downtime = readDouble(doc.at("downtime"));
                for (const obs::JsonValue &victim :
                     doc.at("victims").items())
                    out.victims.push_back(
                        JobId(static_cast<int>(victim.asInt64())));
            } else if (kind == "server_recovery") {
                out.kind = EventKind::ServerRecovery;
                out.t = readDouble(doc.at("t"));
                out.server =
                    ServerId(static_cast<int>(doc.at("server").asInt64()));
            } else if (kind == "rebalance") {
                out.kind = EventKind::Rebalance;
                out.t = readDouble(doc.at("t"));
                out.jobsChanged = doc.at("jobs_changed").asInt64();
                out.revertedToAllEnabled = doc.at("reverted").asBool();
                for (const obs::JsonValue &job : doc.at("changed").items())
                    out.changed.push_back(readPlacedJob(job));
            } else if (kind == "waterfill") {
                out.kind = EventKind::Waterfill;
                out.t = readDouble(doc.at("t"));
                out.stats = readContextStats(doc.at("stats"));
            } else if (kind == "snapshot") {
                out.kind = EventKind::Snapshot;
                out.t = readDouble(doc.at("t"));
                out.snapshot = std::make_shared<SimSnapshot>(
                    readSnapshot(doc.at("state")));
            } else if (kind == "run_end") {
                out.kind = EventKind::RunEnd;
                out.metrics = std::make_shared<RunMetrics>(
                    readRunMetrics(doc.at("metrics")));
            } else {
                // Tolerant-read contract: future event kinds are not an
                // error, they are simply invisible to this reader.
                ++unknownSkipped_;
                continue;
            }
        } catch (const ConfigError &e) {
            throw ConfigError(path_ + ":" + std::to_string(lineNumber_) +
                              ": " + e.what());
        }
        ++eventsRead_;
        return true;
    }
    return false;
}

std::vector<JournalEvent>
JournalReader::readAll()
{
    std::vector<JournalEvent> events;
    JournalEvent event;
    while (next(event))
        events.push_back(std::move(event));
    return events;
}

} // namespace journal
} // namespace netpack
