/**
 * @file
 * The shared, incrementally-updated resource engine behind every layer
 * that reasons about cluster network state (Algorithm 2 line 7's
 * re-estimation, made sublinear). A PlacementContext owns the placed
 * jobs' aggregation hierarchies, the last converged water-filling
 * SteadyState, and dirty-tracking at link/rack granularity. Placers,
 * the cluster simulator, the job manager, the INA rebalancer, and the
 * exhaustive solver all consult the same context instead of rebuilding
 * JobHierarchy sets and re-running the estimator from scratch: a single
 * job arrival or departure perturbs only the links and racks on its
 * paths, so the next steadyState() query re-converges only the
 * resource-connected component around that perturbation and splices it
 * into the retained fixed point. Structural events — server failures,
 * INA toggles — invalidate wholesale and fall back to a full estimate.
 */

#ifndef NETPACK_CORE_PLACEMENT_CONTEXT_H
#define NETPACK_CORE_PLACEMENT_CONTEXT_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ina/hierarchy.h"
#include "topology/cluster.h"
#include "topology/ids.h"
#include "waterfill/steady_state.h"
#include "workload/job.h"

namespace netpack {

/**
 * Cached network-resource state of a set of placed jobs, with
 * incremental invalidation. Not thread-safe; one context per
 * simulator/manager instance.
 */
class PlacementContext
{
  public:
    /** @param topo cluster topology (must outlive the context) */
    explicit PlacementContext(const ClusterTopology &topo);

    /** The topology this context models. */
    const ClusterTopology &topology() const { return *topo_; }

    /**
     * Register a newly placed job. Builds its shard hierarchies and
     * dirties every link/rack its aggregation trees touch. The id must
     * not already be tracked.
     */
    void addJob(JobId id, const Placement &placement);

    /** Convenience overload. */
    void addJob(const PlacedJob &job) { addJob(job.id, job.placement); }

    /**
     * Deregister a finished (or killed) job, dirtying the links/racks
     * it occupied so their residuals are re-derived on the next query.
     */
    void removeJob(JobId id);

    /**
     * Re-tag the racks where @p id aggregates in-network. INA toggling
     * reshapes the job's aggregation trees, so this is a structural
     * invalidation: the next steadyState() runs a full estimate.
     * No-op when the rack set is unchanged.
     */
    void updateInaRacks(JobId id, const std::set<RackId> &ina_racks);

    /**
     * Diff-sync the tracked set against @p running: removes jobs that
     * disappeared, adds new ones, and re-registers jobs whose placement
     * changed. Useful for callers that own their running list.
     */
    void syncTo(const std::vector<PlacedJob> &running);

    /** Drop every job and all cached state. */
    void clear();

    /** Invalidate everything: the next query runs a full estimate. */
    void invalidateAll();

    /**
     * A server dropped out (failure path). Dirties its access link, its
     * rack's core link, and its rack, and — because failure handling
     * also kills and resubmits jobs — escalates to a structural
     * invalidation so no stale residual can survive the churn.
     */
    void invalidateServer(ServerId server);

    /** Dirty one rack's PAT and core link (e.g. after a PAT override). */
    void invalidateRack(RackId rack);

    /** Whether @p id is currently tracked. */
    bool tracks(JobId id) const { return jobs_.count(id) > 0; }

    /** Number of tracked jobs. */
    std::size_t jobCount() const { return jobs_.size(); }

    /** Tracked placements, in insertion order (swap-removal on erase). */
    const std::vector<PlacedJob> &running() const { return running_; }

    /** Placement of @p id, or nullptr when untracked. */
    const Placement *placementOf(JobId id) const;

    /**
     * The converged steady state of the tracked jobs. Served from cache
     * when nothing is dirty; re-converges only the affected component
     * when link/rack-granular dirt is pending; runs the full estimator
     * after structural invalidations.
     */
    const SteadyState &steadyState();

    /**
     * Flat snapshot of the converged steady state (the placement hot
     * loops' input; see SteadyStateView). Cached alongside the
     * SteadyState itself: any dirtying event invalidates both, so the
     * view rebuilds at most once per steady-state revision no matter
     * how many jobs a batch places against it. The reference is
     * invalidated by the next context mutation — do not hold it across
     * addJob/removeJob/updateInaRacks.
     */
    const SteadyStateView &steadyStateView();

    /**
     * The cached fixed point without converging or counting: nullptr
     * while dirt is pending. Observation read-path (metrics gauges) —
     * a query here must not perturb the Stats the journal records, or
     * runs would replay differently depending on whether metrics were
     * enabled at record time.
     */
    const SteadyState *cachedSteadyState() const
    {
        return dirty() ? nullptr : &cached_;
    }

    /** True when the next steadyState() query must recompute anything. */
    bool dirty() const;

    /** True when the next query falls back to a full estimate. */
    bool structuralDirty() const { return structural_ || !valid_; }

    /** Pending dirty links (diagnostics/tests). */
    const std::vector<LinkId> &dirtyLinks() const { return dirtyLinks_; }

    /** Pending dirty racks (diagnostics/tests). */
    const std::vector<RackId> &dirtyRacks() const { return dirtyRacks_; }

    /** Counters for benches and regression tests. */
    struct Stats
    {
        /** Full estimates run (structural or cold). */
        std::int64_t fullEstimates = 0;
        /** Incremental component re-estimates run. */
        std::int64_t incrementalEstimates = 0;
        /** steadyState() calls served straight from cache. */
        std::int64_t cacheHits = 0;
        /** Jobs re-converged across all incremental estimates. */
        std::int64_t jobsReconverged = 0;
        /** SteadyStateView snapshots rebuilt (one per revision). */
        std::int64_t viewRebuilds = 0;
        /** steadyStateView() calls served from the cached snapshot. */
        std::int64_t viewReuses = 0;
    };

    /** Cumulative query statistics. */
    const Stats &stats() const { return stats_; }

    /**
     * Serializable dynamic state: the tracked placements in running_
     * order plus the cached fixed point and pending dirt. Hierarchies
     * and reverse indexes are rebuilt deterministically on import, and
     * the cached SteadyState is carried verbatim — incremental
     * re-estimation is only ~1e-9-close to a cold full estimate, so a
     * bit-identical resume must splice against the exact cached values,
     * not a recomputation.
     */
    struct State
    {
        std::vector<PlacedJob> running;
        SteadyState cached;
        bool valid = false;
        bool structural = false;
        std::vector<LinkId> dirtyLinks;
        std::vector<RackId> dirtyRacks;
        Stats stats;
    };

    /** Capture the dynamic state (journal snapshots). */
    State exportState() const;

    /** Restore a captured state; replaces all tracked jobs. */
    void importState(const State &state);

    /**
     * Open a transaction frame. Until the matching commitTxn or
     * rollbackTxn, every mutation (addJob, removeJob, updateInaRacks,
     * syncTo, invalidations) and every cached-state change a
     * steadyState() query makes is recorded in an undo log; rollbackTxn
     * replays the log backwards and restores the context field-identical
     * to its state at beginTxn — bitwise, including the cached
     * water-filling fixed point, pending dirt, flags, and Stats.
     *
     * The log records only what was touched: an incremental
     * re-estimation saves the pre-values of its affected component
     * (links, racks, job rates), so undo cost is proportional to the
     * dirty set and never runs the estimator. Full-estimate paths
     * (structural invalidations, cold contexts) snapshot the whole
     * cached state — O(cluster), but those estimates already are.
     *
     * Frames nest: commitTxn folds a child's log into its parent so an
     * outer rollback still undoes committed inner work; the outermost
     * commit discards the log. clear() and importState() are not
     * permitted while a transaction is open.
     */
    void beginTxn();

    /** Keep the innermost frame's changes (folds into the parent). */
    void commitTxn();

    /** Undo the innermost frame exactly (see beginTxn). */
    void rollbackTxn();

    /** Open transaction frames (0 = no transaction active). */
    int txnDepth() const { return static_cast<int>(txnFrames_.size()); }

    /**
     * Transaction diagnostics. Deliberately separate from Stats: these
     * live outside the serialized/snapshot state (a rollback counter
     * inside Stats would undo itself) and are never restored.
     */
    struct TxnStats
    {
        std::int64_t begins = 0;
        std::int64_t commits = 0;
        std::int64_t rollbacks = 0;
        /** Undo-log entries replayed across all rollbacks. */
        std::int64_t entriesUndone = 0;
    };

    const TxnStats &txnStats() const { return txnStats_; }

  private:
    friend class WaterFillingEstimator; // reestimate() is the query engine

    /** Everything the engine caches per tracked job. */
    struct JobEntry
    {
        /** Index into running_. */
        std::size_t runningIndex = 0;
        /** One aggregation tree per PS shard (reused across queries). */
        std::vector<JobHierarchy> shards;
        /** Unique physical links the shards' edges cross. */
        std::vector<LinkId> links;
        /** Unique racks where the job consumes PAT (INA-enabled ToRs). */
        std::vector<RackId> racks;
    };

    /** Build the shards and link/rack footprint for @p placement. */
    JobEntry buildEntry(JobId id, const Placement &placement) const;

    /** Every tracked shard hierarchy (full-estimate input). */
    std::vector<JobHierarchy *> allShards();

    void indexEntry(JobId id, const JobEntry &entry);
    void unindexEntry(JobId id, const JobEntry &entry);
    void markDirty(const JobEntry &entry);
    void markLinkDirty(LinkId link);
    void markRackDirty(RackId rack);

    /** Move the pending dirt out, leaving the context clean. */
    ResourceDelta takeDelta();

    /**
     * One inverse operation in the transaction undo log. Entries are
     * replayed strictly LIFO, so each inverse sees exactly the state
     * its operation produced: undoing an AddJob pops the then-last
     * running_ slot, undoing a RemoveJob re-runs the swap-removal
     * backwards, and the cached-state kinds restore single affected
     * values saved by the incremental estimator.
     */
    struct TxnUndo
    {
        enum class Kind : std::uint8_t
        {
            AddJob,     ///< inverse: deregister the (then-last) job
            RemoveJob,  ///< inverse: reinsert at its old running_ slot
            InaRacks,   ///< inverse: restore the previous INA rack set
            LinkState,  ///< inverse: restore one link's residual+flows
            RackPat,    ///< inverse: restore one rack's PAT residual
            JobRate,    ///< inverse: restore one job's converged rate
            FullCached, ///< inverse: restore a whole cached SteadyState
        };
        Kind kind{};
        JobId job{};
        /** RemoveJob: runningIndex; LinkState/RackPat: resource index;
         * FullCached: slot in txnFullSaves_. */
        std::size_t index = 0;
        /** LinkState: residual; RackPat: PAT; JobRate/RemoveJob: rate. */
        double value = 0.0;
        /** LinkState: flow count. */
        int flows = 0;
        /** JobRate/RemoveJob: the rate existed in cached_.jobRate. */
        bool present = false;
        /** RemoveJob: the removed placement; InaRacks: only inaRacks. */
        Placement placement;
    };

    /** Per-frame snapshot of the cheap scalar/dirt state. */
    struct TxnFrame
    {
        std::size_t logStart = 0;
        std::size_t fullSaveStart = 0;
        bool valid = false;
        bool structural = false;
        bool viewValid = false;
        /** view_ was rebuilt under this frame (or a descendant), so its
         * content no longer matches the state a rollback restores. */
        bool viewTouched = false;
        std::vector<LinkId> dirtyLinks;
        std::vector<RackId> dirtyRacks;
        Stats stats;
    };

    bool inTxn() const { return !txnFrames_.empty(); }
    void txnLogAdd(JobId id);
    void txnLogRemove(JobId id, std::size_t running_index,
                      const Placement &placement);
    void txnLogInaRacks(JobId id, const std::set<RackId> &old_racks);
    /** Pre-value saves the incremental estimator calls per affected
     * resource; no-ops outside a transaction. */
    void txnSaveLinkState(std::size_t link_index);
    void txnSaveRackPat(std::size_t rack_index);
    void txnSaveRate(JobId id);
    void txnSaveFullCached();
    void replayUndo(const TxnUndo &undo);

    const ClusterTopology *topo_;
    WaterFillingEstimator estimator_;

    std::unordered_map<JobId, JobEntry> jobs_;
    std::vector<PlacedJob> running_;

    /** Reverse indexes: which jobs touch each link / consume each rack. */
    std::vector<std::vector<JobId>> linkJobs_;
    std::vector<std::vector<JobId>> rackJobs_;

    SteadyState cached_;
    SteadyStateView view_;
    bool viewValid_ = false;
    bool valid_ = false;
    bool structural_ = false;
    std::vector<char> dirtyLinkMask_;
    std::vector<char> dirtyRackMask_;
    std::vector<LinkId> dirtyLinks_;
    std::vector<RackId> dirtyRacks_;

    Stats stats_;

    /** Open frames (innermost last) over one shared LIFO undo log. */
    std::vector<TxnFrame> txnFrames_;
    std::vector<TxnUndo> txnLog_;
    /** Whole-SteadyState saves referenced by FullCached log entries. */
    std::vector<SteadyState> txnFullSaves_;
    TxnStats txnStats_;
};

} // namespace netpack

#endif // NETPACK_CORE_PLACEMENT_CONTEXT_H
