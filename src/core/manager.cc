#include "core/manager.h"

#include <algorithm>

#include "common/check.h"
#include "placement/netpack_placer.h"

namespace netpack {

JobManager::JobManager(const ClusterTopology &topo,
                       std::unique_ptr<Placer> placer,
                       double starvation_boost)
    : topo_(&topo),
      placer_(placer ? std::move(placer)
                     : std::make_unique<NetPackPlacer>()),
      starvationBoost_(starvation_boost), gpus_(topo), context_(topo)
{
    NETPACK_REQUIRE(starvation_boost >= 0.0,
                    "starvation boost must be non-negative");
}

void
JobManager::submit(const JobSpec &spec)
{
    NETPACK_REQUIRE(spec.id.valid(), "job id must be set");
    NETPACK_REQUIRE(spec.gpuDemand >= 1,
                    "job " << spec.id.value << " demands no GPUs");
    NETPACK_REQUIRE(spec.gpuDemand <= topo_->totalGpus(),
                    "job " << spec.id.value << " demands " << spec.gpuDemand
                           << " GPUs; the cluster has "
                           << topo_->totalGpus());
    NETPACK_REQUIRE(ModelZoo::contains(spec.modelName),
                    "job " << spec.id.value << " names unknown model '"
                           << spec.modelName << "'");
    const bool duplicate =
        context_.tracks(spec.id) ||
        std::any_of(pending_.begin(), pending_.end(),
                    [&](const JobSpec &p) { return p.id == spec.id; });
    NETPACK_REQUIRE(!duplicate,
                    "job id " << spec.id.value << " already in the system");
    pending_.push_back(spec);
}

std::vector<PlacedJob>
JobManager::placeRound()
{
    if (pending_.empty())
        return {};
    // The placer registers every placed job in the context as it goes.
    BatchResult result =
        placer_->placeBatch(pending_, *topo_, gpus_, context_);

    std::vector<PlacedJob> placed = result.placed;
    for (const PlacedJob &job : placed) {
        const auto it = std::find_if(
            pending_.begin(), pending_.end(),
            [&](const JobSpec &p) { return p.id == job.id; });
        NETPACK_CHECK_MSG(it != pending_.end(),
                          "placer invented job " << job.id.value);
        NETPACK_CHECK_MSG(context_.tracks(job.id),
                          "placer placed job " << job.id.value
                                               << " without registering it");
        pending_.erase(it);
    }
    for (JobSpec &spec : pending_)
        spec.value += starvationBoost_;
    return placed;
}

void
JobManager::finish(JobId id)
{
    NETPACK_REQUIRE(context_.tracks(id),
                    "job " << id.value << " is not running");
    gpus_.releaseJob(id);
    context_.removeJob(id);
}

std::optional<Placement>
JobManager::placementOf(JobId id) const
{
    const Placement *placement = context_.placementOf(id);
    if (placement == nullptr)
        return std::nullopt;
    return *placement;
}

SteadyState
JobManager::estimateSteadyState() const
{
    return context_.steadyState();
}

} // namespace netpack
