#include "core/manager.h"

#include <algorithm>

#include "common/check.h"
#include "placement/netpack_placer.h"

namespace netpack {

JobManager::JobManager(const ClusterTopology &topo,
                       std::unique_ptr<Placer> placer,
                       double starvation_boost)
    : topo_(&topo),
      placer_(placer ? std::move(placer)
                     : std::make_unique<NetPackPlacer>()),
      starvationBoost_(starvation_boost), gpus_(topo)
{
    NETPACK_REQUIRE(starvation_boost >= 0.0,
                    "starvation boost must be non-negative");
}

void
JobManager::submit(const JobSpec &spec)
{
    NETPACK_REQUIRE(spec.id.valid(), "job id must be set");
    NETPACK_REQUIRE(spec.gpuDemand >= 1,
                    "job " << spec.id.value << " demands no GPUs");
    NETPACK_REQUIRE(spec.gpuDemand <= topo_->totalGpus(),
                    "job " << spec.id.value << " demands " << spec.gpuDemand
                           << " GPUs; the cluster has "
                           << topo_->totalGpus());
    NETPACK_REQUIRE(ModelZoo::contains(spec.modelName),
                    "job " << spec.id.value << " names unknown model '"
                           << spec.modelName << "'");
    const bool duplicate =
        runningIndex_.count(spec.id) > 0 ||
        std::any_of(pending_.begin(), pending_.end(),
                    [&](const JobSpec &p) { return p.id == spec.id; });
    NETPACK_REQUIRE(!duplicate,
                    "job id " << spec.id.value << " already in the system");
    pending_.push_back(spec);
}

std::vector<PlacedJob>
JobManager::placeRound()
{
    if (pending_.empty())
        return {};
    BatchResult result =
        placer_->placeBatch(pending_, *topo_, gpus_, running_);

    std::vector<PlacedJob> placed = result.placed;
    for (const PlacedJob &job : placed) {
        const auto it = std::find_if(
            pending_.begin(), pending_.end(),
            [&](const JobSpec &p) { return p.id == job.id; });
        NETPACK_CHECK_MSG(it != pending_.end(),
                          "placer invented job " << job.id.value);
        pending_.erase(it);
        runningIndex_[job.id] = running_.size();
        running_.push_back(job);
    }
    for (JobSpec &spec : pending_)
        spec.value += starvationBoost_;
    return placed;
}

void
JobManager::finish(JobId id)
{
    const auto it = runningIndex_.find(id);
    NETPACK_REQUIRE(it != runningIndex_.end(),
                    "job " << id.value << " is not running");
    const std::size_t index = it->second;
    gpus_.releaseJob(id);
    runningIndex_.erase(it);
    if (index + 1 != running_.size()) {
        running_[index] = std::move(running_.back());
        runningIndex_[running_[index].id] = index;
    }
    running_.pop_back();
}

std::optional<Placement>
JobManager::placementOf(JobId id) const
{
    const auto it = runningIndex_.find(id);
    if (it == runningIndex_.end())
        return std::nullopt;
    return running_[it->second].placement;
}

SteadyState
JobManager::estimateSteadyState() const
{
    WaterFillingEstimator estimator(*topo_);
    return estimator.estimate(running_);
}

} // namespace netpack
