#include "core/ina_rebalancer.h"

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace netpack {

InaRebalancer::InaRebalancer(const ClusterTopology &topo)
    : topo_(&topo)
{
}

InaAssignmentResult
InaRebalancer::rebalance(std::vector<PlacedJob> &running,
                         const VolumeLookup &volume_of) const
{
    // All running jobs are targets; nothing is fixed background, so the
    // assignment starts from the whole PAT budget.
    return assignSelectiveIna(*topo_, running, {}, volume_of);
}

RebalanceOutcome
InaRebalancer::rebalance(PlacementContext &ctx,
                         const VolumeLookup &volume_of) const
{
    NETPACK_CHECK_MSG(&ctx.topology() == topo_,
                      "rebalancer and context disagree on the topology");
    NETPACK_SPAN(span, "rebalance.pass");
    RebalanceOutcome outcome;
    std::vector<PlacedJob> running = ctx.running();
    span.arg("running", running.size());
    outcome.assignment = assignSelectiveIna(*topo_, running, {}, volume_of);
    NETPACK_COUNT("rebalance.passes", 1);
    NETPACK_COUNT("rebalance.jobs_changed",
                  outcome.assignment.jobsChanged);
    span.arg("jobs_changed", outcome.assignment.jobsChanged);
    if (outcome.assignment.jobsChanged == 0)
        return outcome;
    for (PlacedJob &job : running) {
        const Placement *before = ctx.placementOf(job.id);
        NETPACK_CHECK(before != nullptr);
        if (before->inaRacks == job.placement.inaRacks)
            continue;
        ctx.updateInaRacks(job.id, job.placement.inaRacks);
        outcome.changed.push_back(std::move(job));
    }
    return outcome;
}

} // namespace netpack
