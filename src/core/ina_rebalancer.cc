#include "core/ina_rebalancer.h"

namespace netpack {

InaRebalancer::InaRebalancer(const ClusterTopology &topo)
    : topo_(&topo)
{
}

InaAssignmentResult
InaRebalancer::rebalance(std::vector<PlacedJob> &running,
                         const VolumeLookup &volume_of) const
{
    // All running jobs are targets; nothing is fixed background, so the
    // assignment starts from the whole PAT budget.
    return assignSelectiveIna(*topo_, running, {}, volume_of);
}

} // namespace netpack
