#include "core/experiment.h"

#include "common/check.h"
#include "placement/baselines.h"
#include "sim/flow_model.h"

namespace netpack {

std::unique_ptr<NetworkModel>
makeNetworkModel(const ExperimentConfig &config, const ClusterTopology &topo)
{
    switch (config.fidelity) {
      case Fidelity::Flow:
        return std::make_unique<FlowNetworkModel>(topo);
      case Fidelity::Packet:
        return std::make_unique<PacketNetworkModel>(topo, config.packet);
    }
    throw InternalError("unknown fidelity");
}

RunMetrics
runExperiment(const ExperimentConfig &config, const JobTrace &trace)
{
    ClusterTopology topo(config.cluster);
    ClusterSimulator sim(topo, makeNetworkModel(config, topo),
                         makePlacerByName(config.placer, config.seed),
                         config.sim);
    return sim.run(trace);
}

std::map<std::string, RunMetrics>
comparePlacers(const ExperimentConfig &config, const JobTrace &trace,
               const std::vector<std::string> &placers)
{
    std::map<std::string, RunMetrics> results;
    for (const std::string &placer : placers) {
        ExperimentConfig variant = config;
        variant.placer = placer;
        results.emplace(placer, runExperiment(variant, trace));
    }
    return results;
}

std::map<std::string, double>
normalizeTo(const std::map<std::string, double> &values,
            const std::string &reference)
{
    const auto it = values.find(reference);
    NETPACK_REQUIRE(it != values.end(),
                    "reference '" << reference << "' missing from values");
    NETPACK_REQUIRE(it->second != 0.0,
                    "reference value is zero; cannot normalize");
    std::map<std::string, double> out;
    for (const auto &[name, value] : values)
        out[name] = value / it->second;
    return out;
}

} // namespace netpack
