/**
 * @file
 * The NetPack job manager (Figure 4): the embeddable, real-time facade of
 * the system. Users submit jobs; the manager batches them, consults the
 * network information base (topology + current placements), runs the
 * steady-state estimation and the placement algorithm at each scheduling
 * round, and reports the plans to enforce. This is the API a production
 * deployment would drive from its RPC layer; the simulators drive the
 * same placement machinery through ClusterSimulator.
 */

#ifndef NETPACK_CORE_MANAGER_H
#define NETPACK_CORE_MANAGER_H

#include <memory>
#include <optional>

#include "core/placement_context.h"
#include "placement/placer.h"
#include "topology/cluster.h"
#include "topology/gpu_ledger.h"
#include "waterfill/steady_state.h"
#include "workload/job.h"

namespace netpack {

/** Embeddable cluster job manager. */
class JobManager
{
  public:
    /**
     * @param topo cluster topology (must outlive the manager)
     * @param placer placement policy (owned); defaults to NetPack
     * @param starvation_boost value added to a job per missed round
     */
    JobManager(const ClusterTopology &topo,
               std::unique_ptr<Placer> placer = nullptr,
               double starvation_boost = 1.0);

    /**
     * Submit a job (Step ① of Figure 4). The id must be fresh.
     * ConfigError if the demand can never fit the cluster.
     */
    void submit(const JobSpec &spec);

    /**
     * Run one scheduling round over the pending batch (Steps ②-⑤).
     * Deferred jobs stay queued with boosted value.
     * @return the placements decided this round
     */
    std::vector<PlacedJob> placeRound();

    /** A running job finished; its GPUs return to the pool. */
    void finish(JobId id);

    /** Placement of a running job, if any. */
    std::optional<Placement> placementOf(JobId id) const;

    /** Jobs waiting for placement, in submit order. */
    const std::vector<JobSpec> &pending() const { return pending_; }

    /** Running jobs' placements (the network information base view). */
    const std::vector<PlacedJob> &running() const
    {
        return context_.running();
    }

    /** GPU occupancy ledger. */
    const GpuLedger &gpus() const { return gpus_; }

    /**
     * Estimate the current steady state of the cluster — per-job
     * throughput and residual resources (Step ③ standalone, for
     * dashboards and what-if tooling). Served from the shared resource
     * engine: a cache hit when nothing changed since the last round.
     */
    SteadyState estimateSteadyState() const;

    /** The shared resource engine (instrumentation access). */
    const PlacementContext &context() const { return context_; }

    /** The placement policy in use. */
    const Placer &placer() const { return *placer_; }

  private:
    const ClusterTopology *topo_;
    std::unique_ptr<Placer> placer_;
    double starvationBoost_;
    GpuLedger gpus_;
    std::vector<JobSpec> pending_;
    /** mutable: estimateSteadyState() is logically const but may have
        to re-converge the cached fixed point lazily. */
    mutable PlacementContext context_;
};

} // namespace netpack

#endif // NETPACK_CORE_MANAGER_H
