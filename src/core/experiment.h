/**
 * @file
 * Experiment runner shared by the benchmark harnesses: builds a cluster,
 * a network model of the requested fidelity, and a placer by name, runs
 * a trace through the manager loop, and returns the metrics. Also the
 * normalization helper used by every JCT/DE figure (the paper normalizes
 * each group so NetPack = 1).
 */

#ifndef NETPACK_CORE_EXPERIMENT_H
#define NETPACK_CORE_EXPERIMENT_H

#include <cstdint>
#include <map>
#include <string>

#include "sim/cluster_sim.h"
#include "sim/packet_model.h"
#include "workload/trace.h"

namespace netpack {

/** Which network model backs the run. */
enum class Fidelity
{
    /** Water-filling flow-level simulator (large scale). */
    Flow,
    /** RTT-slotted packet model (the testbed stand-in). */
    Packet,
};

/** Full experiment description. */
struct ExperimentConfig
{
    ClusterConfig cluster;
    SimConfig sim;
    PacketModelConfig packet;
    Fidelity fidelity = Fidelity::Flow;
    /** Placer name, resolved by makePlacerByName. */
    std::string placer = "NetPack";
    /**
     * RNG stream seed for stochastic placers (e.g. Random). 0 keeps the
     * placer's fixed default stream; sweep runners derive a distinct
     * counter-based stream per run (exec::streamSeed) so multi-seed
     * matrices stay reproducible under any execution order.
     */
    std::uint64_t seed = 0;
};

/** Build the network model of @p config over @p topo. */
std::unique_ptr<NetworkModel> makeNetworkModel(const ExperimentConfig &config,
                                               const ClusterTopology &topo);

/** Run @p trace under @p config and return the metrics. */
RunMetrics runExperiment(const ExperimentConfig &config,
                         const JobTrace &trace);

/**
 * Run the same trace under every placer in @p placers and return
 * placer -> metrics (the backbone of Figures 7-9 and 11-13).
 */
std::map<std::string, RunMetrics>
comparePlacers(const ExperimentConfig &config, const JobTrace &trace,
               const std::vector<std::string> &placers);

/**
 * Normalize a metric map so that @p reference maps to 1.0 (the paper
 * plots JCT/DE normalized to NetPack).
 */
std::map<std::string, double>
normalizeTo(const std::map<std::string, double> &values,
            const std::string &reference);

} // namespace netpack

#endif // NETPACK_CORE_EXPERIMENT_H
