/**
 * @file
 * Runtime INA rebalancing — the paper's future-work direction ("joint
 * job placement and scheduling") restricted to the one resource that
 * can be rescheduled without migration: which jobs use statistical INA
 * on which ToRs. GPUs stay pinned (Section 3.1), but INA enablement is
 * an endpoint-side tag, so the manager can periodically re-run the
 * AE-ordered selective assignment (Algorithm 2 step ④) over *running*
 * jobs as the mix churns.
 */

#ifndef NETPACK_CORE_INA_REBALANCER_H
#define NETPACK_CORE_INA_REBALANCER_H

#include "core/placement_context.h"
#include "placement/ina_policy.h"
#include "topology/cluster.h"

namespace netpack {

/** What a context-driven rebalance pass did. */
struct RebalanceOutcome
{
    /** Aggregate counters from the selective assignment. */
    InaAssignmentResult assignment;
    /** Jobs whose INA rack set actually changed, with new placements. */
    std::vector<PlacedJob> changed;
};

/** Periodically re-optimizes INA enablement across running jobs. */
class InaRebalancer
{
  public:
    explicit InaRebalancer(const ClusterTopology &topo);

    /**
     * Recompute the INA rack sets of @p running in place against the
     * full PAT budget. @p volume_of provides gradient volumes for the
     * estimator guard.
     * @return the number of jobs whose assignment changed
     */
    InaAssignmentResult rebalance(std::vector<PlacedJob> &running,
                                  const VolumeLookup &volume_of) const;

    /**
     * Context-driven pass: reads the running set from @p ctx, re-runs
     * the AE-ordered selective assignment, and writes the changed rack
     * sets back via ctx.updateInaRacks — so the next steady-state query
     * re-converges only the affected jobs' coupled component. The caller
     * applies outcome.changed to its own records / network model.
     */
    RebalanceOutcome rebalance(PlacementContext &ctx,
                               const VolumeLookup &volume_of) const;

  private:
    const ClusterTopology *topo_;
};

} // namespace netpack

#endif // NETPACK_CORE_INA_REBALANCER_H
