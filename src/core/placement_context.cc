#include "core/placement_context.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_set>

#include "backends/collective_backend.h"
#include "common/check.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace netpack {

namespace {

/** Incremental/full rate agreement tolerance for the verify mode. */
constexpr double kVerifyTolerance = 1e-9;

/** NETPACK_VERIFY_INCREMENTAL=1 cross-checks every incremental merge. */
bool
verifyIncrementalEnabled()
{
    static const bool enabled = [] {
        const char *value = std::getenv("NETPACK_VERIFY_INCREMENTAL");
        return value != nullptr && value[0] != '\0' && value[0] != '0';
    }();
    return enabled;
}

} // namespace

PlacementContext::PlacementContext(const ClusterTopology &topo)
    : topo_(&topo), estimator_(topo),
      linkJobs_(static_cast<std::size_t>(topo.numLinks())),
      rackJobs_(static_cast<std::size_t>(topo.numRacks())),
      dirtyLinkMask_(static_cast<std::size_t>(topo.numLinks()), 0),
      dirtyRackMask_(static_cast<std::size_t>(topo.numRacks()), 0)
{
}

PlacementContext::JobEntry
PlacementContext::buildEntry(JobId id, const Placement &placement) const
{
    JobEntry entry;
    entry.shards = backends::buildJobHierarchies(*topo_, id, placement);

    std::vector<char> link_seen(static_cast<std::size_t>(topo_->numLinks()),
                                0);
    std::vector<char> rack_seen(static_cast<std::size_t>(topo_->numRacks()),
                                0);
    for (const JobHierarchy &shard : entry.shards) {
        for (const HierarchyNode &node : shard.nodes()) {
            for (LinkId link : node.uplinks) {
                if (!link_seen[link.index()]) {
                    link_seen[link.index()] = 1;
                    entry.links.push_back(link);
                }
            }
        }
        for (RackId rack : shard.inaRacks()) {
            if (!rack_seen[rack.index()]) {
                rack_seen[rack.index()] = 1;
                entry.racks.push_back(rack);
            }
        }
    }
    std::sort(entry.links.begin(), entry.links.end());
    std::sort(entry.racks.begin(), entry.racks.end());
    return entry;
}

void
PlacementContext::indexEntry(JobId id, const JobEntry &entry)
{
    for (LinkId link : entry.links)
        linkJobs_[link.index()].push_back(id);
    for (RackId rack : entry.racks)
        rackJobs_[rack.index()].push_back(id);
}

void
PlacementContext::unindexEntry(JobId id, const JobEntry &entry)
{
    const auto drop = [id](std::vector<JobId> &jobs) {
        jobs.erase(std::remove(jobs.begin(), jobs.end(), id), jobs.end());
    };
    for (LinkId link : entry.links)
        drop(linkJobs_[link.index()]);
    for (RackId rack : entry.racks)
        drop(rackJobs_[rack.index()]);
}

void
PlacementContext::markLinkDirty(LinkId link)
{
    if (!dirtyLinkMask_[link.index()]) {
        dirtyLinkMask_[link.index()] = 1;
        dirtyLinks_.push_back(link);
    }
}

void
PlacementContext::markRackDirty(RackId rack)
{
    if (!dirtyRackMask_[rack.index()]) {
        dirtyRackMask_[rack.index()] = 1;
        dirtyRacks_.push_back(rack);
    }
}

void
PlacementContext::markDirty(const JobEntry &entry)
{
    for (LinkId link : entry.links)
        markLinkDirty(link);
    for (RackId rack : entry.racks)
        markRackDirty(rack);
}

void
PlacementContext::addJob(JobId id, const Placement &placement)
{
    NETPACK_CHECK_MSG(jobs_.find(id) == jobs_.end(),
                      "job " << id.value
                             << " is already tracked by the context");
    JobEntry entry = buildEntry(id, placement);
    entry.runningIndex = running_.size();
    running_.push_back({id, placement});
    indexEntry(id, entry);
    markDirty(entry);
    jobs_.emplace(id, std::move(entry));
    txnLogAdd(id);
}

void
PlacementContext::removeJob(JobId id)
{
    const auto it = jobs_.find(id);
    NETPACK_CHECK_MSG(it != jobs_.end(),
                      "removing untracked job " << id.value);
    if (inTxn())
        txnLogRemove(id, it->second.runningIndex,
                     running_[it->second.runningIndex].placement);
    markDirty(it->second);
    unindexEntry(id, it->second);
    cached_.jobRate.erase(id);

    const std::size_t index = it->second.runningIndex;
    if (index + 1 != running_.size()) {
        running_[index] = std::move(running_.back());
        jobs_.at(running_[index].id).runningIndex = index;
    }
    running_.pop_back();
    jobs_.erase(it);
}

void
PlacementContext::updateInaRacks(JobId id, const std::set<RackId> &ina_racks)
{
    const auto it = jobs_.find(id);
    NETPACK_CHECK_MSG(it != jobs_.end(),
                      "updating INA racks of untracked job " << id.value);
    PlacedJob &placed = running_[it->second.runningIndex];
    if (placed.placement.inaRacks == ina_racks)
        return;

    txnLogInaRacks(id, placed.placement.inaRacks);
    // INA toggling reshapes the aggregation trees (switches flip between
    // aggregating and passing through); rebuild and invalidate wholesale.
    markDirty(it->second);
    unindexEntry(id, it->second);
    placed.placement.inaRacks = ina_racks;
    const std::size_t index = it->second.runningIndex;
    it->second = buildEntry(id, placed.placement);
    it->second.runningIndex = index;
    indexEntry(id, it->second);
    markDirty(it->second);
    structural_ = true;
}

void
PlacementContext::syncTo(const std::vector<PlacedJob> &running)
{
    // Drop jobs that disappeared. Collected in running_ order (not map
    // order) so the swap-removal shuffle of running_ — and with it every
    // downstream float-accumulation order — is a pure function of
    // serializable state, which snapshot restore depends on.
    std::unordered_set<JobId> wanted;
    for (const PlacedJob &job : running)
        wanted.insert(job.id);
    std::vector<JobId> gone;
    for (const PlacedJob &job : running_) {
        if (wanted.count(job.id) == 0)
            gone.push_back(job.id);
    }
    for (JobId id : gone)
        removeJob(id);

    // Add new jobs; re-register jobs whose placement changed.
    for (const PlacedJob &job : running) {
        const auto it = jobs_.find(job.id);
        if (it == jobs_.end()) {
            addJob(job);
            continue;
        }
        const Placement &current =
            running_[it->second.runningIndex].placement;
        if (current.workers != job.placement.workers ||
            current.psServer != job.placement.psServer ||
            current.extraPsServers != job.placement.extraPsServers ||
            current.backend != job.placement.backend) {
            removeJob(job.id);
            addJob(job);
        } else if (current.inaRacks != job.placement.inaRacks) {
            updateInaRacks(job.id, job.placement.inaRacks);
        }
    }
}

void
PlacementContext::clear()
{
    NETPACK_CHECK_MSG(!inTxn(),
                      "clear() inside an open transaction frame");
    jobs_.clear();
    running_.clear();
    for (auto &jobs : linkJobs_)
        jobs.clear();
    for (auto &jobs : rackJobs_)
        jobs.clear();
    cached_ = SteadyState{};
    view_ = SteadyStateView{};
    viewValid_ = false;
    valid_ = false;
    structural_ = false;
    std::fill(dirtyLinkMask_.begin(), dirtyLinkMask_.end(), 0);
    std::fill(dirtyRackMask_.begin(), dirtyRackMask_.end(), 0);
    dirtyLinks_.clear();
    dirtyRacks_.clear();
}

PlacementContext::State
PlacementContext::exportState() const
{
    State state;
    state.running = running_;
    state.cached = cached_;
    state.valid = valid_;
    state.structural = structural_;
    state.dirtyLinks = dirtyLinks_;
    state.dirtyRacks = dirtyRacks_;
    state.stats = stats_;
    return state;
}

void
PlacementContext::importState(const State &state)
{
    NETPACK_CHECK_MSG(!inTxn(),
                      "importState() inside an open transaction frame");
    clear();
    // Re-adding in running_ order rebuilds jobs_, the reverse indexes,
    // and every shard hierarchy exactly as a never-stopped context holds
    // them (buildEntry is a pure function of topology + placement).
    for (const PlacedJob &job : state.running)
        addJob(job);
    // addJob dirtied everything it touched; replace that synthetic dirt
    // with the captured dirt so the next query re-converges exactly the
    // same component the original run would have.
    dirtyLinks_.clear();
    dirtyRacks_.clear();
    std::fill(dirtyLinkMask_.begin(), dirtyLinkMask_.end(), 0);
    std::fill(dirtyRackMask_.begin(), dirtyRackMask_.end(), 0);
    for (LinkId link : state.dirtyLinks)
        markLinkDirty(link);
    for (RackId rack : state.dirtyRacks)
        markRackDirty(rack);
    cached_ = state.cached;
    valid_ = state.valid;
    structural_ = state.structural;
    stats_ = state.stats;
    viewValid_ = false;
}

// ---------------------------------------------------------------------------
// Transactions. One LIFO undo log shared by all open frames: each frame
// remembers where the log stood at begin plus a snapshot of the cheap
// scalar state (flags, pending dirt, Stats). Rollback replays the log
// tail backwards — every inverse operation runs against exactly the
// state its forward operation produced, so the restore is bit-exact —
// then reinstates the frame snapshot. Commit simply abandons the
// frame's log boundary, folding its entries into the parent (duplicate
// pre-value saves are harmless under LIFO replay: the oldest save lands
// last).
// ---------------------------------------------------------------------------

void
PlacementContext::beginTxn()
{
    TxnFrame frame;
    frame.logStart = txnLog_.size();
    frame.fullSaveStart = txnFullSaves_.size();
    frame.valid = valid_;
    frame.structural = structural_;
    frame.viewValid = viewValid_;
    frame.dirtyLinks = dirtyLinks_;
    frame.dirtyRacks = dirtyRacks_;
    frame.stats = stats_;
    txnFrames_.push_back(std::move(frame));
    ++txnStats_.begins;
}

void
PlacementContext::commitTxn()
{
    NETPACK_CHECK_MSG(inTxn(), "commitTxn() without an open frame");
    const bool view_touched = txnFrames_.back().viewTouched;
    txnFrames_.pop_back();
    if (txnFrames_.empty()) {
        txnLog_.clear();
        txnFullSaves_.clear();
    } else if (view_touched) {
        txnFrames_.back().viewTouched = true;
    }
    ++txnStats_.commits;
}

void
PlacementContext::rollbackTxn()
{
    NETPACK_CHECK_MSG(inTxn(), "rollbackTxn() without an open frame");
    TxnFrame &frame = txnFrames_.back();
    while (txnLog_.size() > frame.logStart) {
        replayUndo(txnLog_.back());
        txnLog_.pop_back();
        ++txnStats_.entriesUndone;
    }
    txnFullSaves_.resize(frame.fullSaveStart);

    valid_ = frame.valid;
    structural_ = frame.structural;
    // A view rebuilt under this frame holds content the restore just
    // discarded; force the next steadyStateView() to re-snapshot.
    viewValid_ = frame.viewValid && !frame.viewTouched;
    stats_ = frame.stats;

    for (LinkId link : dirtyLinks_)
        dirtyLinkMask_[link.index()] = 0;
    for (RackId rack : dirtyRacks_)
        dirtyRackMask_[rack.index()] = 0;
    dirtyLinks_ = std::move(frame.dirtyLinks);
    dirtyRacks_ = std::move(frame.dirtyRacks);
    for (LinkId link : dirtyLinks_)
        dirtyLinkMask_[link.index()] = 1;
    for (RackId rack : dirtyRacks_)
        dirtyRackMask_[rack.index()] = 1;

    const bool view_touched = frame.viewTouched;
    txnFrames_.pop_back();
    if (!txnFrames_.empty() && view_touched)
        txnFrames_.back().viewTouched = true;
    ++txnStats_.rollbacks;
    NETPACK_COUNT("placement.txn_rollbacks", 1);
}

void
PlacementContext::txnLogAdd(JobId id)
{
    if (!inTxn())
        return;
    TxnUndo undo;
    undo.kind = TxnUndo::Kind::AddJob;
    undo.job = id;
    txnLog_.push_back(std::move(undo));
}

void
PlacementContext::txnLogRemove(JobId id, std::size_t running_index,
                               const Placement &placement)
{
    TxnUndo undo;
    undo.kind = TxnUndo::Kind::RemoveJob;
    undo.job = id;
    undo.index = running_index;
    undo.placement = placement;
    const auto it = cached_.jobRate.find(id);
    undo.present = it != cached_.jobRate.end();
    if (undo.present)
        undo.value = it->second;
    txnLog_.push_back(std::move(undo));
}

void
PlacementContext::txnLogInaRacks(JobId id,
                                 const std::set<RackId> &old_racks)
{
    if (!inTxn())
        return;
    TxnUndo undo;
    undo.kind = TxnUndo::Kind::InaRacks;
    undo.job = id;
    undo.placement.inaRacks = old_racks;
    txnLog_.push_back(std::move(undo));
}

void
PlacementContext::txnSaveLinkState(std::size_t link_index)
{
    if (!inTxn())
        return;
    TxnUndo undo;
    undo.kind = TxnUndo::Kind::LinkState;
    undo.index = link_index;
    undo.value = cached_.linkResidual[link_index];
    undo.flows = cached_.linkFlows[link_index];
    txnLog_.push_back(std::move(undo));
}

void
PlacementContext::txnSaveRackPat(std::size_t rack_index)
{
    if (!inTxn())
        return;
    TxnUndo undo;
    undo.kind = TxnUndo::Kind::RackPat;
    undo.index = rack_index;
    undo.value = cached_.patResidual[rack_index];
    txnLog_.push_back(std::move(undo));
}

void
PlacementContext::txnSaveRate(JobId id)
{
    if (!inTxn())
        return;
    TxnUndo undo;
    undo.kind = TxnUndo::Kind::JobRate;
    undo.job = id;
    const auto it = cached_.jobRate.find(id);
    undo.present = it != cached_.jobRate.end();
    if (undo.present)
        undo.value = it->second;
    txnLog_.push_back(std::move(undo));
}

void
PlacementContext::txnSaveFullCached()
{
    if (!inTxn())
        return;
    TxnUndo undo;
    undo.kind = TxnUndo::Kind::FullCached;
    undo.index = txnFullSaves_.size();
    txnFullSaves_.push_back(cached_);
    txnLog_.push_back(std::move(undo));
}

void
PlacementContext::replayUndo(const TxnUndo &undo)
{
    switch (undo.kind) {
    case TxnUndo::Kind::AddJob: {
        const auto it = jobs_.find(undo.job);
        NETPACK_CHECK_MSG(it != jobs_.end(),
                          "undo of addJob: job " << undo.job.value
                                                 << " is not tracked");
        // LIFO replay: every later operation has been undone, so the
        // job sits exactly where addJob left it — at the back.
        NETPACK_CHECK(it->second.runningIndex + 1 == running_.size());
        unindexEntry(undo.job, it->second);
        running_.pop_back();
        jobs_.erase(it);
        break;
    }
    case TxnUndo::Kind::RemoveJob: {
        // Invert the swap-removal: the job that removeJob moved into
        // the vacated slot goes back to the end, then the removed job
        // reclaims its original slot and (rebuilt) entry.
        JobEntry entry = buildEntry(undo.job, undo.placement);
        entry.runningIndex = undo.index;
        if (undo.index != running_.size()) {
            running_.push_back(std::move(running_[undo.index]));
            jobs_.at(running_.back().id).runningIndex =
                running_.size() - 1;
            running_[undo.index] = {undo.job, undo.placement};
        } else {
            running_.push_back({undo.job, undo.placement});
        }
        indexEntry(undo.job, entry);
        jobs_.emplace(undo.job, std::move(entry));
        if (undo.present)
            cached_.jobRate[undo.job] = undo.value;
        break;
    }
    case TxnUndo::Kind::InaRacks: {
        const auto it = jobs_.find(undo.job);
        NETPACK_CHECK_MSG(it != jobs_.end(),
                          "undo of updateInaRacks: job "
                              << undo.job.value << " is not tracked");
        PlacedJob &placed = running_[it->second.runningIndex];
        unindexEntry(undo.job, it->second);
        placed.placement.inaRacks = undo.placement.inaRacks;
        const std::size_t index = it->second.runningIndex;
        it->second = buildEntry(undo.job, placed.placement);
        it->second.runningIndex = index;
        indexEntry(undo.job, it->second);
        break;
    }
    case TxnUndo::Kind::LinkState:
        cached_.linkResidual[undo.index] = undo.value;
        cached_.linkFlows[undo.index] = undo.flows;
        break;
    case TxnUndo::Kind::RackPat:
        cached_.patResidual[undo.index] = undo.value;
        break;
    case TxnUndo::Kind::JobRate:
        if (undo.present)
            cached_.jobRate[undo.job] = undo.value;
        else
            cached_.jobRate.erase(undo.job);
        break;
    case TxnUndo::Kind::FullCached:
        cached_ = std::move(txnFullSaves_[undo.index]);
        break;
    }
}

void
PlacementContext::invalidateAll()
{
    structural_ = true;
}

void
PlacementContext::invalidateServer(ServerId server)
{
    markLinkDirty(topo_->accessLink(server));
    const RackId rack = topo_->rackOf(server);
    markLinkDirty(topo_->coreLink(rack));
    markRackDirty(rack);
    structural_ = true;
}

void
PlacementContext::invalidateRack(RackId rack)
{
    markLinkDirty(topo_->coreLink(rack));
    markRackDirty(rack);
}

const Placement *
PlacementContext::placementOf(JobId id) const
{
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return nullptr;
    return &running_[it->second.runningIndex].placement;
}

bool
PlacementContext::dirty() const
{
    return !valid_ || structural_ || !dirtyLinks_.empty() ||
           !dirtyRacks_.empty();
}

ResourceDelta
PlacementContext::takeDelta()
{
    ResourceDelta delta;
    delta.structural = structural_ || !valid_;
    delta.dirtyLinks = std::move(dirtyLinks_);
    delta.dirtyRacks = std::move(dirtyRacks_);
    dirtyLinks_.clear();
    dirtyRacks_.clear();
    std::fill(dirtyLinkMask_.begin(), dirtyLinkMask_.end(), 0);
    std::fill(dirtyRackMask_.begin(), dirtyRackMask_.end(), 0);
    structural_ = false;
    return delta;
}

const SteadyState &
PlacementContext::steadyState()
{
    if (!dirty()) {
        ++stats_.cacheHits;
        NETPACK_COUNT("waterfill.cache_hits", 1);
        return cached_;
    }
    const ResourceDelta delta = takeDelta();
    cached_ = estimator_.reestimate(*this, delta);
    valid_ = true;
    viewValid_ = false;
    return cached_;
}

const SteadyStateView &
PlacementContext::steadyStateView()
{
    // Converge first: a dirty context recomputes cached_ and drops the
    // snapshot, so the rebuild below always reads the fresh state.
    steadyState();
    if (viewValid_) {
        ++stats_.viewReuses;
        NETPACK_COUNT("placement.view_reuses", 1);
        return view_;
    }
    view_.assignFrom(*topo_, cached_);
    viewValid_ = true;
    if (inTxn())
        txnFrames_.back().viewTouched = true;
    ++stats_.viewRebuilds;
    NETPACK_COUNT("placement.view_rebuilds", 1);
    return view_;
}

// ---------------------------------------------------------------------------
// WaterFillingEstimator::reestimate — defined here because the incremental
// engine is inseparable from the context's caches and reverse indexes.
// ---------------------------------------------------------------------------

std::vector<JobHierarchy *>
PlacementContext::allShards()
{
    // running_ order, not map order: the estimator's water-filling
    // accumulates floats in shard order, so the order must be derivable
    // from serializable state for snapshot restore to be bit-identical.
    std::vector<JobHierarchy *> shards;
    for (const PlacedJob &job : running_) {
        for (JobHierarchy &shard : jobs_.at(job.id).shards)
            shards.push_back(&shard);
    }
    return shards;
}

SteadyState
WaterFillingEstimator::reestimate(PlacementContext &ctx,
                                  const ResourceDelta &delta) const
{
    if (delta.structural) {
        ++ctx.stats_.fullEstimates;
        ctx.txnSaveFullCached();
        NETPACK_COUNT("waterfill.full_fallbacks", 1);
        NETPACK_SPAN(span, "waterfill.full_estimate");
        span.arg("jobs", ctx.jobs_.size());
        return estimate(ctx.allShards());
    }
    if (delta.dirtyLinks.empty() && delta.dirtyRacks.empty())
        return ctx.cached_;

    NETPACK_HISTOGRAM("waterfill.dirty_links", obs::kPow2Buckets,
                      delta.dirtyLinks.size());
    NETPACK_HISTOGRAM("waterfill.dirty_racks", obs::kPow2Buckets,
                      delta.dirtyRacks.size());

    // Closure: grow the dirty link/rack seed into the full resource-
    // connected component. Any job touching an affected link (bandwidth
    // coupling) or consuming an affected rack's PAT is affected; its own
    // links/racks become affected in turn. At the fixed point no
    // retained job shares a resource with the re-run component, so
    // re-converging the component in isolation is exact.
    std::vector<char> link_affected(ctx.dirtyLinkMask_.size(), 0);
    std::vector<char> rack_affected(ctx.dirtyRackMask_.size(), 0);
    std::unordered_set<JobId> affected;
    std::vector<JobId> frontier;

    const auto absorbJob = [&](JobId id) {
        if (affected.insert(id).second)
            frontier.push_back(id);
    };
    const auto absorbLink = [&](LinkId link) {
        if (link_affected[link.index()])
            return;
        link_affected[link.index()] = 1;
        for (JobId id : ctx.linkJobs_[link.index()])
            absorbJob(id);
    };
    const auto absorbRack = [&](RackId rack) {
        if (rack_affected[rack.index()])
            return;
        rack_affected[rack.index()] = 1;
        for (JobId id : ctx.rackJobs_[rack.index()])
            absorbJob(id);
    };

    for (LinkId link : delta.dirtyLinks)
        absorbLink(link);
    for (RackId rack : delta.dirtyRacks)
        absorbRack(rack);
    while (!frontier.empty()) {
        const JobId id = frontier.back();
        frontier.pop_back();
        const PlacementContext::JobEntry &entry = ctx.jobs_.at(id);
        for (LinkId link : entry.links)
            absorbLink(link);
        for (RackId rack : entry.racks)
            absorbRack(rack);
    }

    SteadyState merged;
    if (affected.size() == ctx.jobs_.size()) {
        // The perturbation reaches every job; incremental buys nothing.
        ++ctx.stats_.fullEstimates;
        ctx.txnSaveFullCached();
        NETPACK_COUNT("waterfill.full_fallbacks", 1);
        NETPACK_SPAN(span, "waterfill.full_estimate");
        span.arg("jobs", ctx.jobs_.size());
        merged = estimate(ctx.allShards());
    } else {
        // Re-converge the component in isolation. Its links and racks
        // start from full capacity: by closure, no retained job touches
        // them, so the component owns those resources outright.
        NETPACK_COUNT("waterfill.incremental_hits", 1);
        NETPACK_COUNT("waterfill.jobs_reconverged",
                      static_cast<std::int64_t>(affected.size()));
        NETPACK_HISTOGRAM("waterfill.component_jobs", obs::kPow2Buckets,
                          affected.size());
        NETPACK_SPAN(span, "waterfill.incremental_estimate");
        span.arg("component_jobs", affected.size());
        span.arg("total_jobs", ctx.jobs_.size());
        // Shards in running_ order (affected is an unordered set whose
        // iteration order is not reproducible across restarts).
        std::vector<JobHierarchy *> shards;
        for (const PlacedJob &job : ctx.running_) {
            if (affected.count(job.id) == 0)
                continue;
            for (JobHierarchy &shard : ctx.jobs_.at(job.id).shards)
                shards.push_back(&shard);
        }
        const SteadyState sub = estimate(shards);

        // Splice the component into the retained fixed point. An open
        // transaction records each touched value's pre-image first —
        // exactly the affected component, so undo stays O(dirty).
        merged = ctx.cached_;
        for (std::size_t l = 0; l < link_affected.size(); ++l) {
            if (!link_affected[l])
                continue;
            ctx.txnSaveLinkState(l);
            merged.linkResidual[l] = sub.linkResidual[l];
            merged.linkFlows[l] = sub.linkFlows[l];
        }
        for (std::size_t r = 0; r < rack_affected.size(); ++r) {
            if (rack_affected[r]) {
                ctx.txnSaveRackPat(r);
                merged.patResidual[r] = sub.patResidual[r];
            }
        }
        for (const JobId id : affected) {
            ctx.txnSaveRate(id);
            const auto it = sub.jobRate.find(id);
            if (it != sub.jobRate.end())
                merged.jobRate[id] = it->second;
            else
                merged.jobRate.erase(id); // became local-only
        }
        ++ctx.stats_.incrementalEstimates;
        ctx.stats_.jobsReconverged +=
            static_cast<std::int64_t>(affected.size());
    }

    if (verifyIncrementalEnabled()) {
        const SteadyState full = estimate(ctx.allShards());
        NETPACK_CHECK_MSG(full.jobRate.size() == merged.jobRate.size(),
                          "incremental re-estimation tracked "
                              << merged.jobRate.size()
                              << " job rates, full recompute has "
                              << full.jobRate.size());
        for (const auto &[id, rate] : full.jobRate) {
            const auto it = merged.jobRate.find(id);
            NETPACK_CHECK_MSG(it != merged.jobRate.end(),
                              "incremental re-estimation lost job "
                                  << id.value);
            NETPACK_CHECK_MSG(std::abs(it->second - rate) <=
                                  kVerifyTolerance,
                              "incremental rate of job "
                                  << id.value << " is " << it->second
                                  << ", full recompute says " << rate);
        }
        for (std::size_t l = 0; l < full.linkResidual.size(); ++l) {
            NETPACK_CHECK_MSG(std::abs(full.linkResidual[l] -
                                       merged.linkResidual[l]) <=
                                  kVerifyTolerance,
                              "incremental residual of link "
                                  << l << " is " << merged.linkResidual[l]
                                  << ", full recompute says "
                                  << full.linkResidual[l]);
            NETPACK_CHECK_MSG(full.linkFlows[l] == merged.linkFlows[l],
                              "incremental flow count of link "
                                  << l << " is " << merged.linkFlows[l]
                                  << ", full recompute says "
                                  << full.linkFlows[l]);
        }
        for (std::size_t r = 0; r < full.patResidual.size(); ++r) {
            NETPACK_CHECK_MSG(std::abs(full.patResidual[r] -
                                       merged.patResidual[r]) <=
                                  kVerifyTolerance,
                              "incremental PAT residual of rack "
                                  << r << " is " << merged.patResidual[r]
                                  << ", full recompute says "
                                  << full.patResidual[r]);
        }
    }
    return merged;
}

} // namespace netpack
