/**
 * @file
 * The INA-specific water-filling algorithm (Section 4.2, Algorithm 1).
 * Statistical INA allocates network resources in a decentralized way:
 * jobs run AIMD congestion control and converge to a max-min fair share
 * of two *coupled* resources — link bandwidth and switch PAT. The
 * estimator replays that convergence analytically: it repeatedly grants
 * every active job the minimum per-flow share of the tightest remaining
 * link or switch, freezes jobs whose path saturated, and lets switches
 * whose PAT ran out degrade from "aggregate to one flow" to
 * "pass all flows through" before the next round.
 */

#ifndef NETPACK_WATERFILL_STEADY_STATE_H
#define NETPACK_WATERFILL_STEADY_STATE_H

#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "ina/hierarchy.h"
#include "topology/cluster.h"
#include "topology/ids.h"
#include "workload/job.h"

namespace netpack {

/** A running job as seen by the estimator: identity plus placement. */
struct PlacedJob
{
    JobId id;
    Placement placement;
};

/** Converged cluster state produced by the water-filling estimator. */
struct SteadyState
{
    /**
     * Converged per-worker send rate of each network job (Gbps). Local
     * (single-server) jobs do not appear; query via jobThroughput which
     * reports infinity for them.
     */
    std::unordered_map<JobId, Gbps> jobRate;
    /** Residual capacity per link (Gbps), indexed by LinkId. */
    std::vector<Gbps> linkResidual;
    /** Residual PAT per rack ToR (Gbps), indexed by RackId. */
    std::vector<Gbps> patResidual;
    /** Steady-state flow count per link, indexed by LinkId. */
    std::vector<int> linkFlows;

    /** Residual bandwidth of @p server's access link. */
    Gbps serverAvailBw(const ClusterTopology &topo, ServerId server) const;

    /** Flow count on @p server's access link. */
    int serverFlows(const ClusterTopology &topo, ServerId server) const;

    /** Residual bandwidth on @p rack's core link. */
    Gbps rackAvailBw(const ClusterTopology &topo, RackId rack) const;

    /** Flow count on @p rack's core link. */
    int rackFlows(const ClusterTopology &topo, RackId rack) const;

    /**
     * Communication throughput of @p job: its converged rate, or
     * +infinity for jobs that generate no network traffic.
     */
    Gbps jobThroughput(JobId job) const;
};

/**
 * Runs Algorithm 1 over a set of placed jobs on a topology. Stateless
 * apart from the topology reference; estimate() may be called repeatedly
 * (NetPack re-estimates before each job placement, Algorithm 2 line 7).
 */
class WaterFillingEstimator
{
  public:
    explicit WaterFillingEstimator(const ClusterTopology &topo);

    /** Estimate the steady state for @p jobs. */
    SteadyState estimate(const std::vector<PlacedJob> &jobs) const;

    /**
     * Estimate reusing prebuilt hierarchies (the flow-level simulator
     * caches them across epochs). The hierarchies' flow counts are
     * mutated during estimation.
     */
    SteadyState estimate(std::vector<JobHierarchy> &hierarchies) const;

    /** Iterations the most recent estimate() took (diagnostics). */
    int lastIterations() const { return lastIterations_; }

  private:
    const ClusterTopology *topo_;
    mutable int lastIterations_ = 0;
};

} // namespace netpack

#endif // NETPACK_WATERFILL_STEADY_STATE_H
