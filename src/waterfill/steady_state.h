/**
 * @file
 * The INA-specific water-filling algorithm (Section 4.2, Algorithm 1).
 * Statistical INA allocates network resources in a decentralized way:
 * jobs run AIMD congestion control and converge to a max-min fair share
 * of two *coupled* resources — link bandwidth and switch PAT. The
 * estimator replays that convergence analytically: it repeatedly grants
 * every active job the minimum per-flow share of the tightest remaining
 * link or switch, freezes jobs whose path saturated, and lets switches
 * whose PAT ran out degrade from "aggregate to one flow" to
 * "pass all flows through" before the next round.
 */

#ifndef NETPACK_WATERFILL_STEADY_STATE_H
#define NETPACK_WATERFILL_STEADY_STATE_H

#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "ina/hierarchy.h"
#include "topology/cluster.h"
#include "topology/ids.h"
#include "workload/job.h"

namespace netpack {

class PlacementContext;

/** A running job as seen by the estimator: identity plus placement. */
struct PlacedJob
{
    JobId id;
    Placement placement;
};

/**
 * A batch of resource-level invalidations accumulated by a
 * PlacementContext between steady-state queries: the links and racks
 * whose residuals can no longer be trusted. `structural` forces a full
 * re-estimation (server failures, INA toggles — changes that reshape
 * aggregation trees rather than merely shifting fair shares).
 */
struct ResourceDelta
{
    std::vector<LinkId> dirtyLinks;
    std::vector<RackId> dirtyRacks;
    bool structural = false;

    bool empty() const
    {
        return dirtyLinks.empty() && dirtyRacks.empty() && !structural;
    }
};

/** Converged cluster state produced by the water-filling estimator. */
struct SteadyState
{
    /**
     * Converged per-worker send rate of each network job (Gbps). Local
     * (single-server) jobs do not appear; query via jobThroughput which
     * reports infinity for them.
     */
    std::unordered_map<JobId, Gbps> jobRate;
    /** Residual capacity per link (Gbps), indexed by LinkId. */
    std::vector<Gbps> linkResidual;
    /** Residual PAT per rack ToR (Gbps), indexed by RackId. */
    std::vector<Gbps> patResidual;
    /** Steady-state flow count per link, indexed by LinkId. */
    std::vector<int> linkFlows;

    /** Residual bandwidth of @p server's access link. */
    Gbps serverAvailBw(const ClusterTopology &topo, ServerId server) const;

    /** Flow count on @p server's access link. */
    int serverFlows(const ClusterTopology &topo, ServerId server) const;

    /** Residual bandwidth on @p rack's core link. */
    Gbps rackAvailBw(const ClusterTopology &topo, RackId rack) const;

    /** Flow count on @p rack's core link. */
    int rackFlows(const ClusterTopology &topo, RackId rack) const;

    /**
     * Communication throughput of @p job: its converged rate, or
     * +infinity for jobs that generate no network traffic.
     */
    Gbps jobThroughput(JobId job) const;

    /**
     * Batch accessors: fill @p flows / @p avail for every server (rack,
     * pod uplink) at once. One pass over the link arrays instead of one
     * id translation per query — the SteadyStateView snapshot below is
     * built from these.
     */
    void copyServerState(const ClusterTopology &topo, std::vector<int> &flows,
                         std::vector<Gbps> &avail) const;
    void copyRackState(const ClusterTopology &topo, std::vector<int> &flows,
                       std::vector<Gbps> &avail) const;
    /** Two-tier mode only; clears the outputs otherwise. */
    void copyPodUplinkState(const ClusterTopology &topo,
                            std::vector<int> &flows,
                            std::vector<Gbps> &avail) const;
};

/**
 * Flat, server-/rack-indexed snapshot of the SteadyState facts the
 * placement hot loops read. The per-query SteadyState accessors
 * (serverFlows and friends) each translate an entity id into a link
 * index; Algorithm 2 reads them O(plans x servers) times per job, so
 * the placers instead snapshot everything once per steady-state
 * revision into plain arrays indexed by ServerId/RackId/pod value.
 *
 * Built and cached by PlacementContext::steadyStateView(): the view is
 * invalidated together with the cached SteadyState (any dirtying event
 * — job add/remove, INA toggle, failure — forces a rebuild on the next
 * query) and must not be held across context mutations.
 */
struct SteadyStateView
{
    /** Flow count on each server's access link, indexed by ServerId. */
    std::vector<int> serverFlows;
    /** Residual bandwidth of each server's access link (Gbps). */
    std::vector<Gbps> serverAvailBw;
    /** Flow count on each rack's core link, indexed by RackId. */
    std::vector<int> rackFlows;
    /** Residual bandwidth of each rack's core link (Gbps). */
    std::vector<Gbps> rackAvailBw;
    /** Flow count per pod uplink (two-tier mode; empty otherwise). */
    std::vector<int> podUplinkFlows;
    /** Residual bandwidth per pod uplink (two-tier mode). */
    std::vector<Gbps> podUplinkAvailBw;
    /** Residual PAT per rack ToR (Gbps), indexed by RackId. */
    std::vector<Gbps> patResidual;

    /** Rebuild the snapshot from @p steady, reusing capacity. */
    void assignFrom(const ClusterTopology &topo, const SteadyState &steady);
};

/**
 * Runs Algorithm 1 over a set of placed jobs on a topology. Stateless
 * apart from the topology reference; estimate() may be called repeatedly
 * (NetPack re-estimates before each job placement, Algorithm 2 line 7).
 */
class WaterFillingEstimator
{
  public:
    explicit WaterFillingEstimator(const ClusterTopology &topo);

    /** Estimate the steady state for @p jobs. */
    SteadyState estimate(const std::vector<PlacedJob> &jobs) const;

    /**
     * Estimate reusing prebuilt hierarchies (the flow-level simulator
     * caches them across epochs). The hierarchies' flow counts are
     * mutated during estimation.
     */
    SteadyState estimate(std::vector<JobHierarchy> &hierarchies) const;

    /**
     * Estimate over externally-owned hierarchies. This is the core
     * water-filling loop; the other overloads adapt into it. The
     * pointed-to hierarchies' flow counts are mutated.
     */
    SteadyState estimate(const std::vector<JobHierarchy *> &hierarchies) const;

    /**
     * Incremental re-estimation (the PlacementContext hot path): warm-
     * starts from @p ctx's last converged state and re-converges only
     * the jobs whose aggregation trees touch @p delta's dirty links or
     * racks — transitively, so the re-run component is resource-disjoint
     * from every retained job and the merge is exact. Falls back to a
     * full estimate() when @p delta is structural (failures, INA
     * toggles) or the context holds no converged state yet. With
     * NETPACK_VERIFY_INCREMENTAL set in the environment, every
     * incremental result is cross-checked against a full re-estimation
     * and rates must agree within 1e-9.
     *
     * Defined alongside PlacementContext (core/placement_context.cc);
     * callers normally reach it through PlacementContext::steadyState().
     */
    SteadyState reestimate(PlacementContext &ctx,
                           const ResourceDelta &delta) const;

    /** Iterations the most recent estimate() took (diagnostics). */
    int lastIterations() const { return lastIterations_; }

  private:
    const ClusterTopology *topo_;
    mutable int lastIterations_ = 0;

    // Round-loop scratch, hoisted out of estimate()'s hot loop so a
    // warm estimator allocates nothing per round. Like lastIterations_,
    // these make concurrent estimate() calls on ONE instance racy;
    // every owner (PlacementContext, clones, simulator) already holds a
    // private estimator, and the parallel idioms (portfolio, what-if,
    // intra-epoch scoring) clone state per task.
    /** Flows per link this round (Alg. 1 lines 4-5). */
    mutable std::vector<int> linkFlowsScratch_;
    /** INA jobs per ToR this round. */
    mutable std::vector<int> torJobsScratch_;
    /** Per-link / per-ToR fair-share candidates (lines 6-7), computed
     * branch-free so the division pass vectorizes; the guarded min
     * reduction over them stays scalar (bit-identical order). */
    mutable std::vector<double> shareScratch_;
};

} // namespace netpack

#endif // NETPACK_WATERFILL_STEADY_STATE_H
