#include "waterfill/steady_state.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "backends/collective_backend.h"
#include "common/check.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace netpack {

namespace {

/** Residual below this (Gbps) counts as exhausted. */
constexpr double kEpsilon = 1e-9;

} // namespace

Gbps
SteadyState::serverAvailBw(const ClusterTopology &topo,
                           ServerId server) const
{
    return linkResidual[topo.accessLink(server).index()];
}

int
SteadyState::serverFlows(const ClusterTopology &topo, ServerId server) const
{
    return linkFlows[topo.accessLink(server).index()];
}

Gbps
SteadyState::rackAvailBw(const ClusterTopology &topo, RackId rack) const
{
    return linkResidual[topo.coreLink(rack).index()];
}

int
SteadyState::rackFlows(const ClusterTopology &topo, RackId rack) const
{
    return linkFlows[topo.coreLink(rack).index()];
}

Gbps
SteadyState::jobThroughput(JobId job) const
{
    const auto it = jobRate.find(job);
    if (it == jobRate.end())
        return std::numeric_limits<double>::infinity();
    return it->second;
}

void
SteadyState::copyServerState(const ClusterTopology &topo,
                             std::vector<int> &flows,
                             std::vector<Gbps> &avail) const
{
    const auto n = static_cast<std::size_t>(topo.numServers());
    flows.resize(n);
    avail.resize(n);
    for (std::size_t s = 0; s < n; ++s) {
        const std::size_t link = topo.accessLink(ServerId(static_cast<int>(s))).index();
        flows[s] = linkFlows[link];
        avail[s] = linkResidual[link];
    }
}

void
SteadyState::copyRackState(const ClusterTopology &topo,
                           std::vector<int> &flows,
                           std::vector<Gbps> &avail) const
{
    const auto n = static_cast<std::size_t>(topo.numRacks());
    flows.resize(n);
    avail.resize(n);
    for (std::size_t r = 0; r < n; ++r) {
        const std::size_t link = topo.coreLink(RackId(static_cast<int>(r))).index();
        flows[r] = linkFlows[link];
        avail[r] = linkResidual[link];
    }
}

void
SteadyState::copyPodUplinkState(const ClusterTopology &topo,
                                std::vector<int> &flows,
                                std::vector<Gbps> &avail) const
{
    if (!topo.twoTier()) {
        flows.clear();
        avail.clear();
        return;
    }
    const auto n = static_cast<std::size_t>(topo.numPods());
    flows.resize(n);
    avail.resize(n);
    for (std::size_t p = 0; p < n; ++p) {
        const std::size_t link = topo.podUplink(static_cast<int>(p)).index();
        flows[p] = linkFlows[link];
        avail[p] = linkResidual[link];
    }
}

void
SteadyStateView::assignFrom(const ClusterTopology &topo,
                            const SteadyState &steady)
{
    steady.copyServerState(topo, serverFlows, serverAvailBw);
    steady.copyRackState(topo, rackFlows, rackAvailBw);
    steady.copyPodUplinkState(topo, podUplinkFlows, podUplinkAvailBw);
    patResidual = steady.patResidual;
}

WaterFillingEstimator::WaterFillingEstimator(const ClusterTopology &topo)
    : topo_(&topo)
{
}

SteadyState
WaterFillingEstimator::estimate(const std::vector<PlacedJob> &jobs) const
{
    // Multi-PS jobs decompose into one-PS shard hierarchies
    // (Section 4.1); shards of the same job share its JobId and are
    // re-aggregated when the converged rates are published. Non-PS
    // backends (ring/rdma) contribute their own tree shapes through the
    // backend dispatch.
    std::vector<JobHierarchy> hierarchies;
    hierarchies.reserve(jobs.size());
    for (const auto &job : jobs) {
        std::vector<JobHierarchy> shards =
            backends::buildJobHierarchies(*topo_, job.id, job.placement);
        hierarchies.insert(hierarchies.end(),
                           std::make_move_iterator(shards.begin()),
                           std::make_move_iterator(shards.end()));
    }
    return estimate(hierarchies);
}

SteadyState
WaterFillingEstimator::estimate(std::vector<JobHierarchy> &hierarchies) const
{
    std::vector<JobHierarchy *> ptrs;
    ptrs.reserve(hierarchies.size());
    for (auto &h : hierarchies)
        ptrs.push_back(&h);
    return estimate(ptrs);
}

SteadyState
WaterFillingEstimator::estimate(
    const std::vector<JobHierarchy *> &hierarchies) const
{
    NETPACK_SPAN(span, "waterfill.estimate");
    span.arg("hierarchies", hierarchies.size());
    // Clock reads only when metrics are on: the disabled hot path stays
    // free of syscalls.
    const bool timed = obs::metricsEnabled();
    const auto solve_t0 = timed ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{};

    const auto num_links = static_cast<std::size_t>(topo_->numLinks());
    const auto num_racks = static_cast<std::size_t>(topo_->numRacks());

    SteadyState state;
    state.linkResidual.resize(num_links);
    for (std::size_t l = 0; l < num_links; ++l)
        state.linkResidual[l] = topo_->link(LinkId(static_cast<int>(l)))
                                    .capacity;
    state.patResidual.resize(num_racks);
    for (std::size_t r = 0; r < num_racks; ++r)
        state.patResidual[r] = topo_->torPat(RackId(static_cast<int>(r)));
    state.linkFlows.assign(num_links, 0);

    // Network (non-local) jobs participate; local jobs are free.
    std::vector<JobHierarchy *> active;
    for (auto *h : hierarchies) {
        if (!h->local())
            active.push_back(h);
    }
    std::vector<double> rate(active.size(), 0.0);
    std::vector<bool> frozen(active.size(), false);
    std::size_t remaining = active.size();
    shareScratch_.resize(std::max(num_links, num_racks));

    lastIterations_ = 0;
    // Each round exhausts at least one link or one ToR's PAT, so the loop
    // is bounded by the resource count (Section 4.2 complexity argument).
    const int max_rounds = topo_->numLinks() + topo_->numRacks() + 1;
    while (remaining > 0) {
        NETPACK_CHECK_MSG(lastIterations_ < max_rounds,
                          "water-filling failed to converge after "
                              << lastIterations_ << " rounds");
        ++lastIterations_;

        // UpdateFlows for every active job (Alg. 1 line 3).
        for (std::size_t j = 0; j < active.size(); ++j) {
            if (!frozen[j])
                active[j]->updateFlows(state.patResidual);
        }

        // Count flows per link and INA jobs per ToR (lines 4-5). The
        // count arrays are estimator members so a warm round allocates
        // nothing.
        linkFlowsScratch_.assign(num_links, 0);
        torJobsScratch_.assign(num_racks, 0);
        std::vector<int> &link_flows = linkFlowsScratch_;
        std::vector<int> &tor_jobs = torJobsScratch_;
        for (std::size_t j = 0; j < active.size(); ++j) {
            if (frozen[j])
                continue;
            active[j]->accumulateLinkFlows(link_flows);
            for (RackId rack : active[j]->inaRacks()) {
                if (state.patResidual[rack.index()] > kEpsilon)
                    ++tor_jobs[rack.index()];
            }
        }

        // Minimum per-flow share over links (line 6) and ToRs (line 7),
        // split into a branch-free division pass the autovectorizer
        // handles (max(flows, 1) only changes lanes the guard below
        // discards) and a scalar guarded min scan in original index
        // order — FP min reductions do not vectorize without value-
        // changing reassociation, but the divisions dominate the cost.
        for (std::size_t l = 0; l < num_links; ++l) {
            shareScratch_[l] =
                state.linkResidual[l] /
                static_cast<double>(std::max(link_flows[l], 1));
        }
        double bw1 = std::numeric_limits<double>::infinity();
        for (std::size_t l = 0; l < num_links; ++l) {
            if (link_flows[l] > 0 && state.linkResidual[l] > kEpsilon)
                bw1 = std::min(bw1, shareScratch_[l]);
        }
        for (std::size_t r = 0; r < num_racks; ++r) {
            shareScratch_[r] =
                state.patResidual[r] /
                static_cast<double>(std::max(tor_jobs[r], 1));
        }
        double bw2 = std::numeric_limits<double>::infinity();
        for (std::size_t r = 0; r < num_racks; ++r) {
            if (tor_jobs[r] > 0 && state.patResidual[r] > kEpsilon)
                bw2 = std::min(bw2, shareScratch_[r]);
        }
        const double step = std::min(bw1, bw2);

        if (!std::isfinite(step)) {
            // Every active job sits entirely on exhausted links; they are
            // stuck at their current (possibly zero) rate.
            for (std::size_t j = 0; j < active.size(); ++j) {
                if (!frozen[j]) {
                    frozen[j] = true;
                    --remaining;
                }
            }
            break;
        }

        // Augment (lines 8, 16-26): grant `step` to every active job.
        for (std::size_t j = 0; j < active.size(); ++j) {
            if (frozen[j])
                continue;
            rate[j] += step;
            for (const auto &node : active[j]->nodes()) {
                for (LinkId link : node.uplinks) {
                    state.linkResidual[link.index()] -=
                        step * static_cast<double>(node.flows);
                }
                if (node.kind == HierarchyNode::Kind::Switch &&
                    node.inaEnabled &&
                    state.patResidual[node.rack.index()] > kEpsilon) {
                    state.patResidual[node.rack.index()] -= step;
                }
            }
        }
        for (auto &residual : state.linkResidual)
            residual = std::max(residual, 0.0);
        for (auto &residual : state.patResidual)
            residual = std::max(residual, 0.0);

        // Freeze jobs whose path saturated (lines 22-23).
        for (std::size_t j = 0; j < active.size(); ++j) {
            if (frozen[j])
                continue;
            bool saturated = false;
            for (const auto &node : active[j]->nodes()) {
                if (node.flows <= 0)
                    continue;
                for (LinkId link : node.uplinks) {
                    if (state.linkResidual[link.index()] <= kEpsilon) {
                        saturated = true;
                        break;
                    }
                }
                if (saturated)
                    break;
            }
            if (saturated) {
                frozen[j] = true;
                --remaining;
            }
        }
    }

    // Publish converged rates and final flow counts. A job placed with
    // k PSes appears as k shard hierarchies, each moving 1/k of the
    // gradient at its own rate; every shard must finish, so the job's
    // effective rate is k x min(shard rates). Single-PS jobs reduce to
    // their plain rate.
    std::unordered_map<JobId, std::pair<int, double>> shard_stats;
    for (std::size_t j = 0; j < active.size(); ++j) {
        auto [it, inserted] = shard_stats.try_emplace(
            active[j]->job(), 1, rate[j]);
        if (!inserted) {
            it->second.first += 1;
            it->second.second = std::min(it->second.second, rate[j]);
        }
    }
    for (const auto &[job, stats] : shard_stats) {
        state.jobRate[job] = static_cast<double>(stats.first) *
                             stats.second;
    }
    for (auto *h : active)
        h->accumulateLinkFlows(state.linkFlows);

    NETPACK_COUNT("waterfill.estimates", 1);
    NETPACK_HISTOGRAM("waterfill.iterations", obs::kPow2Buckets,
                      lastIterations_);
    span.arg("iterations", lastIterations_);
    if (obs::metricsEnabled()) {
        // Convergence residual: the fraction of total link capacity left
        // unclaimed at the fixed point (0 = fully saturated network).
        double residual = 0.0, capacity = 0.0;
        for (std::size_t l = 0; l < num_links; ++l) {
            residual += state.linkResidual[l];
            capacity += topo_->link(LinkId(static_cast<int>(l))).capacity;
        }
        NETPACK_GAUGE("waterfill.convergence_residual",
                      capacity > 0.0 ? residual / capacity : 0.0);
    }
    if (timed) {
        const double solve_us = std::chrono::duration<double, std::micro>(
                                    std::chrono::steady_clock::now() -
                                    solve_t0)
                                    .count();
        // `_us` wall-clock quantile histogram; see placement.batch_us.
        obs::recordLogHistogram("waterfill.solve_us", obs::kLatencySpecUs,
                                solve_us);
    }

    NETPACK_LOG(Debug, "water-filling converged in " << lastIterations_
                                                     << " rounds over "
                                                     << active.size()
                                                     << " network jobs");
    return state;
}

} // namespace netpack
