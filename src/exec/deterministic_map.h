/**
 * @file
 * The deterministic fan-out-then-serial-reduce idiom, extracted from
 * its copy-pasted call sites (PortfolioPlacer lineup evaluation, the
 * serve daemon's what-if queries, and the intra-epoch placement
 * parallelism). The contract every caller relies on:
 *
 *  - fn(i) runs exactly once for every i in [0, n), writing only into
 *    slot i of some caller-owned result array;
 *  - when the map runs in parallel the caller must still reduce the
 *    results serially in index order, so the combined outcome is a pure
 *    function of the inputs — bit-identical for any worker count,
 *    including none;
 *  - nested maps degrade to serial: a map issued from inside a pool
 *    task (ThreadPool::insideTask()) runs inline instead of spawning a
 *    second level of parallelism on an already-busy machine. This is
 *    what keeps portfolio x intra-epoch composition from
 *    oversubscribing, and it keeps per-task MetricScope attribution
 *    intact (work stays on the thread that owns the scope).
 */

#ifndef NETPACK_EXEC_DETERMINISTIC_MAP_H
#define NETPACK_EXEC_DETERMINISTIC_MAP_H

#include <cstddef>

#include "exec/thread_pool.h"

namespace netpack {
namespace exec {

/**
 * Run fn(i) for every i in [0, n): fanned across @p pool when it is
 * non-null, there is more than one item, and the caller is not itself
 * inside a pool task; serially in index order otherwise. Blocks until
 * every invocation finished; exceptions propagate (lowest failing index
 * wins in the parallel case, matching serial first-failure order).
 *
 * @return true when the work was fanned out, false when it ran serially
 *         (callers use this to count fan-outs vs nested fallbacks)
 */
template <class Fn>
bool
deterministicMap(ThreadPool *pool, std::size_t n, Fn &&fn)
{
    if (pool != nullptr && n > 1 && !ThreadPool::insideTask()) {
        parallelFor(*pool, n, fn);
        return true;
    }
    for (std::size_t i = 0; i < n; ++i)
        fn(i);
    return false;
}

} // namespace exec
} // namespace netpack

#endif // NETPACK_EXEC_DETERMINISTIC_MAP_H
