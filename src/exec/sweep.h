/**
 * @file
 * Deterministic experiment-sweep runner: fans a prepared list of
 * {ExperimentConfig, trace} runs out across a work-stealing pool and
 * aggregates the per-run metrics into per-cell mean / stddev / 95% CI.
 *
 * Determinism is the contract: requests carry everything stochastic
 * (trace and RNG stream seeds are derived up front with streamSeed, and
 * each run builds its own simulator, placer, and PlacementContext), and
 * every cross-run reduction — cell statistics, metric-scope publication
 * into the process-wide registry — happens serially in request order
 * after the parallel phase. runSweep with N workers therefore produces
 * bit-identical results to serial execution for any N.
 */

#ifndef NETPACK_EXEC_SWEEP_H
#define NETPACK_EXEC_SWEEP_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/experiment.h"
#include "obs/metrics.h"
#include "workload/trace.h"

namespace netpack {
namespace exec {

/**
 * The i-th seed of a counter-derived RNG stream: a SplitMix64 mix of
 * (base, index) so per-run streams are decorrelated no matter how the
 * caller enumerates the matrix, and independent of execution order.
 */
std::uint64_t streamSeed(std::uint64_t base, std::uint64_t index);

/** One run of the sweep matrix. */
struct RunRequest
{
    /** Aggregation key, e.g. "Real|simulator|NetPack"; runs sharing a
     * cell are reduced together. Empty = excluded from aggregation. */
    std::string cell;
    /** Unique run label, e.g. "Real|simulator|NetPack|seed3". */
    std::string label;
    ExperimentConfig config;
    JobTrace trace;
};

/** One finished run, in the same position as its request. */
struct RunResult
{
    RunMetrics metrics;
    /** What the run recorded while metrics were enabled (its private
     * MetricScope); empty otherwise. */
    obs::MetricsSnapshot metricsSnapshot;
    /** Journal file of this run (empty unless journaling was on). */
    std::string journalPath;
    /** Event lines in the journal (prefix included on resume). */
    std::size_t journalEvents = 0;
    /** Snapshot events among them. */
    std::size_t journalSnapshots = 0;
    /** Complete journal found; recorded metrics reused, no re-run. */
    bool journalReused = false;
    /** Restored from an incomplete journal's snapshot and continued. */
    bool journalResumed = false;
};

/** Cross-seed statistics of one cell. */
struct CellStats
{
    RunningStats avgJct;
    RunningStats avgDe;
    RunningStats makespan;
    RunningStats avgGpuUtilization;
};

struct SweepOptions
{
    /** Worker threads; 1 = serial (still bit-identical to any N). */
    std::size_t jobs = 1;
    /** Publish each run's MetricScope snapshot into the process-wide
     * registry (in request order) after the sweep. */
    bool publishMetrics = true;
    /**
     * When non-empty, record each run's journal to
     * <journalDir>/<sanitized label>.jsonl (the directory is created).
     * Snapshot restore is bit-identical, so journaled sweeps keep the
     * any-N determinism contract.
     */
    std::string journalDir;
    /** Simulated seconds between journal snapshots; 0 = none. Flow
     * fidelity only (the packet model has no snapshot support). */
    double snapshotEvery = 0.0;
    /**
     * Pick up incomplete cells: a run whose journal already ends in
     * run_end is reused without re-running, and one with a snapshot is
     * resumed from it — the sweep finishes interrupted matrices instead
     * of restarting them.
     */
    bool resume = false;
};

struct SweepResult
{
    /** One entry per request, in request order. */
    std::vector<RunResult> runs;
    /** Per-cell aggregates, reduced in request order. */
    std::map<std::string, CellStats> cells;
};

/**
 * Run every request (each under its own MetricScope when metrics are
 * enabled) and reduce. Throws the lowest-index run's exception if any
 * run failed.
 */
SweepResult runSweep(const std::vector<RunRequest> &requests,
                     const SweepOptions &options = {});

} // namespace exec
} // namespace netpack

#endif // NETPACK_EXEC_SWEEP_H
