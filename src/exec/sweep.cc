#include "exec/sweep.h"

#include <optional>

#include "exec/thread_pool.h"
#include "journal/record.h"
#include "obs/trace.h"

namespace netpack {
namespace exec {

std::uint64_t
streamSeed(std::uint64_t base, std::uint64_t index)
{
    // SplitMix64 finalizer over a golden-ratio stride: adjacent indices
    // land in statistically independent streams (same construction the
    // Rng seeding uses).
    std::uint64_t z = base + 0x9E3779B97F4A7C15ull * (index + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

SweepResult
runSweep(const std::vector<RunRequest> &requests, const SweepOptions &options)
{
    SweepResult result;
    result.runs.resize(requests.size());

    if (!options.journalDir.empty())
        journal::ensureDirectory(options.journalDir);

    {
        ThreadPool pool(options.jobs == 0 ? 0 : options.jobs);
        parallelFor(pool, requests.size(), [&](std::size_t i) {
            NETPACK_SPAN(span, "exec.run");
            span.arg("request", static_cast<std::int64_t>(i));
            // A private scope keeps this run's counters from
            // interleaving with concurrent runs; published below in
            // request order so the registry ends up bit-identical to a
            // serial sweep.
            std::optional<obs::MetricScope> scope;
            if (obs::metricsEnabled())
                scope.emplace();
            if (options.journalDir.empty()) {
                result.runs[i].metrics =
                    runExperiment(requests[i].config, requests[i].trace);
            } else {
                journal::RecordOptions record;
                record.label = requests[i].label.empty()
                                   ? "run" + std::to_string(i)
                                   : requests[i].label;
                record.path = options.journalDir + "/" +
                              journal::sanitizeLabel(record.label) +
                              ".jsonl";
                record.snapshotEvery = options.snapshotEvery;
                record.resume = options.resume;
                const journal::RecordOutcome outcome = journal::recordRun(
                    requests[i].config, requests[i].trace, record);
                result.runs[i].metrics = outcome.metrics;
                result.runs[i].journalPath = record.path;
                result.runs[i].journalEvents = outcome.eventsWritten;
                result.runs[i].journalSnapshots = outcome.snapshotsWritten;
                result.runs[i].journalReused = outcome.reused;
                result.runs[i].journalResumed = outcome.resumed;
            }
            if (scope)
                result.runs[i].metricsSnapshot = scope->snapshot();
        });
    }

    // Serial reductions, in request order — float accumulation order is
    // part of the determinism contract.
    if (options.publishMetrics && obs::metricsEnabled()) {
        for (const RunResult &run : result.runs)
            obs::Registry::instance().merge(run.metricsSnapshot);
    }
    for (std::size_t i = 0; i < requests.size(); ++i) {
        if (requests[i].cell.empty())
            continue;
        CellStats &cell = result.cells[requests[i].cell];
        const RunMetrics &metrics = result.runs[i].metrics;
        cell.avgJct.add(metrics.avgJct());
        cell.avgDe.add(metrics.avgDe());
        cell.makespan.add(metrics.makespan);
        cell.avgGpuUtilization.add(metrics.avgGpuUtilization);
    }
    return result;
}

} // namespace exec
} // namespace netpack
