#include "exec/thread_pool.h"

#include "common/check.h"

namespace netpack {
namespace exec {

namespace {

/** Which pool (if any) the current thread is a worker of, and which
 * queue it owns — lets post() from inside a task stay local. */
thread_local const ThreadPool *t_workerPool = nullptr;
thread_local std::size_t t_workerIndex = 0;

/** Nesting depth of pool tasks on this thread (any pool). Non-zero
 * while a task body runs, including tasks executed by helper threads
 * through runPendingTask. */
thread_local int t_taskDepth = 0;

/** RAII bump of t_taskDepth around a task body (exception-safe). */
struct TaskDepthGuard
{
    TaskDepthGuard() { ++t_taskDepth; }
    ~TaskDepthGuard() { --t_taskDepth; }
};

} // namespace

bool
ThreadPool::insideTask()
{
    return t_taskDepth > 0;
}

std::size_t
ThreadPool::defaultThreadCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t count = threads == 0 ? defaultThreadCount() : threads;
    workers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        threads_.emplace_back([this, i]() { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        const std::lock_guard<std::mutex> lock(sleepMutex_);
        stopping_.store(true, std::memory_order_relaxed);
    }
    wake_.notify_all();
    for (std::thread &thread : threads_)
        thread.join();
}

void
ThreadPool::post(Task task)
{
    NETPACK_CHECK_MSG(task != nullptr, "posted an empty task");
    NETPACK_CHECK_MSG(!stopping_.load(std::memory_order_relaxed),
                      "post() on a stopping ThreadPool");
    std::size_t index;
    if (t_workerPool == this) {
        index = t_workerIndex; // keep spawned work local; thieves balance
    } else {
        index = nextQueue_.fetch_add(1, std::memory_order_relaxed) %
                workers_.size();
    }
    // Count before publishing so a waking worker never sees the task
    // without the pending signal that keeps it scanning.
    pending_.fetch_add(1, std::memory_order_release);
    {
        Worker &worker = *workers_[index];
        const std::lock_guard<std::mutex> lock(worker.mutex);
        worker.tasks.push_back(std::move(task));
    }
    {
        // Empty critical section: pairs with the predicate check in
        // workerLoop so the notify cannot slip between test and wait.
        const std::lock_guard<std::mutex> lock(sleepMutex_);
    }
    wake_.notify_one();
}

ThreadPool::Task
ThreadPool::take(std::size_t self)
{
    const std::size_t n = workers_.size();
    for (std::size_t k = 0; k < n; ++k) {
        Worker &worker = *workers_[(self + k) % n];
        const std::lock_guard<std::mutex> lock(worker.mutex);
        if (worker.tasks.empty())
            continue;
        Task task;
        if (k == 0) {
            task = std::move(worker.tasks.back());
            worker.tasks.pop_back();
        } else {
            task = std::move(worker.tasks.front());
            worker.tasks.pop_front();
        }
        pending_.fetch_sub(1, std::memory_order_relaxed);
        return task;
    }
    return nullptr;
}

bool
ThreadPool::runPendingTask()
{
    // A helper thread that is not a worker scans from queue 0; a worker
    // calling this mid-task prefers its own queue as usual.
    const std::size_t self = t_workerPool == this ? t_workerIndex : 0;
    Task task = take(self);
    if (!task)
        return false;
    {
        const TaskDepthGuard guard;
        task();
    }
    return true;
}

void
ThreadPool::workerLoop(std::size_t index)
{
    t_workerPool = this;
    t_workerIndex = index;
    for (;;) {
        if (Task task = take(index)) {
            const TaskDepthGuard guard;
            task();
            continue;
        }
        std::unique_lock<std::mutex> lock(sleepMutex_);
        wake_.wait(lock, [this]() {
            return stopping_.load(std::memory_order_relaxed) ||
                   pending_.load(std::memory_order_acquire) > 0;
        });
        if (stopping_.load(std::memory_order_relaxed) &&
            pending_.load(std::memory_order_acquire) == 0)
            return;
    }
}

} // namespace exec
} // namespace netpack
