/**
 * @file
 * Work-stealing thread pool for fanning independent experiment runs out
 * across cores. Each worker owns a deque: it pushes and pops its own
 * work LIFO at the back (locality) and steals FIFO from the front of
 * other workers' deques when its own runs dry. External submitters
 * round-robin across the deques.
 *
 * Tasks submitted through submit() return a std::future, so exceptions
 * thrown inside a task propagate to whoever waits on it; parallelFor
 * additionally guarantees the lowest-index exception wins, which keeps
 * error reporting deterministic regardless of execution order.
 */

#ifndef NETPACK_EXEC_THREAD_POOL_H
#define NETPACK_EXEC_THREAD_POOL_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace netpack {
namespace exec {

/** Fixed-size work-stealing pool; joins (after draining) on destruction. */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** @param threads worker count; 0 means defaultThreadCount() */
    explicit ThreadPool(std::size_t threads = 0);

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t threadCount() const { return workers_.size(); }

    /** std::thread::hardware_concurrency, clamped to at least 1. */
    static std::size_t defaultThreadCount();

    /** Enqueue a fire-and-forget task (runs before destruction ends). */
    void post(Task task);

    /** Enqueue @p fn and get a future for its result; an exception
     * thrown by @p fn surfaces from future::get. */
    template <class F>
    auto submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using Result = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<F>(fn));
        std::future<Result> future = task->get_future();
        post([task]() { (*task)(); });
        return future;
    }

    /**
     * Run one queued task on the calling thread if any is ready.
     * Lets a thread blocked on pool results help instead of idling
     * (parallelFor uses this, which also makes nested parallelFor
     * deadlock-free on a one-worker pool).
     * @return true when a task was executed
     */
    bool runPendingTask();

    /**
     * True while the calling thread is executing a pool task — on a
     * worker thread, or on any thread helping via runPendingTask
     * (parallelFor's drain loop included). Components that fan work out
     * themselves (the intra-epoch placer parallelism, portfolio
     * evaluation) consult this to degrade to serial execution instead
     * of oversubscribing the machine with nested pools; the flag is
     * per-thread and pool-agnostic, so nesting across distinct pools is
     * caught too.
     */
    static bool insideTask();

  private:
    /** One worker's state; back = owner end (LIFO), front = steal end. */
    struct Worker
    {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    /** Pop @p self's back or steal another front; empty when starved. */
    Task take(std::size_t self);

    void workerLoop(std::size_t index);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;
    std::mutex sleepMutex_;
    std::condition_variable wake_;
    /** Tasks enqueued but not yet taken by any thread. */
    std::atomic<std::size_t> pending_{0};
    /** Round-robin cursor for external submissions. */
    std::atomic<std::size_t> nextQueue_{0};
    std::atomic<bool> stopping_{false};
};

/**
 * Run fn(i) for every i in [0, n) on @p pool while the calling thread
 * helps execute queued tasks. Blocks until every iteration finished;
 * if any threw, rethrows the exception of the lowest failing index
 * (deterministic for any worker count).
 */
template <class Fn>
void
parallelFor(ThreadPool &pool, std::size_t n, Fn &&fn)
{
    if (n == 0)
        return;
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        futures.push_back(pool.submit([&fn, i]() { fn(i); }));
    // Drain: help the pool while any iteration is still in flight.
    for (auto &future : futures) {
        while (future.wait_for(std::chrono::seconds(0)) !=
               std::future_status::ready) {
            if (!pool.runPendingTask())
                future.wait();
        }
    }
    std::exception_ptr first;
    for (auto &future : futures) {
        try {
            future.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace exec
} // namespace netpack

#endif // NETPACK_EXEC_THREAD_POOL_H
