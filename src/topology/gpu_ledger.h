/**
 * @file
 * Runtime GPU occupancy of a cluster. GPUs are allocated whole to jobs and
 * are not preemptable until the job finishes (Section 3.1 assumption 3),
 * so the ledger is a simple per-server free-count with job attribution for
 * release.
 */

#ifndef NETPACK_TOPOLOGY_GPU_LEDGER_H
#define NETPACK_TOPOLOGY_GPU_LEDGER_H

#include <unordered_map>
#include <vector>

#include "topology/cluster.h"
#include "topology/ids.h"

namespace netpack {

/** Tracks free GPUs per server and which job holds what. */
class GpuLedger
{
  public:
    /** Start with every GPU of @p topo free. */
    explicit GpuLedger(const ClusterTopology &topo);

    /** Free GPUs on @p server. */
    int freeGpus(ServerId server) const;

    /** GPUs on @p server currently held by @p job (0 if none). */
    int heldGpus(ServerId server, JobId job) const;

    /** Total free GPUs in the cluster. */
    int totalFreeGpus() const { return totalFree_; }

    /** Total free GPUs in @p rack. */
    int freeGpusInRack(RackId rack) const;

    /**
     * Allocate @p count GPUs on @p server to @p job.
     * Internal error if the server has fewer free GPUs.
     */
    void allocate(ServerId server, JobId job, int count);

    /** Release every GPU @p job holds, on every server. */
    void releaseJob(JobId job);

    /**
     * Release @p count GPUs of @p job on @p server (used when the DP plan
     * over-allocates and the extras are trimmed on the least-loaded
     * server, Section 5.2 step ②).
     */
    void release(ServerId server, JobId job, int count);

    /** Servers on which @p job holds at least one GPU. */
    std::vector<ServerId> serversOf(JobId job) const;

    /** Number of distinct jobs holding GPUs. */
    std::size_t activeJobs() const { return jobHoldings_.size(); }

    /** One job's complete allocation (snapshot capture). */
    struct Holding
    {
        JobId job;
        /** (server, held count), server-ascending. */
        std::vector<std::pair<ServerId, int>> servers;
    };

    /**
     * Every holding, job-ascending (failure sentinels included). A
     * fresh ledger replaying these through allocate() reproduces this
     * ledger exactly.
     */
    std::vector<Holding> holdings() const;

  private:
    const ClusterTopology *topo_;
    std::vector<int> freeGpus_;
    int totalFree_ = 0;
    // job -> (server index -> held count)
    std::unordered_map<JobId, std::unordered_map<int, int>> jobHoldings_;
};

} // namespace netpack

#endif // NETPACK_TOPOLOGY_GPU_LEDGER_H
