/**
 * @file
 * Strongly-typed indices for cluster entities. They are thin wrappers over
 * int so that a server index can never silently be used where a rack index
 * is expected.
 */

#ifndef NETPACK_TOPOLOGY_IDS_H
#define NETPACK_TOPOLOGY_IDS_H

#include <cstddef>
#include <functional>

namespace netpack {

namespace detail {

/** CRTP-free tagged index; Tag distinguishes unrelated id spaces. */
template <typename Tag>
struct TaggedId
{
    int value = -1;

    constexpr TaggedId() = default;
    constexpr explicit TaggedId(int v) : value(v) {}

    constexpr bool valid() const { return value >= 0; }
    constexpr std::size_t index() const
    {
        return static_cast<std::size_t>(value);
    }

    friend constexpr bool
    operator==(TaggedId a, TaggedId b)
    {
        return a.value == b.value;
    }
    friend constexpr bool
    operator!=(TaggedId a, TaggedId b)
    {
        return a.value != b.value;
    }
    friend constexpr bool
    operator<(TaggedId a, TaggedId b)
    {
        return a.value < b.value;
    }
};

} // namespace detail

struct ServerTag {};
struct RackTag {};
struct LinkTag {};
struct JobTag {};

/** Index of a GPU server. */
using ServerId = detail::TaggedId<ServerTag>;
/** Index of a rack (and of its ToR switch). */
using RackId = detail::TaggedId<RackTag>;
/** Index of an undirected link. */
using LinkId = detail::TaggedId<LinkTag>;
/** Index of a training job. */
using JobId = detail::TaggedId<JobTag>;

} // namespace netpack

namespace std {

template <typename Tag>
struct hash<netpack::detail::TaggedId<Tag>>
{
    size_t
    operator()(netpack::detail::TaggedId<Tag> id) const noexcept
    {
        return std::hash<int>{}(id.value);
    }
};

} // namespace std

#endif // NETPACK_TOPOLOGY_IDS_H
