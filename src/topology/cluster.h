/**
 * @file
 * Cluster topology: the fat-tree "one big switch" abstraction used by the
 * paper (Section 4.1). Servers attach to rack ToR switches over access
 * links; racks attach to an abstract non-blocking core (the DCN) over core
 * links whose capacity encodes the oversubscription ratio. ToR switches
 * optionally provide statistical INA with a Peak Aggregation Throughput.
 */

#ifndef NETPACK_TOPOLOGY_CLUSTER_H
#define NETPACK_TOPOLOGY_CLUSTER_H

#include <vector>

#include "common/units.h"
#include "topology/ids.h"

namespace netpack {

/** Construction parameters of a ClusterTopology. */
struct ClusterConfig
{
    /** Number of racks (each with one ToR switch). */
    int numRacks = 16;
    /** Servers per rack (paper default 16). */
    int serversPerRack = 16;
    /** GPUs per server (paper default 4). */
    int gpusPerServer = 4;
    /** Server access link capacity in Gbps (paper testbed: 100 Gbps). */
    Gbps serverLinkGbps = 100.0;
    /**
     * Core oversubscription ratio X in "X:1". 1.0 means full bisection;
     * 20.0 means the rack uplink is 1/20 of the rack's aggregate access
     * capacity (Figure 12 sweeps 1..20).
     */
    double oversubscription = 1.0;
    /** Available PAT per ToR switch in Gbps (paper default 1 Tbps). */
    Gbps torPatGbps = 1000.0;
    /** Worker-to-PS round-trip time (propagation + ECN threshold drain). */
    Seconds rtt = 50e-6;
    /**
     * Racks per pod for the two-tier core extension. 0 (default) keeps
     * the paper's "one big switch" abstraction: every rack uplinks into
     * one non-blocking core. A positive value groups racks into pods of
     * this size; cross-pod traffic additionally crosses per-pod uplinks
     * whose capacity is governed by podOversubscription.
     */
    int racksPerPod = 0;
    /** Pod uplink oversubscription X in "X:1" (two-tier mode only). */
    double podOversubscription = 1.0;
};

/** One undirected link of the cluster. */
struct Link
{
    /** What the link connects. */
    enum class Kind
    {
        /** Server to its rack's ToR switch. */
        ServerAccess,
        /** Rack ToR to its pod's aggregation layer (or the core). */
        RackCore,
        /** Pod aggregation layer to the core (two-tier mode only). */
        PodUplink,
    };

    Kind kind = Kind::ServerAccess;
    /** Capacity in Gbps. */
    Gbps capacity = 0.0;
    /** Owning server for access links (invalid for core links). */
    ServerId server;
    /** Owning rack (the ToR side; invalid for pod uplinks). */
    RackId rack;
    /** Owning pod for pod uplinks (two-tier mode), else -1. */
    int pod = -1;
};

/**
 * Immutable cluster topology. Runtime resource occupancy (free GPUs,
 * residual bandwidth) lives elsewhere (GpuLedger, SteadyState); this class
 * answers only structural questions.
 */
class ClusterTopology
{
  public:
    /** Build a topology from a configuration; validates all parameters. */
    explicit ClusterTopology(const ClusterConfig &config);

    /** The configuration the topology was built from. */
    const ClusterConfig &config() const { return config_; }

    /** Total number of servers. */
    int numServers() const
    {
        return config_.numRacks * config_.serversPerRack;
    }

    /** Total number of racks / ToR switches. */
    int numRacks() const { return config_.numRacks; }

    /** Total number of GPUs in the cluster. */
    int totalGpus() const { return numServers() * config_.gpusPerServer; }

    /** GPUs per server (uniform). */
    int gpusPerServer() const { return config_.gpusPerServer; }

    /** Rack that hosts @p server. */
    RackId rackOf(ServerId server) const;

    /** Servers hosted by @p rack, in index order. */
    std::vector<ServerId> serversInRack(RackId rack) const;

    /** True when racks are grouped into pods (two-tier core). */
    bool twoTier() const { return config_.racksPerPod > 0; }

    /** Number of pods (0 in one-big-switch mode). */
    int numPods() const;

    /** Pod of @p rack (two-tier mode only). */
    int podOf(RackId rack) const;

    /**
     * Number of links: one access link per server, one core link per
     * rack, plus one uplink per pod in two-tier mode.
     */
    int numLinks() const { return numServers() + numRacks() + numPods(); }

    /** Access link of @p server. */
    LinkId accessLink(ServerId server) const;

    /** Core (rack-to-aggregation/DCN) link of @p rack. */
    LinkId coreLink(RackId rack) const;

    /** Uplink of @p pod (two-tier mode only). */
    LinkId podUplink(int pod) const;

    /** Link metadata. */
    const Link &link(LinkId id) const;

    /** All links. */
    const std::vector<Link> &links() const { return links_; }

    /** Access link capacity of @p server in Gbps. */
    Gbps serverLinkCapacity(ServerId server) const;

    /** Core link capacity of @p rack in Gbps. */
    Gbps coreLinkCapacity(RackId rack) const;

    /** PAT of the ToR switch in @p rack, in Gbps. */
    Gbps torPat(RackId rack) const;

    /**
     * Override the PAT of one ToR (Figure 11 varies the switch memory;
     * Figure 5 needs heterogeneous PATs).
     */
    void setTorPat(RackId rack, Gbps pat);

    /** Override all ToR PATs at once. */
    void setAllTorPats(Gbps pat);

  private:
    ClusterConfig config_;
    std::vector<Link> links_;
    std::vector<Gbps> torPat_;
};

} // namespace netpack

#endif // NETPACK_TOPOLOGY_CLUSTER_H
