#include "topology/gpu_ledger.h"

#include <algorithm>

#include "common/check.h"

namespace netpack {

GpuLedger::GpuLedger(const ClusterTopology &topo)
    : topo_(&topo),
      freeGpus_(static_cast<std::size_t>(topo.numServers()),
                topo.gpusPerServer()),
      totalFree_(topo.totalGpus())
{
}

int
GpuLedger::freeGpus(ServerId server) const
{
    NETPACK_CHECK(server.valid() && server.value < topo_->numServers());
    return freeGpus_[server.index()];
}

int
GpuLedger::heldGpus(ServerId server, JobId job) const
{
    const auto job_it = jobHoldings_.find(job);
    if (job_it == jobHoldings_.end())
        return 0;
    const auto server_it = job_it->second.find(server.value);
    return server_it == job_it->second.end() ? 0 : server_it->second;
}

int
GpuLedger::freeGpusInRack(RackId rack) const
{
    int total = 0;
    for (ServerId s : topo_->serversInRack(rack))
        total += freeGpus_[s.index()];
    return total;
}

void
GpuLedger::allocate(ServerId server, JobId job, int count)
{
    NETPACK_CHECK(server.valid() && server.value < topo_->numServers());
    NETPACK_CHECK(job.valid());
    NETPACK_CHECK_MSG(count > 0, "allocation count must be positive");
    NETPACK_CHECK_MSG(freeGpus_[server.index()] >= count,
                      "server " << server.value << " has "
                                << freeGpus_[server.index()]
                                << " free GPUs, requested " << count);
    freeGpus_[server.index()] -= count;
    totalFree_ -= count;
    jobHoldings_[job][server.value] += count;
}

void
GpuLedger::releaseJob(JobId job)
{
    const auto it = jobHoldings_.find(job);
    if (it == jobHoldings_.end())
        return;
    for (const auto &[server_value, count] : it->second) {
        freeGpus_[static_cast<std::size_t>(server_value)] += count;
        totalFree_ += count;
    }
    jobHoldings_.erase(it);
}

void
GpuLedger::release(ServerId server, JobId job, int count)
{
    NETPACK_CHECK(count > 0);
    const auto job_it = jobHoldings_.find(job);
    NETPACK_CHECK_MSG(job_it != jobHoldings_.end(),
                      "job " << job.value << " holds no GPUs");
    const auto server_it = job_it->second.find(server.value);
    NETPACK_CHECK_MSG(server_it != job_it->second.end() &&
                          server_it->second >= count,
                      "job " << job.value << " holds fewer than " << count
                             << " GPUs on server " << server.value);
    server_it->second -= count;
    freeGpus_[server.index()] += count;
    totalFree_ += count;
    if (server_it->second == 0)
        job_it->second.erase(server_it);
    if (job_it->second.empty())
        jobHoldings_.erase(job_it);
}

std::vector<GpuLedger::Holding>
GpuLedger::holdings() const
{
    std::vector<Holding> out;
    out.reserve(jobHoldings_.size());
    for (const auto &[job, servers] : jobHoldings_) {
        Holding holding;
        holding.job = job;
        holding.servers.reserve(servers.size());
        for (const auto &[server_value, count] : servers)
            holding.servers.emplace_back(ServerId(server_value), count);
        std::sort(holding.servers.begin(), holding.servers.end());
        out.push_back(std::move(holding));
    }
    std::sort(out.begin(), out.end(),
              [](const Holding &a, const Holding &b) {
                  return a.job < b.job;
              });
    return out;
}

std::vector<ServerId>
GpuLedger::serversOf(JobId job) const
{
    std::vector<ServerId> out;
    const auto it = jobHoldings_.find(job);
    if (it == jobHoldings_.end())
        return out;
    out.reserve(it->second.size());
    for (const auto &[server_value, count] : it->second) {
        (void)count;
        out.push_back(ServerId(server_value));
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace netpack
