#include "topology/cluster.h"

#include "common/check.h"

namespace netpack {

ClusterTopology::ClusterTopology(const ClusterConfig &config)
    : config_(config)
{
    NETPACK_REQUIRE(config.numRacks > 0,
                    "numRacks must be positive, got " << config.numRacks);
    NETPACK_REQUIRE(config.serversPerRack > 0,
                    "serversPerRack must be positive, got "
                        << config.serversPerRack);
    NETPACK_REQUIRE(config.gpusPerServer > 0,
                    "gpusPerServer must be positive, got "
                        << config.gpusPerServer);
    NETPACK_REQUIRE(config.serverLinkGbps > 0.0,
                    "serverLinkGbps must be positive, got "
                        << config.serverLinkGbps);
    NETPACK_REQUIRE(config.oversubscription >= 1.0,
                    "oversubscription must be >= 1, got "
                        << config.oversubscription);
    NETPACK_REQUIRE(config.torPatGbps >= 0.0,
                    "torPatGbps must be non-negative, got "
                        << config.torPatGbps);
    NETPACK_REQUIRE(config.rtt > 0.0,
                    "rtt must be positive, got " << config.rtt);
    NETPACK_REQUIRE(config.racksPerPod >= 0,
                    "racksPerPod must be non-negative, got "
                        << config.racksPerPod);
    NETPACK_REQUIRE(config.racksPerPod == 0 ||
                        config.numRacks % config.racksPerPod == 0,
                    "numRacks (" << config.numRacks
                                 << ") must be a multiple of racksPerPod ("
                                 << config.racksPerPod << ")");
    NETPACK_REQUIRE(config.podOversubscription >= 1.0,
                    "podOversubscription must be >= 1, got "
                        << config.podOversubscription);

    links_.reserve(static_cast<std::size_t>(numLinks()));
    for (int s = 0; s < numServers(); ++s) {
        Link l;
        l.kind = Link::Kind::ServerAccess;
        l.capacity = config.serverLinkGbps;
        l.server = ServerId(s);
        l.rack = rackOf(ServerId(s));
        links_.push_back(l);
    }
    const Gbps core_capacity = config.serverLinkGbps *
                               static_cast<double>(config.serversPerRack) /
                               config.oversubscription;
    for (int r = 0; r < numRacks(); ++r) {
        Link l;
        l.kind = Link::Kind::RackCore;
        l.capacity = core_capacity;
        l.rack = RackId(r);
        links_.push_back(l);
    }
    // Two-tier mode: per-pod uplinks into the core, oversubscribed
    // against the pod's aggregate rack-core capacity.
    if (twoTier()) {
        const Gbps pod_capacity =
            core_capacity * static_cast<double>(config.racksPerPod) /
            config.podOversubscription;
        for (int p = 0; p < numPods(); ++p) {
            Link l;
            l.kind = Link::Kind::PodUplink;
            l.capacity = pod_capacity;
            l.pod = p;
            links_.push_back(l);
        }
    }
    torPat_.assign(static_cast<std::size_t>(numRacks()), config.torPatGbps);
}

RackId
ClusterTopology::rackOf(ServerId server) const
{
    NETPACK_CHECK(server.valid() && server.value < numServers());
    return RackId(server.value / config_.serversPerRack);
}

std::vector<ServerId>
ClusterTopology::serversInRack(RackId rack) const
{
    NETPACK_CHECK(rack.valid() && rack.value < numRacks());
    std::vector<ServerId> out;
    out.reserve(static_cast<std::size_t>(config_.serversPerRack));
    const int first = rack.value * config_.serversPerRack;
    for (int s = first; s < first + config_.serversPerRack; ++s)
        out.push_back(ServerId(s));
    return out;
}

LinkId
ClusterTopology::accessLink(ServerId server) const
{
    NETPACK_CHECK(server.valid() && server.value < numServers());
    return LinkId(server.value);
}

LinkId
ClusterTopology::coreLink(RackId rack) const
{
    NETPACK_CHECK(rack.valid() && rack.value < numRacks());
    return LinkId(numServers() + rack.value);
}

int
ClusterTopology::numPods() const
{
    return twoTier() ? config_.numRacks / config_.racksPerPod : 0;
}

int
ClusterTopology::podOf(RackId rack) const
{
    NETPACK_CHECK(twoTier());
    NETPACK_CHECK(rack.valid() && rack.value < numRacks());
    return rack.value / config_.racksPerPod;
}

LinkId
ClusterTopology::podUplink(int pod) const
{
    NETPACK_CHECK(twoTier());
    NETPACK_CHECK(pod >= 0 && pod < numPods());
    return LinkId(numServers() + numRacks() + pod);
}

const Link &
ClusterTopology::link(LinkId id) const
{
    NETPACK_CHECK(id.valid() &&
                  id.value < static_cast<int>(links_.size()));
    return links_[id.index()];
}

Gbps
ClusterTopology::serverLinkCapacity(ServerId server) const
{
    return link(accessLink(server)).capacity;
}

Gbps
ClusterTopology::coreLinkCapacity(RackId rack) const
{
    return link(coreLink(rack)).capacity;
}

Gbps
ClusterTopology::torPat(RackId rack) const
{
    NETPACK_CHECK(rack.valid() && rack.value < numRacks());
    return torPat_[rack.index()];
}

void
ClusterTopology::setTorPat(RackId rack, Gbps pat)
{
    NETPACK_CHECK(rack.valid() && rack.value < numRacks());
    NETPACK_REQUIRE(pat >= 0.0, "PAT must be non-negative, got " << pat);
    torPat_[rack.index()] = pat;
}

void
ClusterTopology::setAllTorPats(Gbps pat)
{
    NETPACK_REQUIRE(pat >= 0.0, "PAT must be non-negative, got " << pat);
    for (auto &p : torPat_)
        p = pat;
}

} // namespace netpack
