#include "sim/metrics.h"

#include "common/check.h"

namespace netpack {

double
JobRecord::distributionEfficiency() const
{
    const ModelProfile &model = ModelZoo::byName(spec.modelName);
    const Seconds serial = static_cast<double>(spec.iterations) *
                           model.computeTimePerIter *
                           static_cast<double>(spec.gpuDemand);
    const Seconds t = jct();
    NETPACK_CHECK_MSG(t > 0.0, "job " << spec.id.value
                                      << " has non-positive JCT");
    return serial / (t * static_cast<double>(spec.gpuDemand));
}

Seconds
RunMetrics::avgJct() const
{
    RunningStats stats;
    for (const auto &record : records)
        stats.add(record.jct());
    return stats.mean();
}

double
RunMetrics::avgDe() const
{
    RunningStats stats;
    for (const auto &record : records)
        stats.add(record.distributionEfficiency());
    return stats.mean();
}

SampleSet
RunMetrics::jctSamples() const
{
    SampleSet samples;
    for (const auto &record : records)
        samples.add(record.jct());
    return samples;
}

SampleSet
RunMetrics::deSamples() const
{
    SampleSet samples;
    for (const auto &record : records)
        samples.add(record.distributionEfficiency());
    return samples;
}

} // namespace netpack
