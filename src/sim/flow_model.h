/**
 * @file
 * Flow-level network model: the discrete-time flow-level simulator of
 * Section 6.1. Job communication throughput is the converged water-
 * filling rate; a job's per-iteration time is compute + gradient
 * transfer at that rate, and progress is continuous between membership
 * changes. Membership changes (start/finish) trigger re-estimation.
 */

#ifndef NETPACK_SIM_FLOW_MODEL_H
#define NETPACK_SIM_FLOW_MODEL_H

#include <map>

#include "sim/network_model.h"
#include "topology/cluster.h"
#include "waterfill/steady_state.h"

namespace netpack {

/** Water-filling-driven continuous progress model. */
class FlowNetworkModel : public NetworkModel
{
  public:
    explicit FlowNetworkModel(const ClusterTopology &topo);

    void jobStarted(const JobSpec &spec, const Placement &placement,
                    Seconds now) override;
    void jobFinished(JobId id, Seconds now) override;
    void updateInaRacks(JobId id,
                        const std::set<RackId> &ina_racks) override;
    Seconds advance(Seconds now, Seconds until,
                    std::vector<JobId> &completed) override;
    std::size_t runningJobs() const override { return jobs_.size(); }
    Gbps currentRate(JobId id) const override;
    double progressFraction(JobId id) const override;
    bool snapshotSupported() const override { return true; }
    double remainingIterations(JobId id) const override;
    void setRemainingIterations(JobId id, double remaining) override;

    /** Current steady-state estimate (refreshed on demand). */
    const SteadyState &steadyState() const;

  private:
    struct Running
    {
        JobSpec spec;
        Placement placement;
        const ModelProfile *model = nullptr;
        /** Remaining iterations (fractional). */
        double remaining = 0.0;
        /** Current per-iteration wall time at the converged rate. */
        Seconds iterTime = 0.0;
    };

    /**
     * Re-run water-filling and refresh every job's iteration time.
     * Mutable/const because rate queries trigger it lazily after
     * membership changes.
     */
    void refreshRates() const;

    const ClusterTopology *topo_;
    WaterFillingEstimator estimator_;
    /**
     * Ordered by JobId so every float-accumulating pass (estimator
     * input, rate refresh) runs in an order derivable from the job set
     * alone — a snapshot-restored model is bit-identical to one that
     * never stopped regardless of insertion history.
     */
    mutable std::map<JobId, Running> jobs_;
    mutable SteadyState steady_;
    mutable bool dirty_ = false;
};

} // namespace netpack

#endif // NETPACK_SIM_FLOW_MODEL_H
