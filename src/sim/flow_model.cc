#include "sim/flow_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace netpack {

namespace {

/** Remaining iterations below this count as finished (fp hygiene). */
constexpr double kIterEpsilon = 1e-9;

} // namespace

FlowNetworkModel::FlowNetworkModel(const ClusterTopology &topo)
    : topo_(&topo), estimator_(topo)
{
}

void
FlowNetworkModel::jobStarted(const JobSpec &spec, const Placement &placement,
                             Seconds now)
{
    (void)now;
    NETPACK_CHECK_MSG(jobs_.find(spec.id) == jobs_.end(),
                      "job " << spec.id.value << " started twice");
    Running job;
    job.spec = spec;
    job.placement = placement;
    job.model = &ModelZoo::byName(spec.modelName);
    job.remaining = static_cast<double>(spec.iterations);
    jobs_.emplace(spec.id, std::move(job));
    dirty_ = true;
}

void
FlowNetworkModel::jobFinished(JobId id, Seconds now)
{
    (void)now;
    const auto erased = jobs_.erase(id);
    NETPACK_CHECK_MSG(erased == 1,
                      "finishing unknown job " << id.value);
    dirty_ = true;
}

void
FlowNetworkModel::updateInaRacks(JobId id, const std::set<RackId> &ina_racks)
{
    const auto it = jobs_.find(id);
    NETPACK_CHECK_MSG(it != jobs_.end(),
                      "updating INA of unknown job " << id.value);
    if (it->second.placement.inaRacks == ina_racks)
        return;
    it->second.placement.inaRacks = ina_racks;
    dirty_ = true;
}

const SteadyState &
FlowNetworkModel::steadyState() const
{
    if (dirty_)
        refreshRates();
    return steady_;
}

void
FlowNetworkModel::refreshRates() const
{
    std::vector<PlacedJob> placed;
    placed.reserve(jobs_.size());
    for (const auto &[id, job] : jobs_)
        placed.push_back({id, job.placement});
    steady_ = estimator_.estimate(placed);
    for (auto &[id, job] : jobs_) {
        const Gbps rate = steady_.jobThroughput(id);
        job.iterTime = iterationTime(job.spec, *job.model, job.placement,
                                     std::isfinite(rate)
                                         ? rate
                                         : std::numeric_limits<
                                               double>::infinity());
    }
    dirty_ = false;
}

Seconds
FlowNetworkModel::advance(Seconds now, Seconds until,
                          std::vector<JobId> &completed)
{
    completed.clear();
    NETPACK_CHECK(until >= now);
    if (jobs_.empty())
        return until;
    if (dirty_)
        refreshRates();

    // Earliest completion under the current rates.
    double min_finish = std::numeric_limits<double>::infinity();
    for (const auto &[id, job] : jobs_) {
        if (!std::isfinite(job.iterTime) || job.iterTime <= 0.0)
            continue; // stalled (zero throughput) or instantaneous
        min_finish = std::min(min_finish, job.remaining * job.iterTime);
    }

    const double horizon = until - now;
    const double dt = std::min(horizon, min_finish);
    if (dt > 0.0) {
        for (auto &[id, job] : jobs_) {
            if (!std::isfinite(job.iterTime) || job.iterTime <= 0.0)
                continue;
            job.remaining -= dt / job.iterTime;
        }
    }
    if (min_finish <= horizon) {
        for (const auto &[id, job] : jobs_) {
            if (job.remaining <= kIterEpsilon)
                completed.push_back(id);
        }
        NETPACK_CHECK_MSG(!completed.empty(),
                          "flow model lost a completion event");
        std::sort(completed.begin(), completed.end());
        return now + dt;
    }
    return until;
}

double
FlowNetworkModel::progressFraction(JobId id) const
{
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return 0.0;
    const double total = static_cast<double>(it->second.spec.iterations);
    if (total <= 0.0)
        return 1.0;
    return std::clamp(1.0 - it->second.remaining / total, 0.0, 1.0);
}

double
FlowNetworkModel::remainingIterations(JobId id) const
{
    const auto it = jobs_.find(id);
    NETPACK_CHECK_MSG(it != jobs_.end(),
                      "snapshotting unknown job " << id.value);
    return it->second.remaining;
}

void
FlowNetworkModel::setRemainingIterations(JobId id, double remaining)
{
    const auto it = jobs_.find(id);
    NETPACK_CHECK_MSG(it != jobs_.end(),
                      "restoring unknown job " << id.value);
    it->second.remaining = remaining;
    dirty_ = true;
}

Gbps
FlowNetworkModel::currentRate(JobId id) const
{
    if (dirty_)
        refreshRates();
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return 0.0;
    return steady_.jobThroughput(id);
}

} // namespace netpack
