/**
 * @file
 * The cluster manager loop (Figure 4): batches arriving jobs, runs the
 * configured placement policy every scheduling period, starts/retires
 * jobs against the chosen network model, ages deferred jobs' values to
 * prevent starvation, and records JCT/DE metrics. The same loop drives
 * both the flow-level simulator and the packet-level testbed stand-in.
 *
 * The loop is a resumable state machine: begin()/step()/finish() expose
 * each event-loop iteration so the journal layer can snapshot between
 * steps, restore mid-run, and swap the placer for what-if replays —
 * run() is the one-shot composition. Every lifecycle event is mirrored
 * to an optional SimJournalSink in deterministic order.
 */

#ifndef NETPACK_SIM_CLUSTER_SIM_H
#define NETPACK_SIM_CLUSTER_SIM_H

#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>

#include "core/ina_rebalancer.h"
#include "core/placement_context.h"
#include "placement/placer.h"
#include "sim/journal_sink.h"
#include "sim/metrics.h"
#include "sim/network_model.h"
#include "sim/sim_snapshot.h"
#include "topology/cluster.h"
#include "topology/gpu_ledger.h"
#include "workload/trace.h"

namespace netpack {

/**
 * A scheduled server failure: at @p time the server drops out — every
 * job with a worker or PS on it is killed and resubmitted (training
 * restarts from scratch; the lost work shows up as JCT) — and the
 * server's GPUs return after @p downtime.
 */
struct ServerFailure
{
    Seconds time = 0.0;
    ServerId server;
    Seconds downtime = 60.0;
};

/** Manager-loop parameters. */
struct SimConfig
{
    /** Scheduling period: pending jobs are (re)considered this often. */
    Seconds placementPeriod = 10.0;
    /** Value added to a job each time it misses a round (Alg. 2 step ①). */
    double starvationBoost = 1.0;
    /** Hard wall on simulated time; exceeding it is a ConfigError. */
    Seconds maxSimTime = 400.0 * 24.0 * 3600.0;
    /** Observer sampling period; 0 disables sampling. */
    Seconds samplePeriod = 0.0;
    /**
     * Runtime INA rebalancing period (the paper's future-work joint
     * placement+scheduling, restricted to migration-free INA toggling);
     * 0 disables it. Each period the manager re-runs the AE-ordered
     * selective assignment over all running jobs.
     */
    Seconds inaRebalancePeriod = 0.0;
    /** Injected server failures (any order; sorted internally). */
    std::vector<ServerFailure> failures;
    /**
     * Checkpoint interval in iterations for failure restarts: a killed
     * job resumes from its last completed multiple of this many
     * iterations instead of from scratch. 0 = no checkpointing.
     */
    std::int64_t checkpointIters = 0;
};

/** Periodic observation callback (time, model, running placements). */
using SimObserver = std::function<void(
    Seconds, const NetworkModel &, const std::vector<PlacedJob> &)>;

/** Discrete-event cluster simulation around a pluggable network model. */
class ClusterSimulator
{
  public:
    /**
     * @param topo cluster topology (must outlive the simulator)
     * @param model network/progress model (owned)
     * @param placer placement policy (owned)
     * @param config manager parameters
     */
    ClusterSimulator(const ClusterTopology &topo,
                     std::unique_ptr<NetworkModel> model,
                     std::unique_ptr<Placer> placer, SimConfig config = {});

    /** Install a periodic observer (requires config.samplePeriod > 0). */
    void setObserver(SimObserver observer);

    /**
     * Mirror every lifecycle event to @p sink (not owned; nullptr
     * disconnects). Install before begin()/run().
     */
    void setJournal(SimJournalSink *sink) { journal_ = sink; }

    /** Replay @p trace to completion and return the metrics. */
    RunMetrics run(const JobTrace &trace);

    // --- stepwise API (journal snapshots, replay, what-if) -------------

    /** Initialize a run over @p trace; pair with step()/finish(). */
    void begin(const JobTrace &trace);

    /** Whether the active run has processed every job. */
    bool done() const;

    /**
     * Execute one event-loop iteration (advance to the next event,
     * ingest arrivals/failures/recoveries, maybe rebalance and place).
     * Returns false — doing nothing — once the run is done.
     */
    bool step();

    /** Finalize the run (makespan etc.), clear state, return metrics. */
    RunMetrics finish();

    /** Whether a run is in flight (begin()ed, not finish()ed). */
    bool active() const { return state_.has_value(); }

    /** Current simulated time of the active run. */
    Seconds currentTime() const;

    /** Placement rounds completed so far in the active run. */
    long long placementRounds() const;

    /**
     * Replace the placement policy mid-run (what-if replays: swap
     * NetPack for a baseline at an epoch boundary). Call between
     * step()s; the next placement round uses the new policy.
     */
    void swapPlacer(std::unique_ptr<Placer> placer);

    /**
     * Capture the complete run state between step()s. Requires a model
     * with snapshot support (flow fidelity).
     */
    SimSnapshot captureSnapshot() const;

    /**
     * Start a run mid-trace from @p snap (replaces begin()). @p trace
     * and the simulator's config must be those of the recorded run.
     */
    void restoreSnapshot(const JobTrace &trace, const SimSnapshot &snap);

    /** The network model (instrumentation access for benches). */
    const NetworkModel &model() const { return *model_; }

    /** The placement policy in use. */
    const Placer &placer() const { return *placer_; }

    /**
     * The shared resource engine: owned across epochs so placement
     * rounds, rebalancing, and failure handling all read and dirty the
     * same cached hierarchies/steady state (reset at each run()).
     */
    const PlacementContext &context() const { return context_; }

  private:
    /** One running job. */
    struct ActiveJob
    {
        JobSpec spec;
        Placement placement;
        Seconds startTime = 0.0;
    };

    /**
     * All per-run state, previously locals of run(). active is an
     * ordered map so failure-victim collection — and with it the
     * resubmission order feeding every later placement round — is a
     * pure function of the job set, which snapshot restore rebuilds.
     */
    struct RunState
    {
        explicit RunState(const ClusterTopology &topo) : gpus(topo) {}

        GpuLedger gpus;
        RunMetrics metrics;
        std::vector<JobSpec> arrivals;
        std::vector<JobSpec> pending;
        std::map<JobId, ActiveJob> active;
        std::size_t nextArrival = 0;
        Seconds now = 0.0;
        Seconds nextEpoch = 0.0;
        Seconds nextSample = std::numeric_limits<double>::infinity();
        Seconds nextRebalance = std::numeric_limits<double>::infinity();
        std::vector<ServerFailure> failures; // time-sorted
        std::size_t nextFailure = 0;
        /** (recovery time, server value) pairs, insertion order. */
        std::vector<std::pair<Seconds, int>> recoveries;
        double gpuBusyTime = 0.0;     // ∫ used_gpus dt
        double fragmentationTime = 0.0; // ∫ stranded_fraction dt
    };

    /** Validate @p trace and seed RunState (shared by begin/restore). */
    void initState(const JobTrace &trace);

    /** Fraction of free GPUs stranded on partially-occupied servers. */
    double fragmentation() const;

    /** PAT occupancy gauges at observation points (metrics only). When
     * @p sampleSeries, also push the epoch's telemetry time-series
     * points stamped with sim time @p now. */
    void recordPatGauges(Seconds now, bool sampleSeries);

    /** Retire a completed job into the metrics records. */
    void retire(JobId id, Seconds finish_time);

    const ClusterTopology *topo_;
    std::unique_ptr<NetworkModel> model_;
    std::unique_ptr<Placer> placer_;
    SimConfig config_;
    SimObserver observer_;
    PlacementContext context_;
    InaRebalancer rebalancer_;
    SimJournalSink *journal_ = nullptr;
    std::optional<RunState> state_;
};

} // namespace netpack

#endif // NETPACK_SIM_CLUSTER_SIM_H
