/**
 * @file
 * The cluster manager loop (Figure 4): batches arriving jobs, runs the
 * configured placement policy every scheduling period, starts/retires
 * jobs against the chosen network model, ages deferred jobs' values to
 * prevent starvation, and records JCT/DE metrics. The same loop drives
 * both the flow-level simulator and the packet-level testbed stand-in.
 */

#ifndef NETPACK_SIM_CLUSTER_SIM_H
#define NETPACK_SIM_CLUSTER_SIM_H

#include <functional>
#include <memory>
#include <unordered_map>

#include "core/ina_rebalancer.h"
#include "core/placement_context.h"
#include "placement/placer.h"
#include "sim/metrics.h"
#include "sim/network_model.h"
#include "topology/cluster.h"
#include "topology/gpu_ledger.h"
#include "workload/trace.h"

namespace netpack {

/**
 * A scheduled server failure: at @p time the server drops out — every
 * job with a worker or PS on it is killed and resubmitted (training
 * restarts from scratch; the lost work shows up as JCT) — and the
 * server's GPUs return after @p downtime.
 */
struct ServerFailure
{
    Seconds time = 0.0;
    ServerId server;
    Seconds downtime = 60.0;
};

/** Manager-loop parameters. */
struct SimConfig
{
    /** Scheduling period: pending jobs are (re)considered this often. */
    Seconds placementPeriod = 10.0;
    /** Value added to a job each time it misses a round (Alg. 2 step ①). */
    double starvationBoost = 1.0;
    /** Hard wall on simulated time; exceeding it is a ConfigError. */
    Seconds maxSimTime = 400.0 * 24.0 * 3600.0;
    /** Observer sampling period; 0 disables sampling. */
    Seconds samplePeriod = 0.0;
    /**
     * Runtime INA rebalancing period (the paper's future-work joint
     * placement+scheduling, restricted to migration-free INA toggling);
     * 0 disables it. Each period the manager re-runs the AE-ordered
     * selective assignment over all running jobs.
     */
    Seconds inaRebalancePeriod = 0.0;
    /** Injected server failures (any order; sorted internally). */
    std::vector<ServerFailure> failures;
    /**
     * Checkpoint interval in iterations for failure restarts: a killed
     * job resumes from its last completed multiple of this many
     * iterations instead of from scratch. 0 = no checkpointing.
     */
    std::int64_t checkpointIters = 0;
};

/** Periodic observation callback (time, model, running placements). */
using SimObserver = std::function<void(
    Seconds, const NetworkModel &, const std::vector<PlacedJob> &)>;

/** Discrete-event cluster simulation around a pluggable network model. */
class ClusterSimulator
{
  public:
    /**
     * @param topo cluster topology (must outlive the simulator)
     * @param model network/progress model (owned)
     * @param placer placement policy (owned)
     * @param config manager parameters
     */
    ClusterSimulator(const ClusterTopology &topo,
                     std::unique_ptr<NetworkModel> model,
                     std::unique_ptr<Placer> placer, SimConfig config = {});

    /** Install a periodic observer (requires config.samplePeriod > 0). */
    void setObserver(SimObserver observer);

    /** Replay @p trace to completion and return the metrics. */
    RunMetrics run(const JobTrace &trace);

    /** The network model (instrumentation access for benches). */
    const NetworkModel &model() const { return *model_; }

    /** The placement policy in use. */
    const Placer &placer() const { return *placer_; }

    /**
     * The shared resource engine: owned across epochs so placement
     * rounds, rebalancing, and failure handling all read and dirty the
     * same cached hierarchies/steady state (reset at each run()).
     */
    const PlacementContext &context() const { return context_; }

  private:
    const ClusterTopology *topo_;
    std::unique_ptr<NetworkModel> model_;
    std::unique_ptr<Placer> placer_;
    SimConfig config_;
    SimObserver observer_;
    PlacementContext context_;
    InaRebalancer rebalancer_;
};

} // namespace netpack

#endif // NETPACK_SIM_CLUSTER_SIM_H
