/**
 * @file
 * A complete, serializable capture of mid-run ClusterSimulator state:
 * manager cursors, pending queue, active jobs with exact remaining
 * iterations, GPU ledger holdings, accumulated metrics, the placement
 * context's cached fixed point, and stochastic placer RNG streams.
 * Restoring a snapshot and continuing is proven bit-identical to never
 * having stopped (tests/journal_test.cc) — every float-accumulating
 * pass in the simulator runs in an order derivable from this state.
 * The sim layer defines the plain data; netpack::journal serializes it.
 */

#ifndef NETPACK_SIM_SIM_SNAPSHOT_H
#define NETPACK_SIM_SIM_SNAPSHOT_H

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/placement_context.h"
#include "sim/metrics.h"
#include "topology/gpu_ledger.h"
#include "workload/job.h"

namespace netpack {

/** Mid-run manager state (see file comment). */
struct SimSnapshot
{
    /** One running job with its exact model progress. */
    struct ActiveJob
    {
        JobSpec spec;
        Placement placement;
        Seconds startTime = 0.0;
        /** Remaining fractional iterations in the network model. */
        double remainingIters = 0.0;
    };

    // --- event cursors -------------------------------------------------
    Seconds now = 0.0;
    Seconds nextEpoch = 0.0;
    /** +inf when sampling is disabled. */
    Seconds nextSample = 0.0;
    /** +inf when rebalancing is disabled. */
    Seconds nextRebalance = 0.0;
    std::uint64_t nextArrival = 0;
    std::uint64_t nextFailure = 0;

    // --- manager state -------------------------------------------------
    /** Pending queue in order, values aged in place. */
    std::vector<JobSpec> pending;
    /** Active jobs, id-ascending. */
    std::vector<ActiveJob> active;
    /** Pending (recovery time, server value) pairs in insertion order. */
    std::vector<std::pair<Seconds, int>> recoveries;
    /** GPU holdings including failure sentinels. */
    std::vector<GpuLedger::Holding> gpuHoldings;

    // --- accumulators --------------------------------------------------
    double gpuBusyTime = 0.0;
    double fragmentationTime = 0.0;
    /**
     * Metrics so far (completed-job records included). placementSeconds
     * is wall-clock and therefore continuous but not reproducible; it
     * is excluded from bit-identical comparisons.
     */
    RunMetrics metrics;

    // --- subsystem state -----------------------------------------------
    PlacementContext::State context;
    /** RNG stream of a stochastic placer (Random), when it has one. */
    bool hasPlacerRng = false;
    Rng::State placerRng;
};

} // namespace netpack

#endif // NETPACK_SIM_SIM_SNAPSHOT_H
