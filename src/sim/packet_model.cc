#include "sim/packet_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace netpack {

namespace {

constexpr double kTimeEpsilon = 1e-12;
constexpr double kLoadTolerance = 1.0 + 1e-9;

} // namespace

PacketNetworkModel::Running::Running(const ClusterTopology &topo,
                                     const JobSpec &s, const Placement &p)
    : spec(s), placement(p), model(&ModelZoo::byName(s.modelName)),
      hierarchy(topo, s.id, p)
{
    NETPACK_REQUIRE(p.backend == BackendKind::PsIna,
                    "the packet-level model has PS+INA fidelity only; "
                    "use the flow model for "
                        << backendName(p.backend) << " jobs");
    NETPACK_REQUIRE(p.extraPsServers.empty(),
                    "the packet-level model supports single-PS jobs; "
                    "use the flow model for sharded-PS placements");
    local = hierarchy.local();
    if (local) {
        // Local jobs never touch the network: collapse the whole run into
        // one long compute phase.
        remainingIters = 1;
        computeLeft = static_cast<double>(spec.iterations) *
                      model->computeTimePerIter;
        phase = Phase::Compute;
    } else {
        remainingIters = spec.iterations;
        phase = Phase::Compute;
        computeLeft = model->computeTimePerIter;
    }
}

PacketNetworkModel::PacketNetworkModel(const ClusterTopology &topo,
                                       PacketModelConfig config)
    : topo_(&topo), config_(config), rtt_(topo.config().rtt),
      regions_(static_cast<std::size_t>(topo.numRacks())),
      linkLoad_(static_cast<std::size_t>(topo.numLinks()), 0.0),
      torDemand_(static_cast<std::size_t>(topo.numRacks()), 0.0)
{
    NETPACK_REQUIRE(config.additiveIncrease > 0.0,
                    "additiveIncrease must be positive");
    NETPACK_REQUIRE(config.multiplicativeDecrease > 0.0 &&
                        config.multiplicativeDecrease < 1.0,
                    "multiplicativeDecrease must be in (0, 1)");
    NETPACK_REQUIRE(config.convergenceSlots >= 1,
                    "convergenceSlots must be >= 1");
}

void
PacketNetworkModel::jobStarted(const JobSpec &spec,
                               const Placement &placement, Seconds now)
{
    (void)now;
    NETPACK_CHECK_MSG(jobs_.find(spec.id) == jobs_.end(),
                      "job " << spec.id.value << " started twice");
    Running job(*topo_, spec, placement);
    Gbps cap = topo_->config().serverLinkGbps;
    if (config_.maxRate > 0.0)
        cap = std::min(cap, config_.maxRate);
    job.rate = std::min(config_.initialRate, cap);
    job.measuredRate = job.rate;
    jobs_.emplace(spec.id, std::move(job));
    if (config_.synchronousIna)
        repartitionRegions();
    slotsUntilCruise_ = config_.convergenceSlots;
}

void
PacketNetworkModel::jobFinished(JobId id, Seconds now)
{
    (void)now;
    const auto it = jobs_.find(id);
    NETPACK_CHECK_MSG(it != jobs_.end(),
                      "finishing unknown job " << id.value);
    finishedCounters_[id] = it->second.counters;
    jobs_.erase(it);
    if (config_.synchronousIna)
        repartitionRegions();
    slotsUntilCruise_ = config_.convergenceSlots;
}

void
PacketNetworkModel::updateInaRacks(JobId id,
                                   const std::set<RackId> &ina_racks)
{
    const auto it = jobs_.find(id);
    NETPACK_CHECK_MSG(it != jobs_.end(),
                      "updating INA of unknown job " << id.value);
    Running &job = it->second;
    if (job.placement.inaRacks == ina_racks)
        return;
    job.placement.inaRacks = ina_racks;
    job.hierarchy = JobHierarchy(*topo_, id, job.placement);
    if (config_.synchronousIna)
        repartitionRegions();
    slotsUntilCruise_ = config_.convergenceSlots;
}

void
PacketNetworkModel::repartitionProportional()
{
    // INAlloc-style controller: weight each resident job by its fan-in
    // (workers feeding each ToR), so high fan-in jobs — the ones whose
    // aggregation removes the most traffic — get larger regions.
    std::vector<double> weight_sum(
        static_cast<std::size_t>(topo_->numRacks()), 0.0);
    for (const auto &[id, job] : jobs_) {
        if (job.local)
            continue;
        for (RackId rack : job.hierarchy.inaRacks()) {
            weight_sum[rack.index()] +=
                static_cast<double>(job.hierarchy.workerServerCount());
        }
    }
    for (auto &rack_regions : regions_)
        rack_regions.clear();
    for (const auto &[id, job] : jobs_) {
        if (job.local)
            continue;
        for (RackId rack : job.hierarchy.inaRacks()) {
            const double total = weight_sum[rack.index()];
            regions_[rack.index()][id.value] =
                total > 0.0
                    ? topo_->torPat(rack) *
                          static_cast<double>(
                              job.hierarchy.workerServerCount()) /
                          total
                    : 0.0;
        }
    }
}

void
PacketNetworkModel::repartitionRegions()
{
    // SwitchML-style static partitioning: every resident network job with
    // INA on a rack owns an equal slice of that ToR's memory for its
    // whole lifetime, idle compute phases included.
    for (auto &rack_regions : regions_)
        rack_regions.clear();
    std::vector<int> members(static_cast<std::size_t>(topo_->numRacks()),
                             0);
    for (const auto &[id, job] : jobs_) {
        if (job.local)
            continue;
        for (RackId rack : job.hierarchy.inaRacks())
            ++members[rack.index()];
    }
    for (const auto &[id, job] : jobs_) {
        if (job.local)
            continue;
        for (RackId rack : job.hierarchy.inaRacks()) {
            const int m = members[rack.index()];
            regions_[rack.index()][id.value] =
                m > 0 ? topo_->torPat(rack) / static_cast<double>(m) : 0.0;
        }
    }
}

bool
PacketNetworkModel::simulateSlot()
{
    ++slotsSimulated_;
    bool changed = false;

    // --- Step 1: communicating jobs offer their window. ---
    std::vector<Running *> comm;
    for (auto &[id, job] : jobs_) {
        if (!job.local && job.phase == Phase::Comm)
            comm.push_back(&job);
    }

    // --- Step 2: compute-phase progress (before any phase flips, so a
    // job never progresses in both phases within one slot). ---
    for (auto &[id, job] : jobs_) {
        if (!(job.phase == Phase::Compute && job.remainingIters > 0))
            continue;
        job.computeLeft -= rtt_;
        if (job.computeLeft <= kTimeEpsilon) {
            changed = true;
            if (job.local) {
                job.remainingIters = 0;
            } else {
                job.phase = Phase::Comm;
                job.commLeft = job.model->commVolumePerIter();
            }
        }
    }

    // --- Step 3: aggregator-pool contention per ToR. ---
    std::fill(torDemand_.begin(), torDemand_.end(), 0.0);
    if (!config_.synchronousIna) {
        for (Running *job : comm) {
            for (RackId rack : job->hierarchy.inaRacks())
                torDemand_[rack.index()] += job->rate;
        }
    }
    // Per (job, rack) aggregation capacity for this slot.
    const auto share = [&](const Running &job, RackId rack) -> Gbps {
        if (config_.synchronousIna) {
            const auto &rack_regions = regions_[rack.index()];
            const auto it = rack_regions.find(job.spec.id.value);
            return it == rack_regions.end() ? 0.0 : it->second;
        }
        const double demand = torDemand_[rack.index()];
        Gbps pat = topo_->torPat(rack);
        if (config_.modelHashCollisions && demand > 0.0 && pat > 0.0) {
            // Fluid occupancy of hash-addressed FCFS aggregators: a
            // fraction of the pool is lost to collisions even when the
            // demand nominally fits.
            pat *= 1.0 - std::exp(-demand / pat);
        }
        if (demand <= pat)
            return job.rate;
        return demand > 0.0 ? pat * job.rate / demand : 0.0;
    };

    // --- Step 4: per-job link loads via the aggregation tree. ---
    std::fill(linkLoad_.begin(), linkLoad_.end(), 0.0);
    struct JobLoads
    {
        Running *job = nullptr;
        Gbps effectiveRate = 0.0;
        Gbps psDelivery = 0.0;
        std::vector<std::size_t> touched;
    };
    std::vector<JobLoads> loads;
    loads.reserve(comm.size());

    std::vector<double> node_out;
    std::vector<int> node_flows;
    for (Running *job : comm) {
        JobLoads jl;
        jl.job = job;

        Gbps rate_eff = job->rate;
        if (config_.synchronousIna) {
            // A synchronous job cannot outrun its smallest memory region
            // and never sends unaggregated residue (SwitchML semantics).
            for (RackId rack : job->hierarchy.inaRacks())
                rate_eff = std::min(rate_eff, share(*job, rack));
            if (job->hierarchy.inaRacks().empty())
                rate_eff = 0.0; // no region, no progress
        }
        jl.effectiveRate = rate_eff;

        const auto &nodes = job->hierarchy.nodes();
        node_out.assign(nodes.size(), 0.0);
        node_flows.assign(nodes.size(), 0);
        // Children always carry larger indices than their parent, so a
        // reverse sweep is a bottom-up traversal.
        for (std::size_t n = nodes.size(); n-- > 0;) {
            const HierarchyNode &node = nodes[n];
            switch (node.kind) {
              case HierarchyNode::Kind::Worker:
                node_out[n] = rate_eff;
                node_flows[n] = 1;
                break;
              case HierarchyNode::Kind::Switch: {
                double in_traffic = 0.0;
                int in_flows = 0;
                for (std::size_t child : node.children) {
                    in_traffic += node_out[child];
                    in_flows += node_flows[child];
                }
                const Gbps cap =
                    node.inaEnabled ? share(*job, node.rack) : 0.0;
                if (config_.synchronousIna || cap >= rate_eff) {
                    node_out[n] = std::min(rate_eff, in_traffic);
                    node_flows[n] = 1;
                } else {
                    // Partial aggregation (Table 1): the pool merges a
                    // `cap` worth, each input passes its residue along.
                    const double out =
                        cap + (rate_eff - cap) *
                                  static_cast<double>(in_flows);
                    node_out[n] = std::min(out, in_traffic);
                    node_flows[n] = in_flows;
                }
                break;
              }
              case HierarchyNode::Kind::Ps:
                for (std::size_t child : node.children)
                    jl.psDelivery += node_out[child];
                break;
            }
            for (LinkId link : node.uplinks) {
                linkLoad_[link.index()] += node_out[n];
                jl.touched.push_back(link.index());
            }
        }
        loads.push_back(std::move(jl));
    }

    // --- Steps 5-8: scaling, delivery, ECN marks, AIMD. ---
    for (JobLoads &jl : loads) {
        Running &job = *jl.job;
        double scale = 1.0;
        bool marked = false;
        for (std::size_t link_index : jl.touched) {
            const Gbps cap =
                topo_->link(LinkId(static_cast<int>(link_index))).capacity;
            const double load = linkLoad_[link_index];
            if (load > cap * kLoadTolerance) {
                marked = true;
                scale = std::min(scale, cap / load);
            }
        }

        const Gbps delivered = jl.effectiveRate * scale;
        const MBytes delivered_mb = units::volumeAtRate(delivered, rtt_);
        job.commLeft -= delivered_mb;
        job.measuredRate = config_.rateEmaAlpha * delivered +
                           (1.0 - config_.rateEmaAlpha) * job.measuredRate;

        // Aggregation accounting (Figure 14): savings = worker ingress
        // minus what the PS had to absorb.
        const int n_servers = job.hierarchy.workerServerCount();
        const double ingress =
            static_cast<double>(n_servers) * jl.effectiveRate;
        const double savings = std::max(0.0, ingress - jl.psDelivery);
        job.counters.aggregatedMb +=
            units::volumeAtRate(savings * scale, rtt_);
        job.counters.aggregatableMb += units::volumeAtRate(
            static_cast<double>(n_servers - 1) * delivered, rtt_);

        // AIMD (DCTCP/ATP-style endpoint congestion control).
        if (marked) {
            job.rate = std::max(config_.minRate,
                                job.rate * config_.multiplicativeDecrease);
        } else {
            Gbps cap = topo_->config().serverLinkGbps;
            if (config_.maxRate > 0.0)
                cap = std::min(cap, config_.maxRate);
            job.rate = std::min(cap, job.rate + config_.additiveIncrease);
        }

        if (job.commLeft <= kTimeEpsilon) {
            // Gradient fully exchanged: iteration done.
            changed = true;
            --job.remainingIters;
            if (job.remainingIters > 0) {
                job.phase = Phase::Compute;
                job.computeLeft = job.model->computeTimePerIter;
            }
        }
    }

    return changed;
}

Seconds
PacketNetworkModel::cruiseHorizon(Seconds limit) const
{
    Seconds horizon = limit;
    for (const auto &[id, job] : jobs_) {
        if (job.remainingIters <= 0)
            continue;
        if (job.phase == Phase::Compute) {
            horizon = std::min(horizon, std::max(job.computeLeft, 0.0));
        } else if (job.measuredRate > 1e-6) {
            horizon = std::min(
                horizon,
                std::max(units::transferTime(job.commLeft,
                                             job.measuredRate),
                         0.0));
        }
    }
    return horizon;
}

bool
PacketNetworkModel::cruise(Seconds dt)
{
    bool changed = false;
    for (auto &[id, job] : jobs_) {
        if (job.remainingIters <= 0)
            continue;
        if (job.phase == Phase::Compute) {
            job.computeLeft -= dt;
            if (job.computeLeft <= kTimeEpsilon) {
                changed = true;
                if (job.local) {
                    job.remainingIters = 0;
                } else {
                    job.phase = Phase::Comm;
                    job.commLeft = job.model->commVolumePerIter();
                }
            }
        } else {
            if (job.measuredRate <= 1e-6)
                continue; // stalled; only real slots can revive it
            const MBytes moved = units::volumeAtRate(job.measuredRate, dt);
            job.commLeft -= moved;
            // Cruise keeps the aggregation mix of the last real slot.
            const double last_ratio =
                job.counters.aggregatableMb > 0.0
                    ? job.counters.ratio()
                    : 0.0;
            const int n_servers = job.hierarchy.workerServerCount();
            const MBytes aggregatable =
                static_cast<double>(n_servers - 1) * moved;
            job.counters.aggregatableMb += aggregatable;
            job.counters.aggregatedMb += aggregatable * last_ratio;
            if (job.commLeft <= kTimeEpsilon) {
                changed = true;
                --job.remainingIters;
                if (job.remainingIters > 0) {
                    job.phase = Phase::Compute;
                    job.computeLeft = job.model->computeTimePerIter;
                }
            }
        }
    }
    return changed;
}

void
PacketNetworkModel::collectCompleted(std::vector<JobId> &completed)
{
    for (const auto &[id, job] : jobs_) {
        if (job.remainingIters <= 0)
            completed.push_back(id);
    }
    std::sort(completed.begin(), completed.end());
}

Seconds
PacketNetworkModel::advance(Seconds now, Seconds until,
                            std::vector<JobId> &completed)
{
    completed.clear();
    NETPACK_CHECK(until >= now);
    if (jobs_.empty())
        return until;

    while (now < until - kTimeEpsilon) {
        // INAlloc-style periodic memory rescheduling (synchronous mode).
        if (config_.synchronousIna && config_.syncReallocPeriod > 0.0 &&
            now - lastRealloc_ >= config_.syncReallocPeriod) {
            repartitionProportional();
            lastRealloc_ = now;
            slotsUntilCruise_ = config_.convergenceSlots;
        }
        bool changed;
        if (slotsUntilCruise_ > 0) {
            if (until - now < rtt_)
                return until; // sub-RTT remainder: absorb into the next call
            changed = simulateSlot();
            now += rtt_;
            --slotsUntilCruise_;
        } else {
            Seconds limit = until - now;
            if (config_.synchronousIna && config_.syncReallocPeriod > 0.0) {
                // Do not cruise past the next reallocation boundary.
                limit = std::min(limit, std::max(lastRealloc_ +
                                                     config_
                                                         .syncReallocPeriod -
                                                     now,
                                                 0.0));
                if (limit <= 0.0)
                    limit = until - now;
            }
            const Seconds horizon = cruiseHorizon(limit);
            if (horizon <= rtt_) {
                if (until - now < rtt_)
                    return until;
                changed = simulateSlot();
                now += rtt_;
            } else {
                changed = cruise(horizon);
                now += horizon;
            }
        }
        if (changed)
            slotsUntilCruise_ = config_.convergenceSlots;

        collectCompleted(completed);
        if (!completed.empty())
            return std::min(now, until);
    }
    return until;
}

Gbps
PacketNetworkModel::currentRate(JobId id) const
{
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return 0.0;
    if (it->second.local)
        return std::numeric_limits<double>::infinity();
    return it->second.measuredRate;
}

double
PacketNetworkModel::progressFraction(JobId id) const
{
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return 0.0;
    const Running &job = it->second;
    if (job.local) {
        // Local jobs track remaining time, not iterations.
        const double total = static_cast<double>(job.spec.iterations) *
                             job.model->computeTimePerIter;
        return total > 0.0
                   ? std::clamp(1.0 - job.computeLeft / total, 0.0, 1.0)
                   : 1.0;
    }
    const double total = static_cast<double>(job.spec.iterations);
    return total > 0.0
               ? std::clamp(1.0 - static_cast<double>(job.remainingIters) /
                                      total,
                            0.0, 1.0)
               : 1.0;
}

AggregationCounters
PacketNetworkModel::aggregationCounters(JobId id) const
{
    const auto it = jobs_.find(id);
    if (it != jobs_.end())
        return it->second.counters;
    const auto fin = finishedCounters_.find(id);
    if (fin != finishedCounters_.end())
        return fin->second;
    return {};
}

} // namespace netpack
