#include "sim/cluster_sim.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/check.h"
#include "common/log.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "placement/ina_policy.h"

namespace netpack {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Job-id space reserved for "server offline" sentinel allocations. */
constexpr int kFailureSentinelBase = 1 << 30;

} // namespace

ClusterSimulator::ClusterSimulator(const ClusterTopology &topo,
                                   std::unique_ptr<NetworkModel> model,
                                   std::unique_ptr<Placer> placer,
                                   SimConfig config)
    : topo_(&topo), model_(std::move(model)), placer_(std::move(placer)),
      config_(config), context_(topo), rebalancer_(topo)
{
    NETPACK_REQUIRE(model_ != nullptr, "network model is required");
    NETPACK_REQUIRE(placer_ != nullptr, "placer is required");
    NETPACK_REQUIRE(config.placementPeriod > 0.0,
                    "placementPeriod must be positive");
    NETPACK_REQUIRE(config.maxSimTime > 0.0,
                    "maxSimTime must be positive");
}

void
ClusterSimulator::setObserver(SimObserver observer)
{
    NETPACK_REQUIRE(config_.samplePeriod > 0.0,
                    "setObserver requires samplePeriod > 0");
    observer_ = std::move(observer);
}

void
ClusterSimulator::initState(const JobTrace &trace)
{
    for (const JobSpec &spec : trace.jobs()) {
        NETPACK_REQUIRE(spec.gpuDemand <= topo_->totalGpus(),
                        "job " << spec.id.value << " demands "
                               << spec.gpuDemand
                               << " GPUs but the cluster only has "
                               << topo_->totalGpus());
    }

    state_.emplace(*topo_);
    RunState &s = *state_;
    s.arrivals = trace.jobs();
    context_.clear(); // fresh resource engine per run

    // Injected failures, sorted by time.
    s.failures = config_.failures;
    for (const ServerFailure &failure : s.failures) {
        NETPACK_REQUIRE(failure.server.valid() &&
                            failure.server.value < topo_->numServers(),
                        "failure names invalid server "
                            << failure.server.value);
        NETPACK_REQUIRE(failure.time >= 0.0 && failure.downtime >= 0.0,
                        "failure times must be non-negative");
    }
    std::sort(s.failures.begin(), s.failures.end(),
              [](const ServerFailure &a, const ServerFailure &b) {
                  return a.time < b.time;
              });
}

void
ClusterSimulator::begin(const JobTrace &trace)
{
    NETPACK_REQUIRE(!state_.has_value(),
                    "begin() called while a run is already active");
    initState(trace);
    RunState &s = *state_;
    s.nextSample =
        (observer_ && config_.samplePeriod > 0.0) ? 0.0 : kInf;
    s.nextRebalance = config_.inaRebalancePeriod > 0.0
                          ? config_.inaRebalancePeriod
                          : kInf;
}

bool
ClusterSimulator::done() const
{
    if (!state_.has_value())
        return true;
    const RunState &s = *state_;
    return s.nextArrival >= s.arrivals.size() && s.pending.empty() &&
           s.active.empty();
}

Seconds
ClusterSimulator::currentTime() const
{
    NETPACK_CHECK_MSG(state_.has_value(), "no active run");
    return state_->now;
}

long long
ClusterSimulator::placementRounds() const
{
    NETPACK_CHECK_MSG(state_.has_value(), "no active run");
    return state_->metrics.placementRounds;
}

void
ClusterSimulator::swapPlacer(std::unique_ptr<Placer> placer)
{
    NETPACK_REQUIRE(placer != nullptr, "placer is required");
    placer_ = std::move(placer);
}

double
ClusterSimulator::fragmentation() const
{
    const RunState &s = *state_;
    int free_total = 0, free_partial = 0;
    for (int srv = 0; srv < topo_->numServers(); ++srv) {
        const int free = s.gpus.freeGpus(ServerId(srv));
        free_total += free;
        if (free > 0 && free < topo_->gpusPerServer())
            free_partial += free;
    }
    return free_total > 0 ? static_cast<double>(free_partial) /
                                static_cast<double>(free_total)
                          : 0.0;
}

// PAT occupancy per ToR (and cluster-wide), read from the resource
// engine's already-converged fixed point. Strictly read-only on the
// context: forcing convergence here would make the journaled
// PlacementContext::Stats depend on whether metrics were enabled at
// record time, breaking replay verification. Called right after a
// placement round, where the placer has just converged the state; on
// the rare dirty boundary the sample is skipped.
void
ClusterSimulator::recordPatGauges(Seconds now, bool sampleSeries)
{
    if (!obs::metricsEnabled())
        return;
    const SteadyState *cached = context_.cachedSteadyState();
    if (cached == nullptr)
        return;
    const SteadyState &steady = *cached;
    // Per-ToR gauge count stays bounded: above the (env-configurable)
    // cutoff only the .mean/.max aggregates are emitted, so 1024-rack
    // topologies do not flood the registry. See NETPACK_PER_RACK_GAUGES.
    const bool perRack = topo_->numRacks() <= obs::perRackGaugeLimit();
    double worst = 0.0, total_used = 0.0, total_pat = 0.0;
    for (int r = 0; r < topo_->numRacks(); ++r) {
        const Gbps pat = topo_->torPat(RackId(r));
        if (pat <= 0.0)
            continue;
        const double used =
            pat - steady.patResidual[static_cast<std::size_t>(r)];
        const double util = used / pat;
        worst = std::max(worst, util);
        total_used += used;
        total_pat += pat;
        if (perRack) {
            obs::recordGauge("sim.pat_utilization.rack" +
                                 std::to_string(r),
                             util);
        }
    }
    const double mean = total_pat > 0.0 ? total_used / total_pat : 0.0;
    NETPACK_GAUGE("sim.pat_utilization.max", worst);
    NETPACK_GAUGE("sim.pat_utilization.mean", mean);
    if (sampleSeries) {
        obs::recordSeriesPoint("sim.pat_utilization.max", now, worst);
        obs::recordSeriesPoint("sim.pat_utilization.mean", now, mean);
    }
}

void
ClusterSimulator::retire(JobId id, Seconds finish_time)
{
    RunState &s = *state_;
    const auto it = s.active.find(id);
    NETPACK_CHECK_MSG(it != s.active.end(),
                      "model completed unknown job " << id.value);
    JobRecord record;
    record.spec = it->second.spec;
    record.placement = it->second.placement;
    record.submitTime = it->second.spec.submitTime;
    record.startTime = it->second.startTime;
    record.finishTime = finish_time;
    if (journal_ != nullptr)
        journal_->onJobFinish(finish_time, record);
    s.metrics.records.push_back(std::move(record));
    model_->jobFinished(id, finish_time);
    s.gpus.releaseJob(id);
    context_.removeJob(id);
    s.active.erase(it);
    NETPACK_COUNT("sim.completions", 1);
}

bool
ClusterSimulator::step()
{
    NETPACK_REQUIRE(state_.has_value(), "step() without begin()");
    if (done())
        return false;
    RunState &s = *state_;

    NETPACK_REQUIRE(s.now <= config_.maxSimTime,
                    "simulation exceeded maxSimTime = "
                        << config_.maxSimTime
                        << "s; the workload appears stuck");

    const Seconds arrival_time =
        s.nextArrival < s.arrivals.size()
            ? s.arrivals[s.nextArrival].submitTime
            : kInf;
    // Epochs only matter while jobs wait for placement.
    const Seconds epoch_time = s.pending.empty() ? kInf : s.nextEpoch;
    const Seconds rebalance_time =
        s.active.empty() ? kInf : s.nextRebalance;
    const Seconds failure_time = s.nextFailure < s.failures.size()
                                     ? s.failures[s.nextFailure].time
                                     : kInf;
    Seconds recovery_time = kInf;
    for (const auto &[when, server] : s.recoveries)
        recovery_time = std::min(recovery_time, when);
    Seconds next_event =
        std::min({arrival_time, epoch_time, s.nextSample,
                  rebalance_time, failure_time, recovery_time});
    if (!std::isfinite(next_event)) {
        // Only completions remain.
        NETPACK_CHECK(!s.active.empty());
        next_event = config_.maxSimTime;
    }
    next_event = std::max(next_event, s.now);

    // Advance the network model, retiring completions as they come.
    while (s.now < next_event) {
        if (s.active.empty() &&
            !std::isfinite(std::min({arrival_time, epoch_time,
                                     s.nextSample, rebalance_time,
                                     failure_time, recovery_time}))) {
            // Nothing left that could generate an event.
            break;
        }
        std::vector<JobId> completed;
        const int used = topo_->totalGpus() - s.gpus.totalFreeGpus();
        const double frag = fragmentation();
        const Seconds reached =
            model_->advance(s.now, next_event, completed);
        s.gpuBusyTime += static_cast<double>(used) * (reached - s.now);
        s.fragmentationTime += frag * (reached - s.now);
        s.now = reached;
        if (completed.empty())
            break;
        for (JobId id : completed)
            retire(id, s.now);
    }

    // Ingest arrivals that are due.
    while (s.nextArrival < s.arrivals.size() &&
           s.arrivals[s.nextArrival].submitTime <= s.now) {
        s.pending.push_back(s.arrivals[s.nextArrival]);
        ++s.nextArrival;
        if (journal_ != nullptr)
            journal_->onArrival(s.now, s.pending.back());
        NETPACK_COUNT("sim.arrivals", 1);
    }

    // Recoveries: a repaired server's GPUs rejoin the pool.
    for (std::size_t r = 0; r < s.recoveries.size();) {
        if (s.recoveries[r].first <= s.now) {
            const int server = s.recoveries[r].second;
            s.gpus.releaseJob(JobId(kFailureSentinelBase + server));
            s.recoveries.erase(s.recoveries.begin() +
                               static_cast<std::ptrdiff_t>(r));
            if (journal_ != nullptr)
                journal_->onServerRecovery(s.now, ServerId(server));
        } else {
            ++r;
        }
    }

    // Failures: kill and resubmit affected jobs, take the server's
    // GPUs offline until recovery.
    while (s.nextFailure < s.failures.size() &&
           s.failures[s.nextFailure].time <= s.now) {
        const ServerFailure &failure = s.failures[s.nextFailure++];
        // active is id-ordered, so the victim (and resubmission) order
        // is reproducible from a restored snapshot.
        std::vector<JobId> victims;
        for (const auto &[id, job] : s.active) {
            if (job.placement.workers.count(failure.server) > 0 ||
                job.placement.psServer == failure.server)
                victims.push_back(id);
        }
        for (JobId id : victims) {
            const auto it = s.active.find(id);
            NETPACK_CHECK(it != s.active.end());
            // The resubmitted job restarts from scratch, or — with
            // checkpointing — from its last completed checkpoint; the
            // lost work is paid in its eventual JCT either way.
            JobSpec respawn = it->second.spec;
            if (config_.checkpointIters > 0) {
                const double done_iters =
                    model_->progressFraction(id) *
                    static_cast<double>(it->second.spec.iterations);
                const std::int64_t checkpointed =
                    static_cast<std::int64_t>(done_iters) /
                    config_.checkpointIters * config_.checkpointIters;
                respawn.iterations = std::max<std::int64_t>(
                    1, it->second.spec.iterations - checkpointed);
            }
            s.pending.push_back(respawn);
            model_->jobFinished(id, s.now);
            s.gpus.releaseJob(id);
            context_.removeJob(id);
            s.active.erase(it);
            ++s.metrics.jobRestarts;
        }
        // Failures reshape aggregation trees: force a structural
        // re-estimate and dirty the server's rack so survivors never
        // read residuals computed against the pre-failure mix.
        context_.invalidateServer(failure.server);
        const int free = s.gpus.freeGpus(failure.server);
        if (free > 0) {
            s.gpus.allocate(failure.server,
                            JobId(kFailureSentinelBase +
                                  failure.server.value),
                            free);
        }
        s.recoveries.emplace_back(s.now + failure.downtime,
                                  failure.server.value);
        if (journal_ != nullptr) {
            journal_->onServerFailure(s.now, failure.server,
                                      failure.downtime, victims);
        }
        NETPACK_COUNT("sim.failures", 1);
        NETPACK_COUNT("sim.job_restarts",
                      static_cast<std::int64_t>(victims.size()));
        NETPACK_LOG(Info, "t=" << s.now << "s server "
                               << failure.server.value << " failed, "
                               << victims.size()
                               << " job(s) resubmitted");
    }

    // Runtime INA rebalancing: re-run the selective assignment over
    // the running jobs; endpoints re-tag, nothing migrates.
    if (config_.inaRebalancePeriod > 0.0 && s.now >= s.nextRebalance) {
        if (context_.jobCount() > 0) {
            const VolumeLookup volume_of = [&](JobId id) -> MBytes {
                const auto it = s.active.find(id);
                if (it == s.active.end())
                    return 0.0;
                return ModelZoo::byName(it->second.spec.modelName)
                    .commVolumePerIter();
            };
            NETPACK_COUNT("sim.rebalance_rounds", 1);
            const RebalanceOutcome outcome =
                rebalancer_.rebalance(context_, volume_of);
            for (const PlacedJob &job : outcome.changed) {
                auto it = s.active.find(job.id);
                NETPACK_CHECK(it != s.active.end());
                it->second.placement.inaRacks = job.placement.inaRacks;
                model_->updateInaRacks(job.id, job.placement.inaRacks);
            }
            if (journal_ != nullptr)
                journal_->onRebalance(s.now, outcome);
            if (outcome.assignment.jobsChanged > 0) {
                NETPACK_LOG(Debug,
                            "t=" << s.now << "s INA rebalance changed "
                                 << outcome.assignment.jobsChanged
                                 << " job(s)");
            }
        }
        while (s.nextRebalance <= s.now)
            s.nextRebalance += config_.inaRebalancePeriod;
    }

    // Periodic observation (Figure 15 instrumentation). The sampling
    // schedule advances whether or not an observer is attached: sample
    // boundaries break the model's advance() segments, so a resumed run
    // without the original observer must still stop at the same times
    // to accumulate the same float sums.
    if (s.now >= s.nextSample) {
        if (observer_)
            observer_(s.now, *model_, context_.running());
        s.nextSample += config_.samplePeriod;
    }

    // Placement round. Epoch boundaries that passed while the queue
    // was empty are skipped: a job arriving mid-idle waits for the
    // next k*period boundary, exactly like the periodic batching of
    // Figure 4.
    if (!s.pending.empty()) {
        while (s.nextEpoch < s.now - 1e-12)
            s.nextEpoch += config_.placementPeriod;
    }
    if (!s.pending.empty() && s.now >= s.nextEpoch - 1e-12) {
        NETPACK_SPAN(epoch_span, "sim.epoch");
        epoch_span.arg("pending", s.pending.size());
        const auto t0 = std::chrono::steady_clock::now();
        BatchResult result =
            placer_->placeBatch(s.pending, *topo_, s.gpus, context_);
        const auto t1 = std::chrono::steady_clock::now();
        s.metrics.placementSeconds +=
            std::chrono::duration<double>(t1 - t0).count();
        ++s.metrics.placementRounds;
        // Wall-clock batch latency: log-bucketed so p50/p95/p99 are
        // queryable (Fig 10's algorithm-time claim), and checked
        // against the optional NETPACK_SLO_BATCH_US flight-recorder
        // threshold. `_us` marks it wall-clock: excluded from the
        // --jobs bit-identity contract like placement_seconds.
        const double batch_us =
            std::chrono::duration<double, std::micro>(t1 - t0).count();
        obs::recordLogHistogram("placement.batch_us", obs::kLatencySpecUs,
                                batch_us);
        obs::flight::checkSlo("placement.batch", batch_us);
        NETPACK_COUNT("sim.epochs", 1);
        epoch_span.arg("placed", result.placed.size());

        for (PlacedJob &placed : result.placed) {
            const auto it = std::find_if(
                s.pending.begin(), s.pending.end(),
                [&](const JobSpec &spec) { return spec.id == placed.id; });
            NETPACK_CHECK_MSG(it != s.pending.end(),
                              "placer returned unknown job "
                                  << placed.id.value);
            ActiveJob job;
            job.spec = *it;
            job.placement = placed.placement;
            job.startTime = s.now;
            model_->jobStarted(job.spec, job.placement, s.now);
            if (journal_ != nullptr)
                journal_->onJobStart(s.now, job.spec, job.placement);
            s.active.emplace(placed.id, std::move(job));
            s.pending.erase(it);
        }
        // Deferred jobs gain value so they cannot starve.
        for (JobSpec &spec : s.pending)
            spec.value += config_.starvationBoost;

        if (journal_ != nullptr) {
            journal_->onPlacement(s.now, s.metrics.placementRounds,
                                  result.placed, placer_->batchScores(),
                                  s.pending);
            journal_->onWaterfill(s.now, context_.stats());
        }

        NETPACK_LOG(Debug, "t=" << s.now << "s placed "
                                << result.placed.size() << ", deferred "
                                << s.pending.size());
        const double occupancy =
            static_cast<double>(topo_->totalGpus() -
                                s.gpus.totalFreeGpus()) /
            static_cast<double>(topo_->totalGpus());
        NETPACK_GAUGE("sim.queue_depth",
                      static_cast<double>(s.pending.size()));
        NETPACK_GAUGE("sim.running_jobs",
                      static_cast<double>(s.active.size()));
        NETPACK_GAUGE("sim.gpu_occupancy", occupancy);
        // Epoch telemetry series, decimated by --sample-every. Points
        // are keyed by sim time and derived from simulated state only,
        // so they stay bit-identical for any --jobs N.
        const bool sampleSeries =
            obs::metricsEnabled() &&
            (s.metrics.placementRounds - 1) % obs::seriesSampleEvery() == 0;
        if (sampleSeries) {
            obs::recordSeriesPoint("sim.queue_depth", s.now,
                                   static_cast<double>(s.pending.size()));
            obs::recordSeriesPoint("sim.running_jobs", s.now,
                                   static_cast<double>(s.active.size()));
            obs::recordSeriesPoint("sim.gpu_occupancy", s.now, occupancy);
        }
        recordPatGauges(s.now, sampleSeries);
        s.nextEpoch += config_.placementPeriod;
    }
    return true;
}

RunMetrics
ClusterSimulator::finish()
{
    NETPACK_REQUIRE(state_.has_value(), "finish() without begin()");
    NETPACK_REQUIRE(done(), "finish() called before the run completed");
    RunState &s = *state_;

    // Makespan is the last completion, not wherever the loop stopped.
    RunMetrics metrics = std::move(s.metrics);
    metrics.makespan = 0.0;
    for (const auto &record : metrics.records)
        metrics.makespan = std::max(metrics.makespan, record.finishTime);
    if (metrics.makespan > 0.0) {
        metrics.avgGpuUtilization =
            s.gpuBusyTime /
            (static_cast<double>(topo_->totalGpus()) * metrics.makespan);
        metrics.avgFragmentation = s.fragmentationTime / metrics.makespan;
    }
    std::sort(metrics.records.begin(), metrics.records.end(),
              [](const JobRecord &a, const JobRecord &b) {
                  return a.spec.id < b.spec.id;
              });
    state_.reset();
    return metrics;
}

RunMetrics
ClusterSimulator::run(const JobTrace &trace)
{
    begin(trace);
    while (step()) {
    }
    return finish();
}

SimSnapshot
ClusterSimulator::captureSnapshot() const
{
    NETPACK_REQUIRE(state_.has_value(),
                    "captureSnapshot() without an active run");
    NETPACK_REQUIRE(model_->snapshotSupported(),
                    "the active network model cannot be snapshotted");
    const RunState &s = *state_;

    SimSnapshot snap;
    snap.now = s.now;
    snap.nextEpoch = s.nextEpoch;
    snap.nextSample = s.nextSample;
    snap.nextRebalance = s.nextRebalance;
    snap.nextArrival = s.nextArrival;
    snap.nextFailure = s.nextFailure;
    snap.pending = s.pending;
    snap.active.reserve(s.active.size());
    for (const auto &[id, job] : s.active) {
        SimSnapshot::ActiveJob entry;
        entry.spec = job.spec;
        entry.placement = job.placement;
        entry.startTime = job.startTime;
        entry.remainingIters = model_->remainingIterations(id);
        snap.active.push_back(std::move(entry));
    }
    snap.recoveries = s.recoveries;
    snap.gpuHoldings = s.gpus.holdings();
    snap.gpuBusyTime = s.gpuBusyTime;
    snap.fragmentationTime = s.fragmentationTime;
    snap.metrics = s.metrics;
    snap.context = context_.exportState();
    snap.hasPlacerRng = placer_->captureRngState(snap.placerRng);
    return snap;
}

void
ClusterSimulator::restoreSnapshot(const JobTrace &trace,
                                  const SimSnapshot &snap)
{
    NETPACK_REQUIRE(!state_.has_value(),
                    "restoreSnapshot() while a run is already active");
    NETPACK_REQUIRE(model_->snapshotSupported(),
                    "the configured network model cannot restore "
                    "snapshots");
    initState(trace);
    RunState &s = *state_;
    NETPACK_REQUIRE(snap.nextArrival <= s.arrivals.size(),
                    "snapshot arrival cursor " << snap.nextArrival
                        << " exceeds the trace (" << s.arrivals.size()
                        << " jobs) — wrong trace for this snapshot?");
    NETPACK_REQUIRE(snap.nextFailure <= s.failures.size(),
                    "snapshot failure cursor exceeds the configured "
                    "failure schedule — wrong config for this snapshot?");
    NETPACK_REQUIRE(!std::isfinite(snap.nextSample) ||
                        config_.samplePeriod > 0.0,
                    "snapshot has an active sampling schedule but "
                    "samplePeriod is 0");

    s.now = snap.now;
    s.nextEpoch = snap.nextEpoch;
    s.nextSample = snap.nextSample;
    s.nextRebalance = snap.nextRebalance;
    s.nextArrival = static_cast<std::size_t>(snap.nextArrival);
    s.nextFailure = static_cast<std::size_t>(snap.nextFailure);
    s.pending = snap.pending;
    s.recoveries = snap.recoveries;
    s.gpuBusyTime = snap.gpuBusyTime;
    s.fragmentationTime = snap.fragmentationTime;
    s.metrics = snap.metrics;

    for (const GpuLedger::Holding &holding : snap.gpuHoldings) {
        for (const auto &[server, count] : holding.servers)
            s.gpus.allocate(server, holding.job, count);
    }
    for (const SimSnapshot::ActiveJob &entry : snap.active) {
        model_->jobStarted(entry.spec, entry.placement, s.now);
        model_->setRemainingIterations(entry.spec.id,
                                       entry.remainingIters);
        ActiveJob job;
        job.spec = entry.spec;
        job.placement = entry.placement;
        job.startTime = entry.startTime;
        s.active.emplace(entry.spec.id, std::move(job));
    }
    context_.importState(snap.context);
    if (snap.hasPlacerRng)
        placer_->restoreRngState(snap.placerRng);
}

} // namespace netpack
