#include "sim/cluster_sim.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "placement/ina_policy.h"

namespace netpack {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Job-id space reserved for "server offline" sentinel allocations. */
constexpr int kFailureSentinelBase = 1 << 30;

} // namespace

ClusterSimulator::ClusterSimulator(const ClusterTopology &topo,
                                   std::unique_ptr<NetworkModel> model,
                                   std::unique_ptr<Placer> placer,
                                   SimConfig config)
    : topo_(&topo), model_(std::move(model)), placer_(std::move(placer)),
      config_(config), context_(topo), rebalancer_(topo)
{
    NETPACK_REQUIRE(model_ != nullptr, "network model is required");
    NETPACK_REQUIRE(placer_ != nullptr, "placer is required");
    NETPACK_REQUIRE(config.placementPeriod > 0.0,
                    "placementPeriod must be positive");
    NETPACK_REQUIRE(config.maxSimTime > 0.0,
                    "maxSimTime must be positive");
}

void
ClusterSimulator::setObserver(SimObserver observer)
{
    NETPACK_REQUIRE(config_.samplePeriod > 0.0,
                    "setObserver requires samplePeriod > 0");
    observer_ = std::move(observer);
}

RunMetrics
ClusterSimulator::run(const JobTrace &trace)
{
    for (const JobSpec &spec : trace.jobs()) {
        NETPACK_REQUIRE(spec.gpuDemand <= topo_->totalGpus(),
                        "job " << spec.id.value << " demands "
                               << spec.gpuDemand
                               << " GPUs but the cluster only has "
                               << topo_->totalGpus());
    }

    GpuLedger gpus(*topo_);
    RunMetrics metrics;
    context_.clear(); // fresh resource engine per run

    // Manager state.
    std::vector<JobSpec> pending; // value field ages in place
    struct Active
    {
        JobSpec spec;
        Placement placement;
        Seconds startTime = 0.0;
    };
    std::unordered_map<JobId, Active> active;

    const auto &arrivals = trace.jobs();
    std::size_t next_arrival = 0;

    Seconds now = 0.0;
    Seconds next_epoch = 0.0;
    Seconds next_sample =
        (observer_ && config_.samplePeriod > 0.0) ? 0.0 : kInf;
    Seconds next_rebalance = config_.inaRebalancePeriod > 0.0
                                 ? config_.inaRebalancePeriod
                                 : kInf;

    // Injected failures, sorted by time, plus pending recoveries.
    std::vector<ServerFailure> failures = config_.failures;
    for (const ServerFailure &failure : failures) {
        NETPACK_REQUIRE(failure.server.valid() &&
                            failure.server.value < topo_->numServers(),
                        "failure names invalid server "
                            << failure.server.value);
        NETPACK_REQUIRE(failure.time >= 0.0 && failure.downtime >= 0.0,
                        "failure times must be non-negative");
    }
    std::sort(failures.begin(), failures.end(),
              [](const ServerFailure &a, const ServerFailure &b) {
                  return a.time < b.time;
              });
    std::size_t next_failure = 0;
    // (recovery time, server) min-ordered.
    std::vector<std::pair<Seconds, int>> recoveries;

    double gpu_busy_time = 0.0;     // ∫ used_gpus dt
    double fragmentation_time = 0.0; // ∫ stranded_fraction dt

    // Fraction of free GPUs stranded on partially-occupied servers.
    const auto fragmentation = [&] {
        int free_total = 0, free_partial = 0;
        for (int s = 0; s < topo_->numServers(); ++s) {
            const int free = gpus.freeGpus(ServerId(s));
            free_total += free;
            if (free > 0 && free < topo_->gpusPerServer())
                free_partial += free;
        }
        return free_total > 0 ? static_cast<double>(free_partial) /
                                    static_cast<double>(free_total)
                              : 0.0;
    };

    // PAT occupancy per ToR (and cluster-wide), read from the resource
    // engine's converged view. Only runs with metrics on: the query is
    // the same incremental re-estimation the next placement round would
    // pay anyway (results are cached), but it is still extra work at
    // observation points.
    const auto recordPatGauges = [&] {
        if (!obs::metricsEnabled())
            return;
        const SteadyState &steady = context_.steadyState();
        double worst = 0.0, total_used = 0.0, total_pat = 0.0;
        for (int r = 0; r < topo_->numRacks(); ++r) {
            const Gbps pat = topo_->torPat(RackId(r));
            if (pat <= 0.0)
                continue;
            const double used = pat - steady.patResidual[static_cast<
                std::size_t>(r)];
            const double util = used / pat;
            worst = std::max(worst, util);
            total_used += used;
            total_pat += pat;
            // Per-ToR series stay bounded: skip them on huge clusters.
            if (topo_->numRacks() <= 64) {
                obs::recordGauge("sim.pat_utilization.rack" +
                                     std::to_string(r),
                                 util);
            }
        }
        NETPACK_GAUGE("sim.pat_utilization.max", worst);
        NETPACK_GAUGE("sim.pat_utilization.mean",
                      total_pat > 0.0 ? total_used / total_pat : 0.0);
    };

    const auto retire = [&](JobId id, Seconds finish_time) {
        const auto it = active.find(id);
        NETPACK_CHECK_MSG(it != active.end(),
                          "model completed unknown job " << id.value);
        JobRecord record;
        record.spec = it->second.spec;
        record.placement = it->second.placement;
        record.submitTime = it->second.spec.submitTime;
        record.startTime = it->second.startTime;
        record.finishTime = finish_time;
        metrics.records.push_back(std::move(record));
        model_->jobFinished(id, finish_time);
        gpus.releaseJob(id);
        context_.removeJob(id);
        active.erase(it);
        NETPACK_COUNT("sim.completions", 1);
    };

    while (next_arrival < arrivals.size() || !pending.empty() ||
           !active.empty()) {
        NETPACK_REQUIRE(now <= config_.maxSimTime,
                        "simulation exceeded maxSimTime = "
                            << config_.maxSimTime
                            << "s; the workload appears stuck");

        const Seconds arrival_time = next_arrival < arrivals.size()
                                         ? arrivals[next_arrival].submitTime
                                         : kInf;
        // Epochs only matter while jobs wait for placement.
        const Seconds epoch_time = pending.empty() ? kInf : next_epoch;
        const Seconds rebalance_time =
            active.empty() ? kInf : next_rebalance;
        const Seconds failure_time = next_failure < failures.size()
                                         ? failures[next_failure].time
                                         : kInf;
        Seconds recovery_time = kInf;
        for (const auto &[when, server] : recoveries)
            recovery_time = std::min(recovery_time, when);
        Seconds next_event =
            std::min({arrival_time, epoch_time, next_sample,
                      rebalance_time, failure_time, recovery_time});
        if (!std::isfinite(next_event)) {
            // Only completions remain.
            NETPACK_CHECK(!active.empty());
            next_event = config_.maxSimTime;
        }
        next_event = std::max(next_event, now);

        // Advance the network model, retiring completions as they come.
        while (now < next_event) {
            if (active.empty() && !std::isfinite(
                    std::min({arrival_time, epoch_time, next_sample,
                              rebalance_time, failure_time,
                              recovery_time}))) {
                // Nothing left that could generate an event.
                break;
            }
            std::vector<JobId> completed;
            const int used = topo_->totalGpus() - gpus.totalFreeGpus();
            const double frag = fragmentation();
            const Seconds reached =
                model_->advance(now, next_event, completed);
            gpu_busy_time += static_cast<double>(used) * (reached - now);
            fragmentation_time += frag * (reached - now);
            now = reached;
            if (completed.empty())
                break;
            for (JobId id : completed)
                retire(id, now);
        }

        // Ingest arrivals that are due.
        while (next_arrival < arrivals.size() &&
               arrivals[next_arrival].submitTime <= now) {
            pending.push_back(arrivals[next_arrival]);
            ++next_arrival;
            NETPACK_COUNT("sim.arrivals", 1);
        }

        // Recoveries: a repaired server's GPUs rejoin the pool.
        for (std::size_t r = 0; r < recoveries.size();) {
            if (recoveries[r].first <= now) {
                gpus.releaseJob(
                    JobId(kFailureSentinelBase + recoveries[r].second));
                recoveries.erase(recoveries.begin() +
                                 static_cast<std::ptrdiff_t>(r));
            } else {
                ++r;
            }
        }

        // Failures: kill and resubmit affected jobs, take the server's
        // GPUs offline until recovery.
        while (next_failure < failures.size() &&
               failures[next_failure].time <= now) {
            const ServerFailure &failure = failures[next_failure++];
            std::vector<JobId> victims;
            for (const auto &[id, job] : active) {
                if (job.placement.workers.count(failure.server) > 0 ||
                    job.placement.psServer == failure.server)
                    victims.push_back(id);
            }
            for (JobId id : victims) {
                const auto it = active.find(id);
                NETPACK_CHECK(it != active.end());
                // The resubmitted job restarts from scratch, or — with
                // checkpointing — from its last completed checkpoint;
                // the lost work is paid in its eventual JCT either way.
                JobSpec respawn = it->second.spec;
                if (config_.checkpointIters > 0) {
                    const double done =
                        model_->progressFraction(id) *
                        static_cast<double>(it->second.spec.iterations);
                    const std::int64_t checkpointed =
                        static_cast<std::int64_t>(done) /
                        config_.checkpointIters *
                        config_.checkpointIters;
                    respawn.iterations = std::max<std::int64_t>(
                        1, it->second.spec.iterations - checkpointed);
                }
                pending.push_back(respawn);
                model_->jobFinished(id, now);
                gpus.releaseJob(id);
                context_.removeJob(id);
                active.erase(it);
                ++metrics.jobRestarts;
            }
            // Failures reshape aggregation trees: force a structural
            // re-estimate and dirty the server's rack so survivors never
            // read residuals computed against the pre-failure mix.
            context_.invalidateServer(failure.server);
            const int free = gpus.freeGpus(failure.server);
            if (free > 0) {
                gpus.allocate(failure.server,
                              JobId(kFailureSentinelBase +
                                    failure.server.value),
                              free);
            }
            recoveries.emplace_back(now + failure.downtime,
                                    failure.server.value);
            NETPACK_COUNT("sim.failures", 1);
            NETPACK_COUNT("sim.job_restarts",
                          static_cast<std::int64_t>(victims.size()));
            NETPACK_LOG(Info, "t=" << now << "s server "
                                   << failure.server.value << " failed, "
                                   << victims.size()
                                   << " job(s) resubmitted");
        }

        // Runtime INA rebalancing: re-run the selective assignment over
        // the running jobs; endpoints re-tag, nothing migrates.
        if (config_.inaRebalancePeriod > 0.0 && now >= next_rebalance) {
            if (context_.jobCount() > 0) {
                const VolumeLookup volume_of = [&](JobId id) -> MBytes {
                    const auto it = active.find(id);
                    if (it == active.end())
                        return 0.0;
                    return ModelZoo::byName(it->second.spec.modelName)
                        .commVolumePerIter();
                };
                NETPACK_COUNT("sim.rebalance_rounds", 1);
                const RebalanceOutcome outcome =
                    rebalancer_.rebalance(context_, volume_of);
                for (const PlacedJob &job : outcome.changed) {
                    auto it = active.find(job.id);
                    NETPACK_CHECK(it != active.end());
                    it->second.placement.inaRacks = job.placement.inaRacks;
                    model_->updateInaRacks(job.id, job.placement.inaRacks);
                }
                if (outcome.assignment.jobsChanged > 0) {
                    NETPACK_LOG(Debug,
                                "t=" << now << "s INA rebalance changed "
                                     << outcome.assignment.jobsChanged
                                     << " job(s)");
                }
            }
            while (next_rebalance <= now)
                next_rebalance += config_.inaRebalancePeriod;
        }

        // Periodic observation (Figure 15 instrumentation).
        if (observer_ && now >= next_sample) {
            observer_(now, *model_, context_.running());
            next_sample += config_.samplePeriod;
        }

        // Placement round. Epoch boundaries that passed while the queue
        // was empty are skipped: a job arriving mid-idle waits for the
        // next k*period boundary, exactly like the periodic batching of
        // Figure 4.
        if (!pending.empty()) {
            while (next_epoch < now - 1e-12)
                next_epoch += config_.placementPeriod;
        }
        if (!pending.empty() && now >= next_epoch - 1e-12) {
            NETPACK_SPAN(epoch_span, "sim.epoch");
            epoch_span.arg("pending", pending.size());
            const auto t0 = std::chrono::steady_clock::now();
            BatchResult result =
                placer_->placeBatch(pending, *topo_, gpus, context_);
            const auto t1 = std::chrono::steady_clock::now();
            metrics.placementSeconds +=
                std::chrono::duration<double>(t1 - t0).count();
            ++metrics.placementRounds;
            NETPACK_COUNT("sim.epochs", 1);
            epoch_span.arg("placed", result.placed.size());

            for (PlacedJob &placed : result.placed) {
                const auto it = std::find_if(
                    pending.begin(), pending.end(),
                    [&](const JobSpec &s) { return s.id == placed.id; });
                NETPACK_CHECK_MSG(it != pending.end(),
                                  "placer returned unknown job "
                                      << placed.id.value);
                Active job;
                job.spec = *it;
                job.placement = placed.placement;
                job.startTime = now;
                model_->jobStarted(job.spec, job.placement, now);
                active.emplace(placed.id, std::move(job));
                pending.erase(it);
            }
            // Deferred jobs gain value so they cannot starve.
            for (JobSpec &spec : pending)
                spec.value += config_.starvationBoost;

            NETPACK_LOG(Debug, "t=" << now << "s placed "
                                    << result.placed.size() << ", deferred "
                                    << pending.size());
            NETPACK_GAUGE("sim.queue_depth",
                          static_cast<double>(pending.size()));
            NETPACK_GAUGE("sim.running_jobs",
                          static_cast<double>(active.size()));
            NETPACK_GAUGE("sim.gpu_occupancy",
                          static_cast<double>(topo_->totalGpus() -
                                              gpus.totalFreeGpus()) /
                              static_cast<double>(topo_->totalGpus()));
            recordPatGauges();
            next_epoch += config_.placementPeriod;
        }
    }

    // Makespan is the last completion, not wherever the loop stopped.
    metrics.makespan = 0.0;
    for (const auto &record : metrics.records)
        metrics.makespan = std::max(metrics.makespan, record.finishTime);
    if (metrics.makespan > 0.0) {
        metrics.avgGpuUtilization =
            gpu_busy_time /
            (static_cast<double>(topo_->totalGpus()) * metrics.makespan);
        metrics.avgFragmentation = fragmentation_time / metrics.makespan;
    }
    std::sort(metrics.records.begin(), metrics.records.end(),
              [](const JobRecord &a, const JobRecord &b) {
                  return a.spec.id < b.spec.id;
              });
    return metrics;
}

} // namespace netpack
