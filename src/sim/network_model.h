/**
 * @file
 * The network-model interface that decouples the cluster manager loop
 * from the fidelity of the network simulation. Two implementations:
 *
 *  - FlowNetworkModel — the paper's discrete-time flow-level simulator:
 *    per-job throughput comes straight from the water-filling steady
 *    state and jobs progress continuously (fast; used for large-scale
 *    experiments, Figures 7b/8b/9/12).
 *
 *  - PacketNetworkModel — the testbed stand-in: RTT-slotted simulation
 *    with AIMD congestion control, a shared (or statically partitioned)
 *    aggregator pool per ToR, PS fallback, and compute/communicate phase
 *    interleaving (Figures 2/6/7a/8a/11/13/14/15).
 */

#ifndef NETPACK_SIM_NETWORK_MODEL_H
#define NETPACK_SIM_NETWORK_MODEL_H

#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "topology/ids.h"
#include "workload/job.h"

namespace netpack {

/** Abstract network/progress model consumed by ClusterSimulator. */
class NetworkModel
{
  public:
    virtual ~NetworkModel() = default;

    /** A job began executing at @p now with the given placement. */
    virtual void jobStarted(const JobSpec &spec, const Placement &placement,
                            Seconds now) = 0;

    /** A completed job was retired by the manager (resources freed). */
    virtual void jobFinished(JobId id, Seconds now) = 0;

    /**
     * A running job's INA enablement changed (runtime rebalancing —
     * endpoints re-tag their packets; no GPUs move). Unknown ids are an
     * internal error.
     */
    virtual void updateInaRacks(JobId id,
                                const std::set<RackId> &ina_racks) = 0;

    /**
     * Advance the simulation from @p now up to at most @p until,
     * stopping early at the first job completion(s).
     *
     * @param now current simulation time
     * @param until do not advance beyond this time
     * @param completed out-parameter: jobs that completed at the
     *        returned time (empty when the horizon was reached first)
     * @return the new simulation time (== until when nothing completed)
     */
    virtual Seconds advance(Seconds now, Seconds until,
                            std::vector<JobId> &completed) = 0;

    /** Number of jobs currently executing in the model. */
    virtual std::size_t runningJobs() const = 0;

    /**
     * Instantaneous per-worker communication rate of a running job in
     * Gbps (+inf for jobs with no network phase, 0 for unknown ids).
     * Used by the measurement-vs-estimation experiments (Figure 15).
     */
    virtual Gbps currentRate(JobId id) const = 0;

    /**
     * Fraction of the job's iterations already completed, in [0, 1]
     * (0 for unknown ids). Drives checkpoint-aware failure restarts and
     * progress dashboards.
     */
    virtual double progressFraction(JobId id) const = 0;

    /**
     * Whether this model's per-job progress can be captured and
     * restored exactly (journal snapshots). The flow model supports it;
     * the packet model's slotted state is not snapshottable — journaled
     * packet runs record events but cannot resume.
     */
    virtual bool snapshotSupported() const { return false; }

    /**
     * Remaining fractional iterations of running job @p id (snapshot
     * capture). ConfigError for models without snapshot support.
     */
    virtual double remainingIterations(JobId id) const
    {
        (void)id;
        throw ConfigError("this network model does not support "
                          "snapshots (flow fidelity required)");
    }

    /**
     * Overwrite the remaining iterations of running job @p id (snapshot
     * restore). ConfigError for models without snapshot support.
     */
    virtual void setRemainingIterations(JobId id, double remaining)
    {
        (void)id;
        (void)remaining;
        throw ConfigError("this network model does not support "
                          "snapshots (flow fidelity required)");
    }
};

} // namespace netpack

#endif // NETPACK_SIM_NETWORK_MODEL_H
