/**
 * @file
 * The recording interface between the cluster manager loop and the
 * journal layer. ClusterSimulator calls one hook per lifecycle event —
 * arrival, placement decision, start, finish, failure, recovery,
 * rebalance, water-filling summary — in deterministic simulation order.
 * The sim layer only defines the interface; netpack::journal (a layer
 * above) implements it with a JSONL writer, and the replay verifier
 * implements it with an event-by-event comparator. Keeping the
 * interface down here avoids a sim → journal dependency cycle.
 */

#ifndef NETPACK_SIM_JOURNAL_SINK_H
#define NETPACK_SIM_JOURNAL_SINK_H

#include <vector>

#include "core/ina_rebalancer.h"
#include "core/placement_context.h"
#include "sim/metrics.h"
#include "workload/job.h"

namespace netpack {

/** Receives the simulator's lifecycle events as they happen. */
class SimJournalSink
{
  public:
    virtual ~SimJournalSink() = default;

    /** A job entered the pending queue at @p now. */
    virtual void onArrival(Seconds now, const JobSpec &spec) = 0;

    /**
     * One placement round completed. @p placed carries the decisions
     * (workers, PS, INA racks); @p scores are the placer's per-job
     * scores in placement order or nullptr for non-scoring policies;
     * @p deferred are the still-pending jobs with their aged values.
     */
    virtual void onPlacement(Seconds now, long long round,
                             const std::vector<PlacedJob> &placed,
                             const std::vector<double> *scores,
                             const std::vector<JobSpec> &deferred) = 0;

    /** A placed job began executing. */
    virtual void onJobStart(Seconds now, const JobSpec &spec,
                            const Placement &placement) = 0;

    /** A job completed and was retired (record is final). */
    virtual void onJobFinish(Seconds now, const JobRecord &record) = 0;

    /**
     * A server failed at @p now; @p victims were killed and resubmitted
     * (victim order is the deterministic active-set order).
     */
    virtual void onServerFailure(Seconds now, ServerId server,
                                 Seconds downtime,
                                 const std::vector<JobId> &victims) = 0;

    /** A failed server's GPUs rejoined the pool. */
    virtual void onServerRecovery(Seconds now, ServerId server) = 0;

    /** A runtime INA rebalance pass ran (possibly changing nothing). */
    virtual void onRebalance(Seconds now,
                             const RebalanceOutcome &outcome) = 0;

    /**
     * Cumulative water-filling re-estimation counters after a placement
     * round (full vs incremental estimates, cache hits, jobs
     * re-converged). Replay verification compares them to catch
     * resource-engine divergence even when decisions happen to agree.
     */
    virtual void onWaterfill(Seconds now,
                             const PlacementContext::Stats &stats) = 0;
};

} // namespace netpack

#endif // NETPACK_SIM_JOURNAL_SINK_H
