/**
 * @file
 * Packet-level network model: the testbed stand-in (see DESIGN.md's
 * substitution table). Statistical INA is simulated at RTT granularity:
 * every slot, communicating jobs offer their AIMD window to the network;
 * each ToR's aggregator pool serves the offered demand FCFS (modelled as
 * a proportional share of the pool, the fluid limit of hash contention),
 * the unserved residue falls back to the PS unaggregated, links mark
 * jobs that overload them (ECN), and marked jobs halve their rate while
 * unmarked jobs gain an additive increment — converging, like DCTCP/ATP,
 * to a max-min share. A compute/communicate phase machine per job makes
 * the fine-grained memory multiplexing visible (Figure 2).
 *
 * In synchronous-INA mode the pool is statically partitioned among the
 * resident jobs; a job's send rate is capped by its region regardless of
 * the other jobs' phases, and nothing falls back (SwitchML semantics).
 *
 * To keep multi-hour traces tractable the model "cruises" between
 * convergence windows: after any phase or membership change it simulates
 * a configurable number of real slots, then advances analytically at the
 * measured rates until the next discrete change.
 */

#ifndef NETPACK_SIM_PACKET_MODEL_H
#define NETPACK_SIM_PACKET_MODEL_H

#include <map>
#include <unordered_map>

#include "ina/hierarchy.h"
#include "sim/network_model.h"
#include "topology/cluster.h"

namespace netpack {

/** Tunables of the packet-level model. */
struct PacketModelConfig
{
    /** Additive increase per RTT, Gbps. */
    Gbps additiveIncrease = 2.0;
    /**
     * Multiplicative decrease factor on ECN mark. DCTCP-style marking
     * shrinks the window gently, keeping average utilization near the
     * bottleneck capacity.
     */
    double multiplicativeDecrease = 0.8;
    /**
     * Application-level send-rate cap in Gbps (0 = uncapped). The
     * Figure 14 experiments fix the job throughput at 10 Gbps and sweep
     * the switch memory against it.
     */
    Gbps maxRate = 0.0;
    /** Starting rate of a fresh comm phase, Gbps. */
    Gbps initialRate = 5.0;
    /** Floor rate, Gbps. */
    Gbps minRate = 0.05;
    /** Use synchronous (statically partitioned) INA memory. */
    bool synchronousIna = false;
    /**
     * INAlloc-style periodic reallocation for synchronous mode: every
     * this many seconds the controller repartitions each ToR's memory
     * proportionally to the resident jobs' fan-in (INAlloc's minimum
     * scheduling interval is 10 s). 0 keeps SwitchML-style static
     * equal regions for each job's lifetime.
     */
    Seconds syncReallocPeriod = 0.0;
    /**
     * Model hash collisions in the shared pool: even when the offered
     * demand fits the pool, the hash-addressed FCFS aggregators lose a
     * little capacity to collisions (fluid occupancy model,
     * eff = pool x (1 - exp(-demand/pool))), sending the residue to the
     * PS. Off by default — the paper's Figure 14 shows the deviation is
     * small on real hardware.
     */
    bool modelHashCollisions = false;
    /** Slots simulated after a change before cruising analytically. */
    int convergenceSlots = 64;
    /** EMA smoothing factor for the measured rate. */
    double rateEmaAlpha = 0.15;
};

/** Per-job aggregation accounting (Figure 14). */
struct AggregationCounters
{
    /** Gradient traffic removed by switches, MB. */
    double aggregatedMb = 0.0;
    /** Maximum removable traffic, MB ((n-1) x delivered volume). */
    double aggregatableMb = 0.0;

    /** Fraction of aggregatable traffic actually aggregated. */
    double ratio() const
    {
        return aggregatableMb > 0.0 ? aggregatedMb / aggregatableMb : 0.0;
    }
};

/** RTT-slotted statistical/synchronous INA simulator. */
class PacketNetworkModel : public NetworkModel
{
  public:
    PacketNetworkModel(const ClusterTopology &topo,
                       PacketModelConfig config = {});

    void jobStarted(const JobSpec &spec, const Placement &placement,
                    Seconds now) override;
    void jobFinished(JobId id, Seconds now) override;
    void updateInaRacks(JobId id,
                        const std::set<RackId> &ina_racks) override;
    Seconds advance(Seconds now, Seconds until,
                    std::vector<JobId> &completed) override;
    std::size_t runningJobs() const override { return jobs_.size(); }
    Gbps currentRate(JobId id) const override;
    double progressFraction(JobId id) const override;

    /** Aggregation counters of a running or recently finished job. */
    AggregationCounters aggregationCounters(JobId id) const;

    /** Total slots simulated so far (diagnostics). */
    long long slotsSimulated() const { return slotsSimulated_; }

  private:
    enum class Phase
    {
        Compute,
        Comm,
    };

    struct Running
    {
        JobSpec spec;
        Placement placement;
        const ModelProfile *model = nullptr;
        JobHierarchy hierarchy;
        bool local = false;
        std::int64_t remainingIters = 0;
        Phase phase = Phase::Compute;
        /** Remaining compute time of the current iteration. */
        Seconds computeLeft = 0.0;
        /** Remaining per-worker gradient bytes of this iteration. */
        MBytes commLeft = 0.0;
        /** AIMD per-worker send rate. */
        Gbps rate = 0.0;
        /** Measured (EMA) delivered rate. */
        Gbps measuredRate = 0.0;
        AggregationCounters counters;

        Running(const ClusterTopology &topo, const JobSpec &s,
                const Placement &p);
    };

    /** Simulate one RTT; returns true if any phase changed. */
    bool simulateSlot();

    /** Largest analytic jump that crosses no phase boundary. */
    Seconds cruiseHorizon(Seconds limit) const;

    /** Advance all jobs analytically by @p dt (no AIMD dynamics). */
    bool cruise(Seconds dt);

    /** Recompute synchronous-mode per-job regions after churn. */
    void repartitionRegions();

    /** INAlloc-style periodic proportional repartition (fan-in based). */
    void repartitionProportional();

    /** Collect ids whose remainingIters reached zero. */
    void collectCompleted(std::vector<JobId> &completed);

    const ClusterTopology *topo_;
    PacketModelConfig config_;
    Seconds rtt_;
    std::map<JobId, Running> jobs_;
    /** Synchronous mode: per-rack per-job region as PAT share (Gbps). */
    std::vector<std::unordered_map<int, Gbps>> regions_;
    /** Counters of finished jobs, kept for post-run queries. */
    std::unordered_map<JobId, AggregationCounters> finishedCounters_;
    int slotsUntilCruise_ = 0;
    long long slotsSimulated_ = 0;
    /** Simulation clock of the last INAlloc-style reallocation. */
    Seconds lastRealloc_ = 0.0;

    // Scratch buffers reused every slot (avoid per-slot allocation).
    std::vector<double> linkLoad_;
    std::vector<double> torDemand_;
};

} // namespace netpack

#endif // NETPACK_SIM_PACKET_MODEL_H
