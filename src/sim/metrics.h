/**
 * @file
 * Experiment metrics (Section 6.1): per-job records, average Job
 * Completion Time, and Distribution Efficiency
 * DE = JCT_with_1_GPU / (Real_JCT x No_of_GPUs), which factors model
 * size and job length out of JCT and isolates the placement effect.
 */

#ifndef NETPACK_SIM_METRICS_H
#define NETPACK_SIM_METRICS_H

#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "workload/job.h"

namespace netpack {

/** Lifecycle record of one completed job. */
struct JobRecord
{
    JobSpec spec;
    Placement placement;
    Seconds submitTime = 0.0;
    /** When the job began executing (end of queueing). */
    Seconds startTime = 0.0;
    Seconds finishTime = 0.0;

    /** Job completion time: finish minus submission (queueing included). */
    Seconds jct() const { return finishTime - submitTime; }

    /** Queueing delay before the job started. */
    Seconds waitTime() const { return startTime - submitTime; }

    /**
     * Distribution efficiency. The serial (1-GPU) completion time of the
     * same work is iterations x computeTime x gpus, so
     * DE = iterations x computeTime / JCT; 1.0 means perfect linear
     * scaling with zero network and queueing overhead.
     */
    double distributionEfficiency() const;
};

/** Aggregate result of one simulated run. */
struct RunMetrics
{
    std::vector<JobRecord> records;
    /** Time the last job finished. */
    Seconds makespan = 0.0;
    /** Wall-clock seconds spent inside the placement algorithm. */
    double placementSeconds = 0.0;
    /** Number of placement rounds executed. */
    long long placementRounds = 0;
    /** Time-averaged GPU occupancy in [0, 1]. */
    double avgGpuUtilization = 0.0;
    /** Jobs killed by injected server failures and resubmitted. */
    long long jobRestarts = 0;
    /**
     * Time-averaged GPU fragmentation: the fraction of free GPUs that
     * sit on partially-occupied servers (stranded capacity a
     * whole-server job cannot use). 0 = perfectly packed.
     */
    double avgFragmentation = 0.0;

    /** Mean JCT over all records. */
    Seconds avgJct() const;

    /** Mean DE over all records. */
    double avgDe() const;

    /** JCT sample set (percentiles, stddev). */
    SampleSet jctSamples() const;

    /** DE sample set. */
    SampleSet deSamples() const;
};

} // namespace netpack

#endif // NETPACK_SIM_METRICS_H
