#include "placement/knapsack.h"

#include <algorithm>

#include "common/check.h"

namespace netpack {

std::vector<std::size_t>
solveKnapsack(const std::vector<KnapsackItem> &items, int capacity)
{
    NETPACK_CHECK(capacity >= 0);
    const std::size_t n = items.size();
    std::vector<std::size_t> selected;
    if (n == 0 || capacity == 0)
        return selected;

    // Fast path: everything fits.
    long long total_weight = 0;
    bool all_valuable = true;
    for (const auto &item : items) {
        NETPACK_CHECK(item.weight >= 0);
        total_weight += item.weight;
        if (item.value < 0.0)
            all_valuable = false;
    }
    if (all_valuable && total_weight <= capacity) {
        selected.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            selected[i] = i;
        return selected;
    }

    const auto width = static_cast<std::size_t>(capacity) + 1;
    std::vector<double> best(width, 0.0);
    // took[i][w] records whether item i is taken at residual capacity w.
    std::vector<std::vector<bool>> took(n, std::vector<bool>(width, false));

    for (std::size_t i = 0; i < n; ++i) {
        const int w = items[i].weight;
        const double v = items[i].value;
        if (w > capacity || v <= 0.0)
            continue;
        for (std::size_t c = width - 1;
             c >= static_cast<std::size_t>(w); --c) {
            const double candidate = best[c - static_cast<std::size_t>(w)] + v;
            if (candidate > best[c]) {
                best[c] = candidate;
                took[i][c] = true;
            }
            if (c == static_cast<std::size_t>(w))
                break; // avoid unsigned wraparound
        }
    }

    // Reconstruct from the best final capacity.
    std::size_t c = static_cast<std::size_t>(
        std::max_element(best.begin(), best.end()) - best.begin());
    for (std::size_t i = n; i-- > 0;) {
        if (took[i][c]) {
            selected.push_back(i);
            c -= static_cast<std::size_t>(items[i].weight);
        }
    }
    std::reverse(selected.begin(), selected.end());
    return selected;
}

} // namespace netpack
