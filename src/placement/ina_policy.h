/**
 * @file
 * Selective INA assignment (Algorithm 2 step ④) as a reusable policy:
 * sort the target jobs by aggregation efficiency AE = throughput x
 * fan-in, enable INA in that order until each rack's PAT budget is
 * spent, then keep the result only if the water-filling estimator
 * predicts it does not regress the targets' total communication time
 * versus INA-for-all. Used by NetPackPlacer at placement time and by
 * the InaRebalancer for already-running jobs (INA toggling needs no
 * GPU migration, so it can be re-optimized at runtime — the paper's
 * "joint placement and scheduling" future-work direction).
 */

#ifndef NETPACK_PLACEMENT_INA_POLICY_H
#define NETPACK_PLACEMENT_INA_POLICY_H

#include <functional>
#include <vector>

#include "topology/cluster.h"
#include "waterfill/steady_state.h"

namespace netpack {

/** Looks up a job's per-iteration gradient volume (MB). */
using VolumeLookup = std::function<MBytes(JobId)>;

/** Outcome of one selective-INA pass. */
struct InaAssignmentResult
{
    /** Jobs whose INA rack set changed. */
    int jobsChanged = 0;
    /** Whether the estimator guard reverted to INA-for-all. */
    bool revertedToAllEnabled = false;
};

/**
 * Recompute the INA rack sets of @p targets in place.
 *
 * @param topo the cluster
 * @param targets jobs to (re)assign; their inaRacks are overwritten,
 *        starting from INA-on-all-their-racks
 * @param background jobs whose assignment is fixed (they consume PAT
 *        budget first)
 * @param volume_of gradient volume per target job, for the guard's
 *        communication-time objective (may return 0 for unknown ids,
 *        which weighs the job uniformly)
 */
InaAssignmentResult assignSelectiveIna(const ClusterTopology &topo,
                                       std::vector<PlacedJob> &targets,
                                       const std::vector<PlacedJob> &background,
                                       const VolumeLookup &volume_of);

} // namespace netpack

#endif // NETPACK_PLACEMENT_INA_POLICY_H
