/**
 * @file
 * The paper's formal MIP (Table 3) as an executable constraint checker.
 * We have no Gurobi, but the model itself is still valuable: given a
 * topology, a set of jobs, and their placements plus the water-filling
 * steady state, this module materializes the MIP variables
 * (w, x, y, z, a, b, v per job/server/rack) and verifies every
 * constraint Eq. 1-10. Tests use it as an oracle — every placement any
 * policy emits must be MIP-feasible — and the objective evaluator
 * Σ y_i d/v matches placementObjective.
 */

#ifndef NETPACK_PLACEMENT_MIP_MODEL_H
#define NETPACK_PLACEMENT_MIP_MODEL_H

#include <string>
#include <vector>

#include "placement/placer.h"

namespace netpack {

/** The MIP variable assignment induced by one job's placement. */
struct MipJobVariables
{
    JobId job;
    /** w_i: GPUs of this job on server i. */
    std::vector<int> w;
    /** x_i: 1 iff the job has workers on server i. */
    std::vector<int> x;
    /** y_i: 1 iff the job's PS is on server i (all zero for local). */
    std::vector<int> y;
    /** z_r: 1 iff INA is enabled for the job on rack r. */
    std::vector<int> z;
    /** a: aggregated throughput (Gbps). */
    double a = 0.0;
    /** b: per-flow unaggregated throughput (Gbps). */
    double b = 0.0;
    /** v: total per-worker throughput (Gbps). */
    double v = 0.0;
};

/** Outcome of the feasibility check. */
struct MipCheckResult
{
    bool feasible = true;
    /** Human-readable violations ("Eq.2 server 3: 5 GPUs > 4"). */
    std::vector<std::string> violations;
};

/**
 * Materialize the MIP variables for @p jobs/@p placements: placement
 * geometry gives w/x/y/z; the water-filling steady state gives the
 * throughput split (v from the converged rate; a/b from whether the
 * job's racks still hold PAT).
 */
std::vector<MipJobVariables>
materializeMipVariables(const ClusterTopology &topo,
                        const std::vector<JobSpec> &jobs,
                        const std::vector<PlacedJob> &placements);

/**
 * Same, against a caller-supplied converged steady state (e.g. from a
 * PlacementContext) instead of paying a fresh water-filling run. @p
 * steady must cover exactly the structurally valid subset of
 * @p placements.
 */
std::vector<MipJobVariables>
materializeMipVariables(const ClusterTopology &topo,
                        const std::vector<JobSpec> &jobs,
                        const std::vector<PlacedJob> &placements,
                        const SteadyState &steady);

/**
 * Check constraints Eq. 1-10 of Table 3 against the materialized
 * variables. Eq. 3/4 (capacity) are checked against the topology's
 * link/PAT capacities with a small tolerance, since the steady state is
 * a max-min allocation, not a reservation.
 */
MipCheckResult checkMipFeasibility(const ClusterTopology &topo,
                                   const std::vector<JobSpec> &jobs,
                                   const std::vector<PlacedJob> &placements);

/** Feasibility check against a caller-supplied steady state. */
MipCheckResult checkMipFeasibility(const ClusterTopology &topo,
                                   const std::vector<JobSpec> &jobs,
                                   const std::vector<PlacedJob> &placements,
                                   const SteadyState &steady);

/** The MIP objective Σ_j Σ_i y_i^(j) d^(j) / v^(j), in seconds. */
double mipObjective(const ClusterTopology &topo,
                    const std::vector<JobSpec> &jobs,
                    const std::vector<PlacedJob> &placements);

/** The objective against a caller-supplied steady state. */
double mipObjective(const ClusterTopology &topo,
                    const std::vector<JobSpec> &jobs,
                    const std::vector<PlacedJob> &placements,
                    const SteadyState &steady);

} // namespace netpack

#endif // NETPACK_PLACEMENT_MIP_MODEL_H
