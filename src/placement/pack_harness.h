/**
 * @file
 * The transactional try/accept/rollback placement harness. A strategy
 * implements two hooks — `runBatch` (batch orchestration: admission,
 * ordering) and `packOne` (place a single job, applying its GPU
 * allocation) — and the harness turns every attempt into a placement
 * transaction:
 *
 *   tryPlace(spec)  opens a PlacementContext transaction frame, runs
 *                   the strategy's packOne, and on success registers
 *                   the job with the context. On failure the frame is
 *                   *committed*, not rolled back: a failed probe leaves
 *                   no placement state behind, and any steady-state
 *                   convergence it triggered is kept as a legitimate
 *                   cache fill — bit-identical to the pre-harness
 *                   placers, whose failed attempts warmed the cache
 *                   the same way.
 *   accept(result)  records a successful attempt into the batch result
 *                   (its frame stays open so it can still be undone).
 *   unpackLast()    rolls back the most recent accepted-or-pending
 *                   attempt: the context transaction is replayed
 *                   backwards and the GPU allocation is released, at a
 *                   cost proportional to what the attempt touched.
 *
 * Frames stack, so meta-placers (local search, portfolio) speculate
 * whole sequences of placements and keep or discard them as a unit via
 * pushFrame/commitFrame/rollbackFrame. All remaining open frames are
 * committed when the batch ends.
 */

#ifndef NETPACK_PLACEMENT_PACK_HARNESS_H
#define NETPACK_PLACEMENT_PACK_HARNESS_H

#include <cstddef>
#include <map>
#include <vector>

#include "common/check.h"
#include "placement/placer.h"

namespace netpack {

/** Outcome of one tryPlace attempt. */
struct PackResult
{
    /** Whether the attempt produced a placement. */
    bool placed = false;
    /** The tentative placement (valid when placed). */
    PlacedJob job;
    /** Strategy score of the placement (valid when scored). */
    double score = 0.0;
    /** Whether @c score participates in batchScores(). */
    bool scored = false;
};

/**
 * Non-template core of PlacerHarness: the frame stack, the ledger undo
 * log, and the batch-session bookkeeping. Strategy code interacts with
 * it only through the protected API.
 */
class PackHarnessBase : public Placer
{
  public:
    using Placer::placeBatch;

    const std::vector<double> *batchScores() const override
    {
        return scoresLastBatch_ ? &lastScores_ : nullptr;
    }

  protected:
    /** @name Session accessors (valid during runBatch/packOne) */
    ///@{
    const ClusterTopology &topo() const { return *topo_; }
    GpuLedger &gpus() { return *gpus_; }
    PlacementContext &ctx() { return *ctx_; }
    BatchResult &result() { return result_; }
    ///@}

    /** Record a successful attempt into the batch result. Must pair
     * with the most recent un-accepted tryPlace success. */
    void accept(const PackResult &attempt);

    /** Mark @p id deferred this round. */
    void defer(JobId id) { result_.deferred.push_back(id); }

    /**
     * Undo the most recent accepted attempt: remove it from the batch
     * result, roll its context transaction back, and release its GPUs.
     */
    void unpackLast();

    /** Number of attempts currently accepted (and still undoable). */
    std::size_t acceptedCount() const { return result_.placed.size(); }

    /** @name Frame stack for meta-placers
     * A frame groups everything placed (or unplaced) while it is open;
     * rollbackFrame restores the context *and* the GPU ledger to the
     * state at the matching pushFrame. Frames opened by tryPlace are
     * managed by accept/unpackLast; these raw frames wrap sequences.
     */
    ///@{
    void pushFrame();
    void commitFrame();
    void rollbackFrame();
    std::size_t openFrames() const { return frames_.size(); }
    ///@}

    /**
     * Remove a *previously committed* placement of the current session
     * (e.g. a job placed earlier in this batch) so the slot can be
     * re-tried. Undone if the innermost open frame rolls back. The
     * caller owns the matching result_.placed bookkeeping.
     */
    void unplace(JobId id);

    /** Scores of scored attempts, in acceptance order. */
    std::vector<double> &lastScores() { return lastScores_; }
    const std::vector<double> &lastScores() const { return lastScores_; }

    /** Whether batchScores() exposes lastScores (set once per placer;
     * policies that never score leave it false and report nullptr). */
    void enableBatchScores() { scoresLastBatch_ = true; }

    /** Bind the session state; called by PlacerHarness::placeBatch. */
    void beginSession(const ClusterTopology &topo, GpuLedger &gpus,
                      PlacementContext &ctx);

    /** Commit every open frame and hand the batch result out. */
    BatchResult sealSession();

    /** Open the frame for one tryPlace attempt (internal). */
    void beginAttempt();

    /** Close a failed attempt's frame, keeping cache fills (internal). */
    void failAttempt();

    /** Register a successful attempt's placement (internal): the job
     * enters the context and the frame records the ledger undo. */
    void admitAttempt(const PackResult &attempt);

  private:
    /** One ledger-level undo action, replayed on frame rollback. */
    struct LedgerUndo
    {
        JobId job;
        /** false: release the job's GPUs (undo of a placement);
         *  true: re-apply @c workers (undo of an unplace). */
        bool reallocate = false;
        std::map<ServerId, int> workers;
    };

    struct Frame
    {
        std::vector<LedgerUndo> undo;
        /** Frame carries a tryPlace attempt (vs a raw meta frame). */
        bool attempt = false;
        /** The attempt was accepted into result_.placed. */
        bool accepted = false;
        /** The accepted attempt contributed to lastScores_. */
        bool scored = false;
        JobId job;
    };

    void replayLedgerUndo(const Frame &frame);

    const ClusterTopology *topo_ = nullptr;
    GpuLedger *gpus_ = nullptr;
    PlacementContext *ctx_ = nullptr;
    BatchResult result_;
    std::vector<Frame> frames_;
    std::vector<double> lastScores_;
    bool scoresLastBatch_ = false;
};

/**
 * CRTP entry point: binds Placer::placeBatch to the harness session and
 * the Derived strategy's hooks.
 *
 * Derived must provide (privately, befriending PlacerHarness<Derived>):
 *   void runBatch(const std::vector<JobSpec> &batch);
 *   bool packOne(const JobSpec &spec, PackResult &out);
 *
 * runBatch decides admission and ordering and drives tryPlace/accept/
 * defer; packOne places one job, filling out.job.placement (and
 * optionally out.score/out.scored) and applying the GPU allocation to
 * gpus(). packOne returning false must leave the ledger untouched.
 */
template <typename Derived> class PlacerHarness : public PackHarnessBase
{
  public:
    using PackHarnessBase::placeBatch;

    BatchResult placeBatch(const std::vector<JobSpec> &batch,
                           const ClusterTopology &topo, GpuLedger &gpus,
                           PlacementContext &ctx) override
    {
        NETPACK_CHECK_MSG(
            &ctx.topology() == &topo,
            "placement context built for a different topology");
        beginSession(topo, gpus, ctx);
        derived().runBatch(batch);
        return sealSession();
    }

    /**
     * Attempt to place @p spec inside a fresh transaction frame. On
     * success the job is registered with the context and the frame
     * stays open (undoable via unpackLast); on failure the frame is
     * committed and an empty result returned.
     */
    PackResult tryPlace(const JobSpec &spec)
    {
        beginAttempt();
        PackResult out;
        out.job.id = spec.id;
        if (!derived().packOne(spec, out)) {
            failAttempt();
            return PackResult{};
        }
        // Stamp the backend here, at the single chokepoint every placer
        // funnels through, so no packOne implementation can forget it.
        out.job.placement.backend = spec.backend;
        out.placed = true;
        admitAttempt(out);
        return out;
    }

  private:
    Derived &derived() { return *static_cast<Derived *>(this); }
};

} // namespace netpack

#endif // NETPACK_PLACEMENT_PACK_HARNESS_H
