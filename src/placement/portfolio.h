/**
 * @file
 * Portfolio placement: per scheduling epoch, run N placement strategies
 * against private clones of the live cluster state (context + GPU
 * ledger), score every outcome, apply only the winner to the real
 * state, and discard the rest. The evaluations are embarrassingly
 * parallel and fan out over a thread pool when jobs > 1; the reduction
 * over outcomes is always serial in strategy order, so the decisions
 * are bit-identical for any worker count.
 *
 * The winner is chosen lexicographically: highest total placed job
 * value first (place more/higher-value work), then lowest total batch
 * communication time Σ d/v (the Equation-1 objective the water-filling
 * model evaluates), then lowest strategy index (deterministic
 * tie-break).
 */

#ifndef NETPACK_PLACEMENT_PORTFOLIO_H
#define NETPACK_PLACEMENT_PORTFOLIO_H

#include <memory>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "placement/placer.h"

namespace netpack {

/** Tunables of the portfolio placer. */
struct PortfolioConfig
{
    /**
     * Strategy lineup, by factory name (makePlacerByName). Every member
     * must be deterministic (no RNG stream to snapshot) so the
     * portfolio's decisions are a pure function of the cluster state;
     * "Portfolio" itself cannot be a member.
     */
    std::vector<std::string> strategies = {"NetPack", "NetPack+LS", "GB",
                                           "FB",      "LF",         "Optimus",
                                           "Tetris",  "Comb"};
    /** Worker threads for the evaluation fan-out; 1 = run inline. The
     * decisions are bit-identical for any value. */
    int jobs = 1;
};

/** Evaluate-N-strategies, keep-the-winner placement policy. */
class PortfolioPlacer : public Placer
{
  public:
    explicit PortfolioPlacer(PortfolioConfig config = {});
    ~PortfolioPlacer() override;

    std::string name() const override { return "Portfolio"; }

    using Placer::placeBatch;
    BatchResult placeBatch(const std::vector<JobSpec> &batch,
                           const ClusterTopology &topo, GpuLedger &gpus,
                           PlacementContext &ctx) override;

    /** The winning strategy's scores, when it reports any. */
    const std::vector<double> *batchScores() const override
    {
        return lastWinnerScored_ ? &lastScores_ : nullptr;
    }

    /** Strategy names in lineup order (for tests/benches). */
    std::vector<std::string> strategyNames() const;

    /** Winning strategy of the last placeBatch ("" before any). */
    const std::string &lastWinner() const { return lastWinner_; }

  private:
    PortfolioConfig config_;
    std::vector<std::unique_ptr<Placer>> strategies_;
    std::unique_ptr<exec::ThreadPool> pool_;
    std::vector<double> lastScores_;
    bool lastWinnerScored_ = false;
    std::string lastWinner_;
};

} // namespace netpack

#endif // NETPACK_PLACEMENT_PORTFOLIO_H
