/**
 * @file
 * 0/1 knapsack used by Algorithm 2 step ①: choose the subset of pending
 * jobs with maximum total value whose combined GPU demand fits the free
 * GPUs of the cluster.
 */

#ifndef NETPACK_PLACEMENT_KNAPSACK_H
#define NETPACK_PLACEMENT_KNAPSACK_H

#include <vector>

namespace netpack {

/** One knapsack item. */
struct KnapsackItem
{
    /** Integer weight (GPU demand). */
    int weight = 0;
    /** Value (job importance, aged against starvation). */
    double value = 0.0;
};

/**
 * Solve 0/1 knapsack exactly by dynamic programming.
 *
 * @param items the candidate items
 * @param capacity knapsack capacity (total free GPUs)
 * @return indices of the selected items, in ascending order
 *
 * Items with weight > capacity are never selected; items with weight 0
 * and positive value are always selected. Complexity O(n * capacity)
 * time, O(n * capacity) bits of memory for reconstruction.
 */
std::vector<std::size_t> solveKnapsack(const std::vector<KnapsackItem> &items,
                                       int capacity);

} // namespace netpack

#endif // NETPACK_PLACEMENT_KNAPSACK_H
