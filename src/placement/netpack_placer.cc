#include "placement/netpack_placer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/check.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "placement/ina_policy.h"
#include "placement/knapsack.h"

namespace netpack {

namespace {

constexpr double kNegInf = -1e300;

/**
 * Slack added to the DP-cell upper bounds. The bound is derived from
 * the same quantities the scoring loop reads but groups the floating-
 * point operations differently, so it can undershoot the loop's result
 * by a few ULPs; the slack (orders of magnitude above any rounding
 * error, orders of magnitude below any meaningful score difference)
 * keeps the prune strictly conservative — a pruned cell provably cannot
 * beat the running best under the loop's own arithmetic.
 */
double
pruneSlack(Gbps c)
{
    return 1e-6 * (1.0 + std::abs(c));
}

} // namespace

NetPackPlacer::NetPackPlacer(NetPackConfig config)
    : config_(config)
{
    enableBatchScores();
    NETPACK_REQUIRE(config.maxFlowsTracked >= 1 &&
                        config.maxFlowsTracked <= 127,
                    "maxFlowsTracked must be in [1, 127], got "
                        << config.maxFlowsTracked);
    NETPACK_REQUIRE(config.psShards >= 1 && config.psShards <= 64,
                    "psShards must be in [1, 64], got "
                        << config.psShards);
}

NetPackPlacer::WorkerDp &
NetPackPlacer::acquireDp()
{
    if (dpTablesUsed_ == dpTables_.size())
        dpTables_.emplace_back();
    return dpTables_[dpTablesUsed_++];
}

void
NetPackPlacer::ensureScratch(const ClusterTopology &topo)
{
    const auto n_servers = static_cast<std::size_t>(topo.numServers());
    const auto n_racks = static_cast<std::size_t>(topo.numRacks());
    const auto n_pods =
        topo.twoTier() ? static_cast<std::size_t>(topo.numPods()) : 0;
    if (inPlanStamp_.size() == n_servers && rackStamp_.size() == n_racks &&
        podStamp_.size() == n_pods)
        return;
    inPlanStamp_.assign(n_servers, 0);
    rackStamp_.assign(n_racks, 0);
    rackCount_.assign(n_racks, 0);
    crossStamp_.assign(n_racks, 0);
    crossValue_.assign(n_racks, 0.0);
    podStamp_.assign(n_pods, 0);
    podCount_.assign(n_pods, 0);
    epoch_ = 0;
}

void
NetPackPlacer::nextEpoch()
{
    if (++epoch_ == 0) {
        // Stamp wrap: every stale stamp could now collide with a fresh
        // epoch, so clear them all once per 2^32 plans.
        std::fill(inPlanStamp_.begin(), inPlanStamp_.end(), 0);
        std::fill(rackStamp_.begin(), rackStamp_.end(), 0);
        std::fill(crossStamp_.begin(), crossStamp_.end(), 0);
        std::fill(podStamp_.begin(), podStamp_.end(), 0);
        epoch_ = 1;
    }
}

void
NetPackPlacer::runBatch(const std::vector<JobSpec> &batch)
{
    NETPACK_SPAN(batch_span, "placement.batch");
    batch_span.arg("batch", batch.size());
    ensureScratch(topo());
    const std::int64_t view_rebuilds_before = ctx().stats().viewRebuilds;
    const std::int64_t view_reuses_before = ctx().stats().viewReuses;

    // Step ④ treats the pre-batch jobs as fixed background; snapshot
    // them before this batch's placements enter the context.
    const std::vector<PlacedJob> running = ctx().running();

    // Step ①: knapsack job-subset selection over the free GPUs.
    std::vector<KnapsackItem> items;
    items.reserve(batch.size());
    for (const auto &spec : batch)
        items.push_back({spec.gpuDemand, spec.value});
    std::vector<std::size_t> chosen;
    {
        NETPACK_SPAN(span, "placement.knapsack");
        span.arg("items", items.size());
        chosen = solveKnapsack(items, gpus().totalFreeGpus());
    }

    std::vector<bool> selected(batch.size(), false);
    for (std::size_t i : chosen)
        selected[i] = true;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!selected[i])
            defer(batch[i].id);
    }

    // Place admitted jobs in value-descending order (Alg. 2 line 3).
    std::vector<const JobSpec *> to_place;
    to_place.reserve(chosen.size());
    for (std::size_t i : chosen)
        to_place.push_back(&batch[i]);
    std::stable_sort(to_place.begin(), to_place.end(),
                     [](const JobSpec *a, const JobSpec *b) {
                         return a->value > b->value;
                     });

    for (const JobSpec *spec : to_place) {
        const PackResult attempt = tryPlace(*spec);
        if (attempt.placed)
            accept(attempt);
        else
            defer(spec->id);
    }

    // Step ④: shift the INA budget toward jobs that benefit the most.
    if (config_.selectiveIna) {
        NETPACK_SPAN(span, "placement.selective_ina");
        span.arg("placed", result().placed.size());
        selectiveInaEnable(result().placed, topo(), running, batch);
        // Propagate the final INA assignment into the context (no-op for
        // jobs whose rack set step ④ kept unchanged).
        for (const PlacedJob &job : result().placed)
            ctx().updateInaRacks(job.id, job.placement.inaRacks);
    }

    NETPACK_COUNT("placement.batches", 1);
    NETPACK_COUNT("placement.jobs_placed",
                  static_cast<std::int64_t>(result().placed.size()));
    NETPACK_COUNT("placement.jobs_deferred",
                  static_cast<std::int64_t>(result().deferred.size()));
    batch_span.arg("placed", result().placed.size());
    batch_span.arg("deferred", result().deferred.size());
    batch_span.arg("view_rebuilds",
                   ctx().stats().viewRebuilds - view_rebuilds_before);
    batch_span.arg("view_reuses",
                   ctx().stats().viewReuses - view_reuses_before);
}

bool
NetPackPlacer::planOne(const JobSpec &spec, const ClusterTopology &topo,
                       GpuLedger &gpus, PlacementContext &ctx,
                       PackResult &out)
{
    ensureScratch(topo);
    // Link capacities feeding the crossing penalty (topology-constant,
    // refreshed per call so the placer may serve several topologies).
    rackCap_.resize(static_cast<std::size_t>(topo.numRacks()));
    for (int r = 0; r < topo.numRacks(); ++r)
        rackCap_[static_cast<std::size_t>(r)] =
            topo.coreLinkCapacity(RackId(r));
    if (topo.twoTier()) {
        podCap_.resize(static_cast<std::size_t>(topo.numPods()));
        for (int p = 0; p < topo.numPods(); ++p)
            podCap_[static_cast<std::size_t>(p)] =
                topo.link(topo.podUplink(p)).capacity;
    }

    // Single-server fast path (lines 4-6): no cross-server traffic.
    const ServerId single =
        placement_util::bestFitSingleServer(topo, gpus, spec.gpuDemand);
    if (single.valid()) {
        out.job.placement.workers[single] = spec.gpuDemand;
        out.job.placement.psServer = single;
        gpus.allocate(single, spec.id, spec.gpuDemand);
        NETPACK_COUNT("placement.single_server_fastpath", 1);
        return true;
    }

    // Line 7: re-estimate the steady state with every job placed so
    // far (resources are shared, not reserved, so each new job moves
    // the fair share of everyone else). The context re-converges
    // only the jobs coupled to the previous placement's resources
    // and snapshots the result flat, once per revision.
    const SteadyStateView &view = ctx.steadyStateView();

    const int rpp = topo.config().racksPerPod;
    dpTablesUsed_ = 0;
    workerPlacement(spec, topo, gpus, view, acquireDp());
    if (config_.oversubPenalty && topo.config().oversubscription > 1.0) {
        // Rack-local alternatives: the global DP is rack-blind, so
        // give the PS-placement scoring in-rack plans to prefer
        // when the core is the bottleneck.
        for (int r = 0; r < topo.numRacks(); ++r) {
            const RackId rack(r);
            if (gpus.freeGpusInRack(rack) < spec.gpuDemand)
                continue;
            workerPlacement(spec, topo, gpus, view, acquireDp(), rack);
        }
        // Pod-local alternatives in two-tier mode: crossing a rack
        // is cheaper than crossing a pod.
        if (topo.twoTier()) {
            for (int p = 0; p < topo.numPods(); ++p) {
                int pod_free = 0;
                const int r_end =
                    std::min(topo.numRacks(), (p + 1) * rpp);
                for (int r = p * rpp; r < r_end; ++r)
                    pod_free += gpus.freeGpusInRack(RackId(r));
                if (pod_free < spec.gpuDemand)
                    continue;
                workerPlacement(spec, topo, gpus, view, acquireDp(),
                                RackId(), p);
            }
        }
    }
    std::optional<FullPlan> best = psPlacement(spec, topo, view);
    if (!best)
        return false;
    out.score = best->score;
    out.scored = true;

    Placement placement = std::move(best->placement);
    // Default to INA-on everywhere; step ④ may disable some racks.
    placement.inaRacks = placement.allRacks(topo);
    placement_util::applyAllocation(gpus, spec.id, placement);
    out.job.placement = std::move(placement);
    return true;
}

void
NetPackPlacer::workerPlacement(const JobSpec &spec,
                               const ClusterTopology &topo,
                               const GpuLedger &gpus,
                               const SteadyStateView &view, WorkerDp &dp,
                               RackId restrict_rack, int restrict_pod)
{
    NETPACK_SPAN(span, "placement.worker_dp");
    const int demand = spec.gpuDemand;
    const int per_server = topo.gpusPerServer();
    // The DP takes all-or-none of each server's free GPUs, so it searches
    // plans totalling [demand, demand + per_server] GPUs and the extras
    // are trimmed after step ③ (Section 5.2 step ②).
    dp.demand = demand;
    dp.gMax = demand + per_server;
    dp.gn = dp.gMax + 1;
    dp.fCap = config_.twoDimWeight ? config_.maxFlowsTracked : 0;
    const Gbps c = topo.config().serverLinkGbps;

    // Servers are rack-major and racks pod-major, so the restricted
    // variants cover contiguous id ranges.
    const int spr = topo.config().serversPerRack;
    int s_begin = 0;
    int s_end = topo.numServers();
    if (restrict_rack.valid()) {
        s_begin = restrict_rack.value * spr;
        s_end = s_begin + spr;
    } else if (restrict_pod >= 0) {
        const int pod_servers = topo.config().racksPerPod * spr;
        s_begin = restrict_pod * pod_servers;
        s_end = std::min(topo.numServers(), s_begin + pod_servers);
    }
    dp.candidates.clear();
    for (int s = s_begin; s < s_end; ++s) {
        const int free = gpus.freeGpus(ServerId(s));
        if (free <= 0)
            continue;
        Candidate cand;
        cand.id = ServerId(s);
        cand.weight = free;
        // The DP's flow coordinate is clamped to f_cap (0 when the 2-D
        // weight is ablated), but the server *value* always sees the
        // real flow count — the ablation isolates the extra knapsack
        // dimension, not the flow-awareness of the heuristic.
        const int real_flows =
            std::clamp(view.serverFlows[static_cast<std::size_t>(s)], 0,
                       127);
        cand.flows = std::min(real_flows, dp.fCap);
        const Gbps avail = view.serverAvailBw[static_cast<std::size_t>(s)];
        // Server value: reward residual bandwidth, punish the throughput
        // the new stream would steal from the server's existing flows.
        cand.value = avail - (c - avail) /
                                 static_cast<double>(real_flows + 1);
        dp.candidates.push_back(cand);
    }

    const std::size_t cells = dp.cells();
    dp.value.assign(cells, kNegInf);
    dp.value[dp.idx(0, 0)] = 0.0;
    dp.decisions.assign(dp.candidates.size() * cells, -1);

    // In-place DP over the single value table: iterating source g
    // descending means a cell's writes (always at g + weight) land only
    // after every read of it this stage, and within a target cell the
    // transitions still arrive in the same f-ascending order as a
    // two-table formulation — values and decision bytes are
    // bit-identical to the reference placer's copy-per-stage DP.
    // fReach_/reach_g skip provably unreachable rows and columns.
    fReach_.assign(static_cast<std::size_t>(dp.fCap) + 1, 0);
    fReach_[0] = 1;
    int reach_g = 0;
    for (std::size_t ci = 0; ci < dp.candidates.size(); ++ci) {
        const Candidate &cand = dp.candidates[ci];
        std::int8_t *dec = dp.decisions.data() + ci * cells;
        const int g_hi = std::min(dp.gMax - cand.weight, reach_g);
        for (int g = g_hi; g >= 0; --g) {
            for (int f = 0; f <= dp.fCap; ++f) {
                if (!fReach_[static_cast<std::size_t>(f)])
                    continue;
                const double base = dp.value[dp.idx(f, g)];
                if (base <= kNegInf / 2)
                    continue;
                const int f2 = std::max(f, cand.flows);
                const int g2 = g + cand.weight;
                const double candidate_value = base + cand.value;
                if (candidate_value > dp.value[dp.idx(f2, g2)]) {
                    dp.value[dp.idx(f2, g2)] = candidate_value;
                    dec[dp.idx(f2, g2)] = static_cast<std::int8_t>(f);
                }
            }
        }
        fReach_[static_cast<std::size_t>(cand.flows)] = 1;
        reach_g = std::min(dp.gMax, reach_g + cand.weight);
    }
    span.arg("candidates", dp.candidates.size());
    span.arg("cells", cells);
}

void
NetPackPlacer::harvestPlan(const WorkerDp &dp, int f, int g,
                           const JobSpec &spec)
{
    planServers_.clear();
    const std::size_t cells = dp.cells();
    int bf = f, bg = g;
    for (std::size_t ci = dp.candidates.size(); ci-- > 0;) {
        const std::int8_t prev_f = dp.decisions[ci * cells + dp.idx(bf, bg)];
        if (prev_f < 0)
            continue;
        planServers_.emplace_back(dp.candidates[ci].id,
                                  dp.candidates[ci].weight);
        bg -= dp.candidates[ci].weight;
        bf = prev_f;
    }
    NETPACK_CHECK_MSG(bf == 0 && bg == 0,
                      "worker DP backtracking failed for job "
                          << spec.id.value);
    // The backtrack walks stages last-to-first; candidates were
    // collected id-ascending, so reversing restores ascending order
    // (what the reference gets from sorting the harvested pairs).
    std::reverse(planServers_.begin(), planServers_.end());
}

double
NetPackPlacer::crossingLoss(const ClusterTopology &topo,
                            const SteadyStateView &view, int ps_rack,
                            double plan_servers, Gbps c) const
{
    // The crossing loss depends on the plan's rack footprint and the PS
    // rack only — not on which server of the rack hosts the PS — so
    // psPlacement computes it once per (plan, rack).
    const bool ps_rack_in_plan =
        rackStamp_[static_cast<std::size_t>(ps_rack)] == epoch_;
    const int total_racks = static_cast<int>(planRacks_.size()) +
                            (ps_rack_in_plan ? 0 : 1);
    Gbps min_share = std::numeric_limits<double>::infinity();
    const auto consider_rack = [&](int rack, int new_flows) {
        if (new_flows == 0)
            return;
        const int existing =
            view.rackFlows[static_cast<std::size_t>(rack)];
        min_share = std::min(
            min_share, rackCap_[static_cast<std::size_t>(rack)] /
                           static_cast<double>(existing + new_flows));
    };
    for (int rack : planRacks_) {
        if (rack == ps_rack) {
            // Streams from every remote rack converge here.
            consider_rack(rack, total_racks - 1);
        } else {
            // One merged stream per remote rack with INA;
            // conservatively, one per worker server without.
            consider_rack(rack,
                          rackCount_[static_cast<std::size_t>(rack)]);
        }
    }
    if (!ps_rack_in_plan)
        consider_rack(ps_rack, total_racks - 1);

    if (topo.twoTier()) {
        // Cross-pod plans additionally share the involved pods' uplinks.
        const int ps_pod = ps_rack / topo.config().racksPerPod;
        const bool ps_pod_in_plan =
            podStamp_[static_cast<std::size_t>(ps_pod)] == epoch_;
        const bool extra_pod = !ps_rack_in_plan && !ps_pod_in_plan;
        const int n_pods =
            static_cast<int>(planPods_.size()) + (extra_pod ? 1 : 0);
        const auto consider_pod = [&](int pod, int racks_in_pod) {
            // Streams crossing this pod's uplink: one merged stream per
            // rack on the smaller side.
            const int crossing =
                std::min(racks_in_pod, total_racks - racks_in_pod);
            if (crossing == 0)
                return;
            const int existing =
                view.podUplinkFlows[static_cast<std::size_t>(pod)];
            min_share = std::min(
                min_share, podCap_[static_cast<std::size_t>(pod)] /
                               static_cast<double>(existing + crossing));
        };
        if (n_pods > 1) {
            for (int pod : planPods_) {
                int racks_in_pod =
                    podCount_[static_cast<std::size_t>(pod)];
                if (!ps_rack_in_plan && pod == ps_pod)
                    ++racks_in_pod;
                consider_pod(pod, racks_in_pod);
            }
            if (extra_pod)
                consider_pod(ps_pod, 1);
        }
    }

    if (std::isfinite(min_share) && min_share < c) {
        // The plan's value credits every chosen server with
        // access-limited bandwidth; a core bottleneck caps all of the
        // job's streams at min_share, so the loss applies once per
        // chosen server.
        return (c - min_share) * plan_servers;
    }
    return 0.0;
}

std::optional<NetPackPlacer::FullPlan>
NetPackPlacer::psPlacement(const JobSpec &spec, const ClusterTopology &topo,
                           const SteadyStateView &view)
{
    NETPACK_SPAN(span, "placement.ps_scoring");
    const Gbps c = topo.config().serverLinkGbps;
    const bool oversubscribed =
        topo.config().oversubscription > 1.0 ||
        (topo.twoTier() && topo.config().podOversubscription > 1.0);
    const bool need_cross = config_.oversubPenalty && oversubscribed;
    const int n_servers = topo.numServers();
    const int spr = topo.config().serversPerRack;
    const bool two_tier = topo.twoTier();
    const int rpp = two_tier ? topo.config().racksPerPod : 0;

    // Equation 1's per-server bandwidth-steal terms are plan-invariant;
    // the naive loop re-derived them per (plan, server) pair. q0: the
    // PS rides a chosen server (no extra flow); q1: it adds one.
    psQ0_.resize(static_cast<std::size_t>(n_servers));
    psQ1_.resize(static_cast<std::size_t>(n_servers));
    for (int s = 0; s < n_servers; ++s) {
        const auto si = static_cast<std::size_t>(s);
        const Gbps avail = view.serverAvailBw[si];
        const int flows = view.serverFlows[si];
        psQ0_[si] = (c - avail) / static_cast<double>(flows + 1);
        psQ1_[si] = (c - avail) / static_cast<double>(flows + 2);
    }

    // umax_[f]: an upper bound (+ slack) on any server's PS contribution
    // to a plan at DP row f — avail - q - penalty with the smallest
    // possible steal term (q1 <= q0 since avail <= C) and the smallest
    // possible penalty (the plain hot-spot term at the smallest f_max).
    // A cell whose plan value plus this bound cannot beat the running
    // best is skipped without backtracking or scoring ("pruned before
    // harvesting"); the iteration order is unchanged and the winner
    // breaks ties exactly like the exhaustive loop, so pruning never
    // changes the argmax.
    const int f_cap = config_.twoDimWeight ? config_.maxFlowsTracked : 0;
    const double slack = pruneSlack(c);
    umax_.resize(static_cast<std::size_t>(f_cap) + 1);
    for (int f = 0; f <= f_cap; ++f) {
        double best = kNegInf;
        for (int s = 0; s < n_servers; ++s) {
            const auto si = static_cast<std::size_t>(s);
            const int f_max = std::max(f, view.serverFlows[si] + 1);
            const double term =
                view.serverAvailBw[si] - psQ1_[si] -
                c / static_cast<double>(f_max + 1);
            best = std::max(best, term);
        }
        umax_[static_cast<std::size_t>(f)] = best + slack;
    }

    const WorkerDp *best_dp = nullptr;
    int best_f = -1, best_g = -1;
    ServerId best_ps;
    double best_score = kNegInf;
    std::int64_t cells_pruned = 0;
    std::int64_t plans_scored = 0;

    for (std::size_t ti = 0; ti < dpTablesUsed_; ++ti) {
        const WorkerDp &dp = dpTables_[ti];
        for (int f = 0; f <= dp.fCap; ++f) {
            for (int g = dp.demand; g <= dp.gMax; ++g) {
                const double plan_value = dp.value[dp.idx(f, g)];
                if (plan_value <= kNegInf / 2)
                    continue;
                if (plan_value + umax_[static_cast<std::size_t>(f)] <=
                    best_score) {
                    ++cells_pruned;
                    continue;
                }
                harvestPlan(dp, f, g, spec);
                if (planServers_.empty())
                    continue;
                ++plans_scored;

                // Plan footprint into the epoch-stamped scratch: chosen
                // servers, racks (id-ascending, like the reference's
                // std::set) with chosen-server counts, pods with rack
                // counts.
                nextEpoch();
                planRacks_.clear();
                for (const auto &[server, count] : planServers_) {
                    (void)count;
                    const auto si =
                        static_cast<std::size_t>(server.index());
                    inPlanStamp_[si] = epoch_;
                    const int rack = server.index() / spr;
                    const auto ri = static_cast<std::size_t>(rack);
                    if (rackStamp_[ri] != epoch_) {
                        rackStamp_[ri] = epoch_;
                        rackCount_[ri] = 0;
                        planRacks_.push_back(rack);
                    }
                    ++rackCount_[ri];
                }
                if (two_tier && need_cross) {
                    planPods_.clear();
                    for (int rack : planRacks_) {
                        const int pod = rack / rpp;
                        const auto pi = static_cast<std::size_t>(pod);
                        if (podStamp_[pi] != epoch_) {
                            podStamp_[pi] = epoch_;
                            podCount_[pi] = 0;
                            planPods_.push_back(pod);
                        }
                        ++podCount_[pi];
                    }
                }
                const bool single_rack = planRacks_.size() == 1;
                const double plan_n =
                    static_cast<double>(planServers_.size());

                for (int s = 0; s < n_servers; ++s) {
                    const auto si = static_cast<std::size_t>(s);
                    const bool in_plan = inPlanStamp_[si] == epoch_;
                    const int extra_flow = in_plan ? 0 : 1;
                    const int ps_flows = view.serverFlows[si];
                    const Gbps ps_avail = view.serverAvailBw[si];
                    const int f_max =
                        std::max(f, ps_flows + extra_flow);

                    // Hot-spot penalty (Equation 1).
                    double penalty =
                        c / static_cast<double>(f_max + 1);

                    if (need_cross) {
                        const int ps_rack = s / spr;
                        if (!(single_rack &&
                              planRacks_[0] == ps_rack)) {
                            const auto ri =
                                static_cast<std::size_t>(ps_rack);
                            if (crossStamp_[ri] != epoch_) {
                                crossStamp_[ri] = epoch_;
                                crossValue_[ri] = crossingLoss(
                                    topo, view, ps_rack, plan_n, c);
                            }
                            if (crossValue_[ri] > penalty)
                                penalty = crossValue_[ri];
                        }
                    }

                    const double score =
                        plan_value + ps_avail -
                        (in_plan ? psQ0_[si] : psQ1_[si]) - penalty;

                    if (score > best_score) {
                        best_score = score;
                        best_dp = &dp;
                        best_f = f;
                        best_g = g;
                        best_ps = ServerId(s);
                    }
                }
            }
        }
    }
    span.arg("plans", plans_scored);
    span.arg("pruned", cells_pruned);
    NETPACK_COUNT("placement.dp_states_pruned", cells_pruned);

    if (best_dp == nullptr)
        return std::nullopt;

    harvestPlan(*best_dp, best_f, best_g, spec);
    FullPlan full;
    full.score = best_score;
    full.gpusTaken = best_g;
    full.placement.psServer = best_ps;
    for (const auto &[server, count] : planServers_)
        full.placement.workers[server] = count;

    // Sharded PS extension: the gradient splits over psShards PSes,
    // each hosting its own one-PS AllReduce. The extras are the
    // next-best distinct servers by the Equation-1 PS term; only the
    // top psShards-1 need ordering, so a partial_sort replaces the
    // full sort (the explicit id tie-break reproduces the stable
    // sort's insertion order on equal terms).
    if (config_.psShards > 1) {
        shardScored_.clear();
        for (int s = 0; s < n_servers; ++s) {
            const ServerId ps(s);
            if (ps == best_ps)
                continue;
            const auto si = static_cast<std::size_t>(s);
            const bool in_plan =
                full.placement.workers.count(ps) != 0;
            const double term = view.serverAvailBw[si] -
                                (in_plan ? psQ0_[si] : psQ1_[si]);
            shardScored_.emplace_back(term, ps);
        }
        const auto want = std::min<std::size_t>(
            static_cast<std::size_t>(config_.psShards - 1),
            shardScored_.size());
        std::partial_sort(
            shardScored_.begin(),
            shardScored_.begin() + static_cast<std::ptrdiff_t>(want),
            shardScored_.end(), [](const auto &a, const auto &b) {
                if (a.first != b.first)
                    return a.first > b.first;
                return a.second < b.second;
            });
        for (std::size_t k = 0; k < want; ++k)
            full.placement.extraPsServers.push_back(
                shardScored_[k].second);
    }

    // Trim over-allocation: the DP takes whole servers, so the plan may
    // hold up to gpusPerServer-1 extra GPUs. Release the extras from the
    // least-loaded chosen server(s) — the ones contributing the most free
    // GPUs — removing a server entirely if its contribution is consumed.
    int extra = best_g - spec.gpuDemand;
    NETPACK_CHECK(extra >= 0);
    while (extra > 0) {
        auto largest = full.placement.workers.begin();
        for (auto it = full.placement.workers.begin();
             it != full.placement.workers.end(); ++it) {
            if (it->second > largest->second)
                largest = it;
        }
        const int take = std::min(extra, largest->second);
        largest->second -= take;
        extra -= take;
        if (largest->second == 0)
            full.placement.workers.erase(largest);
    }
    NETPACK_CHECK_MSG(!full.placement.workers.empty(),
                      "trimming removed every worker of job "
                          << spec.id.value);
    return full;
}

void
NetPackPlacer::selectiveInaEnable(std::vector<PlacedJob> &placed,
                                  const ClusterTopology &topo,
                                  const std::vector<PlacedJob> &running,
                                  const std::vector<JobSpec> &batch) const
{
    // Gradient volumes weigh the estimator guard's objective. Build the
    // id -> volume map once; the guard queries it O(targets x passes)
    // times and the old per-query linear scan was O(batch) each.
    std::unordered_map<JobId, MBytes> volumes;
    volumes.reserve(batch.size());
    for (const JobSpec &spec : batch)
        volumes.emplace(spec.id,
                        ModelZoo::byName(spec.modelName)
                            .commVolumePerIter());
    const VolumeLookup volume_of = [&volumes](JobId id) -> MBytes {
        const auto it = volumes.find(id);
        return it == volumes.end() ? 0.0 : it->second;
    };
    assignSelectiveIna(topo, placed, running, volume_of);
}

} // namespace netpack
