#include "placement/netpack_placer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/check.h"
#include "common/log.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "placement/backend_plan.h"
#include "placement/ina_policy.h"
#include "placement/knapsack.h"

namespace netpack {

namespace {

constexpr double kNegInf = -1e300;

/**
 * Slack added to the DP-cell upper bounds. The bound is derived from
 * the same quantities the scoring loop reads but groups the floating-
 * point operations differently, so it can undershoot the loop's result
 * by a few ULPs; the slack (orders of magnitude above any rounding
 * error, orders of magnitude below any meaningful score difference)
 * keeps the prune strictly conservative — a pruned cell provably cannot
 * beat the running best under the loop's own arithmetic. The same
 * strictness is what lets the parallel fan-out give every table a
 * private bound: no cell tied with the global maximum is ever pruned
 * under *any* bound, so the first cell achieving the maximum — the
 * serial winner — is found by its table's local scan too.
 */
double
pruneSlack(Gbps c)
{
    return 1e-6 * (1.0 + std::abs(c));
}

/**
 * One source-row relaxation of the worker DP: for every column g of the
 * contiguous [0, n) window, offer src[g] + add to dst[g] (the target row
 * shifted by the candidate's weight) and record @p src_f in the decision
 * row where the offer wins. Two branch-free passes instead of one fused
 * conditional store: the decision pass must compare against the value
 * row as it stood *before* this source's value pass, which is exactly
 * what running it first provides — bit-identical to the reference's
 * fused update, and both passes vectorize. The pointers never overlap
 * (the caller snapshots a row whenever source and target coincide).
 */
void
relaxRow(const double *__restrict src, double *__restrict dst,
         std::int8_t *__restrict dec, int n, double add, int src_f)
{
    const auto f8 = static_cast<std::int8_t>(src_f);
    for (int g = 0; g < n; ++g)
        dec[g] = src[g] + add > dst[g] ? f8 : dec[g];
    for (int g = 0; g < n; ++g) {
        const double offered = src[g] + add;
        dst[g] = offered > dst[g] ? offered : dst[g];
    }
}

} // namespace

NetPackPlacer::NetPackPlacer(NetPackConfig config)
    : config_(config)
{
    enableBatchScores();
    NETPACK_REQUIRE(config.maxFlowsTracked >= 1 &&
                        config.maxFlowsTracked <= 127,
                    "maxFlowsTracked must be in [1, 127], got "
                        << config.maxFlowsTracked);
    NETPACK_REQUIRE(config.psShards >= 1 && config.psShards <= 64,
                    "psShards must be in [1, 64], got "
                        << config.psShards);
    NETPACK_REQUIRE(config.jobs >= 1 && config.jobs <= 256,
                    "jobs must be in [1, 256], got " << config.jobs);
}

NetPackPlacer::~NetPackPlacer() = default;

void
NetPackPlacer::PlanScratch::ensure(int n_servers, int n_racks, int n_pods)
{
    const auto ns = static_cast<std::size_t>(n_servers);
    const auto nr = static_cast<std::size_t>(n_racks);
    const auto np = static_cast<std::size_t>(n_pods);
    if (inPlanStamp.size() == ns && rackStamp.size() == nr &&
        podStamp.size() == np)
        return;
    inPlanStamp.assign(ns, 0);
    rackStamp.assign(nr, 0);
    rackCount.assign(nr, 0);
    podStamp.assign(np, 0);
    podCount.assign(np, 0);
    fmaxScratch.assign(ns, 0);
    penScratch.assign(ns, 0.0);
    scoreScratch.assign(ns, 0.0);
    epoch = 0;
}

void
NetPackPlacer::PlanScratch::nextEpoch()
{
    if (++epoch == 0) {
        // Stamp wrap: every stale stamp could now collide with a fresh
        // epoch, so clear them all once per 2^32 plans.
        std::fill(inPlanStamp.begin(), inPlanStamp.end(), 0);
        std::fill(rackStamp.begin(), rackStamp.end(), 0);
        std::fill(podStamp.begin(), podStamp.end(), 0);
        epoch = 1;
    }
}

void
NetPackPlacer::ensureScratchDims(const ClusterTopology &topo)
{
    scratchServers_ = topo.numServers();
    scratchRacks_ = topo.numRacks();
    scratchPods_ = topo.twoTier() ? topo.numPods() : 0;
}

NetPackPlacer::PlanScratch *
NetPackPlacer::acquireScratch()
{
    PlanScratch *scratch = nullptr;
    {
        std::lock_guard<std::mutex> lock(scratchMutex_);
        if (!scratchFree_.empty()) {
            scratch = scratchFree_.back();
            scratchFree_.pop_back();
        }
    }
    if (scratch == nullptr) {
        auto owned = std::make_unique<PlanScratch>();
        scratch = owned.get();
        std::lock_guard<std::mutex> lock(scratchMutex_);
        scratchAll_.push_back(std::move(owned));
    }
    // No-op when the topology dimensions are unchanged, so a warm
    // arena carries its stamps (and capacity) across plans and batches.
    scratch->ensure(scratchServers_, scratchRacks_, scratchPods_);
    return scratch;
}

void
NetPackPlacer::releaseScratch(PlanScratch *scratch)
{
    std::lock_guard<std::mutex> lock(scratchMutex_);
    scratchFree_.push_back(scratch);
}

NetPackPlacer::ScratchLease::ScratchLease(NetPackPlacer &placer)
    : placer_(placer), scratch_(placer.acquireScratch())
{
}

NetPackPlacer::ScratchLease::~ScratchLease()
{
    placer_.releaseScratch(scratch_);
}

void
NetPackPlacer::runBatch(const std::vector<JobSpec> &batch)
{
    NETPACK_SPAN(batch_span, "placement.batch");
    batch_span.arg("batch", batch.size());
    const std::int64_t view_rebuilds_before = ctx().stats().viewRebuilds;
    const std::int64_t view_reuses_before = ctx().stats().viewReuses;

    // Step ④ treats the pre-batch jobs as fixed background; snapshot
    // them before this batch's placements enter the context.
    const std::vector<PlacedJob> running = ctx().running();

    // Step ①: knapsack job-subset selection over the free GPUs.
    std::vector<KnapsackItem> items;
    items.reserve(batch.size());
    for (const auto &spec : batch)
        items.push_back({spec.gpuDemand, spec.value});
    std::vector<std::size_t> chosen;
    {
        NETPACK_SPAN(span, "placement.knapsack");
        span.arg("items", items.size());
        chosen = solveKnapsack(items, gpus().totalFreeGpus());
    }

    std::vector<bool> selected(batch.size(), false);
    for (std::size_t i : chosen)
        selected[i] = true;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!selected[i])
            defer(batch[i].id);
    }

    // Place admitted jobs in value-descending order (Alg. 2 line 3).
    std::vector<const JobSpec *> to_place;
    to_place.reserve(chosen.size());
    for (std::size_t i : chosen)
        to_place.push_back(&batch[i]);
    std::stable_sort(to_place.begin(), to_place.end(),
                     [](const JobSpec *a, const JobSpec *b) {
                         return a->value > b->value;
                     });

    for (const JobSpec *spec : to_place) {
        const PackResult attempt = tryPlace(*spec);
        if (attempt.placed)
            accept(attempt);
        else
            defer(spec->id);
    }

    // Step ④: shift the INA budget toward jobs that benefit the most.
    if (config_.selectiveIna) {
        NETPACK_SPAN(span, "placement.selective_ina");
        span.arg("placed", result().placed.size());
        selectiveInaEnable(result().placed, topo(), running, batch);
        // Propagate the final INA assignment into the context (no-op for
        // jobs whose rack set step ④ kept unchanged).
        for (const PlacedJob &job : result().placed)
            ctx().updateInaRacks(job.id, job.placement.inaRacks);
    }

    NETPACK_COUNT("placement.batches", 1);
    NETPACK_COUNT("placement.jobs_placed",
                  static_cast<std::int64_t>(result().placed.size()));
    NETPACK_COUNT("placement.jobs_deferred",
                  static_cast<std::int64_t>(result().deferred.size()));
    batch_span.arg("placed", result().placed.size());
    batch_span.arg("deferred", result().deferred.size());
    batch_span.arg("view_rebuilds",
                   ctx().stats().viewRebuilds - view_rebuilds_before);
    batch_span.arg("view_reuses",
                   ctx().stats().viewReuses - view_reuses_before);
}

bool
NetPackPlacer::planOne(const JobSpec &spec, const ClusterTopology &topo,
                       GpuLedger &gpus, PlacementContext &ctx,
                       PackResult &out)
{
    // Non-PS backends bypass Equation-1 (it scores the PS bottleneck,
    // which they do not have) for the shared rack-adjacency plan; the
    // reference placer calls the same helper, so the ref/opt
    // bit-identity contract extends to mixed traces.
    if (spec.backend != BackendKind::PsIna) {
        return placement_util::planNonPsPlacement(spec, topo, gpus,
                                                  out.job.placement);
    }

    ensureScratchDims(topo);
    // Link capacities feeding the crossing penalty (topology-constant,
    // refreshed per call so the placer may serve several topologies;
    // read-only once the fan-out starts).
    rackCap_.resize(static_cast<std::size_t>(topo.numRacks()));
    for (int r = 0; r < topo.numRacks(); ++r)
        rackCap_[static_cast<std::size_t>(r)] =
            topo.coreLinkCapacity(RackId(r));
    if (topo.twoTier()) {
        podCap_.resize(static_cast<std::size_t>(topo.numPods()));
        for (int p = 0; p < topo.numPods(); ++p)
            podCap_[static_cast<std::size_t>(p)] =
                topo.link(topo.podUplink(p)).capacity;
    }

    // Single-server fast path (lines 4-6): no cross-server traffic.
    const ServerId single =
        placement_util::bestFitSingleServer(topo, gpus, spec.gpuDemand);
    if (single.valid()) {
        out.job.placement.workers[single] = spec.gpuDemand;
        out.job.placement.psServer = single;
        gpus.allocate(single, spec.id, spec.gpuDemand);
        NETPACK_COUNT("placement.single_server_fastpath", 1);
        return true;
    }

    // Line 7: re-estimate the steady state with every job placed so
    // far (resources are shared, not reserved, so each new job moves
    // the fair share of everyone else). The context re-converges
    // only the jobs coupled to the previous placement's resources
    // and snapshots the result flat, once per revision.
    const SteadyStateView &view = ctx.steadyStateView();

    // Table descriptors: the global (rack-blind) DP first, then — in
    // oversubscribed networks — rack-local alternatives for every rack
    // that could host the whole job, and pod-local ones in two-tier
    // mode (crossing a rack is cheaper than crossing a pod). The PS
    // scoring prefers the local plans when the core is the bottleneck.
    const int rpp = topo.config().racksPerPod;
    tableSpecs_.clear();
    tableSpecs_.emplace_back(RackId(), -1);
    if (config_.oversubPenalty && topo.config().oversubscription > 1.0) {
        for (int r = 0; r < topo.numRacks(); ++r) {
            const RackId rack(r);
            if (gpus.freeGpusInRack(rack) < spec.gpuDemand)
                continue;
            tableSpecs_.emplace_back(rack, -1);
        }
        if (topo.twoTier()) {
            for (int p = 0; p < topo.numPods(); ++p) {
                int pod_free = 0;
                const int r_end =
                    std::min(topo.numRacks(), (p + 1) * rpp);
                for (int r = p * rpp; r < r_end; ++r)
                    pod_free += gpus.freeGpusInRack(RackId(r));
                if (pod_free < spec.gpuDemand)
                    continue;
                tableSpecs_.emplace_back(RackId(), p);
            }
        }
    }
    const std::size_t n_tables = tableSpecs_.size();
    while (dpTables_.size() < n_tables)
        dpTables_.emplace_back();
    dpTablesUsed_ = n_tables;
    tableBests_.assign(n_tables, TableBest{});

    // Plan-invariant Equation-1 terms, hoisted before the fan-out.
    prepareScoring(topo, view);

    std::int64_t plans_scored = 0;
    std::int64_t cells_pruned = 0;
    {
        NETPACK_SPAN(span, "placement.ps_scoring");

        // Each task builds one DP table and scores every PS location of
        // every plan in it against a leased scratch arena — the only
        // shared mutable state is the arena freelist behind its mutex.
        const auto run_table = [&](std::size_t ti, double &bound) {
            WorkerDp &dp = dpTables_[ti];
            const auto &[rack, pod] = tableSpecs_[ti];
            workerPlacement(spec, topo, gpus, view, dp, rack, pod);
            ScratchLease lease(*this);
            scoreTable(spec, topo, view, dp, lease.get(), bound,
                       tableBests_[ti]);
        };

        const bool want_par = config_.jobs > 1 && n_tables > 1;
        if (want_par && !exec::ThreadPool::insideTask()) {
            if (!pool_)
                pool_ = std::make_unique<exec::ThreadPool>(
                    static_cast<std::size_t>(config_.jobs));
            NETPACK_COUNT("placement.par_tasks",
                          static_cast<std::int64_t>(n_tables));
            // Every table gets a private prune bound starting at -inf:
            // strictly more conservative than the serial running bound,
            // so more cells get scored but no cell tied with the global
            // maximum is ever skipped — the reduction below recovers
            // the serial argmax exactly.
            exec::parallelFor(*pool_, n_tables, [&](std::size_t ti) {
                double bound = kNegInf;
                run_table(ti, bound);
            });
        } else {
            if (want_par)
                // jobs > 1 but this placer already runs inside a pool
                // task (portfolio lineup, serve what-if, sweep cell):
                // degrade to serial instead of nesting fan-outs.
                NETPACK_COUNT("placement.par_serial_fallbacks", 1);
            // Serial path: one running bound threads through all
            // tables, exactly the reference traversal's prune state.
            double bound = kNegInf;
            for (std::size_t ti = 0; ti < n_tables; ++ti)
                run_table(ti, bound);
        }

        for (const TableBest &tb : tableBests_) {
            plans_scored += tb.plansScored;
            cells_pruned += tb.cellsPruned;
        }
        span.arg("tables", n_tables);
        span.arg("plans", plans_scored);
        span.arg("pruned", cells_pruned);
    }
    NETPACK_COUNT("placement.dp_states_pruned", cells_pruned);

    // Serial reduction in table order with strict >: the first table
    // achieving the global maximum wins, which is the cell the serial
    // (and reference) scan would have kept.
    const WorkerDp *best_dp = nullptr;
    int best_f = -1, best_g = -1;
    ServerId best_ps;
    double best_score = kNegInf;
    for (std::size_t ti = 0; ti < n_tables; ++ti) {
        const TableBest &tb = tableBests_[ti];
        if (tb.found && tb.score > best_score) {
            best_score = tb.score;
            best_dp = &dpTables_[ti];
            best_f = tb.f;
            best_g = tb.g;
            best_ps = tb.ps;
        }
    }
    if (best_dp == nullptr)
        return false;

    ScratchLease lease(*this);
    PlanScratch &scratch = lease.get();
    harvestPlan(*best_dp, best_f, best_g, spec, scratch);
    FullPlan full;
    full.score = best_score;
    full.gpusTaken = best_g;
    full.placement.psServer = best_ps;
    for (const auto &[server, count] : scratch.planServers)
        full.placement.workers[server] = count;

    // Sharded PS extension: the gradient splits over psShards PSes,
    // each hosting its own one-PS AllReduce. The extras are the
    // next-best distinct servers by the Equation-1 PS term; only the
    // top psShards-1 need ordering, so a partial_sort replaces the
    // full sort (the explicit id tie-break reproduces the stable
    // sort's insertion order on equal terms).
    if (config_.psShards > 1) {
        const int n_servers = topo.numServers();
        shardScored_.clear();
        for (int s = 0; s < n_servers; ++s) {
            const ServerId ps(s);
            if (ps == best_ps)
                continue;
            const auto si = static_cast<std::size_t>(s);
            const bool in_plan =
                full.placement.workers.count(ps) != 0;
            const double term = view.serverAvailBw[si] -
                                (in_plan ? psQ0_[si] : psQ1_[si]);
            shardScored_.emplace_back(term, ps);
        }
        const auto want = std::min<std::size_t>(
            static_cast<std::size_t>(config_.psShards - 1),
            shardScored_.size());
        std::partial_sort(
            shardScored_.begin(),
            shardScored_.begin() + static_cast<std::ptrdiff_t>(want),
            shardScored_.end(), [](const auto &a, const auto &b) {
                if (a.first != b.first)
                    return a.first > b.first;
                return a.second < b.second;
            });
        for (std::size_t k = 0; k < want; ++k)
            full.placement.extraPsServers.push_back(
                shardScored_[k].second);
    }

    // Trim over-allocation: the DP takes whole servers, so the plan may
    // hold up to gpusPerServer-1 extra GPUs. Release the extras from the
    // least-loaded chosen server(s) — the ones contributing the most free
    // GPUs — removing a server entirely if its contribution is consumed.
    int extra = best_g - spec.gpuDemand;
    NETPACK_CHECK(extra >= 0);
    while (extra > 0) {
        auto largest = full.placement.workers.begin();
        for (auto it = full.placement.workers.begin();
             it != full.placement.workers.end(); ++it) {
            if (it->second > largest->second)
                largest = it;
        }
        const int take = std::min(extra, largest->second);
        largest->second -= take;
        extra -= take;
        if (largest->second == 0)
            full.placement.workers.erase(largest);
    }
    NETPACK_CHECK_MSG(!full.placement.workers.empty(),
                      "trimming removed every worker of job "
                          << spec.id.value);

    out.score = full.score;
    out.scored = true;

    Placement placement = std::move(full.placement);
    // Default to INA-on everywhere; step ④ may disable some racks.
    placement.inaRacks = placement.allRacks(topo);
    placement_util::applyAllocation(gpus, spec.id, placement);
    out.job.placement = std::move(placement);
    return true;
}

void
NetPackPlacer::workerPlacement(const JobSpec &spec,
                               const ClusterTopology &topo,
                               const GpuLedger &gpus,
                               const SteadyStateView &view, WorkerDp &dp,
                               RackId restrict_rack, int restrict_pod) const
{
    NETPACK_SPAN(span, "placement.worker_dp");
    const int demand = spec.gpuDemand;
    const int per_server = topo.gpusPerServer();
    // The DP takes all-or-none of each server's free GPUs, so it searches
    // plans totalling [demand, demand + per_server] GPUs and the extras
    // are trimmed after step ③ (Section 5.2 step ②).
    dp.demand = demand;
    dp.gMax = demand + per_server;
    dp.gn = dp.gMax + 1;
    dp.fCap = config_.twoDimWeight ? config_.maxFlowsTracked : 0;
    const Gbps c = topo.config().serverLinkGbps;

    // Servers are rack-major and racks pod-major, so the restricted
    // variants cover contiguous id ranges.
    const int spr = topo.config().serversPerRack;
    int s_begin = 0;
    int s_end = topo.numServers();
    if (restrict_rack.valid()) {
        s_begin = restrict_rack.value * spr;
        s_end = s_begin + spr;
    } else if (restrict_pod >= 0) {
        const int pod_servers = topo.config().racksPerPod * spr;
        s_begin = restrict_pod * pod_servers;
        s_end = std::min(topo.numServers(), s_begin + pod_servers);
    }
    dp.candidates.clear();
    for (int s = s_begin; s < s_end; ++s) {
        const int free = gpus.freeGpus(ServerId(s));
        if (free <= 0)
            continue;
        Candidate cand;
        cand.id = ServerId(s);
        cand.weight = free;
        // The DP's flow coordinate is clamped to f_cap (0 when the 2-D
        // weight is ablated), but the server *value* always sees the
        // real flow count — the ablation isolates the extra knapsack
        // dimension, not the flow-awareness of the heuristic.
        const int real_flows =
            std::clamp(view.serverFlows[static_cast<std::size_t>(s)], 0,
                       127);
        cand.flows = std::min(real_flows, dp.fCap);
        const Gbps avail = view.serverAvailBw[static_cast<std::size_t>(s)];
        // Server value: reward residual bandwidth, punish the throughput
        // the new stream would steal from the server's existing flows.
        cand.value = avail - (c - avail) /
                                 static_cast<double>(real_flows + 1);
        dp.candidates.push_back(cand);
    }

    const std::size_t cells = dp.cells();
    dp.value.assign(cells, kNegInf);
    dp.value[dp.idx(0, 0)] = 0.0;
    dp.decisions.assign(dp.candidates.size() * cells, -1);

    // In-place DP over the single value table, restructured into
    // contiguous row-relaxations so the inner loops are branch-free and
    // vectorize. A stage taking candidate (weight w, flows cf) maps
    // source cell (f', g) to target (max(f', cf), g + w); grouping by
    // target row gives (a) the self rows f > cf, each fed only by
    // itself, relaxed from a pre-stage snapshot so the shifted write
    // window never feeds its own reads, and (b) row cf, fed by every
    // source f' <= cf — relaxed in f'-ascending order (rows below cf
    // are never written this stage, and the f' = cf self-transition
    // reads its own pre-stage snapshot, taken before any f' < cf relax
    // writes into the row). That is exactly the transition-arrival
    // order of the reference's g-descending / f-ascending cell loop, so
    // values and decision bytes stay bit-identical for every reachable
    // cell. Unlike the reference, whole rows are relaxed without the
    // per-cell reachability test: transitions out of unreachable
    // (-1e300) cells write equally unreachable values (adding one
    // candidate value moves them ~1e4 at most, never past the
    // kNegInf/2 observation threshold), and a cell that later turns
    // reachable can only be improved by reachable sources — its final
    // value and *latest* decision byte are untouched by the ghost
    // writes, which is all the lazy backtracking reads.
    // fReach/reach_g still skip provably unreachable rows and columns.
    dp.fReach.assign(static_cast<std::size_t>(dp.fCap) + 1, 0);
    dp.fReach[0] = 1;
    dp.rowScratch.resize(static_cast<std::size_t>(dp.gn));
    int reach_g = 0;
    for (std::size_t ci = 0; ci < dp.candidates.size(); ++ci) {
        const Candidate &cand = dp.candidates[ci];
        std::int8_t *dec = dp.decisions.data() + ci * cells;
        const int w = cand.weight;
        const int cf = cand.flows;
        const int g_hi = std::min(dp.gMax - w, reach_g);
        if (g_hi >= 0) {
            const int n_cols = g_hi + 1;
            double *snapshot = dp.rowScratch.data();
            for (int f = cf + 1; f <= dp.fCap; ++f) {
                if (!dp.fReach[static_cast<std::size_t>(f)])
                    continue;
                const double *row = dp.value.data() + dp.idx(f, 0);
                std::copy(row, row + n_cols, snapshot);
                relaxRow(snapshot, dp.value.data() + dp.idx(f, w),
                         dec + dp.idx(f, w), n_cols, cand.value, f);
            }
            const bool cf_reachable = dp.fReach[
                static_cast<std::size_t>(cf)] != 0;
            if (cf_reachable) {
                const double *row = dp.value.data() + dp.idx(cf, 0);
                std::copy(row, row + n_cols, snapshot);
            }
            double *cf_dst = dp.value.data() + dp.idx(cf, w);
            std::int8_t *cf_dec = dec + dp.idx(cf, w);
            for (int f = 0; f < cf; ++f) {
                if (!dp.fReach[static_cast<std::size_t>(f)])
                    continue;
                relaxRow(dp.value.data() + dp.idx(f, 0), cf_dst, cf_dec,
                         n_cols, cand.value, f);
            }
            if (cf_reachable)
                relaxRow(snapshot, cf_dst, cf_dec, n_cols, cand.value,
                         cf);
        }
        dp.fReach[static_cast<std::size_t>(cf)] = 1;
        reach_g = std::min(dp.gMax, reach_g + w);
    }
    span.arg("candidates", dp.candidates.size());
    span.arg("cells", cells);
}

void
NetPackPlacer::prepareScoring(const ClusterTopology &topo,
                              const SteadyStateView &view)
{
    const Gbps c = topo.config().serverLinkGbps;
    const int n_servers = topo.numServers();

    // Equation 1's per-server bandwidth-steal terms are plan-invariant;
    // the naive loop re-derived them per (plan, server) pair. q0: the
    // PS rides a chosen server (no extra flow); q1: it adds one.
    psQ0_.resize(static_cast<std::size_t>(n_servers));
    psQ1_.resize(static_cast<std::size_t>(n_servers));
    const int *flows = view.serverFlows.data();
    const double *avail = view.serverAvailBw.data();
    double *q0 = psQ0_.data();
    double *q1 = psQ1_.data();
    for (int s = 0; s < n_servers; ++s) {
        q0[s] = (c - avail[s]) / static_cast<double>(flows[s] + 1);
        q1[s] = (c - avail[s]) / static_cast<double>(flows[s] + 2);
    }

    // umax_[f]: an upper bound (+ slack) on any server's PS contribution
    // to a plan at DP row f — avail - q - penalty with the smallest
    // possible steal term (q1 <= q0 since avail <= C) and the smallest
    // possible penalty (the plain hot-spot term at the smallest f_max).
    // A cell whose plan value plus this bound cannot beat the running
    // best is skipped without backtracking or scoring ("pruned before
    // harvesting"); the iteration order is unchanged and the winner
    // breaks ties exactly like the exhaustive loop, so pruning never
    // changes the argmax. The division pass runs branch-free into a
    // scratch row (it vectorizes); the max reduction stays scalar.
    const int f_cap = config_.twoDimWeight ? config_.maxFlowsTracked : 0;
    const double slack = pruneSlack(c);
    umax_.resize(static_cast<std::size_t>(f_cap) + 1);
    umaxTermScratch_.resize(static_cast<std::size_t>(n_servers));
    double *term = umaxTermScratch_.data();
    for (int f = 0; f <= f_cap; ++f) {
        for (int s = 0; s < n_servers; ++s) {
            const int fs = flows[s] + 1;
            const int f_max = f > fs ? f : fs;
            term[s] =
                avail[s] - q1[s] - c / static_cast<double>(f_max + 1);
        }
        double best = kNegInf;
        for (int s = 0; s < n_servers; ++s)
            best = std::max(best, term[s]);
        umax_[static_cast<std::size_t>(f)] = best + slack;
    }
}

void
NetPackPlacer::harvestPlan(const WorkerDp &dp, int f, int g,
                           const JobSpec &spec, PlanScratch &scratch) const
{
    scratch.planServers.clear();
    const std::size_t cells = dp.cells();
    int bf = f, bg = g;
    for (std::size_t ci = dp.candidates.size(); ci-- > 0;) {
        const std::int8_t prev_f = dp.decisions[ci * cells + dp.idx(bf, bg)];
        if (prev_f < 0)
            continue;
        scratch.planServers.emplace_back(dp.candidates[ci].id,
                                         dp.candidates[ci].weight);
        bg -= dp.candidates[ci].weight;
        bf = prev_f;
    }
    NETPACK_CHECK_MSG(bf == 0 && bg == 0,
                      "worker DP backtracking failed for job "
                          << spec.id.value);
    // The backtrack walks stages last-to-first; candidates were
    // collected id-ascending, so reversing restores ascending order
    // (what the reference gets from sorting the harvested pairs).
    std::reverse(scratch.planServers.begin(), scratch.planServers.end());
}

double
NetPackPlacer::crossingLoss(const ClusterTopology &topo,
                            const SteadyStateView &view, int ps_rack,
                            double plan_servers, Gbps c,
                            const PlanScratch &scratch) const
{
    // The crossing loss depends on the plan's rack footprint and the PS
    // rack only — not on which server of the rack hosts the PS — so
    // scoreTable computes it once per (plan, rack).
    const bool ps_rack_in_plan =
        scratch.rackStamp[static_cast<std::size_t>(ps_rack)] ==
        scratch.epoch;
    const int total_racks = static_cast<int>(scratch.planRacks.size()) +
                            (ps_rack_in_plan ? 0 : 1);
    Gbps min_share = std::numeric_limits<double>::infinity();
    const auto consider_rack = [&](int rack, int new_flows) {
        if (new_flows == 0)
            return;
        const int existing =
            view.rackFlows[static_cast<std::size_t>(rack)];
        min_share = std::min(
            min_share, rackCap_[static_cast<std::size_t>(rack)] /
                           static_cast<double>(existing + new_flows));
    };
    for (int rack : scratch.planRacks) {
        if (rack == ps_rack) {
            // Streams from every remote rack converge here.
            consider_rack(rack, total_racks - 1);
        } else {
            // One merged stream per remote rack with INA;
            // conservatively, one per worker server without.
            consider_rack(
                rack, scratch.rackCount[static_cast<std::size_t>(rack)]);
        }
    }
    if (!ps_rack_in_plan)
        consider_rack(ps_rack, total_racks - 1);

    if (topo.twoTier()) {
        // Cross-pod plans additionally share the involved pods' uplinks.
        const int ps_pod = ps_rack / topo.config().racksPerPod;
        const bool ps_pod_in_plan =
            scratch.podStamp[static_cast<std::size_t>(ps_pod)] ==
            scratch.epoch;
        const bool extra_pod = !ps_rack_in_plan && !ps_pod_in_plan;
        const int n_pods = static_cast<int>(scratch.planPods.size()) +
                           (extra_pod ? 1 : 0);
        const auto consider_pod = [&](int pod, int racks_in_pod) {
            // Streams crossing this pod's uplink: one merged stream per
            // rack on the smaller side.
            const int crossing =
                std::min(racks_in_pod, total_racks - racks_in_pod);
            if (crossing == 0)
                return;
            const int existing =
                view.podUplinkFlows[static_cast<std::size_t>(pod)];
            min_share = std::min(
                min_share, podCap_[static_cast<std::size_t>(pod)] /
                               static_cast<double>(existing + crossing));
        };
        if (n_pods > 1) {
            for (int pod : scratch.planPods) {
                int racks_in_pod =
                    scratch.podCount[static_cast<std::size_t>(pod)];
                if (!ps_rack_in_plan && pod == ps_pod)
                    ++racks_in_pod;
                consider_pod(pod, racks_in_pod);
            }
            if (extra_pod)
                consider_pod(ps_pod, 1);
        }
    }

    if (std::isfinite(min_share) && min_share < c) {
        // The plan's value credits every chosen server with
        // access-limited bandwidth; a core bottleneck caps all of the
        // job's streams at min_share, so the loss applies once per
        // chosen server.
        return (c - min_share) * plan_servers;
    }
    return 0.0;
}

void
NetPackPlacer::scoreTable(const JobSpec &spec, const ClusterTopology &topo,
                          const SteadyStateView &view, const WorkerDp &dp,
                          PlanScratch &scratch, double &bound,
                          TableBest &out) const
{
    const Gbps c = topo.config().serverLinkGbps;
    const bool oversubscribed =
        topo.config().oversubscription > 1.0 ||
        (topo.twoTier() && topo.config().podOversubscription > 1.0);
    const bool need_cross = config_.oversubPenalty && oversubscribed;
    const int n_servers = topo.numServers();
    const int n_racks = topo.numRacks();
    const int spr = topo.config().serversPerRack;
    const bool two_tier = topo.twoTier();
    const int rpp = two_tier ? topo.config().racksPerPod : 0;

    const int *flows = view.serverFlows.data();
    const double *avail = view.serverAvailBw.data();
    const double *q0 = psQ0_.data();
    const double *q1 = psQ1_.data();

    for (int f = 0; f <= dp.fCap; ++f) {
        for (int g = dp.demand; g <= dp.gMax; ++g) {
            const double plan_value = dp.value[dp.idx(f, g)];
            if (plan_value <= kNegInf / 2)
                continue;
            if (plan_value + umax_[static_cast<std::size_t>(f)] <= bound) {
                ++out.cellsPruned;
                continue;
            }
            harvestPlan(dp, f, g, spec, scratch);
            if (scratch.planServers.empty())
                continue;
            ++out.plansScored;

            // Plan footprint into the epoch-stamped scratch: chosen
            // servers, racks (id-ascending, like the reference's
            // std::set) with chosen-server counts, pods with rack
            // counts.
            scratch.nextEpoch();
            const std::uint32_t epoch = scratch.epoch;
            scratch.planRacks.clear();
            for (const auto &[server, count] : scratch.planServers) {
                (void)count;
                const auto si = static_cast<std::size_t>(server.index());
                scratch.inPlanStamp[si] = epoch;
                const int rack = server.index() / spr;
                const auto ri = static_cast<std::size_t>(rack);
                if (scratch.rackStamp[ri] != epoch) {
                    scratch.rackStamp[ri] = epoch;
                    scratch.rackCount[ri] = 0;
                    scratch.planRacks.push_back(rack);
                }
                ++scratch.rackCount[ri];
            }
            if (two_tier && need_cross) {
                scratch.planPods.clear();
                for (int rack : scratch.planRacks) {
                    const int pod = rack / rpp;
                    const auto pi = static_cast<std::size_t>(pod);
                    if (scratch.podStamp[pi] != epoch) {
                        scratch.podStamp[pi] = epoch;
                        scratch.podCount[pi] = 0;
                        scratch.planPods.push_back(pod);
                    }
                    ++scratch.podCount[pi];
                }
            }
            const bool single_rack = scratch.planRacks.size() == 1;
            const double plan_n =
                static_cast<double>(scratch.planServers.size());

            // Equation 1 for every PS candidate, decomposed into
            // branch-free contiguous passes so the divisions and
            // selects vectorize; the values and the strict-> argmax
            // order are exactly the reference's fused per-server loop.
            const std::uint32_t *stamp = scratch.inPlanStamp.data();
            // Pass A: the hot-spot flow count, f_max + 1 = max(f,
            // flows + (PS adds a flow unless it rides a plan
            // server)) + 1.
            int *fm = scratch.fmaxScratch.data();
            for (int s = 0; s < n_servers; ++s) {
                const int fs = flows[s] + (stamp[s] == epoch ? 0 : 1);
                fm[s] = (f > fs ? f : fs) + 1;
            }
            // Pass B: the plain hot-spot penalty C / (f_max + 1).
            double *pen = scratch.penScratch.data();
            for (int s = 0; s < n_servers; ++s)
                pen[s] = c / static_cast<double>(fm[s]);
            // Pass C: the oversubscription penalty, identical for all
            // servers of a rack — computed once per rack, folded in as
            // max(pen, crossing) over the rack's contiguous id range.
            // A zero crossing loss is a no-op under max (pen >= 0).
            if (need_cross) {
                for (int r = 0; r < n_racks; ++r) {
                    if (single_rack && scratch.planRacks[0] == r)
                        continue;
                    const double cross =
                        crossingLoss(topo, view, r, plan_n, c, scratch);
                    if (cross <= 0.0)
                        continue;
                    double *seg = pen + r * spr;
                    const int seg_n =
                        std::min(spr, n_servers - r * spr);
                    for (int s = 0; s < seg_n; ++s)
                        seg[s] = cross > seg[s] ? cross : seg[s];
                }
            }
            // Pass D: the full Equation-1 score.
            double *score = scratch.scoreScratch.data();
            for (int s = 0; s < n_servers; ++s) {
                // Load both steal terms unconditionally so the select
                // if-converts (a conditional load defeats it).
                const double q_on = q0[s];
                const double q_off = q1[s];
                const double q = stamp[s] == epoch ? q_on : q_off;
                score[s] = plan_value + avail[s] - q - pen[s];
            }
            // Scalar argmax in the reference's traversal order (strict
            // >, first winner kept) — also raises the prune bound.
            for (int s = 0; s < n_servers; ++s) {
                if (score[s] > bound) {
                    bound = score[s];
                    out.score = score[s];
                    out.f = f;
                    out.g = g;
                    out.ps = ServerId(s);
                    out.found = true;
                }
            }
        }
    }
}

void
NetPackPlacer::selectiveInaEnable(std::vector<PlacedJob> &placed,
                                  const ClusterTopology &topo,
                                  const std::vector<PlacedJob> &running,
                                  const std::vector<JobSpec> &batch) const
{
    // Gradient volumes weigh the estimator guard's objective. Build the
    // id -> volume map once; the guard queries it O(targets x passes)
    // times and the old per-query linear scan was O(batch) each.
    // Per-backend volume factors scale the gradient by what the backend
    // actually moves per iteration (1 for PS, so pure-PS batches are
    // untouched).
    std::unordered_map<JobId, int> worker_servers;
    worker_servers.reserve(placed.size());
    for (const PlacedJob &job : placed)
        worker_servers.emplace(
            job.id, static_cast<int>(job.placement.workers.size()));
    std::unordered_map<JobId, MBytes> volumes;
    volumes.reserve(batch.size());
    for (const JobSpec &spec : batch) {
        MBytes volume =
            ModelZoo::byName(spec.modelName).commVolumePerIter();
        if (spec.backend != BackendKind::PsIna) {
            const auto it = worker_servers.find(spec.id);
            if (it != worker_servers.end())
                volume *= backendVolumeFactor(spec.backend, it->second);
        }
        volumes.emplace(spec.id, volume);
    }
    const VolumeLookup volume_of = [&volumes](JobId id) -> MBytes {
        const auto it = volumes.find(id);
        return it == volumes.end() ? 0.0 : it->second;
    };
    assignSelectiveIna(topo, placed, running, volume_of);
}

} // namespace netpack
