/**
 * @file
 * Exhaustive joint placement for small instances. The paper formulates
 * offline placement as a MIP (Table 3) and reports that Gurobi needs
 * hours at scale; we have no Gurobi, so this solver enumerates every
 * feasible joint placement of a small batch and minimizes the MIP
 * objective Σ_j d^(j)/v^(j) with v^(j) evaluated by the water-filling
 * steady state. It is the ground truth for DP-quality tests and the
 * `bench_mip_vs_dp` ablation.
 */

#ifndef NETPACK_PLACEMENT_EXHAUSTIVE_H
#define NETPACK_PLACEMENT_EXHAUSTIVE_H

#include <vector>

#include "placement/placer.h"

namespace netpack {

/** Result of an exhaustive search. */
struct ExhaustiveResult
{
    /** The optimal joint placement (one entry per input job). */
    std::vector<PlacedJob> placements;
    /** Optimal objective: total communication time Σ d^(j)/v^(j). */
    double objective = 0.0;
    /** Joint plans evaluated (search-space size witness). */
    long long plansEvaluated = 0;
};

/**
 * Evaluate the MIP objective of a given joint placement: the sum over
 * network jobs of (gradient size / converged throughput), in seconds.
 * Local jobs contribute zero.
 */
double placementObjective(const ClusterTopology &topo,
                          const std::vector<JobSpec> &jobs,
                          const std::vector<PlacedJob> &placements);

/**
 * Same objective read off a shared resource engine: @p ctx must already
 * track every placement of @p jobs. The steady state is re-converged
 * incrementally (only the component the last add/remove dirtied), which
 * is what makes leaf evaluation affordable inside the exhaustive search.
 */
double placementObjective(const std::vector<JobSpec> &jobs,
                          PlacementContext &ctx);

/** Exact solver; refuses instances beyond its plan budget. */
class ExhaustiveSolver
{
  public:
    /** Abort threshold on enumerated joint plans. */
    explicit ExhaustiveSolver(long long max_plans = 2'000'000);

    /**
     * Find the objective-minimal joint placement of @p jobs on a cluster
     * whose current occupancy is @p gpus. ConfigError when the search
     * space exceeds the plan budget or a job cannot fit.
     */
    ExhaustiveResult solve(const std::vector<JobSpec> &jobs,
                           const ClusterTopology &topo,
                           const GpuLedger &gpus) const;

  private:
    long long maxPlans_;
};

} // namespace netpack

#endif // NETPACK_PLACEMENT_EXHAUSTIVE_H
