/**
 * @file
 * The placement interface shared by NetPack and all baseline algorithms.
 * A placer receives the batch of pending jobs for this scheduling period,
 * the topology, the GPU ledger, and the placements of currently running
 * jobs; it decides which jobs to admit, where their workers and PS go,
 * and on which racks INA is enabled — applying GPU allocations to the
 * ledger as it goes.
 */

#ifndef NETPACK_PLACEMENT_PLACER_H
#define NETPACK_PLACEMENT_PLACER_H

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/placement_context.h"
#include "topology/cluster.h"
#include "topology/gpu_ledger.h"
#include "waterfill/steady_state.h"
#include "workload/job.h"

namespace netpack {

/** Outcome of one placement round. */
struct BatchResult
{
    /** Jobs placed this round (GPU allocations already applied). */
    std::vector<PlacedJob> placed;
    /** Jobs that could not be placed and wait for the next round. */
    std::vector<JobId> deferred;
};

/** Abstract placement policy. */
class Placer
{
  public:
    virtual ~Placer() = default;

    /** Display name used in figures ("NetPack", "GB", "Tetris"...). */
    virtual std::string name() const = 0;

    /**
     * Place a batch of jobs against a shared resource engine.
     *
     * The context is both input and output: it supplies the running
     * jobs' placements and (incrementally re-estimated) steady state,
     * and the placer registers every job it places via ctx.addJob —
     * mirroring how GPU allocations are applied to the ledger as it
     * goes — so that callers owning a long-lived context (simulator,
     * manager) never rebuild hierarchies from scratch.
     *
     * @param batch pending jobs for this period (submit order)
     * @param topo cluster topology (must be ctx.topology())
     * @param gpus GPU ledger; allocations for placed jobs are applied
     * @param ctx resource engine tracking the currently running jobs
     */
    virtual BatchResult placeBatch(const std::vector<JobSpec> &batch,
                                   const ClusterTopology &topo,
                                   GpuLedger &gpus,
                                   PlacementContext &ctx) = 0;

    /**
     * Convenience entry for one-shot callers (tests, tools, benches):
     * wraps @p running in a throwaway context and delegates to the
     * context overload. Pays a full re-estimation per call; hot paths
     * should own a PlacementContext instead.
     */
    BatchResult placeBatch(const std::vector<JobSpec> &batch,
                           const ClusterTopology &topo, GpuLedger &gpus,
                           const std::vector<PlacedJob> &running);

    /**
     * Scores of the jobs placed by the last placeBatch call, in
     * placement order, or nullptr for policies that do not score
     * (baselines). The journal records them so replay verification can
     * compare decisions bit-for-bit.
     */
    virtual const std::vector<double> *batchScores() const
    {
        return nullptr;
    }

    /**
     * Capture the RNG stream of a stochastic placer into @p out and
     * return true; deterministic placers return false. Snapshots carry
     * this state so a resumed run draws the same stream.
     */
    virtual bool captureRngState(Rng::State &out) const
    {
        (void)out;
        return false;
    }

    /** Restore a stream captured by captureRngState (no-op otherwise). */
    virtual void restoreRngState(const Rng::State &state) { (void)state; }
};

namespace placement_util {

/**
 * Greedily allocate @p demand GPUs over @p server_order (a preference
 * order, most preferred first), taking as many free GPUs per server as
 * needed. Returns an empty map if the demand cannot be met.
 */
std::map<ServerId, int> greedyTake(const std::vector<ServerId> &server_order,
                                   const GpuLedger &gpus, int demand);

/**
 * Finish a baseline placement: choose the PS (the chosen server with the
 * most free GPUs post-allocation, mirroring "least loaded"), enable INA
 * on every rack the job touches (baselines enable INA for all jobs,
 * Section 6.1), and apply the allocation to the ledger.
 */
Placement finalizeBaseline(const ClusterTopology &topo, GpuLedger &gpus,
                           JobId job, const std::map<ServerId, int> &workers);

/** Apply @p placement's worker GPUs for @p job to the ledger. */
void applyAllocation(GpuLedger &gpus, JobId job, const Placement &placement);

/**
 * Best-fit single-server candidate: the server whose free GPU count is
 * the smallest one still >= @p demand; invalid id when none qualifies.
 */
ServerId bestFitSingleServer(const ClusterTopology &topo,
                             const GpuLedger &gpus, int demand);

/**
 * Total communication time Σ d/v (seconds) of the batch jobs the
 * context currently tracks, under its converged steady state. Jobs of
 * @p batch the context does not track (deferred) contribute zero; local
 * jobs (single server or <= 1 worker) contribute zero; a starved
 * network job (throughput <= 0) makes the total +infinity. This is the
 * objective meta-placers (local search, portfolio) compare candidate
 * batch outcomes with — unlike the exhaustive solver's
 * placementObjective it does not require specs for pre-batch jobs.
 */
double batchCommTime(const std::vector<JobSpec> &batch,
                     PlacementContext &ctx);

} // namespace placement_util

} // namespace netpack

#endif // NETPACK_PLACEMENT_PLACER_H
