#include "placement/pack_harness.h"

#include <string>

#include "obs/metrics.h"

namespace netpack {

void
PackHarnessBase::beginSession(const ClusterTopology &topo, GpuLedger &gpus,
                              PlacementContext &ctx)
{
    NETPACK_CHECK_MSG(frames_.empty(),
                      "placement session started with open frames");
    topo_ = &topo;
    gpus_ = &gpus;
    ctx_ = &ctx;
    result_ = BatchResult{};
    lastScores_.clear();
}

BatchResult
PackHarnessBase::sealSession()
{
    while (!frames_.empty())
        commitFrame();
    topo_ = nullptr;
    gpus_ = nullptr;
    ctx_ = nullptr;
    return std::move(result_);
}

void
PackHarnessBase::beginAttempt()
{
    frames_.push_back(Frame{});
    frames_.back().attempt = true;
    ctx_->beginTxn();
}

void
PackHarnessBase::failAttempt()
{
    NETPACK_CHECK(!frames_.empty() && frames_.back().attempt);
    NETPACK_CHECK_MSG(frames_.back().undo.empty(),
                      "failed packOne left GPU allocations behind");
    // Keep (don't roll back) whatever steady-state convergence the
    // probe triggered: it is a valid cache fill, and the pre-harness
    // placers warmed the cache through failed attempts the same way.
    commitFrame();
}

void
PackHarnessBase::admitAttempt(const PackResult &attempt)
{
    NETPACK_CHECK(!frames_.empty() && frames_.back().attempt);
    ctx_->addJob(attempt.job.id, attempt.job.placement);
    LedgerUndo undo;
    undo.job = attempt.job.id;
    undo.reallocate = false;
    frames_.back().undo.push_back(std::move(undo));
    frames_.back().job = attempt.job.id;
}

void
PackHarnessBase::accept(const PackResult &attempt)
{
    NETPACK_CHECK_MSG(attempt.placed, "accept() of a failed attempt");
    NETPACK_CHECK(!frames_.empty());
    Frame &frame = frames_.back();
    NETPACK_CHECK_MSG(frame.attempt && !frame.accepted &&
                          frame.job == attempt.job.id,
                      "accept() must pair with the latest tryPlace");
    frame.accepted = true;
    frame.scored = attempt.scored;
    result_.placed.push_back(attempt.job);
    if (attempt.scored)
        lastScores_.push_back(attempt.score);
    // Per-backend job mix for OpenMetrics scrapes. unpackLast does not
    // decrement: the counter tracks accepted attempts, not net
    // placements (meta-placers probe and retract freely).
    obs::recordCount(std::string("placement.backend.") +
                         backendName(attempt.job.placement.backend),
                     1);
}

void
PackHarnessBase::unpackLast()
{
    NETPACK_CHECK_MSG(!frames_.empty() && frames_.back().attempt &&
                          frames_.back().accepted,
                      "unpackLast() without a matching accepted attempt");
    Frame &frame = frames_.back();
    NETPACK_CHECK(!result_.placed.empty() &&
                  result_.placed.back().id == frame.job);
    result_.placed.pop_back();
    if (frame.scored)
        lastScores_.pop_back();
    frame.accepted = false; // bookkeeping undone; frame may roll back
    rollbackFrame();
}

void
PackHarnessBase::pushFrame()
{
    frames_.push_back(Frame{});
    ctx_->beginTxn();
}

void
PackHarnessBase::commitFrame()
{
    NETPACK_CHECK(!frames_.empty());
    Frame frame = std::move(frames_.back());
    frames_.pop_back();
    ctx_->commitTxn();
    if (!frames_.empty()) {
        // Fold into the parent so a later parent rollback still undoes
        // this frame's ledger effects (newest entries stay last; the
        // rollback replay walks the vector backwards).
        Frame &parent = frames_.back();
        parent.undo.insert(parent.undo.end(),
                           std::make_move_iterator(frame.undo.begin()),
                           std::make_move_iterator(frame.undo.end()));
    }
}

void
PackHarnessBase::rollbackFrame()
{
    NETPACK_CHECK(!frames_.empty());
    NETPACK_CHECK_MSG(!(frames_.back().attempt && frames_.back().accepted),
                      "rollbackFrame() of an accepted attempt — use "
                      "unpackLast()");
    const Frame frame = std::move(frames_.back());
    frames_.pop_back();
    replayLedgerUndo(frame);
    ctx_->rollbackTxn();
}

void
PackHarnessBase::unplace(JobId id)
{
    NETPACK_CHECK_MSG(!frames_.empty(),
                      "unplace() needs an open frame to record its undo");
    const Placement *placement = ctx_->placementOf(id);
    NETPACK_CHECK_MSG(placement != nullptr,
                      "unplace() of untracked job " << id.value);
    LedgerUndo undo;
    undo.job = id;
    undo.reallocate = true;
    undo.workers = placement->workers;
    ctx_->removeJob(id);
    gpus_->releaseJob(id);
    frames_.back().undo.push_back(std::move(undo));
}

void
PackHarnessBase::replayLedgerUndo(const Frame &frame)
{
    for (auto it = frame.undo.rbegin(); it != frame.undo.rend(); ++it) {
        if (it->reallocate) {
            for (const auto &[server, count] : it->workers)
                gpus_->allocate(server, it->job, count);
        } else {
            gpus_->releaseJob(it->job);
        }
    }
}

} // namespace netpack
