#include "placement/baselines.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "placement/local_search.h"
#include "placement/netpack_placer.h"
#include "placement/portfolio.h"
#include "placement/reference_placer.h"

namespace netpack {

void
BaselinePlacer::fillAllServers(const ClusterTopology &topo,
                               std::vector<ServerId> &out)
{
    out.clear();
    out.reserve(static_cast<std::size_t>(topo.numServers()));
    for (int s = 0; s < topo.numServers(); ++s)
        out.emplace_back(s);
}

void
BaselinePlacer::runBatch(const std::vector<JobSpec> &batch)
{
    // Baselines consume one steady-state snapshot per batch (the
    // pre-batch network state); an incremental context makes this a
    // cache hit when nothing changed since the last round.
    batchView_ = needsSteadyState() ? &ctx().steadyStateView() : nullptr;

    for (const JobSpec &spec : batch) {
        const PackResult attempt = tryPlace(spec);
        if (attempt.placed)
            accept(attempt);
        else
            defer(spec.id);
    }
    batchView_ = nullptr;
}

bool
BaselinePlacer::packOne(const JobSpec &spec, PackResult &out)
{
    // FIFO admission: reject on raw capacity before consulting the
    // policy, so stochastic orders (Random) draw nothing for a job
    // that cannot fit anywhere.
    if (gpus().totalFreeGpus() < spec.gpuDemand)
        return false;
    Placement placement;
    if (!placeOne(spec, topo(), gpus(), batchView_, placement))
        return false;
    out.job.placement = std::move(placement);
    return true;
}

bool
BaselinePlacer::placeOne(const JobSpec &spec, const ClusterTopology &topo,
                         GpuLedger &gpus, const SteadyStateView *view,
                         Placement &out)
{
    serverOrder(spec, topo, gpus, view, orderScratch_);
    const std::map<ServerId, int> taken =
        placement_util::greedyTake(orderScratch_, gpus, spec.gpuDemand);
    if (taken.empty())
        return false;
    out = placement_util::finalizeBaseline(topo, gpus, spec.id, taken);
    return true;
}

void
GpuBalancePlacer::serverOrder(const JobSpec &spec,
                              const ClusterTopology &topo,
                              const GpuLedger &gpus,
                              const SteadyStateView *view,
                              std::vector<ServerId> &out)
{
    (void)spec;
    (void)view;
    fillAllServers(topo, out);
    std::stable_sort(out.begin(), out.end(), [&](ServerId a, ServerId b) {
        return gpus.freeGpus(a) > gpus.freeGpus(b);
    });
}

void
FlowBalancePlacer::serverOrder(const JobSpec &spec,
                               const ClusterTopology &topo,
                               const GpuLedger &gpus,
                               const SteadyStateView *view,
                               std::vector<ServerId> &out)
{
    (void)spec;
    NETPACK_CHECK(view != nullptr);
    fillAllServers(topo, out);
    std::stable_sort(out.begin(), out.end(), [&](ServerId a, ServerId b) {
        const int fa =
            view->serverFlows[static_cast<std::size_t>(a.index())];
        const int fb =
            view->serverFlows[static_cast<std::size_t>(b.index())];
        if (fa != fb)
            return fa < fb;
        return gpus.freeGpus(a) > gpus.freeGpus(b);
    });
}

void
LeastFragmentationPlacer::serverOrder(const JobSpec &spec,
                                      const ClusterTopology &topo,
                                      const GpuLedger &gpus,
                                      const SteadyStateView *view,
                                      std::vector<ServerId> &out)
{
    (void)spec;
    (void)view;
    // Best-fit: drain partially-used servers before opening fresh ones.
    fillAllServers(topo, out);
    const int per_server = topo.gpusPerServer();
    std::stable_sort(out.begin(), out.end(), [&](ServerId a, ServerId b) {
        const int fa = gpus.freeGpus(a);
        const int fb = gpus.freeGpus(b);
        const bool partial_a = fa > 0 && fa < per_server;
        const bool partial_b = fb > 0 && fb < per_server;
        if (partial_a != partial_b)
            return partial_a;
        return fa < fb;
    });
}

void
OptimusPlacer::serverOrder(const JobSpec &spec, const ClusterTopology &topo,
                           const GpuLedger &gpus,
                           const SteadyStateView *view,
                           std::vector<ServerId> &out)
{
    (void)spec;
    (void)view;
    fillAllServers(topo, out);
    std::stable_sort(out.begin(), out.end(), [&](ServerId a, ServerId b) {
        return gpus.freeGpus(a) > gpus.freeGpus(b);
    });
}

bool
OptimusPlacer::placeOne(const JobSpec &spec, const ClusterTopology &topo,
                        GpuLedger &gpus, const SteadyStateView *view,
                        Placement &out)
{
    // Minimal top-k prefix (by free GPUs) covering the demand, then an
    // even round-robin spread of workers over it.
    serverOrder(spec, topo, gpus, view, orderScratch_);
    std::vector<ServerId> top;
    int covered = 0;
    for (ServerId server : orderScratch_) {
        if (covered >= spec.gpuDemand)
            break;
        const int free = gpus.freeGpus(server);
        if (free <= 0)
            continue;
        top.push_back(server);
        covered += free;
    }
    if (covered < spec.gpuDemand)
        return false;

    std::map<ServerId, int> taken;
    int remaining = spec.gpuDemand;
    std::size_t cursor = 0;
    while (remaining > 0) {
        const ServerId server = top[cursor % top.size()];
        ++cursor;
        const int used = taken.count(server) ? taken[server] : 0;
        if (used < gpus.freeGpus(server)) {
            ++taken[server];
            --remaining;
        }
        // Termination: `covered >= demand` guarantees capacity exists.
    }
    out = placement_util::finalizeBaseline(topo, gpus, spec.id, taken);
    return true;
}

void
TetrisPlacer::serverOrder(const JobSpec &spec, const ClusterTopology &topo,
                          const GpuLedger &gpus,
                          const SteadyStateView *view,
                          std::vector<ServerId> &out)
{
    NETPACK_CHECK(view != nullptr);
    const Gbps c = topo.config().serverLinkGbps;
    const ModelProfile &model = ModelZoo::byName(spec.modelName);
    // Job requirement vector, normalized: GPUs relative to a server's
    // capacity, bandwidth demand relative to the access link.
    const double gpu_req =
        std::min(1.0, static_cast<double>(spec.gpuDemand) /
                          static_cast<double>(topo.gpusPerServer()));
    const Gbps bw_demand =
        model.commVolumePerIter() * units::kBitsPerMByte /
        model.computeTimePerIter / units::kBitsPerGbit;
    const double bw_req = std::min(1.0, bw_demand / c);

    const auto n = static_cast<std::size_t>(topo.numServers());
    scoreScratch_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double gpu_avail =
            static_cast<double>(gpus.freeGpus(ServerId(
                static_cast<int>(i)))) /
            static_cast<double>(topo.gpusPerServer());
        const double bw_avail = view->serverAvailBw[i] / c;
        scoreScratch_[i] = gpu_avail * gpu_req + bw_avail * bw_req;
    }
    rankScratch_.resize(n);
    std::iota(rankScratch_.begin(), rankScratch_.end(), std::size_t{0});
    std::stable_sort(rankScratch_.begin(), rankScratch_.end(),
                     [&](std::size_t a, std::size_t b) {
                         return scoreScratch_[a] > scoreScratch_[b];
                     });
    out.clear();
    out.reserve(n);
    for (std::size_t i : rankScratch_)
        out.emplace_back(static_cast<int>(i));
}

void
CombPlacer::serverOrder(const JobSpec &spec, const ClusterTopology &topo,
                        const GpuLedger &gpus, const SteadyStateView *view,
                        std::vector<ServerId> &out)
{
    (void)spec;
    NETPACK_CHECK(view != nullptr);
    fillAllServers(topo, out);
    const int spr = topo.config().serversPerRack;
    std::stable_sort(out.begin(), out.end(), [&](ServerId a, ServerId b) {
        const int ga = gpus.freeGpus(a), gb = gpus.freeGpus(b);
        if (ga != gb)
            return ga > gb;
        const Gbps pa = view->patResidual[static_cast<std::size_t>(
            a.index() / spr)];
        const Gbps pb = view->patResidual[static_cast<std::size_t>(
            b.index() / spr)];
        if (pa != pb)
            return pa > pb;
        return view->serverAvailBw[static_cast<std::size_t>(a.index())] >
               view->serverAvailBw[static_cast<std::size_t>(b.index())];
    });
}

RandomPlacer::RandomPlacer(std::uint64_t seed)
    : rng_(seed)
{
}

void
RandomPlacer::serverOrder(const JobSpec &spec, const ClusterTopology &topo,
                          const GpuLedger &gpus,
                          const SteadyStateView *view,
                          std::vector<ServerId> &out)
{
    (void)spec;
    (void)gpus;
    (void)view;
    fillAllServers(topo, out);
    // Fisher-Yates with the placer's own deterministic stream.
    for (std::size_t i = out.size(); i > 1; --i) {
        const auto j = static_cast<std::size_t>(
            rng_.uniformInt(0, static_cast<std::int64_t>(i) - 1));
        std::swap(out[i - 1], out[j]);
    }
}

std::unique_ptr<Placer>
makePlacerByName(const std::string &name, std::uint64_t seed, int jobs)
{
    if (name == "NetPack") {
        NetPackConfig config;
        config.jobs = jobs;
        return std::make_unique<NetPackPlacer>(config);
    }
    if (name == "NetPackRef")
        return std::make_unique<ReferenceNetPackPlacer>();
    if (name == "NetPack+LS") {
        LocalSearchConfig config;
        config.netpack.jobs = jobs;
        return std::make_unique<LocalSearchPlacer>(config);
    }
    if (name == "Portfolio") {
        PortfolioConfig config;
        config.jobs = jobs;
        return std::make_unique<PortfolioPlacer>(config);
    }
    if (name == "GB")
        return std::make_unique<GpuBalancePlacer>();
    if (name == "FB")
        return std::make_unique<FlowBalancePlacer>();
    if (name == "LF")
        return std::make_unique<LeastFragmentationPlacer>();
    if (name == "Optimus")
        return std::make_unique<OptimusPlacer>();
    if (name == "Tetris")
        return std::make_unique<TetrisPlacer>();
    if (name == "Comb")
        return std::make_unique<CombPlacer>();
    if (name == "Random")
        return seed != 0 ? std::make_unique<RandomPlacer>(seed)
                         : std::make_unique<RandomPlacer>();
    std::string known;
    for (const std::string &candidate : placerNames()) {
        if (!known.empty())
            known += ", ";
        known += candidate;
    }
    throw ConfigError("unknown placer '" + name +
                      "' (valid names: " + known + ")");
}

std::vector<std::string>
placerNames()
{
    return {"NetPack", "NetPackRef", "NetPack+LS", "Portfolio", "GB",
            "FB",      "LF",         "Optimus",    "Tetris",    "Comb",
            "Random"};
}

std::vector<std::string>
baselineNames()
{
    return {"GB", "FB", "LF", "Optimus", "Tetris"};
}

} // namespace netpack
