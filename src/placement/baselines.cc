#include "placement/baselines.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "placement/netpack_placer.h"

namespace netpack {

namespace {

/** All server ids 0..n-1. */
std::vector<ServerId>
allServers(const ClusterTopology &topo)
{
    std::vector<ServerId> servers;
    servers.reserve(static_cast<std::size_t>(topo.numServers()));
    for (int s = 0; s < topo.numServers(); ++s)
        servers.emplace_back(s);
    return servers;
}

} // namespace

BatchResult
BaselinePlacer::placeBatch(const std::vector<JobSpec> &batch,
                           const ClusterTopology &topo, GpuLedger &gpus,
                           PlacementContext &ctx)
{
    NETPACK_CHECK_MSG(&ctx.topology() == &topo,
                      "placement context built for a different topology");
    BatchResult result;

    // Baselines consume one steady-state estimate per batch (the
    // pre-batch network state); an incremental context makes this a
    // cache hit when nothing changed since the last round.
    const SteadyState *steady_ptr =
        needsSteadyState() ? &ctx.steadyState() : nullptr;

    for (const JobSpec &spec : batch) {
        if (gpus.totalFreeGpus() < spec.gpuDemand) {
            result.deferred.push_back(spec.id);
            continue;
        }
        Placement placement;
        if (placeOne(spec, topo, gpus, steady_ptr, placement)) {
            result.placed.push_back({spec.id, placement});
            ctx.addJob(spec.id, placement);
        } else {
            result.deferred.push_back(spec.id);
        }
    }
    return result;
}

bool
BaselinePlacer::placeOne(const JobSpec &spec, const ClusterTopology &topo,
                         GpuLedger &gpus, const SteadyState *steady,
                         Placement &out)
{
    const std::vector<ServerId> order =
        serverOrder(spec, topo, gpus, steady);
    const std::map<ServerId, int> taken =
        placement_util::greedyTake(order, gpus, spec.gpuDemand);
    if (taken.empty())
        return false;
    out = placement_util::finalizeBaseline(topo, gpus, spec.id, taken);
    return true;
}

std::vector<ServerId>
GpuBalancePlacer::serverOrder(const JobSpec &spec,
                              const ClusterTopology &topo,
                              const GpuLedger &gpus,
                              const SteadyState *steady)
{
    (void)spec;
    (void)steady;
    std::vector<ServerId> servers = allServers(topo);
    std::stable_sort(servers.begin(), servers.end(),
                     [&](ServerId a, ServerId b) {
                         return gpus.freeGpus(a) > gpus.freeGpus(b);
                     });
    return servers;
}

std::vector<ServerId>
FlowBalancePlacer::serverOrder(const JobSpec &spec,
                               const ClusterTopology &topo,
                               const GpuLedger &gpus,
                               const SteadyState *steady)
{
    (void)spec;
    NETPACK_CHECK(steady != nullptr);
    std::vector<ServerId> servers = allServers(topo);
    std::stable_sort(servers.begin(), servers.end(),
                     [&](ServerId a, ServerId b) {
                         const int fa = steady->serverFlows(topo, a);
                         const int fb = steady->serverFlows(topo, b);
                         if (fa != fb)
                             return fa < fb;
                         return gpus.freeGpus(a) > gpus.freeGpus(b);
                     });
    return servers;
}

std::vector<ServerId>
LeastFragmentationPlacer::serverOrder(const JobSpec &spec,
                                      const ClusterTopology &topo,
                                      const GpuLedger &gpus,
                                      const SteadyState *steady)
{
    (void)spec;
    (void)steady;
    // Best-fit: drain partially-used servers before opening fresh ones.
    std::vector<ServerId> servers = allServers(topo);
    const int per_server = topo.gpusPerServer();
    std::stable_sort(servers.begin(), servers.end(),
                     [&](ServerId a, ServerId b) {
                         const int fa = gpus.freeGpus(a);
                         const int fb = gpus.freeGpus(b);
                         const bool partial_a = fa > 0 && fa < per_server;
                         const bool partial_b = fb > 0 && fb < per_server;
                         if (partial_a != partial_b)
                             return partial_a;
                         return fa < fb;
                     });
    return servers;
}

std::vector<ServerId>
OptimusPlacer::serverOrder(const JobSpec &spec, const ClusterTopology &topo,
                           const GpuLedger &gpus, const SteadyState *steady)
{
    (void)spec;
    (void)steady;
    std::vector<ServerId> servers = allServers(topo);
    std::stable_sort(servers.begin(), servers.end(),
                     [&](ServerId a, ServerId b) {
                         return gpus.freeGpus(a) > gpus.freeGpus(b);
                     });
    return servers;
}

bool
OptimusPlacer::placeOne(const JobSpec &spec, const ClusterTopology &topo,
                        GpuLedger &gpus, const SteadyState *steady,
                        Placement &out)
{
    // Minimal top-k prefix (by free GPUs) covering the demand, then an
    // even round-robin spread of workers over it.
    const std::vector<ServerId> order =
        serverOrder(spec, topo, gpus, steady);
    std::vector<ServerId> top;
    int covered = 0;
    for (ServerId server : order) {
        if (covered >= spec.gpuDemand)
            break;
        const int free = gpus.freeGpus(server);
        if (free <= 0)
            continue;
        top.push_back(server);
        covered += free;
    }
    if (covered < spec.gpuDemand)
        return false;

    std::map<ServerId, int> taken;
    int remaining = spec.gpuDemand;
    std::size_t cursor = 0;
    while (remaining > 0) {
        const ServerId server = top[cursor % top.size()];
        ++cursor;
        const int used = taken.count(server) ? taken[server] : 0;
        if (used < gpus.freeGpus(server)) {
            ++taken[server];
            --remaining;
        }
        // Termination: `covered >= demand` guarantees capacity exists.
    }
    out = placement_util::finalizeBaseline(topo, gpus, spec.id, taken);
    return true;
}

std::vector<ServerId>
TetrisPlacer::serverOrder(const JobSpec &spec, const ClusterTopology &topo,
                          const GpuLedger &gpus, const SteadyState *steady)
{
    NETPACK_CHECK(steady != nullptr);
    const Gbps c = topo.config().serverLinkGbps;
    const ModelProfile &model = ModelZoo::byName(spec.modelName);
    // Job requirement vector, normalized: GPUs relative to a server's
    // capacity, bandwidth demand relative to the access link.
    const double gpu_req =
        std::min(1.0, static_cast<double>(spec.gpuDemand) /
                          static_cast<double>(topo.gpusPerServer()));
    const Gbps bw_demand =
        model.commVolumePerIter() * units::kBitsPerMByte /
        model.computeTimePerIter / units::kBitsPerGbit;
    const double bw_req = std::min(1.0, bw_demand / c);

    std::vector<ServerId> servers = allServers(topo);
    std::vector<double> score(servers.size());
    for (std::size_t i = 0; i < servers.size(); ++i) {
        const double gpu_avail =
            static_cast<double>(gpus.freeGpus(servers[i])) /
            static_cast<double>(topo.gpusPerServer());
        const double bw_avail =
            steady->serverAvailBw(topo, servers[i]) / c;
        score[i] = gpu_avail * gpu_req + bw_avail * bw_req;
    }
    std::vector<std::size_t> rank(servers.size());
    std::iota(rank.begin(), rank.end(), 0);
    std::stable_sort(rank.begin(), rank.end(),
                     [&](std::size_t a, std::size_t b) {
                         return score[a] > score[b];
                     });
    std::vector<ServerId> ordered;
    ordered.reserve(servers.size());
    for (std::size_t i : rank)
        ordered.push_back(servers[i]);
    return ordered;
}

std::vector<ServerId>
CombPlacer::serverOrder(const JobSpec &spec, const ClusterTopology &topo,
                        const GpuLedger &gpus, const SteadyState *steady)
{
    (void)spec;
    NETPACK_CHECK(steady != nullptr);
    std::vector<ServerId> servers = allServers(topo);
    std::stable_sort(
        servers.begin(), servers.end(), [&](ServerId a, ServerId b) {
            const int ga = gpus.freeGpus(a), gb = gpus.freeGpus(b);
            if (ga != gb)
                return ga > gb;
            const Gbps pa = steady->patResidual[topo.rackOf(a).index()];
            const Gbps pb = steady->patResidual[topo.rackOf(b).index()];
            if (pa != pb)
                return pa > pb;
            return steady->serverAvailBw(topo, a) >
                   steady->serverAvailBw(topo, b);
        });
    return servers;
}

RandomPlacer::RandomPlacer(std::uint64_t seed)
    : rng_(seed)
{
}

std::vector<ServerId>
RandomPlacer::serverOrder(const JobSpec &spec, const ClusterTopology &topo,
                          const GpuLedger &gpus, const SteadyState *steady)
{
    (void)spec;
    (void)gpus;
    (void)steady;
    std::vector<ServerId> servers = allServers(topo);
    // Fisher-Yates with the placer's own deterministic stream.
    for (std::size_t i = servers.size(); i > 1; --i) {
        const auto j = static_cast<std::size_t>(
            rng_.uniformInt(0, static_cast<std::int64_t>(i) - 1));
        std::swap(servers[i - 1], servers[j]);
    }
    return servers;
}

std::unique_ptr<Placer>
makePlacerByName(const std::string &name, std::uint64_t seed)
{
    if (name == "NetPack")
        return std::make_unique<NetPackPlacer>();
    if (name == "GB")
        return std::make_unique<GpuBalancePlacer>();
    if (name == "FB")
        return std::make_unique<FlowBalancePlacer>();
    if (name == "LF")
        return std::make_unique<LeastFragmentationPlacer>();
    if (name == "Optimus")
        return std::make_unique<OptimusPlacer>();
    if (name == "Tetris")
        return std::make_unique<TetrisPlacer>();
    if (name == "Comb")
        return std::make_unique<CombPlacer>();
    if (name == "Random")
        return seed != 0 ? std::make_unique<RandomPlacer>(seed)
                         : std::make_unique<RandomPlacer>();
    throw ConfigError("unknown placer '" + name + "'");
}

std::vector<std::string>
baselineNames()
{
    return {"GB", "FB", "LF", "Optimus", "Tetris"};
}

} // namespace netpack
