#include "placement/exhaustive.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "waterfill/steady_state.h"

namespace netpack {

namespace {

/** Σ_j d^(j)/v^(j) over the network jobs of @p placements. */
double
objectiveFromSteady(const SteadyState &steady,
                    const std::vector<JobSpec> &jobs,
                    const std::vector<PlacedJob> &placements)
{
    double objective = 0.0;
    for (const PlacedJob &placed : placements) {
        const Placement &p = placed.placement;
        if (p.singleServer() || p.totalWorkers() <= 1)
            continue; // no network communication
        const auto spec = std::find_if(jobs.begin(), jobs.end(),
                                       [&](const JobSpec &s) {
                                           return s.id == placed.id;
                                       });
        NETPACK_CHECK_MSG(spec != jobs.end(),
                          "placement for unknown job " << placed.id.value);
        const ModelProfile &model = ModelZoo::byName(spec->modelName);
        const Gbps rate = steady.jobThroughput(placed.id);
        if (rate <= 0.0)
            return std::numeric_limits<double>::infinity();
        objective += units::transferTime(model.commVolumePerIter(), rate);
    }
    return objective;
}

} // namespace

double
placementObjective(const ClusterTopology &topo,
                   const std::vector<JobSpec> &jobs,
                   const std::vector<PlacedJob> &placements)
{
    NETPACK_CHECK(jobs.size() == placements.size());
    WaterFillingEstimator wf(topo);
    const SteadyState steady = wf.estimate(placements);
    return objectiveFromSteady(steady, jobs, placements);
}

double
placementObjective(const std::vector<JobSpec> &jobs, PlacementContext &ctx)
{
    NETPACK_CHECK(jobs.size() == ctx.running().size());
    return objectiveFromSteady(ctx.steadyState(), jobs, ctx.running());
}

ExhaustiveSolver::ExhaustiveSolver(long long max_plans)
    : maxPlans_(max_plans)
{
    NETPACK_REQUIRE(max_plans > 0, "max_plans must be positive");
}

namespace {

/** Recursion state shared across the joint search. */
struct SearchState
{
    const std::vector<JobSpec> *jobs = nullptr;
    const ClusterTopology *topo = nullptr;
    /** Resource engine mirroring `chosen`: adds/removes track the
        recursion, so leaf objectives re-converge incrementally. */
    PlacementContext *ctx = nullptr;
    std::vector<int> freeGpus;     // mutable residual free GPUs
    std::vector<PlacedJob> chosen; // placements decided so far
    std::vector<PlacedJob> best;
    double bestObjective = std::numeric_limits<double>::infinity();
    long long plans = 0;
    long long maxPlans = 0;
};

/** Enumerate worker distributions of `remaining` GPUs over servers. */
void
enumerateDistributions(SearchState &state, std::size_t job_index,
                       int server, int remaining,
                       std::map<ServerId, int> &current,
                       const std::function<void()> &on_complete)
{
    if (remaining == 0) {
        on_complete();
        return;
    }
    if (server >= state.topo->numServers())
        return;
    const int avail = state.freeGpus[static_cast<std::size_t>(server)];
    const int take_max = std::min(avail, remaining);
    for (int take = 0; take <= take_max; ++take) {
        if (take > 0) {
            current[ServerId(server)] = take;
            state.freeGpus[static_cast<std::size_t>(server)] -= take;
        }
        enumerateDistributions(state, job_index, server + 1,
                               remaining - take, current, on_complete);
        if (take > 0) {
            state.freeGpus[static_cast<std::size_t>(server)] += take;
            current.erase(ServerId(server));
        }
    }
}

void searchJob(SearchState &state, std::size_t job_index);

/** Complete one job's placement (PS choice) and recurse to the next. */
void
completeJob(SearchState &state, std::size_t job_index,
            const std::map<ServerId, int> &workers)
{
    const JobSpec &spec = (*state.jobs)[job_index];

    auto recurse_with = [&](ServerId ps) {
        Placement placement;
        placement.workers = workers;
        placement.psServer = ps;
        if (!placement.singleServer())
            placement.inaRacks = placement.allRacks(*state.topo);
        state.chosen.push_back({spec.id, placement});
        // Transactional backtracking: the rollback restores the engine
        // (cached water-filling state included) to exactly the parent
        // node's fixed point, so each sibling re-converges only its own
        // subtree's delta instead of unwinding the previous leaf's.
        state.ctx->beginTxn();
        state.ctx->addJob(spec.id, placement);
        searchJob(state, job_index + 1);
        state.ctx->rollbackTxn();
        state.chosen.pop_back();
    };

    if (workers.size() == 1) {
        // Colocated PS: the job is local and traffic-free.
        recurse_with(workers.begin()->first);
        return;
    }
    // Multi-server: try every server as the PS location.
    for (int s = 0; s < state.topo->numServers(); ++s)
        recurse_with(ServerId(s));
}

void
searchJob(SearchState &state, std::size_t job_index)
{
    if (job_index == state.jobs->size()) {
        ++state.plans;
        NETPACK_REQUIRE(state.plans <= state.maxPlans,
                        "exhaustive search exceeded "
                            << state.maxPlans
                            << " joint plans; shrink the instance");
        const double objective =
            placementObjective(*state.jobs, *state.ctx);
        if (objective < state.bestObjective) {
            state.bestObjective = objective;
            state.best = state.chosen;
        }
        return;
    }
    const JobSpec &spec = (*state.jobs)[job_index];
    std::map<ServerId, int> current;
    enumerateDistributions(state, job_index, 0, spec.gpuDemand, current,
                           [&] { completeJob(state, job_index, current); });
}

} // namespace

ExhaustiveResult
ExhaustiveSolver::solve(const std::vector<JobSpec> &jobs,
                        const ClusterTopology &topo,
                        const GpuLedger &gpus) const
{
    NETPACK_REQUIRE(!jobs.empty(), "no jobs to place");
    for (const JobSpec &spec : jobs) {
        NETPACK_REQUIRE(spec.backend == BackendKind::PsIna,
                        "the exhaustive oracle enumerates PS placements "
                        "only; job "
                            << spec.id.value << " uses "
                            << backendName(spec.backend));
    }

    PlacementContext ctx(topo);
    // Converge the empty cluster once, outside any transaction: every
    // recursion node queries the steady state inside a txn that rolls
    // back, so without a committed base fixed point each leaf would
    // fall back to a full estimate instead of an incremental one.
    ctx.steadyState();
    SearchState state;
    state.jobs = &jobs;
    state.topo = &topo;
    state.ctx = &ctx;
    state.freeGpus.resize(static_cast<std::size_t>(topo.numServers()));
    for (int s = 0; s < topo.numServers(); ++s)
        state.freeGpus[static_cast<std::size_t>(s)] =
            gpus.freeGpus(ServerId(s));
    state.maxPlans = maxPlans_;

    searchJob(state, 0);

    NETPACK_REQUIRE(!state.best.empty(),
                    "no feasible joint placement for the given batch");
    ExhaustiveResult result;
    result.placements = std::move(state.best);
    result.objective = state.bestObjective;
    result.plansEvaluated = state.plans;
    return result;
}

} // namespace netpack
