#include "placement/backend_plan.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"
#include "placement/placer.h"

namespace netpack {
namespace placement_util {

bool
planNonPsPlacement(const JobSpec &spec, const ClusterTopology &topo,
                   GpuLedger &gpus, Placement &out)
{
    NETPACK_CHECK(spec.backend != BackendKind::PsIna);

    // Single-server fast path: the whole ring/reduction collapses to
    // local memory (same shape as NetPack's lines 4-6 fast path).
    const ServerId single = bestFitSingleServer(topo, gpus, spec.gpuDemand);
    if (single.valid()) {
        out.workers[single] = spec.gpuDemand;
        out.psServer = single;
        out.backend = spec.backend;
        gpus.allocate(single, spec.id, spec.gpuDemand);
        return true;
    }

    // Rack-adjacency greedy: fill the emptiest racks first so the job
    // spans as few racks as the current fragmentation allows. All
    // orders break ties on id, keeping the plan a pure function of the
    // ledger (the ref/opt bit-identity contract).
    std::vector<std::pair<int, RackId>> racks;
    for (int r = 0; r < topo.numRacks(); ++r) {
        const RackId rack(r);
        const int free = gpus.freeGpusInRack(rack);
        if (free > 0)
            racks.emplace_back(free, rack);
    }
    std::sort(racks.begin(), racks.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first > b.first;
                  return a.second < b.second;
              });

    std::map<ServerId, int> workers;
    int remaining = spec.gpuDemand;
    for (const auto &[rack_free, rack] : racks) {
        (void)rack_free;
        if (remaining == 0)
            break;
        std::vector<std::pair<int, ServerId>> servers;
        for (ServerId server : topo.serversInRack(rack)) {
            const int free = gpus.freeGpus(server);
            if (free > 0)
                servers.emplace_back(free, server);
        }
        std::sort(servers.begin(), servers.end(),
                  [](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first > b.first;
                      return a.second < b.second;
                  });
        for (const auto &[free, server] : servers) {
            if (remaining == 0)
                break;
            const int take = std::min(free, remaining);
            workers[server] = take;
            remaining -= take;
        }
    }
    if (remaining > 0)
        return false; // not enough free GPUs anywhere

    // Leader (tree root) = the chosen server with the most workers;
    // std::map iteration makes the tie-break the lowest id.
    ServerId leader;
    int leader_count = -1;
    for (const auto &[server, count] : workers) {
        if (count > leader_count) {
            leader_count = count;
            leader = server;
        }
    }

    out.workers = std::move(workers);
    out.psServer = leader;
    out.backend = spec.backend;
    out.inaRacks = out.allRacks(topo);
    applyAllocation(gpus, spec.id, out);
    return true;
}

} // namespace placement_util
} // namespace netpack
