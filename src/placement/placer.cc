#include "placement/placer.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace netpack {

BatchResult
Placer::placeBatch(const std::vector<JobSpec> &batch,
                   const ClusterTopology &topo, GpuLedger &gpus,
                   const std::vector<PlacedJob> &running)
{
    PlacementContext ctx(topo);
    for (const PlacedJob &job : running)
        ctx.addJob(job);
    return placeBatch(batch, topo, gpus, ctx);
}

namespace placement_util {

std::map<ServerId, int>
greedyTake(const std::vector<ServerId> &server_order, const GpuLedger &gpus,
           int demand)
{
    NETPACK_CHECK(demand >= 1);
    std::map<ServerId, int> taken;
    int remaining = demand;
    for (ServerId server : server_order) {
        if (remaining == 0)
            break;
        const int avail = gpus.freeGpus(server);
        if (avail <= 0)
            continue;
        const int take = std::min(avail, remaining);
        taken[server] = take;
        remaining -= take;
    }
    if (remaining > 0)
        return {};
    return taken;
}

Placement
finalizeBaseline(const ClusterTopology &topo, GpuLedger &gpus, JobId job,
                 const std::map<ServerId, int> &workers)
{
    NETPACK_CHECK(!workers.empty());
    Placement placement;
    placement.workers = workers;

    if (workers.size() == 1) {
        // Single-server job: PS colocates (no network traffic).
        placement.psServer = workers.begin()->first;
    } else {
        // PS goes to the chosen server with the most free GPUs after
        // taking the workers ("least loaded" among the job's servers).
        ServerId best;
        int best_free = -1;
        for (const auto &[server, count] : workers) {
            const int free_after = gpus.freeGpus(server) - count;
            if (free_after > best_free) {
                best_free = free_after;
                best = server;
            }
        }
        placement.psServer = best;
        // Baselines enable INA transparently on every rack the job uses.
        placement.inaRacks = placement.allRacks(topo);
    }
    applyAllocation(gpus, job, placement);
    return placement;
}

void
applyAllocation(GpuLedger &gpus, JobId job, const Placement &placement)
{
    for (const auto &[server, count] : placement.workers)
        gpus.allocate(server, job, count);
}

ServerId
bestFitSingleServer(const ClusterTopology &topo, const GpuLedger &gpus,
                    int demand)
{
    ServerId best;
    int best_free = std::numeric_limits<int>::max();
    for (int s = 0; s < topo.numServers(); ++s) {
        const ServerId server(s);
        const int free = gpus.freeGpus(server);
        if (free >= demand && free < best_free) {
            best_free = free;
            best = server;
        }
    }
    return best;
}

double
batchCommTime(const std::vector<JobSpec> &batch, PlacementContext &ctx)
{
    double total = 0.0;
    for (const JobSpec &spec : batch) {
        const Placement *placement = ctx.placementOf(spec.id);
        if (placement == nullptr || placement->singleServer() ||
            placement->totalWorkers() <= 1)
            continue; // deferred or traffic-free
        const Gbps rate = ctx.steadyState().jobThroughput(spec.id);
        if (rate <= 0.0)
            return std::numeric_limits<double>::infinity();
        const ModelProfile &model = ModelZoo::byName(spec.modelName);
        const double factor = backendVolumeFactor(
            placement->backend,
            static_cast<int>(placement->workers.size()));
        total += units::transferTime(model.commVolumePerIter() * factor,
                                     rate);
    }
    return total;
}

} // namespace placement_util
} // namespace netpack
