#include "placement/reference_placer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "common/check.h"
#include "common/log.h"
#include "placement/backend_plan.h"
#include "placement/ina_policy.h"
#include "placement/knapsack.h"

namespace netpack {

namespace {

constexpr double kNegInf = -1e300;

} // namespace

ReferenceNetPackPlacer::ReferenceNetPackPlacer(NetPackConfig config)
    : config_(config)
{
    NETPACK_REQUIRE(config.maxFlowsTracked >= 1 &&
                        config.maxFlowsTracked <= 127,
                    "maxFlowsTracked must be in [1, 127], got "
                        << config.maxFlowsTracked);
    NETPACK_REQUIRE(config.psShards >= 1 && config.psShards <= 64,
                    "psShards must be in [1, 64], got "
                        << config.psShards);
}

BatchResult
ReferenceNetPackPlacer::placeBatch(const std::vector<JobSpec> &batch,
                                   const ClusterTopology &topo,
                                   GpuLedger &gpus, PlacementContext &ctx)
{
    NETPACK_CHECK_MSG(&ctx.topology() == &topo,
                      "placement context built for a different topology");
    BatchResult result;
    lastScores_.clear();

    // Step ④ treats the pre-batch jobs as fixed background; snapshot
    // them before this batch's placements enter the context.
    const std::vector<PlacedJob> running = ctx.running();

    // Step ①: knapsack job-subset selection over the free GPUs.
    std::vector<KnapsackItem> items;
    items.reserve(batch.size());
    for (const auto &spec : batch)
        items.push_back({spec.gpuDemand, spec.value});
    const std::vector<std::size_t> chosen =
        solveKnapsack(items, gpus.totalFreeGpus());

    std::vector<bool> selected(batch.size(), false);
    for (std::size_t i : chosen)
        selected[i] = true;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!selected[i])
            result.deferred.push_back(batch[i].id);
    }

    // Place admitted jobs in value-descending order (Alg. 2 line 3).
    std::vector<const JobSpec *> to_place;
    to_place.reserve(chosen.size());
    for (std::size_t i : chosen)
        to_place.push_back(&batch[i]);
    std::stable_sort(to_place.begin(), to_place.end(),
                     [](const JobSpec *a, const JobSpec *b) {
                         return a->value > b->value;
                     });

    for (const JobSpec *spec : to_place) {
        // Non-PS backends bypass Equation-1 (it scores the PS
        // bottleneck, which they do not have) for the shared
        // rack-adjacency plan; both placers call the same helper so the
        // ref/opt bit-identity contract extends to mixed traces.
        if (spec->backend != BackendKind::PsIna) {
            Placement placement;
            if (!placement_util::planNonPsPlacement(*spec, topo, gpus,
                                                    placement)) {
                result.deferred.push_back(spec->id);
                continue;
            }
            result.placed.push_back({spec->id, placement});
            ctx.addJob(spec->id, placement);
            continue;
        }

        // Single-server fast path (lines 4-6): no cross-server traffic.
        const ServerId single =
            placement_util::bestFitSingleServer(topo, gpus, spec->gpuDemand);
        if (single.valid()) {
            Placement placement;
            placement.workers[single] = spec->gpuDemand;
            placement.psServer = single;
            gpus.allocate(single, spec->id, spec->gpuDemand);
            result.placed.push_back({spec->id, placement});
            ctx.addJob(spec->id, placement);
            continue;
        }

        // Line 7: re-estimate the steady state with every job placed so
        // far (resources are shared, not reserved, so each new job moves
        // the fair share of everyone else).
        const SteadyState &steady = ctx.steadyState();

        std::vector<WorkerPlan> plans =
            workerPlacement(*spec, topo, gpus, steady);
        if (config_.oversubPenalty &&
            topo.config().oversubscription > 1.0) {
            // Rack-local alternatives: the global DP is rack-blind, so
            // give the PS-placement scoring in-rack plans to prefer
            // when the core is the bottleneck.
            for (int r = 0; r < topo.numRacks(); ++r) {
                const RackId rack(r);
                if (gpus.freeGpusInRack(rack) < spec->gpuDemand)
                    continue;
                std::vector<WorkerPlan> rack_plans =
                    workerPlacement(*spec, topo, gpus, steady, rack);
                plans.insert(plans.end(),
                             std::make_move_iterator(rack_plans.begin()),
                             std::make_move_iterator(rack_plans.end()));
            }
            // Pod-local alternatives in two-tier mode: crossing a rack
            // is cheaper than crossing a pod.
            if (topo.twoTier()) {
                for (int p = 0; p < topo.numPods(); ++p) {
                    int pod_free = 0;
                    for (int r = 0; r < topo.numRacks(); ++r) {
                        if (topo.podOf(RackId(r)) == p)
                            pod_free += gpus.freeGpusInRack(RackId(r));
                    }
                    if (pod_free < spec->gpuDemand)
                        continue;
                    std::vector<WorkerPlan> pod_plans = workerPlacement(
                        *spec, topo, gpus, steady, RackId(), p);
                    plans.insert(
                        plans.end(),
                        std::make_move_iterator(pod_plans.begin()),
                        std::make_move_iterator(pod_plans.end()));
                }
            }
        }
        std::optional<FullPlan> best =
            psPlacement(*spec, topo, plans, steady);
        if (!best) {
            result.deferred.push_back(spec->id);
            continue;
        }
        lastScores_.push_back(best->score);

        Placement placement = std::move(best->placement);
        // Default to INA-on everywhere; step ④ may disable some racks.
        placement.inaRacks = placement.allRacks(topo);
        placement_util::applyAllocation(gpus, spec->id, placement);
        result.placed.push_back({spec->id, placement});
        ctx.addJob(spec->id, placement);
    }

    // Step ④: shift the INA budget toward jobs that benefit the most.
    if (config_.selectiveIna) {
        selectiveInaEnable(result.placed, topo, running, batch);
        for (const PlacedJob &job : result.placed)
            ctx.updateInaRacks(job.id, job.placement.inaRacks);
    }
    return result;
}

std::vector<ReferenceNetPackPlacer::WorkerPlan>
ReferenceNetPackPlacer::workerPlacement(const JobSpec &spec,
                                        const ClusterTopology &topo,
                                        const GpuLedger &gpus,
                                        const SteadyState &steady,
                                        RackId restrict_rack,
                                        int restrict_pod) const
{
    const int demand = spec.gpuDemand;
    const int per_server = topo.gpusPerServer();
    // The DP takes all-or-none of each server's free GPUs, so it searches
    // plans totalling [demand, demand + per_server] GPUs and the extras
    // are trimmed after step ③ (Section 5.2 step ②).
    const int g_max = demand + per_server;
    const int f_cap = config_.twoDimWeight ? config_.maxFlowsTracked : 0;
    const Gbps c = topo.config().serverLinkGbps;

    struct Candidate
    {
        ServerId id;
        int weight = 0;
        int flows = 0;
        double value = 0.0;
    };
    std::vector<Candidate> candidates;
    for (int s = 0; s < topo.numServers(); ++s) {
        const ServerId server(s);
        if (restrict_rack.valid() && topo.rackOf(server) != restrict_rack)
            continue;
        if (restrict_pod >= 0 &&
            topo.podOf(topo.rackOf(server)) != restrict_pod)
            continue;
        const int free = gpus.freeGpus(server);
        if (free <= 0)
            continue;
        Candidate cand;
        cand.id = server;
        cand.weight = free;
        // The DP's flow coordinate is clamped to f_cap (0 when the 2-D
        // weight is ablated), but the server *value* always sees the
        // real flow count — the ablation isolates the extra knapsack
        // dimension, not the flow-awareness of the heuristic.
        const int real_flows =
            std::clamp(steady.serverFlows(topo, server), 0, 127);
        cand.flows = std::min(real_flows, f_cap);
        const Gbps avail = steady.serverAvailBw(topo, server);
        // Server value: reward residual bandwidth, punish the throughput
        // the new stream would steal from the server's existing flows.
        cand.value = avail - (c - avail) /
                                 static_cast<double>(real_flows + 1);
        candidates.push_back(cand);
    }

    const int fn = f_cap + 1;
    const int gn = g_max + 1;
    const auto cells = static_cast<std::size_t>(fn) *
                       static_cast<std::size_t>(gn);
    const auto idx = [gn](int f, int g) {
        return static_cast<std::size_t>(f) * static_cast<std::size_t>(gn) +
               static_cast<std::size_t>(g);
    };

    std::vector<double> cur(cells, kNegInf);
    cur[idx(0, 0)] = 0.0;
    // decisions[stage][cell]: previous f when taking this stage's server
    // improved the cell, -1 otherwise. Scanning stages last-to-first
    // during backtracking recovers the exact chosen set.
    std::vector<std::vector<std::int8_t>> decisions(candidates.size());

    std::vector<double> next;
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
        const Candidate &cand = candidates[ci];
        next = cur; // skip transition for every state
        std::vector<std::int8_t> dec(cells, -1);
        for (int f = 0; f <= f_cap; ++f) {
            for (int g = 0; g + cand.weight <= g_max; ++g) {
                const double base = cur[idx(f, g)];
                if (base <= kNegInf / 2)
                    continue;
                const int f2 = std::max(f, cand.flows);
                const int g2 = g + cand.weight;
                const double candidate_value = base + cand.value;
                if (candidate_value > next[idx(f2, g2)]) {
                    next[idx(f2, g2)] = candidate_value;
                    dec[idx(f2, g2)] = static_cast<std::int8_t>(f);
                }
            }
        }
        decisions[ci] = std::move(dec);
        cur.swap(next);
    }

    // Harvest plans: every reachable (f, g) with g in the search window.
    std::vector<WorkerPlan> plans;
    for (int f = 0; f <= f_cap; ++f) {
        for (int g = demand; g <= g_max; ++g) {
            if (cur[idx(f, g)] <= kNegInf / 2)
                continue;
            WorkerPlan plan;
            plan.fMax = f;
            plan.gpus = g;
            plan.value = cur[idx(f, g)];
            int bf = f, bg = g;
            for (std::size_t ci = candidates.size(); ci-- > 0;) {
                const std::int8_t prev_f = decisions[ci][idx(bf, bg)];
                if (prev_f < 0)
                    continue;
                plan.servers.emplace_back(candidates[ci].id,
                                          candidates[ci].weight);
                bg -= candidates[ci].weight;
                bf = prev_f;
            }
            NETPACK_CHECK_MSG(bf == 0 && bg == 0,
                              "worker DP backtracking failed for job "
                                  << spec.id.value);
            std::sort(plan.servers.begin(), plan.servers.end());
            plans.push_back(std::move(plan));
        }
    }
    return plans;
}

std::optional<ReferenceNetPackPlacer::FullPlan>
ReferenceNetPackPlacer::psPlacement(const JobSpec &spec,
                                    const ClusterTopology &topo,
                                    const std::vector<WorkerPlan> &plans,
                                    const SteadyState &steady) const
{
    const Gbps c = topo.config().serverLinkGbps;
    const bool oversubscribed =
        topo.config().oversubscription > 1.0 ||
        (topo.twoTier() && topo.config().podOversubscription > 1.0);

    const WorkerPlan *best_plan = nullptr;
    ServerId best_ps;
    double best_score = kNegInf;

    std::vector<bool> in_plan(static_cast<std::size_t>(topo.numServers()));

    for (const WorkerPlan &plan : plans) {
        if (plan.servers.empty())
            continue;
        std::fill(in_plan.begin(), in_plan.end(), false);
        std::set<RackId> worker_racks;
        std::map<RackId, int> servers_per_rack;
        for (const auto &[server, count] : plan.servers) {
            (void)count;
            in_plan[server.index()] = true;
            worker_racks.insert(topo.rackOf(server));
            ++servers_per_rack[topo.rackOf(server)];
        }

        for (int s = 0; s < topo.numServers(); ++s) {
            const ServerId ps(s);
            const int extra_flow = in_plan[ps.index()] ? 0 : 1;
            const int ps_flows = steady.serverFlows(topo, ps);
            const Gbps ps_avail = steady.serverAvailBw(topo, ps);
            const int f_max = std::max(plan.fMax, ps_flows + extra_flow);

            // Hot-spot penalty (Equation 1).
            double penalty = c / static_cast<double>(f_max + 1);

            const RackId ps_rack = topo.rackOf(ps);
            if (config_.oversubPenalty && oversubscribed &&
                !(worker_racks.size() == 1 &&
                  *worker_racks.begin() == ps_rack)) {
                // Oversubscribed variant (Section 5.2, "In Oversubscribed
                // Networks"): a plan whose traffic crosses rack core
                // links additionally pays the throughput it would lose
                // to its core bottleneck, C - min_r(C_rack/(FC_r+n_r)).
                std::set<RackId> all_racks = worker_racks;
                all_racks.insert(ps_rack);
                Gbps min_share = std::numeric_limits<double>::infinity();
                for (RackId rack : all_racks) {
                    int new_flows;
                    if (rack == ps_rack) {
                        // Streams from every remote rack converge here.
                        new_flows =
                            static_cast<int>(all_racks.size()) - 1;
                    } else {
                        // One merged stream per remote rack with INA;
                        // conservatively, one per worker server without.
                        const auto it = servers_per_rack.find(rack);
                        new_flows = it == servers_per_rack.end()
                                        ? 0
                                        : it->second;
                    }
                    if (new_flows == 0)
                        continue;
                    const Gbps rack_cap = topo.coreLinkCapacity(rack);
                    const int existing = steady.rackFlows(topo, rack);
                    min_share = std::min(
                        min_share,
                        rack_cap /
                            static_cast<double>(existing + new_flows));
                }
                if (topo.twoTier()) {
                    // Cross-pod plans additionally share the involved
                    // pods' uplinks.
                    std::map<int, int> racks_per_pod;
                    for (RackId rack : all_racks)
                        ++racks_per_pod[topo.podOf(rack)];
                    if (racks_per_pod.size() > 1) {
                        for (const auto &[pod, racks_in_pod] :
                             racks_per_pod) {
                            // Streams crossing this pod's uplink: one
                            // merged stream per rack on the smaller side.
                            const int total_racks =
                                static_cast<int>(all_racks.size());
                            const int crossing = std::min(
                                racks_in_pod, total_racks - racks_in_pod);
                            if (crossing == 0)
                                continue;
                            const LinkId uplink = topo.podUplink(pod);
                            const Gbps pod_cap =
                                topo.link(uplink).capacity;
                            const int existing =
                                steady.linkFlows[uplink.index()];
                            min_share = std::min(
                                min_share,
                                pod_cap / static_cast<double>(
                                              existing + crossing));
                        }
                    }
                }
                if (std::isfinite(min_share) && min_share < c) {
                    // The plan's value credits every chosen server with
                    // access-limited bandwidth; a core bottleneck caps
                    // all of the job's streams at min_share, so the
                    // loss applies once per chosen server.
                    penalty = std::max(
                        penalty,
                        (c - min_share) *
                            static_cast<double>(plan.servers.size()));
                }
            }

            const double score =
                plan.value + ps_avail -
                (c - ps_avail) /
                    static_cast<double>(ps_flows + extra_flow + 1) -
                penalty;

            if (score > best_score) {
                best_score = score;
                best_plan = &plan;
                best_ps = ps;
            }
        }
    }

    if (best_plan == nullptr)
        return std::nullopt;

    FullPlan full;
    full.score = best_score;
    full.gpusTaken = best_plan->gpus;
    full.placement.psServer = best_ps;
    for (const auto &[server, count] : best_plan->servers)
        full.placement.workers[server] = count;

    // Sharded PS extension: the gradient splits over psShards PSes,
    // each hosting its own one-PS AllReduce. The extras are the
    // next-best distinct servers by the Equation-1 PS term.
    if (config_.psShards > 1) {
        std::vector<std::pair<double, ServerId>> scored;
        for (int s = 0; s < topo.numServers(); ++s) {
            const ServerId ps(s);
            if (ps == best_ps)
                continue;
            const int extra_flow =
                full.placement.workers.count(ps) ? 0 : 1;
            const int ps_flows = steady.serverFlows(topo, ps);
            const Gbps ps_avail = steady.serverAvailBw(topo, ps);
            const double term =
                ps_avail - (c - ps_avail) /
                               static_cast<double>(ps_flows +
                                                   extra_flow + 1);
            scored.emplace_back(term, ps);
        }
        std::stable_sort(scored.begin(), scored.end(),
                         [](const auto &a, const auto &b) {
                             return a.first > b.first;
                         });
        for (int k = 0; k < config_.psShards - 1 &&
                        k < static_cast<int>(scored.size());
             ++k)
            full.placement.extraPsServers.push_back(
                scored[static_cast<std::size_t>(k)].second);
    }

    // Trim over-allocation: the DP takes whole servers, so the plan may
    // hold up to gpusPerServer-1 extra GPUs. Release the extras from the
    // least-loaded chosen server(s) — the ones contributing the most free
    // GPUs — removing a server entirely if its contribution is consumed.
    int extra = best_plan->gpus - spec.gpuDemand;
    NETPACK_CHECK(extra >= 0);
    while (extra > 0) {
        auto largest = full.placement.workers.begin();
        for (auto it = full.placement.workers.begin();
             it != full.placement.workers.end(); ++it) {
            if (it->second > largest->second)
                largest = it;
        }
        const int take = std::min(extra, largest->second);
        largest->second -= take;
        extra -= take;
        if (largest->second == 0)
            full.placement.workers.erase(largest);
    }
    NETPACK_CHECK_MSG(!full.placement.workers.empty(),
                      "trimming removed every worker of job "
                          << spec.id.value);
    return full;
}

void
ReferenceNetPackPlacer::selectiveInaEnable(
    std::vector<PlacedJob> &placed, const ClusterTopology &topo,
    const std::vector<PlacedJob> &running,
    const std::vector<JobSpec> &batch) const
{
    // Gradient volumes weigh the estimator guard's objective. The
    // reference keeps the O(batch)-per-query lookup the optimized
    // placer replaced with a hash map. Per-backend volume factors scale
    // the gradient by what the backend actually moves (1 for PS).
    const VolumeLookup volume_of = [&batch, &placed](JobId id) -> MBytes {
        const auto spec = std::find_if(batch.begin(), batch.end(),
                                       [&](const JobSpec &s) {
                                           return s.id == id;
                                       });
        if (spec == batch.end())
            return 0.0;
        MBytes volume =
            ModelZoo::byName(spec->modelName).commVolumePerIter();
        const auto job = std::find_if(placed.begin(), placed.end(),
                                      [&](const PlacedJob &p) {
                                          return p.id == id;
                                      });
        if (job != placed.end()) {
            volume *= backendVolumeFactor(
                job->placement.backend,
                static_cast<int>(job->placement.workers.size()));
        }
        return volume;
    };
    assignSelectiveIna(topo, placed, running, volume_of);
}

} // namespace netpack
