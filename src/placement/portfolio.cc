#include "placement/portfolio.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/check.h"
#include "exec/deterministic_map.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "placement/baselines.h"

namespace netpack {

namespace {

/** One strategy's evaluated outcome on its private state clone. */
struct Outcome
{
    BatchResult result;
    /** Σ value over the placed jobs (admission quality). */
    double placedValue = 0.0;
    /** Σ d/v over the placed batch jobs (Equation-1 objective). */
    double commTime = std::numeric_limits<double>::infinity();
    std::vector<double> scores;
    bool scored = false;
};

} // namespace

PortfolioPlacer::PortfolioPlacer(PortfolioConfig config)
    : config_(std::move(config))
{
    NETPACK_REQUIRE(!config_.strategies.empty(),
                    "portfolio needs at least one strategy");
    NETPACK_REQUIRE(config_.jobs >= 1,
                    "portfolio jobs must be >= 1, got " << config_.jobs);
    strategies_.reserve(config_.strategies.size());
    for (const std::string &name : config_.strategies) {
        NETPACK_REQUIRE(name != "Portfolio",
                        "portfolio cannot contain itself");
        // The jobs knob flows down into the strategies: whichever level
        // fans out first wins, the other degrades to serial (a strategy
        // evaluated on a pool task sees insideTask and stays inline).
        strategies_.push_back(makePlacerByName(name, 0, config_.jobs));
        Rng::State rng_state;
        NETPACK_REQUIRE(
            !strategies_.back()->captureRngState(rng_state),
            "portfolio strategies must be deterministic; '"
                << name << "' carries an RNG stream");
    }
}

PortfolioPlacer::~PortfolioPlacer() = default;

std::vector<std::string>
PortfolioPlacer::strategyNames() const
{
    std::vector<std::string> names;
    names.reserve(strategies_.size());
    for (const auto &strategy : strategies_)
        names.push_back(strategy->name());
    return names;
}

BatchResult
PortfolioPlacer::placeBatch(const std::vector<JobSpec> &batch,
                            const ClusterTopology &topo, GpuLedger &gpus,
                            PlacementContext &ctx)
{
    NETPACK_CHECK_MSG(&ctx.topology() == &topo,
                      "placement context built for a different topology");
    NETPACK_SPAN(span, "placement.portfolio");
    span.arg("batch", batch.size());
    span.arg("strategies", strategies_.size());

    std::unordered_map<JobId, double> value_of;
    value_of.reserve(batch.size());
    for (const JobSpec &spec : batch)
        value_of.emplace(spec.id, spec.value);

    // Every strategy evaluates against a private clone of the live
    // state; the real context and ledger stay untouched until the
    // winner is known.
    const PlacementContext::State base = ctx.exportState();
    const std::size_t n = strategies_.size();
    std::vector<Outcome> outcomes(n);
    const auto evaluate = [&](std::size_t i) {
        PlacementContext clone(topo);
        clone.importState(base);
        GpuLedger ledger = gpus;
        Outcome &out = outcomes[i];
        out.result =
            strategies_[i]->placeBatch(batch, topo, ledger, clone);
        out.placedValue = 0.0;
        for (const PlacedJob &job : out.result.placed) {
            const auto it = value_of.find(job.id);
            NETPACK_CHECK_MSG(it != value_of.end(),
                              "strategy placed unknown job "
                                  << job.id.value);
            out.placedValue += it->second;
        }
        out.commTime = placement_util::batchCommTime(batch, clone);
        if (const std::vector<double> *scores =
                strategies_[i]->batchScores()) {
            out.scores = *scores;
            out.scored = true;
        }
    };

    if (config_.jobs > 1 && n > 1 && !pool_ &&
        !exec::ThreadPool::insideTask()) {
        const auto workers = std::min<std::size_t>(
            static_cast<std::size_t>(config_.jobs), n);
        pool_ = std::make_unique<exec::ThreadPool>(workers);
    }
    exec::deterministicMap(pool_.get(), n, evaluate);

    // Serial reduction in lineup order: the winner is independent of
    // how the evaluations were scheduled.
    std::size_t winner = 0;
    for (std::size_t i = 1; i < n; ++i) {
        const Outcome &a = outcomes[i];
        const Outcome &b = outcomes[winner];
        if (a.placedValue > b.placedValue ||
            (a.placedValue == b.placedValue && a.commTime < b.commTime))
            winner = i;
    }

    // Apply the winning outcome to the real state — no re-run, the
    // clone's decisions are carried over verbatim.
    Outcome &won = outcomes[winner];
    for (const PlacedJob &job : won.result.placed) {
        placement_util::applyAllocation(gpus, job.id, job.placement);
        ctx.addJob(job.id, job.placement);
    }
    lastWinner_ = strategies_[winner]->name();
    lastScores_ = std::move(won.scores);
    lastWinnerScored_ = won.scored;
    obs::recordCount("placement.portfolio_wins." + lastWinner_, 1);
    NETPACK_COUNT("placement.portfolio_epochs", 1);
    span.arg("winner", static_cast<std::int64_t>(winner));
    span.arg("placed", won.result.placed.size());
    return std::move(won.result);
}

} // namespace netpack
