#include "placement/ina_policy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "backends/collective_backend.h"
#include "common/check.h"
#include "ina/hierarchy.h"
#include "obs/trace.h"

namespace netpack {

namespace {

constexpr double kRateEpsilon = 1e-9;

/** Estimated total communication time of @p targets (guard objective). */
double
commObjective(WaterFillingEstimator &wf,
              const std::vector<PlacedJob> &targets,
              const std::vector<PlacedJob> &background,
              const VolumeLookup &volume_of)
{
    std::vector<PlacedJob> combined;
    combined.reserve(background.size() + targets.size());
    combined.insert(combined.end(), background.begin(), background.end());
    combined.insert(combined.end(), targets.begin(), targets.end());
    const SteadyState steady = wf.estimate(combined);

    double total = 0.0;
    for (const PlacedJob &job : targets) {
        const Gbps rate = steady.jobThroughput(job.id);
        if (!std::isfinite(rate))
            continue; // local job, no network time
        if (rate <= 0.0)
            return std::numeric_limits<double>::infinity();
        MBytes volume = volume_of ? volume_of(job.id) : 0.0;
        if (volume <= 0.0)
            volume = 1.0; // uniform weight fallback
        total += units::transferTime(volume, rate);
    }
    return total;
}

} // namespace

InaAssignmentResult
assignSelectiveIna(const ClusterTopology &topo,
                   std::vector<PlacedJob> &targets,
                   const std::vector<PlacedJob> &background,
                   const VolumeLookup &volume_of)
{
    NETPACK_SPAN(span, "placement.ina_ae_ranking");
    span.arg("targets", targets.size());
    InaAssignmentResult result;

    // Start every target from INA-on everywhere it has presence.
    std::vector<PlacedJob> original = targets;
    std::vector<PlacedJob> all_enabled = targets;
    for (PlacedJob &job : all_enabled) {
        if (job.placement.singleServer() ||
            job.placement.totalWorkers() <= 1) {
            job.placement.inaRacks.clear();
        } else {
            job.placement.inaRacks = job.placement.allRacks(topo);
        }
    }
    targets = all_enabled;

    WaterFillingEstimator wf(topo);

    // Remaining PAT once the background jobs take their share.
    const SteadyState base = wf.estimate(background);
    std::vector<Gbps> budget = base.patResidual;

    // Rates and fan-ins with everything enabled drive the AE order.
    std::vector<PlacedJob> combined;
    combined.reserve(background.size() + targets.size());
    combined.insert(combined.end(), background.begin(), background.end());
    combined.insert(combined.end(), targets.begin(), targets.end());
    const SteadyState full = wf.estimate(combined);

    struct Entry
    {
        std::size_t index = 0;
        double ae = 0.0;
        Gbps rate = 0.0;
    };
    std::vector<Entry> entries;
    for (std::size_t i = 0; i < targets.size(); ++i) {
        const PlacedJob &job = targets[i];
        if (job.placement.inaRacks.empty())
            continue;
        // PS jobs rank on the primary-PS unsharded tree (multi-PS shards
        // split fan-in evenly, so the unsharded tree preserves the AE
        // order); non-PS backends bring their own tree shape.
        std::vector<JobHierarchy> trees;
        if (job.placement.backend == BackendKind::PsIna)
            trees.emplace_back(topo, job.id, job.placement);
        else
            trees = backends::buildJobHierarchies(topo, job.id,
                                                  job.placement);
        JobHierarchy &hierarchy = trees.front();
        if (hierarchy.local())
            continue;
        hierarchy.updateFlows(full.patResidual);
        Entry entry;
        entry.index = i;
        entry.rate = full.jobThroughput(job.id);
        if (!std::isfinite(entry.rate))
            continue;
        entry.ae = entry.rate *
                   static_cast<double>(hierarchy.totalIncomingInaFlows());
        entries.push_back(entry);
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry &a, const Entry &b) {
                         return a.ae > b.ae;
                     });

    // Enable in AE order until the pool budget is spent; the last job on
    // a rack may overdraw (statistical pools degrade gracefully), but
    // once the budget is gone, lower-AE jobs are disabled there.
    for (const Entry &entry : entries) {
        Placement &placement = targets[entry.index].placement;
        const Gbps need = std::max(entry.rate, kRateEpsilon);
        std::set<RackId> kept;
        for (RackId rack : placement.inaRacks) {
            if (budget[rack.index()] > kRateEpsilon) {
                budget[rack.index()] -= need;
                kept.insert(rack);
            }
        }
        placement.inaRacks = std::move(kept);
    }

    // Estimator guard: never ship an assignment predicted to regress
    // the targets' total communication time vs plain INA-for-all.
    // Reuses the function-level estimator instead of building a fresh
    // one (and its link tables) per objective evaluation.
    if (commObjective(wf, targets, background, volume_of) >
        commObjective(wf, all_enabled, background, volume_of)) {
        targets = all_enabled;
        result.revertedToAllEnabled = true;
    }

    NETPACK_CHECK(targets.size() == original.size());
    for (std::size_t i = 0; i < targets.size(); ++i) {
        if (targets[i].placement.inaRacks !=
            original[i].placement.inaRacks)
            ++result.jobsChanged;
    }
    return result;
}

} // namespace netpack
