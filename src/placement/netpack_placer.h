/**
 * @file
 * NetPack's placement algorithm (Section 5.2, Algorithm 2). Four steps
 * per scheduling period:
 *
 *  ① Choose the job subset to admit via a 0/1 knapsack over the free
 *    GPUs (job values age in the manager to avoid starvation).
 *  ② For each admitted job (value-descending): if one server can host it
 *    entirely, take the best fit; otherwise re-estimate the steady state
 *    (water-filling) and run the worker-placement dynamic program — a
 *    knapsack whose weight is the 2-D tuple (max per-server flows, GPUs)
 *    and whose per-server value rewards residual bandwidth and punishes
 *    throughput loss inflicted on existing flows.
 *  ③ Score every PS location within every candidate worker plan with
 *    Equation 1 (including the hot-spot penalty, and the rack-aware
 *    penalty in oversubscribed networks) and keep the best full plan.
 *  ④ Selectively enable INA for the admitted jobs in descending
 *    "aggregation efficiency" order until the switch PAT budget is spent.
 *
 * This is the optimized hot path: steps ② and ③ read network state from
 * a flat SteadyStateView snapshot, keep every inner-loop structure in
 * reusable epoch-stamped scratch buffers (no allocation once warm), and
 * walk the DP tables lazily — a candidate (f, g) cell is only
 * backtracked into a plan when an exact upper bound on its best
 * achievable score beats the running best. The decisions must stay
 * bit-identical to the naive implementation retained in
 * reference_placer.{h,cc}; tests/placer_test.cc enforces that.
 */

#ifndef NETPACK_PLACEMENT_NETPACK_PLACER_H
#define NETPACK_PLACEMENT_NETPACK_PLACER_H

#include <cstdint>
#include <optional>

#include "placement/pack_harness.h"

namespace netpack {

/** Tunables of the NetPack placer (ablation switches included). */
struct NetPackConfig
{
    /**
     * Clamp of the DP's flow dimension (FS_max). Per-server flow counts
     * above the clamp saturate; the paper bounds FS_max by a per-server
     * constant.
     */
    int maxFlowsTracked = 16;
    /** Step ④ on/off: selective INA enabling vs INA-for-all (ablation). */
    bool selectiveIna = true;
    /**
     * Track the flow dimension in the worker DP. When off, the knapsack
     * weight degenerates to GPUs only and the hot-spot penalty loses its
     * bite (ablation for the 2-D weight design choice).
     */
    bool twoDimWeight = true;
    /**
     * Apply the oversubscription-aware penalty
     * max_r(C_rack/(FC_r + n_r), C/(f_max + 1)); when off, always use the
     * plain hot-spot penalty C/(f_max + 1).
     */
    bool oversubPenalty = true;
    /**
     * PS shards per multi-server job: the gradient splits over this
     * many PSes, each hosting its own one-PS AllReduce (Section 4.1's
     * composition). The extra PSes are the next-best scoring distinct
     * servers of the winning plan. 1 = the paper's single-PS placement.
     */
    int psShards = 1;
};

/** The NetPack placement policy. */
class NetPackPlacer : public PlacerHarness<NetPackPlacer>
{
  public:
    explicit NetPackPlacer(NetPackConfig config = {});

    std::string name() const override { return "NetPack"; }

    /** Config in use (read-only; for tests). */
    const NetPackConfig &config() const { return config_; }

    /**
     * Equation-1 scores of the DP-placed jobs of the last placeBatch
     * call, in placement order (single-server fast-path jobs excluded).
     * The differential tests compare these bitwise against the naive
     * reference placer's.
     */
    const std::vector<double> &lastScores() const
    {
        return PackHarnessBase::lastScores();
    }

    /**
     * Steps ②-③ for one job against explicit resources: single-server
     * fast path, worker DP, PS scoring, allocation applied on success.
     * Fills @p out (placement + Equation-1 score for DP plans). This is
     * the building block meta-placers (local search, portfolio) call to
     * re-place individual jobs; placeBatch adds admission and step ④ on
     * top.
     */
    bool planOne(const JobSpec &spec, const ClusterTopology &topo,
                 GpuLedger &gpus, PlacementContext &ctx, PackResult &out);

  private:
    friend class PlacerHarness<NetPackPlacer>;

    /** Harness hooks: knapsack admission + value-descending tryPlace
     * loop + selective INA (step ④). */
    void runBatch(const std::vector<JobSpec> &batch);
    bool packOne(const JobSpec &spec, PackResult &out)
    {
        return planOne(spec, topo(), gpus(), ctx(), out);
    }

    /** One DP candidate: a server with free GPUs. */
    struct Candidate
    {
        ServerId id;
        int weight = 0;
        int flows = 0;
        double value = 0.0;
    };

    /**
     * The worker DP's full table for one invocation, kept un-harvested:
     * psPlacement walks the reachable (f, g) cells lazily and only
     * backtracks the plans that survive the upper-bound prune. The
     * per-stage decision rows live in one contiguous arena
     * (candidates x cells int8) instead of one heap vector per stage.
     * Tables are pooled on the placer so a warm placer allocates
     * nothing here.
     */
    struct WorkerDp
    {
        std::vector<Candidate> candidates;
        /** Cell values, (fCap+1) x gn, row-major in f. */
        std::vector<double> value;
        /** Decision arena: candidates.size() rows of cells() bytes.
         * Entry = previous f when taking the stage's server improved
         * the cell, -1 otherwise. */
        std::vector<std::int8_t> decisions;
        int fCap = 0;
        int gn = 0;
        int demand = 0;
        int gMax = 0;

        std::size_t cells() const
        {
            return static_cast<std::size_t>(fCap + 1) *
                   static_cast<std::size_t>(gn);
        }

        std::size_t idx(int f, int g) const
        {
            return static_cast<std::size_t>(f) *
                       static_cast<std::size_t>(gn) +
                   static_cast<std::size_t>(g);
        }
    };

    /** A full plan: workers + PS + score. */
    struct FullPlan
    {
        Placement placement;
        double score = 0.0;
        int gpusTaken = 0;
    };

    /**
     * Step ② DP: fill @p dp with the candidate-plan table for @p spec.
     * When @p restrict_rack is valid only that rack's servers are
     * candidates — in oversubscribed networks the placer additionally
     * searches rack-local (and, two-tier, pod-local) plans so the
     * cross-rack penalty has local alternatives to prefer.
     */
    void workerPlacement(const JobSpec &spec, const ClusterTopology &topo,
                         const GpuLedger &gpus, const SteadyStateView &view,
                         WorkerDp &dp, RackId restrict_rack = {},
                         int restrict_pod = -1);

    /**
     * Step ③: best PS location over every plan of the DP tables built
     * for the current job (dpTables_[0, dpTablesUsed_)).
     */
    std::optional<FullPlan> psPlacement(const JobSpec &spec,
                                        const ClusterTopology &topo,
                                        const SteadyStateView &view);

    /**
     * Step ④: selective INA enabling over the newly placed jobs. The
     * batch specs provide the gradient sizes for the estimator guard
     * that keeps the selective assignment only when the predicted
     * total communication time does not regress vs INA-for-all.
     */
    void selectiveInaEnable(std::vector<PlacedJob> &placed,
                            const ClusterTopology &topo,
                            const std::vector<PlacedJob> &running,
                            const std::vector<JobSpec> &batch) const;

    /** Next pooled DP table (reuses allocations across jobs/batches). */
    WorkerDp &acquireDp();

    /** Size the scratch arrays for @p topo (no-op when unchanged). */
    void ensureScratch(const ClusterTopology &topo);

    /** Bump the plan epoch, clearing the stamped scratch on wrap. */
    void nextEpoch();

    /** Backtrack cell (f, g) of @p dp into planServers_ (id-ascending). */
    void harvestPlan(const WorkerDp &dp, int f, int g, const JobSpec &spec);

    /**
     * The oversubscription crossing loss of placing the PS of the
     * current scratch plan in @p ps_rack: (C - min_share) x plan size
     * when the core bottleneck binds, else 0. Identical for every PS
     * server of a rack, so psPlacement caches it per (plan, rack).
     */
    double crossingLoss(const ClusterTopology &topo,
                        const SteadyStateView &view, int ps_rack,
                        double plan_servers, Gbps c) const;

    NetPackConfig config_;

    // --- reusable scratch (sized by ensureScratch) ------------------
    /** Pooled DP tables; [0, dpTablesUsed_) belong to the current job. */
    std::vector<WorkerDp> dpTables_;
    std::size_t dpTablesUsed_ = 0;
    /** Per-server Equation-1 bandwidth-steal terms, hoisted out of the
     * plan loop: q0 = (C - avail)/(flows + 1) (PS on a chosen server),
     * q1 = (C - avail)/(flows + 2) (PS elsewhere). */
    std::vector<double> psQ0_, psQ1_;
    /** Upper bound (+ slack) on any server's PS contribution at DP row
     * f; prunes (f, g) cells without backtracking them. */
    std::vector<double> umax_;
    /** Core link capacity per rack (topology-constant). */
    std::vector<double> rackCap_;
    /** Pod uplink capacity per pod (two-tier mode). */
    std::vector<double> podCap_;
    /** Epoch-stamped per-plan footprint: chosen servers, racks with
     * their chosen-server counts, pods with their rack counts, and the
     * per-rack crossing-loss cache. A stamp != epoch_ means "not in the
     * current plan" — no clearing between plans. */
    std::vector<std::uint32_t> inPlanStamp_;
    std::vector<std::uint32_t> rackStamp_;
    std::vector<int> rackCount_;
    std::vector<std::uint32_t> podStamp_;
    std::vector<int> podCount_;
    std::vector<std::uint32_t> crossStamp_;
    std::vector<double> crossValue_;
    std::vector<int> planRacks_, planPods_;
    std::vector<std::pair<ServerId, int>> planServers_;
    std::vector<std::pair<double, ServerId>> shardScored_;
    /** Reachable DP f-rows (skip all-(-inf) rows in transitions). */
    std::vector<char> fReach_;
    std::uint32_t epoch_ = 0;
};

} // namespace netpack

#endif // NETPACK_PLACEMENT_NETPACK_PLACER_H
