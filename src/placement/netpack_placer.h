/**
 * @file
 * NetPack's placement algorithm (Section 5.2, Algorithm 2). Four steps
 * per scheduling period:
 *
 *  ① Choose the job subset to admit via a 0/1 knapsack over the free
 *    GPUs (job values age in the manager to avoid starvation).
 *  ② For each admitted job (value-descending): if one server can host it
 *    entirely, take the best fit; otherwise re-estimate the steady state
 *    (water-filling) and run the worker-placement dynamic program — a
 *    knapsack whose weight is the 2-D tuple (max per-server flows, GPUs)
 *    and whose per-server value rewards residual bandwidth and punishes
 *    throughput loss inflicted on existing flows.
 *  ③ Score every PS location within every candidate worker plan with
 *    Equation 1 (including the hot-spot penalty, and the rack-aware
 *    penalty in oversubscribed networks) and keep the best full plan.
 *  ④ Selectively enable INA for the admitted jobs in descending
 *    "aggregation efficiency" order until the switch PAT budget is spent.
 *
 * This is the optimized hot path: steps ② and ③ read network state from
 * a flat SteadyStateView snapshot, keep every inner-loop structure in
 * reusable epoch-stamped scratch buffers (no allocation once warm), and
 * walk the DP tables lazily — a candidate (f, g) cell is only
 * backtracked into a plan when an exact upper bound on its best
 * achievable score beats the running best.
 *
 * On top of the PR-4 optimizations, the per-table work (one worker DP
 * build plus its Equation-1 PS scan per candidate rack/pod) fans out
 * across an exec::ThreadPool when `jobs > 1`: every table is scored
 * against a private epoch-stamped PlanScratch arena with a table-local
 * prune bound (strictly more conservative than the serial running
 * bound, so the argmax is unchanged), and the per-table winners are
 * reduced serially in table order with strict `>` comparisons — the
 * same first-wins tie-break the serial scan applies. The DP relaxation
 * and the Equation-1 scoring loops are restructured into branch-free
 * contiguous passes the autovectorizer handles (see
 * docs/performance.md). Decisions and scores must stay bit-identical to
 * the naive implementation retained in reference_placer.{h,cc} for any
 * `jobs`; tests/placer_test.cc enforces that.
 */

#ifndef NETPACK_PLACEMENT_NETPACK_PLACER_H
#define NETPACK_PLACEMENT_NETPACK_PLACER_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>

#include "placement/pack_harness.h"

namespace netpack {

namespace exec {
class ThreadPool;
}

/** Tunables of the NetPack placer (ablation switches included). */
struct NetPackConfig
{
    /**
     * Clamp of the DP's flow dimension (FS_max). Per-server flow counts
     * above the clamp saturate; the paper bounds FS_max by a per-server
     * constant.
     */
    int maxFlowsTracked = 16;
    /** Step ④ on/off: selective INA enabling vs INA-for-all (ablation). */
    bool selectiveIna = true;
    /**
     * Track the flow dimension in the worker DP. When off, the knapsack
     * weight degenerates to GPUs only and the hot-spot penalty loses its
     * bite (ablation for the 2-D weight design choice).
     */
    bool twoDimWeight = true;
    /**
     * Apply the oversubscription-aware penalty
     * max_r(C_rack/(FC_r + n_r), C/(f_max + 1)); when off, always use the
     * plain hot-spot penalty C/(f_max + 1).
     */
    bool oversubPenalty = true;
    /**
     * PS shards per multi-server job: the gradient splits over this
     * many PSes, each hosting its own one-PS AllReduce (Section 4.1's
     * composition). The extra PSes are the next-best scoring distinct
     * servers of the winning plan. 1 = the paper's single-PS placement.
     */
    int psShards = 1;
    /**
     * Intra-epoch parallelism: worker threads for the per-table DP
     * build + PS scoring fan-out. 1 = serial. Decisions and scores are
     * bit-identical for any value; when the placer itself runs inside a
     * pool task (portfolio lineup, serve what-if, sweep cells) it
     * degrades to serial regardless, counted by
     * placement.par_serial_fallbacks.
     */
    int jobs = 1;
};

/** The NetPack placement policy. */
class NetPackPlacer : public PlacerHarness<NetPackPlacer>
{
  public:
    explicit NetPackPlacer(NetPackConfig config = {});
    ~NetPackPlacer();

    std::string name() const override { return "NetPack"; }

    /** Config in use (read-only; for tests). */
    const NetPackConfig &config() const { return config_; }

    /**
     * Equation-1 scores of the DP-placed jobs of the last placeBatch
     * call, in placement order (single-server fast-path jobs excluded).
     * The differential tests compare these bitwise against the naive
     * reference placer's.
     */
    const std::vector<double> &lastScores() const
    {
        return PackHarnessBase::lastScores();
    }

    /**
     * Steps ②-③ for one job against explicit resources: single-server
     * fast path, worker DP, PS scoring, allocation applied on success.
     * Fills @p out (placement + Equation-1 score for DP plans). This is
     * the building block meta-placers (local search, portfolio) call to
     * re-place individual jobs; placeBatch adds admission and step ④ on
     * top.
     */
    bool planOne(const JobSpec &spec, const ClusterTopology &topo,
                 GpuLedger &gpus, PlacementContext &ctx, PackResult &out);

  private:
    friend class PlacerHarness<NetPackPlacer>;

    /** Harness hooks: knapsack admission + value-descending tryPlace
     * loop + selective INA (step ④). */
    void runBatch(const std::vector<JobSpec> &batch);
    bool packOne(const JobSpec &spec, PackResult &out)
    {
        return planOne(spec, topo(), gpus(), ctx(), out);
    }

    /** One DP candidate: a server with free GPUs. */
    struct Candidate
    {
        ServerId id;
        int weight = 0;
        int flows = 0;
        double value = 0.0;
    };

    /**
     * The worker DP's full table for one invocation, kept un-harvested:
     * the PS scan walks the reachable (f, g) cells lazily and only
     * backtracks the plans that survive the upper-bound prune. The
     * per-stage decision rows live in one contiguous arena
     * (candidates x cells int8) instead of one heap vector per stage.
     * Tables are pooled on the placer so a warm placer allocates
     * nothing here; under the intra-epoch fan-out each table is built
     * and scored by exactly one task.
     */
    struct WorkerDp
    {
        std::vector<Candidate> candidates;
        /** Cell values, (fCap+1) x gn, row-major in f. */
        std::vector<double> value;
        /** Decision arena: candidates.size() rows of cells() bytes.
         * Entry = previous f when taking the stage's server improved
         * the cell, -1 otherwise. */
        std::vector<std::int8_t> decisions;
        /** Reachable DP f-rows (skip all-(-inf) rows in transitions). */
        std::vector<char> fReach;
        /** Pre-stage copy of a value row whose relax pass would
         * otherwise read its own writes (source row == target row). */
        std::vector<double> rowScratch;
        int fCap = 0;
        int gn = 0;
        int demand = 0;
        int gMax = 0;

        std::size_t cells() const
        {
            return static_cast<std::size_t>(fCap + 1) *
                   static_cast<std::size_t>(gn);
        }

        std::size_t idx(int f, int g) const
        {
            return static_cast<std::size_t>(f) *
                       static_cast<std::size_t>(gn) +
                   static_cast<std::size_t>(g);
        }
    };

    /**
     * Per-plan scratch arena: the epoch-stamped plan footprint (chosen
     * servers, racks with chosen-server counts, pods with rack counts)
     * plus the contiguous per-server pass arrays of the vectorized
     * Equation-1 scan. A stamp != epoch means "not in the current plan"
     * — no clearing between plans. One arena per concurrent scoring
     * task (leased from a freelist), so the fan-out shares nothing
     * mutable.
     */
    struct PlanScratch
    {
        std::vector<std::uint32_t> inPlanStamp;
        std::vector<std::uint32_t> rackStamp;
        std::vector<int> rackCount;
        std::vector<std::uint32_t> podStamp;
        std::vector<int> podCount;
        std::vector<int> planRacks, planPods;
        std::vector<std::pair<ServerId, int>> planServers;
        /** Pass A output: f_max + 1 per PS candidate server. */
        std::vector<int> fmaxScratch;
        /** Pass B/C output: the Equation-1 penalty per server. */
        std::vector<double> penScratch;
        /** Pass D output: the full Equation-1 score per server. */
        std::vector<double> scoreScratch;
        std::uint32_t epoch = 0;

        /** Size for a topology (no-op when unchanged). */
        void ensure(int n_servers, int n_racks, int n_pods);

        /** Bump the plan epoch, clearing the stamps on wrap. */
        void nextEpoch();
    };

    /** RAII lease of a PlanScratch from the placer's freelist. */
    class ScratchLease
    {
      public:
        explicit ScratchLease(NetPackPlacer &placer);
        ~ScratchLease();
        ScratchLease(const ScratchLease &) = delete;
        ScratchLease &operator=(const ScratchLease &) = delete;
        PlanScratch &get() { return *scratch_; }

      private:
        NetPackPlacer &placer_;
        PlanScratch *scratch_;
    };

    /** One DP table's winning PS assignment (the fan-out's per-task
     * result; reduced serially in table order). */
    struct TableBest
    {
        double score = 0.0;
        int f = -1;
        int g = -1;
        ServerId ps;
        bool found = false;
        std::int64_t plansScored = 0;
        std::int64_t cellsPruned = 0;
    };

    /** A full plan: workers + PS + score. */
    struct FullPlan
    {
        Placement placement;
        double score = 0.0;
        int gpusTaken = 0;
    };

    /**
     * Step ② DP: fill @p dp with the candidate-plan table for @p spec.
     * When @p restrict_rack is valid only that rack's servers are
     * candidates — in oversubscribed networks the placer additionally
     * searches rack-local (and, two-tier, pod-local) plans so the
     * cross-rack penalty has local alternatives to prefer. Writes only
     * @p dp (safe to run one table per pool task).
     */
    void workerPlacement(const JobSpec &spec, const ClusterTopology &topo,
                         const GpuLedger &gpus, const SteadyStateView &view,
                         WorkerDp &dp, RackId restrict_rack = {},
                         int restrict_pod = -1) const;

    /**
     * Fill psQ0_/psQ1_/umax_ from @p view (plan-invariant Equation-1
     * terms; read-only during the fan-out).
     */
    void prepareScoring(const ClusterTopology &topo,
                        const SteadyStateView &view);

    /**
     * Step ③ for one DP table: walk its reachable (f, g) cells,
     * backtrack the plans that survive the @p bound prune, and score
     * every PS location with the vectorized Equation-1 passes. @p bound
     * is read for pruning and raised on every improvement: the serial
     * path threads one bound through all tables (exactly the PR-4
     * running best), the parallel path gives each table its own bound
     * starting at -inf (prunes less, argmax unchanged).
     */
    void scoreTable(const JobSpec &spec, const ClusterTopology &topo,
                    const SteadyStateView &view, const WorkerDp &dp,
                    PlanScratch &scratch, double &bound,
                    TableBest &out) const;

    /**
     * Step ④: selective INA enabling over the newly placed jobs. The
     * batch specs provide the gradient sizes for the estimator guard
     * that keeps the selective assignment only when the predicted
     * total communication time does not regress vs INA-for-all.
     */
    void selectiveInaEnable(std::vector<PlacedJob> &placed,
                            const ClusterTopology &topo,
                            const std::vector<PlacedJob> &running,
                            const std::vector<JobSpec> &batch) const;

    /** Freelist access for ScratchLease (sized for topoDims_). */
    PlanScratch *acquireScratch();
    void releaseScratch(PlanScratch *scratch);

    /** Record the scratch dimensions for @p topo. */
    void ensureScratchDims(const ClusterTopology &topo);

    /** Backtrack cell (f, g) of @p dp into scratch.planServers
     * (id-ascending). */
    void harvestPlan(const WorkerDp &dp, int f, int g, const JobSpec &spec,
                     PlanScratch &scratch) const;

    /**
     * The oversubscription crossing loss of placing the PS of
     * @p scratch's current plan in @p ps_rack: (C - min_share) x plan
     * size when the core bottleneck binds, else 0. Identical for every
     * PS server of a rack, so scoreTable computes it once per
     * (plan, rack).
     */
    double crossingLoss(const ClusterTopology &topo,
                        const SteadyStateView &view, int ps_rack,
                        double plan_servers, Gbps c,
                        const PlanScratch &scratch) const;

    NetPackConfig config_;

    // --- reusable scratch (sized per topology) ----------------------
    /** Pooled DP tables; [0, dpTablesUsed_) belong to the current job. */
    std::vector<WorkerDp> dpTables_;
    std::size_t dpTablesUsed_ = 0;
    /** Table descriptors of the current job: (restrict_rack,
     * restrict_pod), global table first. */
    std::vector<std::pair<RackId, int>> tableSpecs_;
    /** Per-table winners, reduced serially after the fan-out. */
    std::vector<TableBest> tableBests_;
    /** Per-server Equation-1 bandwidth-steal terms, hoisted out of the
     * plan loop: q0 = (C - avail)/(flows + 1) (PS on a chosen server),
     * q1 = (C - avail)/(flows + 2) (PS elsewhere). */
    std::vector<double> psQ0_, psQ1_;
    /** Upper bound (+ slack) on any server's PS contribution at DP row
     * f; prunes (f, g) cells without backtracking them. */
    std::vector<double> umax_;
    /** Branch-free pass array feeding the umax_ max scans. */
    std::vector<double> umaxTermScratch_;
    /** Core link capacity per rack (topology-constant). */
    std::vector<double> rackCap_;
    /** Pod uplink capacity per pod (two-tier mode). */
    std::vector<double> podCap_;
    std::vector<std::pair<double, ServerId>> shardScored_;

    /** PlanScratch freelist: one arena per concurrent scoring task,
     * reused across plans/jobs/batches (mutex held only for the
     * acquire/release pointer swap, never during scoring). */
    std::vector<std::unique_ptr<PlanScratch>> scratchAll_;
    std::vector<PlanScratch *> scratchFree_;
    std::mutex scratchMutex_;
    int scratchServers_ = -1, scratchRacks_ = -1, scratchPods_ = -1;

    /** Lazily built fan-out pool (config_.jobs workers). */
    std::unique_ptr<exec::ThreadPool> pool_;
};

} // namespace netpack

#endif // NETPACK_PLACEMENT_NETPACK_PLACER_H
