/**
 * @file
 * NetPack's placement algorithm (Section 5.2, Algorithm 2). Four steps
 * per scheduling period:
 *
 *  ① Choose the job subset to admit via a 0/1 knapsack over the free
 *    GPUs (job values age in the manager to avoid starvation).
 *  ② For each admitted job (value-descending): if one server can host it
 *    entirely, take the best fit; otherwise re-estimate the steady state
 *    (water-filling) and run the worker-placement dynamic program — a
 *    knapsack whose weight is the 2-D tuple (max per-server flows, GPUs)
 *    and whose per-server value rewards residual bandwidth and punishes
 *    throughput loss inflicted on existing flows.
 *  ③ Score every PS location within every candidate worker plan with
 *    Equation 1 (including the hot-spot penalty, and the rack-aware
 *    penalty in oversubscribed networks) and keep the best full plan.
 *  ④ Selectively enable INA for the admitted jobs in descending
 *    "aggregation efficiency" order until the switch PAT budget is spent.
 */

#ifndef NETPACK_PLACEMENT_NETPACK_PLACER_H
#define NETPACK_PLACEMENT_NETPACK_PLACER_H

#include <optional>

#include "placement/placer.h"

namespace netpack {

/** Tunables of the NetPack placer (ablation switches included). */
struct NetPackConfig
{
    /**
     * Clamp of the DP's flow dimension (FS_max). Per-server flow counts
     * above the clamp saturate; the paper bounds FS_max by a per-server
     * constant.
     */
    int maxFlowsTracked = 16;
    /** Step ④ on/off: selective INA enabling vs INA-for-all (ablation). */
    bool selectiveIna = true;
    /**
     * Track the flow dimension in the worker DP. When off, the knapsack
     * weight degenerates to GPUs only and the hot-spot penalty loses its
     * bite (ablation for the 2-D weight design choice).
     */
    bool twoDimWeight = true;
    /**
     * Apply the oversubscription-aware penalty
     * max_r(C_rack/(FC_r + n_r), C/(f_max + 1)); when off, always use the
     * plain hot-spot penalty C/(f_max + 1).
     */
    bool oversubPenalty = true;
    /**
     * PS shards per multi-server job: the gradient splits over this
     * many PSes, each hosting its own one-PS AllReduce (Section 4.1's
     * composition). The extra PSes are the next-best scoring distinct
     * servers of the winning plan. 1 = the paper's single-PS placement.
     */
    int psShards = 1;
};

/** The NetPack placement policy. */
class NetPackPlacer : public Placer
{
  public:
    explicit NetPackPlacer(NetPackConfig config = {});

    std::string name() const override { return "NetPack"; }

    using Placer::placeBatch;
    BatchResult placeBatch(const std::vector<JobSpec> &batch,
                           const ClusterTopology &topo, GpuLedger &gpus,
                           PlacementContext &ctx) override;

    /** Config in use (read-only; for tests). */
    const NetPackConfig &config() const { return config_; }

  private:
    /** A worker plan recovered from the DP table. */
    struct WorkerPlan
    {
        /** Chosen servers with the free-GPU count each contributes. */
        std::vector<std::pair<ServerId, int>> servers;
        /** max per-server flow count among chosen servers (DP f). */
        int fMax = 0;
        /** total GPUs the plan takes (DP g). */
        int gpus = 0;
        /** accumulated server value. */
        double value = 0.0;
    };

    /** A full plan: workers + PS + score. */
    struct FullPlan
    {
        Placement placement;
        double score = 0.0;
        int gpusTaken = 0;
    };

    /**
     * Step ② DP: candidate worker plans for @p spec. When
     * @p restrict_rack is valid only that rack's servers are candidates
     * — in oversubscribed networks the placer additionally searches
     * rack-local plans so the cross-rack penalty has in-rack
     * alternatives to prefer.
     */
    std::vector<WorkerPlan> workerPlacement(const JobSpec &spec,
                                            const ClusterTopology &topo,
                                            const GpuLedger &gpus,
                                            const SteadyState &steady,
                                            RackId restrict_rack = {},
                                            int restrict_pod = -1) const;

    /** Step ③: best PS location over all candidate plans. */
    std::optional<FullPlan> psPlacement(const JobSpec &spec,
                                        const ClusterTopology &topo,
                                        const std::vector<WorkerPlan> &plans,
                                        const SteadyState &steady) const;

    /**
     * Step ④: selective INA enabling over the newly placed jobs. The
     * batch specs provide the gradient sizes for the estimator guard
     * that keeps the selective assignment only when the predicted
     * total communication time does not regress vs INA-for-all.
     */
    void selectiveInaEnable(std::vector<PlacedJob> &placed,
                            const ClusterTopology &topo,
                            const std::vector<PlacedJob> &running,
                            const std::vector<JobSpec> &batch) const;

    NetPackConfig config_;
};

} // namespace netpack

#endif // NETPACK_PLACEMENT_NETPACK_PLACER_H
