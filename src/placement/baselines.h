/**
 * @file
 * Baseline placement policies from the paper's evaluation (Section 6.1):
 * three single-resource heuristics (GPU-balance, Flow-balance,
 * Least-fragmentation), two prior-art placers (Optimus, Tetris), the
 * naive multi-resource combination Comb (Section 6.4), and a Random
 * control. None of them reason about INA during placement; INA is
 * enabled transparently for their jobs at runtime, exactly as in the
 * paper's experiments.
 *
 * Network-aware baselines read the flat SteadyStateView snapshot (one
 * per batch, cached by the PlacementContext) instead of per-server
 * SteadyState accessor calls, and the preference order is built into a
 * reusable scratch vector — a warm baseline placer allocates nothing
 * per job.
 */

#ifndef NETPACK_PLACEMENT_BASELINES_H
#define NETPACK_PLACEMENT_BASELINES_H

#include <memory>

#include "common/rng.h"
#include "placement/pack_harness.h"

namespace netpack {

/**
 * Common machinery: FIFO admission (submit order, defer what does not
 * fit), one steady-state snapshot per batch for policies that need
 * network state, greedy worker packing along a policy-specific server
 * preference order, PS on the least-loaded chosen server, INA everywhere.
 */
class BaselinePlacer : public PlacerHarness<BaselinePlacer>
{
  protected:
    /** Whether serverOrder consumes the steady-state snapshot. */
    virtual bool needsSteadyState() const { return false; }

    /**
     * Policy-specific preference order (most preferred first), written
     * into @p out (cleared first). Servers without free GPUs may be
     * included; they are skipped when packing.
     */
    virtual void serverOrder(const JobSpec &spec,
                             const ClusterTopology &topo,
                             const GpuLedger &gpus,
                             const SteadyStateView *view,
                             std::vector<ServerId> &out) = 0;

    /**
     * Hook for policies that do more than greedy packing (Optimus).
     * Default: greedyTake along serverOrder, then finalizeBaseline.
     * Returns false when the job cannot be placed.
     */
    virtual bool placeOne(const JobSpec &spec, const ClusterTopology &topo,
                          GpuLedger &gpus, const SteadyStateView *view,
                          Placement &out);

    /** Fill @p out with all server ids 0..n-1. */
    static void fillAllServers(const ClusterTopology &topo,
                               std::vector<ServerId> &out);

    /** Reusable preference-order buffer for placeOne/serverOrder. */
    std::vector<ServerId> orderScratch_;

  private:
    friend class PlacerHarness<BaselinePlacer>;

    /** Harness hooks: FIFO admission over the batch, one job at a time. */
    void runBatch(const std::vector<JobSpec> &batch);
    bool packOne(const JobSpec &spec, PackResult &out);

    /** Pre-batch steady-state snapshot (null for local policies). */
    const SteadyStateView *batchView_ = nullptr;
};

/** GB: prefer servers with the most free GPUs. */
class GpuBalancePlacer : public BaselinePlacer
{
  public:
    std::string name() const override { return "GB"; }

  protected:
    void serverOrder(const JobSpec &spec, const ClusterTopology &topo,
                     const GpuLedger &gpus, const SteadyStateView *view,
                     std::vector<ServerId> &out) override;
};

/** FB: prefer servers whose access link carries the fewest flows. */
class FlowBalancePlacer : public BaselinePlacer
{
  public:
    std::string name() const override { return "FB"; }

  protected:
    bool needsSteadyState() const override { return true; }
    void serverOrder(const JobSpec &spec, const ClusterTopology &topo,
                     const GpuLedger &gpus, const SteadyStateView *view,
                     std::vector<ServerId> &out) override;
};

/** LF: use up partially-occupied servers first (best-fit packing). */
class LeastFragmentationPlacer : public BaselinePlacer
{
  public:
    std::string name() const override { return "LF"; }

  protected:
    void serverOrder(const JobSpec &spec, const ClusterTopology &topo,
                     const GpuLedger &gpus, const SteadyStateView *view,
                     std::vector<ServerId> &out) override;
};

/**
 * Optimus [32]: sort servers by available GPUs and spread the workers
 * and the PS evenly over the minimal top-k prefix that covers the demand.
 */
class OptimusPlacer : public BaselinePlacer
{
  public:
    std::string name() const override { return "Optimus"; }

  protected:
    void serverOrder(const JobSpec &spec, const ClusterTopology &topo,
                     const GpuLedger &gpus, const SteadyStateView *view,
                     std::vector<ServerId> &out) override;
    bool placeOne(const JobSpec &spec, const ClusterTopology &topo,
                  GpuLedger &gpus, const SteadyStateView *view,
                  Placement &out) override;
};

/**
 * Tetris [14]: rank servers by the alignment score — the dot product of
 * the server's available-resource vector (GPUs, bandwidth) with the
 * job's requirement vector.
 */
class TetrisPlacer : public BaselinePlacer
{
  public:
    std::string name() const override { return "Tetris"; }

  protected:
    bool needsSteadyState() const override { return true; }
    void serverOrder(const JobSpec &spec, const ClusterTopology &topo,
                     const GpuLedger &gpus, const SteadyStateView *view,
                     std::vector<ServerId> &out) override;

  private:
    std::vector<double> scoreScratch_;
    std::vector<std::size_t> rankScratch_;
};

/**
 * Comb (Section 6.4): the naive combination that sorts servers by
 * available GPUs, then ToR PAT residual, then link bandwidth — each
 * resource considered separately rather than jointly.
 */
class CombPlacer : public BaselinePlacer
{
  public:
    std::string name() const override { return "Comb"; }

  protected:
    bool needsSteadyState() const override { return true; }
    void serverOrder(const JobSpec &spec, const ClusterTopology &topo,
                     const GpuLedger &gpus, const SteadyStateView *view,
                     std::vector<ServerId> &out) override;
};

/** Uniform-random feasible placement (control for tests/ablation). */
class RandomPlacer : public BaselinePlacer
{
  public:
    explicit RandomPlacer(std::uint64_t seed = 7);

    std::string name() const override { return "Random"; }

    bool captureRngState(Rng::State &out) const override
    {
        out = rng_.state();
        return true;
    }

    void restoreRngState(const Rng::State &state) override
    {
        rng_.setState(state);
    }

  protected:
    void serverOrder(const JobSpec &spec, const ClusterTopology &topo,
                     const GpuLedger &gpus, const SteadyStateView *view,
                     std::vector<ServerId> &out) override;

  private:
    Rng rng_;
};

/**
 * Factory by figure label; ConfigError for unknown names. @p seed
 * selects the RNG stream of stochastic placers (Random); 0 keeps their
 * fixed default, deterministic placers ignore it. @p jobs is the
 * intra-epoch worker count of the placers that support it (NetPack's
 * per-table fan-out, NetPack+LS's inner placer, Portfolio's lineup);
 * decisions are bit-identical for any value, the others ignore it.
 * "NetPackRef" builds the frozen naive reference placer
 * (differential-test oracle).
 */
std::unique_ptr<Placer> makePlacerByName(const std::string &name,
                                         std::uint64_t seed = 0,
                                         int jobs = 1);

/** The placer lineup of Figures 7-9: GB, FB, LF, Optimus, Tetris. */
std::vector<std::string> baselineNames();

/** Every name makePlacerByName accepts (the factory's full lineup). */
std::vector<std::string> placerNames();

} // namespace netpack

#endif // NETPACK_PLACEMENT_BASELINES_H
