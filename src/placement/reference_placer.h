/**
 * @file
 * The retained naive implementation of NetPack's Algorithm 2, frozen at
 * the state before the allocation-free hot-path rewrite of
 * netpack_placer.cc. It recomputes everything from first principles —
 * per-(plan, server) SteadyState accessor queries, per-plan
 * std::set/std::map rack bookkeeping, a fresh decision table per DP
 * stage, full plan harvesting before scoring — which makes it slow but
 * obviously correct.
 *
 * Two consumers keep it alive:
 *  - tests/placer_test.cc pins the optimized NetPackPlacer against it
 *    over randomized topologies and steady states (placements and
 *    scores must match exactly), and
 *  - bench/bench_placer_micro.cc uses it as the speedup baseline.
 *
 * Any intended behavior change to the placement algorithm must be made
 * in BOTH placers, or the differential tests will (deliberately) fail.
 */

#ifndef NETPACK_PLACEMENT_REFERENCE_PLACER_H
#define NETPACK_PLACEMENT_REFERENCE_PLACER_H

#include <optional>

#include "placement/netpack_placer.h"
#include "placement/placer.h"

namespace netpack {

/** The naive NetPack placement policy (differential-test oracle). */
class ReferenceNetPackPlacer : public Placer
{
  public:
    explicit ReferenceNetPackPlacer(NetPackConfig config = {});

    std::string name() const override { return "NetPackRef"; }

    using Placer::placeBatch;
    BatchResult placeBatch(const std::vector<JobSpec> &batch,
                           const ClusterTopology &topo, GpuLedger &gpus,
                           PlacementContext &ctx) override;

    /** Config in use (read-only; for tests). */
    const NetPackConfig &config() const { return config_; }

    /**
     * Equation-1 scores of the DP-placed jobs of the last placeBatch
     * call, in placement order (single-server fast-path jobs excluded).
     * The differential tests compare these bitwise against the
     * optimized placer's.
     */
    const std::vector<double> &lastScores() const { return lastScores_; }

    const std::vector<double> *batchScores() const override
    {
        return &lastScores_;
    }

  private:
    /** A worker plan recovered from the DP table. */
    struct WorkerPlan
    {
        /** Chosen servers with the free-GPU count each contributes. */
        std::vector<std::pair<ServerId, int>> servers;
        /** max per-server flow count among chosen servers (DP f). */
        int fMax = 0;
        /** total GPUs the plan takes (DP g). */
        int gpus = 0;
        /** accumulated server value. */
        double value = 0.0;
    };

    /** A full plan: workers + PS + score. */
    struct FullPlan
    {
        Placement placement;
        double score = 0.0;
        int gpusTaken = 0;
    };

    std::vector<WorkerPlan> workerPlacement(const JobSpec &spec,
                                            const ClusterTopology &topo,
                                            const GpuLedger &gpus,
                                            const SteadyState &steady,
                                            RackId restrict_rack = {},
                                            int restrict_pod = -1) const;

    std::optional<FullPlan> psPlacement(const JobSpec &spec,
                                        const ClusterTopology &topo,
                                        const std::vector<WorkerPlan> &plans,
                                        const SteadyState &steady) const;

    void selectiveInaEnable(std::vector<PlacedJob> &placed,
                            const ClusterTopology &topo,
                            const std::vector<PlacedJob> &running,
                            const std::vector<JobSpec> &batch) const;

    NetPackConfig config_;
    std::vector<double> lastScores_;
};

} // namespace netpack

#endif // NETPACK_PLACEMENT_REFERENCE_PLACER_H
