/**
 * @file
 * Greedy local-search meta-placer ("NetPack+LS"): run the NetPack DP
 * batch placement, then try to improve it with single-job reassignments
 * — unpack one placed job, re-plan it against the cluster state *with
 * the rest of the batch in place* (the DP placed it against a partial
 * batch), and keep the move only when the batch's total communication
 * time Σ d/v strictly improves. Every speculative move rides the
 * try/accept/rollback harness: a rejected move rolls the placement
 * context and the GPU ledger back to bit-identical pre-move state, so
 * the search is free to probe without bookkeeping of its own.
 */

#ifndef NETPACK_PLACEMENT_LOCAL_SEARCH_H
#define NETPACK_PLACEMENT_LOCAL_SEARCH_H

#include "placement/netpack_placer.h"

namespace netpack {

/** Tunables of the local-search pass. */
struct LocalSearchConfig
{
    /** Budget of speculative single-job reassignments per batch. */
    int maxMoves = 32;
    /** Improvement sweeps over the placed jobs (each sweep re-tries
     * every placed network job once, while the move budget lasts). */
    int maxPasses = 4;
    /** Inner NetPack configuration. */
    NetPackConfig netpack;
};

/** NetPack + greedy single-job reassignment local search. */
class LocalSearchPlacer : public PlacerHarness<LocalSearchPlacer>
{
  public:
    explicit LocalSearchPlacer(LocalSearchConfig config = {});

    std::string name() const override { return "NetPack+LS"; }

    /** Moves accepted by the last placeBatch (for tests/benches). */
    int lastMovesAccepted() const { return movesAccepted_; }

  private:
    friend class PlacerHarness<LocalSearchPlacer>;

    void runBatch(const std::vector<JobSpec> &batch);
    bool packOne(const JobSpec &spec, PackResult &out)
    {
        return inner_.planOne(spec, topo(), gpus(), ctx(), out);
    }

    LocalSearchConfig config_;
    NetPackPlacer inner_;
    int movesAccepted_ = 0;
};

} // namespace netpack

#endif // NETPACK_PLACEMENT_LOCAL_SEARCH_H
