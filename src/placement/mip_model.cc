#include "placement/mip_model.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "ina/hierarchy.h"
#include "waterfill/steady_state.h"

namespace netpack {

namespace {

constexpr double kTolerance = 1e-6;

const JobSpec &
specOf(const std::vector<JobSpec> &jobs, JobId id)
{
    const auto it = std::find_if(jobs.begin(), jobs.end(),
                                 [&](const JobSpec &s) {
                                     return s.id == id;
                                 });
    NETPACK_CHECK_MSG(it != jobs.end(),
                      "placement for unknown job " << id.value);
    return *it;
}

/** Whether a placement is complete enough to generate traffic. */
bool
structurallyValid(const Placement &p)
{
    if (p.workers.empty())
        return false;
    if (p.singleServer() || p.totalWorkers() <= 1)
        return true;
    return p.psServer.valid();
}

} // namespace

std::vector<MipJobVariables>
materializeMipVariables(const ClusterTopology &topo,
                        const std::vector<JobSpec> &jobs,
                        const std::vector<PlacedJob> &placements)
{
    // The steady state can only be computed over structurally valid
    // placements; invalid ones (e.g. a multi-server job without a PS)
    // still get geometry variables so the constraint checks can flag
    // them, but contribute no traffic.
    std::vector<PlacedJob> valid;
    for (const PlacedJob &placed : placements) {
        if (structurallyValid(placed.placement))
            valid.push_back(placed);
    }
    WaterFillingEstimator wf(topo);
    const SteadyState steady = wf.estimate(valid);
    return materializeMipVariables(topo, jobs, placements, steady);
}

std::vector<MipJobVariables>
materializeMipVariables(const ClusterTopology &topo,
                        const std::vector<JobSpec> &jobs,
                        const std::vector<PlacedJob> &placements,
                        const SteadyState &steady)
{
    (void)jobs; // geometry + steady state suffice; kept for symmetry
    std::vector<MipJobVariables> variables;
    variables.reserve(placements.size());
    for (const PlacedJob &placed : placements) {
        MipJobVariables var;
        var.job = placed.id;
        var.w.assign(static_cast<std::size_t>(topo.numServers()), 0);
        var.x.assign(static_cast<std::size_t>(topo.numServers()), 0);
        var.y.assign(static_cast<std::size_t>(topo.numServers()), 0);
        var.z.assign(static_cast<std::size_t>(topo.numRacks()), 0);

        for (const auto &[server, count] : placed.placement.workers) {
            var.w[server.index()] = count;
            var.x[server.index()] = count > 0 ? 1 : 0;
        }
        const bool local = placed.placement.singleServer() ||
                           placed.placement.totalWorkers() <= 1;
        if (!local) {
            for (ServerId ps : placed.placement.psServers())
                var.y[ps.index()] = 1;
        }
        for (RackId rack : placed.placement.inaRacks)
            var.z[rack.index()] = 1;

        // Throughput split: local jobs have no PS and hence v = 0
        // (Eq. 7); network jobs take their converged max-min rate, and
        // the binary aggregation state of the final water-filling round
        // decides a vs b. (Under mid-fill PAT exhaustion the true state
        // is a mixture; see checkMipFeasibility's note.)
        if (!local && structurallyValid(placed.placement)) {
            const Gbps rate = steady.jobThroughput(placed.id);
            var.v = std::isfinite(rate) ? rate : 0.0;
            JobHierarchy hierarchy(topo, placed.id, placed.placement);
            hierarchy.updateFlows(steady.patResidual);
            bool fully_aggregated = !hierarchy.nodes().empty();
            for (const auto &node : hierarchy.nodes()) {
                if (node.kind == HierarchyNode::Kind::Switch &&
                    node.flows > 1)
                    fully_aggregated = false;
            }
            if (fully_aggregated && !placed.placement.inaRacks.empty()) {
                var.a = var.v;
                var.b = 0.0;
            } else {
                var.a = 0.0;
                var.b = var.v;
            }
        }
        variables.push_back(std::move(var));
    }
    return variables;
}

namespace {

/** Constraint checks Eq. 1-10 over already-materialized variables. */
MipCheckResult
checkMipVariables(const ClusterTopology &topo,
                  const std::vector<JobSpec> &jobs,
                  const std::vector<PlacedJob> &placements,
                  const std::vector<MipJobVariables> &variables)
{
    MipCheckResult result;
    const auto fail = [&result](const std::string &message) {
        result.feasible = false;
        result.violations.push_back(message);
    };

    const auto servers = static_cast<std::size_t>(topo.numServers());
    const auto racks = static_cast<std::size_t>(topo.numRacks());

    for (const MipJobVariables &var : variables) {
        const JobSpec &spec = specOf(jobs, var.job);

        // Eq. 1: GPU requirement met exactly.
        int total_w = 0;
        for (std::size_t i = 0; i < servers; ++i)
            total_w += var.w[i];
        if (total_w != spec.gpuDemand) {
            std::ostringstream oss;
            oss << "Eq.1 job " << var.job.value << ": placed " << total_w
                << " GPUs, demand " << spec.gpuDemand;
            fail(oss.str());
        }

        int sum_x = 0, sum_y = 0, sum_z = 0;
        for (std::size_t i = 0; i < servers; ++i) {
            // Eq. 9/10: domains.
            if (var.w[i] < 0)
                fail("Eq.10 negative w");
            if (var.x[i] != 0 && var.x[i] != 1)
                fail("Eq.9 non-binary x");
            // Eq. 5: worker placement and GPU usage consistent.
            if (var.w[i] * (1 - var.x[i]) != 0 ||
                (var.x[i] == 1 && var.w[i] == 0)) {
                std::ostringstream oss;
                oss << "Eq.5 job " << var.job.value << " server " << i
                    << ": w=" << var.w[i] << " x=" << var.x[i];
                fail(oss.str());
            }
            sum_x += var.x[i];
            sum_y += var.y[i];
        }
        for (std::size_t r = 0; r < racks; ++r)
            sum_z += var.z[r];

        // Eq. 6: multi-server jobs need exactly one PS.
        // (sum_y may exceed 1 for the sharded-PS extension: the paper
        // composes multi-PS AllReduce from one-PS trees, Section 4.1.)
        if ((sum_x - 1) * (1 - std::min(sum_y, 1)) != 0) {
            std::ostringstream oss;
            oss << "Eq.6 job " << var.job.value << ": " << sum_x
                << " worker servers but " << sum_y << " PS";
            fail(oss.str());
        }

        // Eq. 7: only jobs with a PS generate traffic.
        if (var.v * (1 - sum_y) > kTolerance) {
            std::ostringstream oss;
            oss << "Eq.7 job " << var.job.value << ": v=" << var.v
                << " without a PS";
            fail(oss.str());
        }

        // Eq. 8: only INA-enabled jobs generate aggregated traffic.
        if (var.a > kTolerance && sum_z == 0) {
            std::ostringstream oss;
            oss << "Eq.8 job " << var.job.value << ": a=" << var.a
                << " with INA disabled everywhere";
            fail(oss.str());
        }
        // z support: INA only on racks the job actually touches.
        const PlacedJob &placed = *std::find_if(
            placements.begin(), placements.end(),
            [&](const PlacedJob &p) { return p.id == var.job; });
        const auto touched = placed.placement.allRacks(topo);
        for (std::size_t r = 0; r < racks; ++r) {
            if (var.z[r] == 1 &&
                touched.count(RackId(static_cast<int>(r))) == 0) {
                std::ostringstream oss;
                oss << "z job " << var.job.value << ": INA on rack " << r
                    << " the job does not touch";
                fail(oss.str());
            }
        }
    }

    // Eq. 2: per-server GPU capacity.
    for (std::size_t i = 0; i < servers; ++i) {
        int used = 0;
        for (const MipJobVariables &var : variables)
            used += var.w[i];
        if (used > topo.gpusPerServer()) {
            std::ostringstream oss;
            oss << "Eq.2 server " << i << ": " << used << " GPUs > "
                << topo.gpusPerServer();
            fail(oss.str());
        }
    }

    // Eq. 3: access-link bandwidth. LHS per server i:
    // Σ_j [x_i v + y_i (a + Σ_k x_k b)].
    for (std::size_t i = 0; i < servers; ++i) {
        double load = 0.0;
        for (const MipJobVariables &var : variables) {
            int worker_servers = 0;
            for (std::size_t k = 0; k < servers; ++k)
                worker_servers += var.x[k];
            load += var.x[i] * var.v +
                    var.y[i] * (var.a + worker_servers * var.b);
        }
        const Gbps cap =
            topo.serverLinkCapacity(ServerId(static_cast<int>(i)));
        if (load > cap + kTolerance) {
            std::ostringstream oss;
            oss << "Eq.3 server " << i << ": load " << load << " Gbps > "
                << cap;
            fail(oss.str());
        }
    }

    // Eq. 4: per-rack PAT.
    for (std::size_t r = 0; r < racks; ++r) {
        double aggregated = 0.0;
        for (const MipJobVariables &var : variables)
            aggregated += var.a * var.z[r];
        const Gbps pat = topo.torPat(RackId(static_cast<int>(r)));
        if (aggregated > pat + kTolerance) {
            std::ostringstream oss;
            oss << "Eq.4 rack " << r << ": aggregated " << aggregated
                << " Gbps > PAT " << pat;
            fail(oss.str());
        }
    }

    return result;
}

/** Σ_j Σ_i y_i^(j) d^(j) / v^(j) over materialized variables. */
double
objectiveOfVariables(const std::vector<JobSpec> &jobs,
                     const std::vector<MipJobVariables> &variables)
{
    double objective = 0.0;
    for (const MipJobVariables &var : variables) {
        int sum_y = 0;
        for (int y : var.y)
            sum_y += y;
        if (sum_y == 0 || var.v <= 0.0)
            continue;
        const JobSpec &spec = specOf(jobs, var.job);
        const ModelProfile &model = ModelZoo::byName(spec.modelName);
        objective += units::transferTime(model.commVolumePerIter(), var.v);
    }
    return objective;
}

} // namespace

MipCheckResult
checkMipFeasibility(const ClusterTopology &topo,
                    const std::vector<JobSpec> &jobs,
                    const std::vector<PlacedJob> &placements)
{
    return checkMipVariables(
        topo, jobs, placements,
        materializeMipVariables(topo, jobs, placements));
}

MipCheckResult
checkMipFeasibility(const ClusterTopology &topo,
                    const std::vector<JobSpec> &jobs,
                    const std::vector<PlacedJob> &placements,
                    const SteadyState &steady)
{
    return checkMipVariables(
        topo, jobs, placements,
        materializeMipVariables(topo, jobs, placements, steady));
}

double
mipObjective(const ClusterTopology &topo, const std::vector<JobSpec> &jobs,
             const std::vector<PlacedJob> &placements)
{
    return objectiveOfVariables(
        jobs, materializeMipVariables(topo, jobs, placements));
}

double
mipObjective(const ClusterTopology &topo, const std::vector<JobSpec> &jobs,
             const std::vector<PlacedJob> &placements,
             const SteadyState &steady)
{
    return objectiveOfVariables(
        jobs, materializeMipVariables(topo, jobs, placements, steady));
}

} // namespace netpack
