#include "placement/local_search.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace netpack {

LocalSearchPlacer::LocalSearchPlacer(LocalSearchConfig config)
    : config_(config), inner_(config.netpack)
{
    NETPACK_REQUIRE(config.maxMoves >= 0, "maxMoves must be >= 0, got "
                                              << config.maxMoves);
    NETPACK_REQUIRE(config.maxPasses >= 0, "maxPasses must be >= 0, got "
                                               << config.maxPasses);
}

void
LocalSearchPlacer::runBatch(const std::vector<JobSpec> &batch)
{
    movesAccepted_ = 0;

    // Phase 1: the plain NetPack batch placement, run as the inner
    // placer's own harness session on the shared context/ledger.
    result() = inner_.placeBatch(batch, topo(), gpus(), ctx());

    // Phase 2: greedy improvement. Moving a job only matters when it
    // shares the network with others, so sweep the multi-server jobs.
    NETPACK_SPAN(span, "placement.local_search");
    double current = placement_util::batchCommTime(batch, ctx());
    int moves = 0;
    bool improved = true;
    for (int pass = 0;
         pass < config_.maxPasses && improved && moves < config_.maxMoves;
         ++pass) {
        improved = false;
        for (std::size_t i = 0;
             i < result().placed.size() && moves < config_.maxMoves; ++i) {
            const PlacedJob &placed = result().placed[i];
            if (placed.placement.singleServer() ||
                placed.placement.totalWorkers() <= 1)
                continue; // traffic-free; a move cannot help the batch
            const auto spec_it = std::find_if(
                batch.begin(), batch.end(),
                [&](const JobSpec &s) { return s.id == placed.id; });
            NETPACK_CHECK_MSG(spec_it != batch.end(),
                              "placed job " << placed.id.value
                                            << " missing from batch");
            ++moves;

            // Speculate: lift the job out, re-plan it against the full
            // batch, and compare the batch objective.
            pushFrame();
            unplace(placed.id);
            const PackResult attempt = tryPlace(*spec_it);
            if (!attempt.placed) {
                // Re-planning can fail (e.g. fragmentation after the
                // unplace); restore the original placement exactly.
                rollbackFrame();
                continue;
            }
            const double candidate =
                placement_util::batchCommTime(batch, ctx());
            if (candidate < current - 1e-12) {
                commitFrame(); // the attempt frame
                commitFrame(); // the move frame
                result().placed[i].placement = attempt.job.placement;
                current = candidate;
                improved = true;
                ++movesAccepted_;
                NETPACK_COUNT("placement.ls_moves_accepted", 1);
            } else {
                rollbackFrame(); // the attempt frame
                rollbackFrame(); // the move frame
            }
        }
    }
    span.arg("moves", moves);
    span.arg("accepted", movesAccepted_);
    NETPACK_COUNT("placement.ls_moves_tried",
                  static_cast<std::int64_t>(moves));
}

} // namespace netpack
