/**
 * @file
 * Shared placement plan for non-PS collective backends (ring_ina,
 * rdma_ina). Both NetPackPlacer and ReferenceNetPackPlacer delegate
 * here, so the optimized/reference bit-identity contract extends to
 * mixed-backend traces for free.
 *
 * Equation 1 scores the PS bottleneck — meaningless for backends whose
 * root rides on a worker and whose link volumes are uniform. Ring and
 * switch-reduction jobs instead want *rack adjacency*: the fewer racks
 * the ring (or reduction tree) spans, the fewer core-link hops each
 * segment takes and the fewer ToRs need PAT. The plan is a deterministic
 * greedy packer that minimizes racks spanned, preferring emptier racks
 * and servers so fragmentation stays low.
 */

#ifndef NETPACK_PLACEMENT_BACKEND_PLAN_H
#define NETPACK_PLACEMENT_BACKEND_PLAN_H

#include "topology/cluster.h"
#include "topology/gpu_ledger.h"
#include "workload/job.h"

namespace netpack {
namespace placement_util {

/**
 * Place a non-PS-backend job: single-server best-fit when it fits,
 * otherwise greedy rack-adjacent packing (racks by free GPUs descending
 * then id, servers within a rack likewise), leader = chosen server
 * hosting the most workers (ties to the lowest id) stored in psServer,
 * INA requested on every rack touched. Applies GPU allocations on
 * success. Returns false (ledger untouched) when the demand cannot be
 * met.
 */
bool planNonPsPlacement(const JobSpec &spec, const ClusterTopology &topo,
                        GpuLedger &gpus, Placement &out);

} // namespace placement_util
} // namespace netpack

#endif // NETPACK_PLACEMENT_BACKEND_PLAN_H
