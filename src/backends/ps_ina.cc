/**
 * @file
 * The paper's backend: parameter-server gradient exchange with
 * statistical INA, placed with a dedicated PS (sharded across several
 * when the placer adds extras). Traffic is the pre-existing PS
 * aggregation tree — this file just puts buildShardHierarchies() behind
 * the CollectiveBackend interface.
 */

#include "backends/detail.h"

namespace netpack {
namespace backends {
namespace {

class PsInaBackend final : public CollectiveBackend
{
  public:
    BackendKind kind() const override { return BackendKind::PsIna; }

    CollectiveAlgorithm algorithm() const override
    {
        return CollectiveAlgorithm::PsWithIna;
    }

    bool usesDedicatedPs() const override { return true; }

    std::vector<JobHierarchy>
    buildHierarchies(const ClusterTopology &topo, JobId job,
                     const Placement &placement) const override
    {
        return buildShardHierarchies(topo, job, placement);
    }
};

} // namespace

namespace detail {

const CollectiveBackend &
psInaBackend()
{
    static const PsInaBackend backend;
    return backend;
}

} // namespace detail
} // namespace backends
} // namespace netpack
