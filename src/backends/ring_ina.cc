/**
 * @file
 * Rina-style hierarchical ring AllReduce with in-network segment
 * aggregation. The placement's psServer holds the *leader* — one of the
 * worker servers — which roots the tree; there is no dedicated PS.
 *
 * Traffic model. The physical ring is hierarchical: servers within a
 * rack chain through their ToR, and one stream per rack travels the
 * inter-rack ring. In the tree encoding (which water-filling's
 * heavier-direction-once accounting needs):
 *
 *   - root: the leader server (Ps-kind node);
 *   - the leader rack's ToR below it, charging the leader's access link;
 *   - every other rack's ToR below that, charging remote core + (in
 *     two-tier mode, both pods' uplinks when crossing pods) + leader
 *     core — the inter-rack ring hop;
 *   - under each ToR, that rack's worker servers as a *chain* of Worker
 *     nodes in server-id order, each charging only its own access link
 *     (the intra-rack ring hop).
 *
 * A Worker node always forwards one stream, so each rack presents
 * exactly one upward flow — a ring has no incast, which is what
 * distinguishes this encoding from a PS star. INA's role is segment
 * aggregation at the ToR: when a ToR is INA-enabled and PAT remains,
 * the chain's stream stays one merged segment (flows already 1, so the
 * benefit shows up as PAT-backed aggregation capacity rather than flow
 * collapse). Volume is carried by the 2(k-1)/k ring factor
 * (backendVolumeFactor), not the flow counts. Simplifications are
 * documented in docs/backends.md.
 */

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "backends/detail.h"
#include "common/check.h"

namespace netpack {
namespace backends {
namespace {

class RingInaBackend final : public CollectiveBackend
{
  public:
    BackendKind kind() const override { return BackendKind::RingIna; }

    CollectiveAlgorithm algorithm() const override
    {
        return CollectiveAlgorithm::RingAllReduce;
    }

    bool usesDedicatedPs() const override { return false; }

    std::vector<JobHierarchy>
    buildHierarchies(const ClusterTopology &topo, JobId job,
                     const Placement &placement) const override
    {
        placement.validate();
        NETPACK_REQUIRE(placement.extraPsServers.empty(),
                        "ring_ina job " << job.value
                                        << " cannot shard across PSes");
        std::vector<JobHierarchy> out;
        if (placement.singleServer() || placement.totalWorkers() <= 1) {
            out.emplace_back(topo, job, placement);
            return out;
        }
        const ServerId leader = placement.psServer;
        NETPACK_REQUIRE(placement.workers.count(leader) > 0,
                        "ring_ina job " << job.value
                                        << ": leader must be a worker"
                                           " server");
        const RackId leader_rack = topo.rackOf(leader);

        std::vector<HierarchyNode> nodes;

        HierarchyNode root;
        root.kind = HierarchyNode::Kind::Ps;
        root.server = leader;
        root.parent = 0;
        nodes.push_back(root);

        HierarchyNode leader_tor;
        leader_tor.kind = HierarchyNode::Kind::Switch;
        leader_tor.rack = leader_rack;
        leader_tor.parent = 0;
        leader_tor.uplinks = {topo.accessLink(leader)};
        leader_tor.inaEnabled = placement.inaRacks.count(leader_rack) > 0;
        const std::size_t leader_tor_idx = nodes.size();
        nodes.push_back(leader_tor);
        nodes[0].children.push_back(leader_tor_idx);

        // Group worker servers by rack; std::map gives deterministic
        // rack and server-id order, fixing the ring orientation.
        std::map<RackId, std::vector<ServerId>> by_rack;
        for (const auto &[server, count] : placement.workers) {
            (void)count; // intra-server workers merge locally
            if (server == leader)
                continue; // the leader is the root, not a chain node
            by_rack[topo.rackOf(server)].push_back(server);
        }

        int worker_servers = 1; // the leader
        for (const auto &[rack, servers] : by_rack) {
            std::size_t tor_idx;
            if (rack == leader_rack) {
                tor_idx = leader_tor_idx;
            } else {
                HierarchyNode tor;
                tor.kind = HierarchyNode::Kind::Switch;
                tor.rack = rack;
                tor.parent = leader_tor_idx;
                tor.uplinks = {topo.coreLink(rack)};
                if (topo.twoTier() &&
                    topo.podOf(rack) != topo.podOf(leader_rack)) {
                    tor.uplinks.push_back(
                        topo.podUplink(topo.podOf(rack)));
                    tor.uplinks.push_back(
                        topo.podUplink(topo.podOf(leader_rack)));
                }
                tor.uplinks.push_back(topo.coreLink(leader_rack));
                tor.inaEnabled = placement.inaRacks.count(rack) > 0;
                tor_idx = nodes.size();
                nodes.push_back(tor);
                nodes[leader_tor_idx].children.push_back(tor_idx);
            }
            // Chain the rack's servers: ToR -> s0 -> s1 -> ... Each hop
            // charges only its own access link (the heavier direction of
            // one intra-rack ring step).
            std::size_t parent_idx = tor_idx;
            for (ServerId server : servers) {
                HierarchyNode hop;
                hop.kind = HierarchyNode::Kind::Worker;
                hop.server = server;
                hop.parent = parent_idx;
                hop.uplinks = {topo.accessLink(server)};
                const std::size_t hop_idx = nodes.size();
                nodes.push_back(hop);
                nodes[parent_idx].children.push_back(hop_idx);
                parent_idx = hop_idx;
                ++worker_servers;
            }
        }

        out.emplace_back(job, std::move(nodes), worker_servers);
        return out;
    }
};

} // namespace

namespace detail {

const CollectiveBackend &
ringInaBackend()
{
    static const RingInaBackend backend;
    return backend;
}

} // namespace detail
} // namespace backends
} // namespace netpack
