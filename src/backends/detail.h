/**
 * @file
 * Internal registry hooks: each backend implementation file exposes its
 * singleton through one of these accessors, consumed only by
 * CollectiveBackend::of(). Not part of the public surface — include
 * backends/collective_backend.h instead.
 */

#ifndef NETPACK_BACKENDS_DETAIL_H
#define NETPACK_BACKENDS_DETAIL_H

#include "backends/collective_backend.h"

namespace netpack {
namespace backends {
namespace detail {

const CollectiveBackend &psInaBackend();
const CollectiveBackend &ringInaBackend();
const CollectiveBackend &rdmaInaBackend();

} // namespace detail
} // namespace backends
} // namespace netpack

#endif // NETPACK_BACKENDS_DETAIL_H
