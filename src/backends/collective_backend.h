/**
 * @file
 * Pluggable collective backends (ROADMAP item 3). A backend owns the
 * network behaviour of one gradient-exchange strategy: how a placed
 * job's traffic maps onto physical links (its aggregation trees and
 * traffic matrix), which ToRs it asks PAT from, and its analytic
 * step-time model. Three implementations exist, mirroring the placer
 * factory pattern:
 *
 *   ps_ina    the paper's PS exchange with statistical INA (the
 *             pre-existing JobHierarchy PS trees, refactored behind
 *             this interface)
 *   ring_ina  Rina-style hierarchical ring AllReduce: worker servers
 *             chain within each rack, one stream per rack crosses the
 *             core to the leader's rack, ToRs aggregate ring segments
 *   rdma_ina  NetReduce-style RDMA-compatible in-network reduction: a
 *             star rooted at a leader *worker* (no dedicated PS) whose
 *             ToRs must aggregate; PAT exhaustion degrades to incast
 *
 * Everything downstream of placement — water-filling, the flow-model
 * simulator, selective-INA ranking — dispatches through
 * buildJobHierarchies() on Placement::backend, so pure-PS workloads
 * take exactly the pre-backend code path.
 */

#ifndef NETPACK_BACKENDS_COLLECTIVE_BACKEND_H
#define NETPACK_BACKENDS_COLLECTIVE_BACKEND_H

#include <map>
#include <set>
#include <vector>

#include "backends/backend_kind.h"
#include "common/units.h"
#include "ina/collectives.h"
#include "ina/hierarchy.h"
#include "topology/cluster.h"
#include "topology/ids.h"
#include "workload/job.h"

namespace netpack {
namespace backends {

/** One gradient-exchange strategy's network model. */
class CollectiveBackend
{
  public:
    virtual ~CollectiveBackend() = default;

    /** Which backend this is. */
    virtual BackendKind kind() const = 0;

    /** Canonical name ("ps_ina", ...). */
    const char *name() const { return backendName(kind()); }

    /** Analytic collective this backend's step time follows. */
    virtual CollectiveAlgorithm algorithm() const = 0;

    /**
     * True when placements need a dedicated parameter-server allocation.
     * When false, Placement::psServer holds the leader worker server
     * (tree root) and no extra GPU/server capacity is consumed for it.
     */
    virtual bool usesDedicatedPs() const = 0;

    /**
     * Per-iteration volume each worker server moves, as a multiple of
     * the gradient size d (see backendVolumeFactor).
     */
    double volumeFactor(int worker_servers) const
    {
        return backendVolumeFactor(kind(), worker_servers);
    }

    /**
     * Aggregation trees of a placed job, one per gradient shard. These
     * are what water-filling and the flow simulator iterate: each tree
     * edge lists the physical links it crosses and each Switch node
     * knows whether it aggregates (consuming PAT).
     */
    virtual std::vector<JobHierarchy>
    buildHierarchies(const ClusterTopology &topo, JobId job,
                     const Placement &placement) const = 0;

    /**
     * Analytic communication time per iteration among @p worker_servers
     * servers exchanging @p model_mb at sustained per-link @p rate —
     * the closed-form model (shared with bench_ext_collectives), not
     * the water-filling estimate.
     */
    virtual Seconds analyticStepTime(int worker_servers, MBytes model_mb,
                                     Gbps rate,
                                     double aggregation_ratio = 1.0) const;

    /**
     * Single-job traffic matrix: per-iteration gradient volume (MB)
     * crossing each physical link under full aggregation. Derived from
     * the backend's trees: each tree edge charges its child's flow
     * count times the per-stream shard volume to every link it crosses.
     */
    std::map<LinkId, MBytes>
    trafficMatrix(const ClusterTopology &topo, const Placement &placement,
                  MBytes model_mb) const;

    /**
     * Racks whose ToR the job asks aggregation (PAT) from — the
     * INA-enabled switches of its trees.
     */
    std::set<RackId> patDemandRacks(const ClusterTopology &topo,
                                    const Placement &placement) const;

    /** Registry: the singleton backend for @p kind. */
    static const CollectiveBackend &of(BackendKind kind);
};

/**
 * Dispatch helper used at every hierarchy-construction site: build the
 * aggregation trees of @p placement through its backend. For
 * BackendKind::PsIna this is exactly buildShardHierarchies().
 */
std::vector<JobHierarchy> buildJobHierarchies(const ClusterTopology &topo,
                                              JobId job,
                                              const Placement &placement);

} // namespace backends
} // namespace netpack

#endif // NETPACK_BACKENDS_COLLECTIVE_BACKEND_H
