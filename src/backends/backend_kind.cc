#include "backends/backend_kind.h"

#include "common/check.h"

namespace netpack {

const char *
backendName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::PsIna: return "ps_ina";
      case BackendKind::RingIna: return "ring_ina";
      case BackendKind::RdmaIna: return "rdma_ina";
    }
    return "?";
}

BackendKind
backendFromName(const std::string &name)
{
    if (name == "ps_ina")
        return BackendKind::PsIna;
    if (name == "ring_ina")
        return BackendKind::RingIna;
    if (name == "rdma_ina")
        return BackendKind::RdmaIna;
    std::string known;
    for (const std::string &candidate : backendNames()) {
        if (!known.empty())
            known += ", ";
        known += candidate;
    }
    throw ConfigError("unknown backend '" + name +
                      "' (valid names: " + known + ")");
}

std::vector<std::string>
backendNames()
{
    return {"ps_ina", "ring_ina", "rdma_ina"};
}

double
backendVolumeFactor(BackendKind kind, int worker_servers)
{
    switch (kind) {
      case BackendKind::PsIna:
      case BackendKind::RdmaIna:
        return 1.0;
      case BackendKind::RingIna: {
        if (worker_servers <= 1)
            return 0.0;
        const double k = static_cast<double>(worker_servers);
        return 2.0 * (k - 1.0) / k;
      }
    }
    return 1.0;
}

} // namespace netpack
