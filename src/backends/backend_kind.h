/**
 * @file
 * The collective-backend identity shared by every layer of the stack.
 * A job's backend decides how its gradient exchange maps onto the
 * network: the paper's PS+INA aggregation trees, a Rina-style
 * hierarchical ring with in-network segment aggregation, or a
 * NetReduce-style RDMA-compatible in-network reduction rooted at a
 * worker. This header is deliberately tiny (enum + names + pure volume
 * math) so `workload` can carry the field without depending on the
 * full backend subsystem in src/backends/collective_backend.h.
 */

#ifndef NETPACK_BACKENDS_BACKEND_KIND_H
#define NETPACK_BACKENDS_BACKEND_KIND_H

#include <string>
#include <vector>

namespace netpack {

/** Which collective backend a job trains with. */
enum class BackendKind
{
    /** Parameter-server exchange with statistical INA (the paper). */
    PsIna,
    /** Rina-style ring AllReduce with ToR segment aggregation. */
    RingIna,
    /** NetReduce-style RDMA-compatible in-network reduction. */
    RdmaIna,
};

/** Canonical wire/CLI name: "ps_ina", "ring_ina", "rdma_ina". */
const char *backendName(BackendKind kind);

/**
 * Parse a canonical backend name. Throws ConfigError listing the valid
 * names (the same UX as the placer factory's unknown-name error).
 */
BackendKind backendFromName(const std::string &name);

/** All valid backend names, in declaration order. */
std::vector<std::string> backendNames();

/**
 * Per-iteration communication volume of a backend as a multiple of the
 * model gradient size d, given the number of worker *servers* k taking
 * part (intra-server workers merge locally and count once):
 *
 *   ps_ina    1             each worker pushes d once; the PS-side
 *                           incast is modelled by per-link flow counts,
 *                           not by the per-flow volume
 *   ring_ina  2(k-1)/k      reduce-scatter + all-gather chunks
 *   rdma_ina  1             each worker pushes d; switches reduce
 *
 * k <= 1 returns 0 for ring (nothing to exchange) and 1 otherwise —
 * callers gate on locality before charging any volume.
 */
double backendVolumeFactor(BackendKind kind, int worker_servers);

} // namespace netpack

#endif // NETPACK_BACKENDS_BACKEND_KIND_H
