#include "backends/collective_backend.h"

#include <limits>

#include "backends/detail.h"
#include "common/check.h"

namespace netpack {
namespace backends {

Seconds
CollectiveBackend::analyticStepTime(int worker_servers, MBytes model_mb,
                                    Gbps rate,
                                    double aggregation_ratio) const
{
    return collectiveStepTime(algorithm(), worker_servers, model_mb, rate,
                              0.0, aggregation_ratio);
}

std::map<LinkId, MBytes>
CollectiveBackend::trafficMatrix(const ClusterTopology &topo,
                                 const Placement &placement,
                                 MBytes model_mb) const
{
    std::map<LinkId, MBytes> volume;
    std::vector<JobHierarchy> trees =
        buildHierarchies(topo, JobId(0), placement);
    if (trees.empty() || trees.front().local())
        return volume;

    // Full aggregation: every INA-enabled switch merges (ample PAT).
    const std::vector<Gbps> ample(
        static_cast<std::size_t>(topo.numRacks()),
        std::numeric_limits<Gbps>::infinity());
    const int workers = static_cast<int>(placement.workers.size());
    const MBytes per_stream = model_mb * volumeFactor(workers) /
                              static_cast<double>(trees.size());
    for (JobHierarchy &tree : trees) {
        tree.updateFlows(ample);
        std::vector<int> flows(static_cast<std::size_t>(topo.numLinks()),
                               0);
        tree.accumulateLinkFlows(flows);
        for (std::size_t i = 0; i < flows.size(); ++i) {
            if (flows[i] > 0)
                volume[LinkId(static_cast<int>(i))] +=
                    per_stream * flows[i];
        }
    }
    return volume;
}

std::set<RackId>
CollectiveBackend::patDemandRacks(const ClusterTopology &topo,
                                  const Placement &placement) const
{
    std::set<RackId> racks;
    for (const JobHierarchy &tree :
         buildHierarchies(topo, JobId(0), placement)) {
        for (RackId rack : tree.inaRacks())
            racks.insert(rack);
    }
    return racks;
}

const CollectiveBackend &
CollectiveBackend::of(BackendKind kind)
{
    switch (kind) {
      case BackendKind::PsIna: return detail::psInaBackend();
      case BackendKind::RingIna: return detail::ringInaBackend();
      case BackendKind::RdmaIna: return detail::rdmaInaBackend();
    }
    NETPACK_CHECK_MSG(false, "unreachable backend kind");
    return detail::psInaBackend();
}

std::vector<JobHierarchy>
buildJobHierarchies(const ClusterTopology &topo, JobId job,
                    const Placement &placement)
{
    if (placement.backend == BackendKind::PsIna)
        return buildShardHierarchies(topo, job, placement);
    return CollectiveBackend::of(placement.backend)
        .buildHierarchies(topo, job, placement);
}

} // namespace backends
} // namespace netpack
