/**
 * @file
 * NetReduce-style RDMA-compatible in-network reduction. One worker
 * server acts as the leader (stored in Placement::psServer — no
 * dedicated PS is allocated) and its rack's ToR terminates the
 * reduction, so the exchange tree is exactly the PS star rooted at the
 * leader: the existing JobHierarchy constructor is reused verbatim.
 *
 * What makes it rdma_ina rather than ps_ina:
 *   - no PS server/GPU cost — the root rides on a worker;
 *   - aggregation is mandatory, not opportunistic: the placer enables
 *     INA on every rack the job touches, and each worker pushes the
 *     gradient exactly once (volume factor 1);
 *   - when a ToR's PAT is exhausted mid-run, the Switch-node semantics
 *     degrade the rack to forwarding all its streams — an incast at the
 *     leader's access link, matching NetReduce's fallback to end-host
 *     reduction;
 *   - the gradient never shards: extraPsServers must be empty.
 */

#include "backends/detail.h"
#include "common/check.h"

namespace netpack {
namespace backends {
namespace {

class RdmaInaBackend final : public CollectiveBackend
{
  public:
    BackendKind kind() const override { return BackendKind::RdmaIna; }

    CollectiveAlgorithm algorithm() const override
    {
        return CollectiveAlgorithm::PsWithIna;
    }

    bool usesDedicatedPs() const override { return false; }

    std::vector<JobHierarchy>
    buildHierarchies(const ClusterTopology &topo, JobId job,
                     const Placement &placement) const override
    {
        placement.validate();
        NETPACK_REQUIRE(placement.extraPsServers.empty(),
                        "rdma_ina job " << job.value
                                        << " cannot shard across PSes");
        if (!placement.singleServer() && placement.totalWorkers() > 1) {
            NETPACK_REQUIRE(placement.workers.count(placement.psServer) > 0,
                            "rdma_ina job "
                                << job.value
                                << ": leader must be a worker server");
        }
        std::vector<JobHierarchy> out;
        out.emplace_back(topo, job, placement);
        return out;
    }
};

} // namespace

namespace detail {

const CollectiveBackend &
rdmaInaBackend()
{
    static const RdmaInaBackend backend;
    return backend;
}

} // namespace detail
} // namespace backends
} // namespace netpack
