/**
 * @file
 * The single-job aggregation model of Section 4.1 / Table 1: given a
 * worker send rate C and a switch's Peak Aggregation Throughput A, how
 * much traffic leaves the switch aggregated vs unaggregated, and how many
 * flows continue upward. Also the full hierarchical instantiation used to
 * regenerate Figure 5 (FS/FC flow counts versus send rate).
 */

#ifndef NETPACK_INA_AGGREGATION_H
#define NETPACK_INA_AGGREGATION_H

#include <vector>

#include "common/units.h"

namespace netpack {

/** Output of the Table-1 per-switch model. */
struct SwitchAggregation
{
    /** Flows continuing upward from this switch. */
    int flows = 0;
    /** Throughput leaving the switch in aggregated form (Gbps). */
    Gbps aggregated = 0.0;
    /** Throughput leaving unaggregated (pass-through residue, Gbps). */
    Gbps unaggregated = 0.0;

    /** Total upward traffic. */
    Gbps total() const { return aggregated + unaggregated; }
};

/**
 * Apply Table 1 to one switch.
 *
 * @param send_rate  worker send rate C (all workers of a job send equally)
 * @param pat        the switch PAT A available to this job
 * @param incoming_flows  Σ n_i, total flows entering from all subtrees
 * @return flows / aggregated / unaggregated leaving the switch
 */
SwitchAggregation aggregateAtSwitch(Gbps send_rate, Gbps pat,
                                    int incoming_flows);

/**
 * The Figure-5 scenario: a job spanning several racks, each worker rack's
 * ToR aggregating first, then the PS rack's ToR aggregating everything
 * that arrives (remote flows plus its local workers).
 */
struct HierarchicalJobModel
{
    /** Worker-server count per remote (non-PS) rack. */
    std::vector<int> remoteRackWorkers;
    /** PAT of each remote rack's ToR, aligned with remoteRackWorkers. */
    std::vector<Gbps> remoteRackPat;
    /** Worker-server count in the PS rack (local workers). */
    int psRackWorkers = 0;
    /** PAT of the PS rack's ToR. */
    Gbps psRackPat = 0.0;

    /** Result of evaluating the hierarchy at one send rate. */
    struct Evaluation
    {
        /** FS: flows on the ToR(PS) → PS link. */
        int flowsToPs = 0;
        /** FC: total flows on the DCN → ToR(PS) hop (Σ remote ToRs). */
        int flowsCrossRack = 0;
        /** Traffic on the ToR(PS) → PS link, Gbps. */
        Gbps trafficToPs = 0.0;
        /** Aggregated fraction of the job's total gradient volume. */
        double aggregationRatio = 0.0;
    };

    /** Evaluate the two-level aggregation at send rate @p c. */
    Evaluation evaluate(Gbps c) const;

    /** Total workers across all racks. */
    int totalWorkers() const;
};

} // namespace netpack

#endif // NETPACK_INA_AGGREGATION_H
