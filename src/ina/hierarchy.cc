#include "ina/hierarchy.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace netpack {

namespace {

/** PAT below this is considered exhausted (Gbps). */
constexpr Gbps kPatEpsilon = 1e-9;

} // namespace

JobHierarchy::JobHierarchy(const ClusterTopology &topo, JobId job,
                           const Placement &placement)
    : job_(job)
{
    placement.validate();
    if (placement.singleServer() || placement.totalWorkers() <= 1) {
        // Local job: no AllReduce over the network.
        return;
    }
    NETPACK_CHECK_MSG(placement.psServer.valid(),
                      "multi-server job " << job.value << " lacks a PS");

    const RackId ps_rack = topo.rackOf(placement.psServer);

    // Root: the PS itself.
    HierarchyNode root;
    root.kind = HierarchyNode::Kind::Ps;
    root.server = placement.psServer;
    root.parent = 0;
    nodes_.push_back(root);

    // The PS rack's ToR: every stream funnels through it to reach the PS.
    HierarchyNode ps_tor;
    ps_tor.kind = HierarchyNode::Kind::Switch;
    ps_tor.rack = ps_rack;
    ps_tor.parent = 0;
    ps_tor.uplinks = {topo.accessLink(placement.psServer)};
    ps_tor.inaEnabled = placement.inaRacks.count(ps_rack) > 0;
    const std::size_t ps_tor_idx = nodes_.size();
    nodes_.push_back(ps_tor);
    nodes_[0].children.push_back(ps_tor_idx);
    if (nodes_[ps_tor_idx].inaEnabled)
        inaRacks_.push_back(ps_rack);

    // Group worker servers by rack.
    std::map<RackId, std::vector<std::pair<ServerId, int>>> by_rack;
    for (const auto &[server, count] : placement.workers)
        by_rack[topo.rackOf(server)].emplace_back(server, count);

    for (const auto &[rack, servers] : by_rack) {
        std::size_t parent_idx;
        if (rack == ps_rack) {
            // Local workers attach straight below the PS ToR.
            parent_idx = ps_tor_idx;
        } else {
            // Remote rack: its ToR aggregates first, then the stream(s)
            // cross the remote rack's core link (plus, in two-tier mode,
            // both pods' uplinks when the racks sit in different pods)
            // and the PS rack's core link to reach the PS ToR.
            HierarchyNode remote_tor;
            remote_tor.kind = HierarchyNode::Kind::Switch;
            remote_tor.rack = rack;
            remote_tor.parent = ps_tor_idx;
            remote_tor.uplinks = {topo.coreLink(rack)};
            if (topo.twoTier() &&
                topo.podOf(rack) != topo.podOf(ps_rack)) {
                remote_tor.uplinks.push_back(
                    topo.podUplink(topo.podOf(rack)));
                remote_tor.uplinks.push_back(
                    topo.podUplink(topo.podOf(ps_rack)));
            }
            remote_tor.uplinks.push_back(topo.coreLink(ps_rack));
            remote_tor.inaEnabled = placement.inaRacks.count(rack) > 0;
            parent_idx = nodes_.size();
            nodes_.push_back(remote_tor);
            nodes_[ps_tor_idx].children.push_back(parent_idx);
            if (nodes_[parent_idx].inaEnabled)
                inaRacks_.push_back(rack);
        }
        for (const auto &[server, count] : servers) {
            (void)count; // intra-server workers merge locally: one stream
            HierarchyNode leaf;
            leaf.kind = HierarchyNode::Kind::Worker;
            leaf.server = server;
            leaf.parent = parent_idx;
            leaf.uplinks = {topo.accessLink(server)};
            const std::size_t leaf_idx = nodes_.size();
            nodes_.push_back(leaf);
            nodes_[parent_idx].children.push_back(leaf_idx);
            ++workerServers_;
        }
    }
    std::sort(inaRacks_.begin(), inaRacks_.end());
}

JobHierarchy::JobHierarchy(JobId job, std::vector<HierarchyNode> nodes,
                           int worker_servers)
    : job_(job), nodes_(std::move(nodes)), workerServers_(worker_servers)
{
    if (nodes_.empty())
        return;
    NETPACK_CHECK_MSG(nodes_[0].parent == 0 && nodes_[0].uplinks.empty(),
                      "hierarchy root must have no parent or uplinks");
    for (const auto &n : nodes_) {
        NETPACK_CHECK_MSG(n.parent < nodes_.size(),
                          "hierarchy node parent out of range");
        if (n.kind == HierarchyNode::Kind::Switch && n.inaEnabled)
            inaRacks_.push_back(n.rack);
    }
    std::sort(inaRacks_.begin(), inaRacks_.end());
    inaRacks_.erase(std::unique(inaRacks_.begin(), inaRacks_.end()),
                    inaRacks_.end());
}

int
JobHierarchy::recomputeFlows(std::size_t node,
                             const std::vector<Gbps> &pat_residual)
{
    HierarchyNode &n = nodes_[node];
    switch (n.kind) {
      case HierarchyNode::Kind::Worker:
        // A worker forwards exactly one stream upward regardless of what
        // sits below it. PS trees give workers no children; ring chains
        // (src/backends/ring_ina.cc) hang the next hop underneath, whose
        // flows still need recomputing.
        for (std::size_t child : n.children)
            recomputeFlows(child, pat_residual);
        n.flows = 1;
        return n.flows;
      case HierarchyNode::Kind::Ps: {
        for (std::size_t child : n.children)
            recomputeFlows(child, pat_residual);
        n.flows = 0;
        return n.flows;
      }
      case HierarchyNode::Kind::Switch: {
        int child_flows = 0;
        for (std::size_t child : n.children)
            child_flows += recomputeFlows(child, pat_residual);
        const bool aggregating =
            n.inaEnabled && n.rack.valid() &&
            n.rack.index() < pat_residual.size() &&
            pat_residual[n.rack.index()] > kPatEpsilon;
        n.flows = aggregating ? 1 : child_flows;
        return n.flows;
      }
    }
    NETPACK_CHECK_MSG(false, "unreachable hierarchy node kind");
    return 0;
}

void
JobHierarchy::updateFlows(const std::vector<Gbps> &pat_residual)
{
    if (local())
        return;
    recomputeFlows(0, pat_residual);
}

int
JobHierarchy::incomingFlowsAtRack(RackId rack) const
{
    for (const auto &node : nodes_) {
        if (node.kind == HierarchyNode::Kind::Switch && node.rack == rack) {
            int incoming = 0;
            for (std::size_t child : node.children)
                incoming += nodes_[child].flows;
            return incoming;
        }
    }
    return 0;
}

int
JobHierarchy::totalIncomingInaFlows() const
{
    int total = 0;
    for (const auto &node : nodes_) {
        if (node.kind != HierarchyNode::Kind::Switch || !node.inaEnabled)
            continue;
        for (std::size_t child : node.children)
            total += nodes_[child].flows;
    }
    return total;
}

std::vector<JobHierarchy>
buildShardHierarchies(const ClusterTopology &topo, JobId job,
                      const Placement &placement)
{
    std::vector<JobHierarchy> shards;
    if (placement.psShards() <= 1 || placement.singleServer() ||
        placement.totalWorkers() <= 1) {
        shards.emplace_back(topo, job, placement);
        return shards;
    }
    for (ServerId ps : placement.psServers()) {
        Placement shard = placement;
        shard.psServer = ps;
        shard.extraPsServers.clear();
        shards.emplace_back(topo, job, shard);
    }
    return shards;
}

void
JobHierarchy::accumulateLinkFlows(std::vector<int> &accum) const
{
    for (const auto &node : nodes_) {
        for (LinkId link : node.uplinks) {
            NETPACK_CHECK(link.valid() &&
                          link.index() < accum.size());
            accum[link.index()] += node.flows;
        }
    }
}

} // namespace netpack
