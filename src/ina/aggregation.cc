#include "ina/aggregation.h"

#include "common/check.h"

namespace netpack {

SwitchAggregation
aggregateAtSwitch(Gbps send_rate, Gbps pat, int incoming_flows)
{
    NETPACK_CHECK(send_rate >= 0.0);
    NETPACK_CHECK(pat >= 0.0);
    NETPACK_CHECK(incoming_flows >= 0);

    SwitchAggregation out;
    if (incoming_flows == 0 || send_rate == 0.0)
        return out;

    if (pat >= send_rate) {
        // Table 1, A >= C: everything is merged into one result stream.
        out.flows = 1;
        out.aggregated = send_rate;
        out.unaggregated = 0.0;
    } else {
        // Table 1, A < C: the switch merges a PAT's worth; each incoming
        // flow passes its residue (C - A) through unaggregated.
        out.flows = incoming_flows;
        out.aggregated = pat;
        out.unaggregated = (send_rate - pat) *
                           static_cast<double>(incoming_flows);
    }
    return out;
}

int
HierarchicalJobModel::totalWorkers() const
{
    int total = psRackWorkers;
    for (int w : remoteRackWorkers)
        total += w;
    return total;
}

HierarchicalJobModel::Evaluation
HierarchicalJobModel::evaluate(Gbps c) const
{
    NETPACK_REQUIRE(remoteRackWorkers.size() == remoteRackPat.size(),
                    "remote rack worker counts and PATs must align");
    NETPACK_REQUIRE(c >= 0.0, "send rate must be non-negative");

    Evaluation eval;
    int flows_into_ps_tor = psRackWorkers;
    for (std::size_t i = 0; i < remoteRackWorkers.size(); ++i) {
        const SwitchAggregation remote =
            aggregateAtSwitch(c, remoteRackPat[i], remoteRackWorkers[i]);
        eval.flowsCrossRack += remote.flows;
        flows_into_ps_tor += remote.flows;
    }

    const SwitchAggregation root =
        aggregateAtSwitch(c, psRackPat, flows_into_ps_tor);
    eval.flowsToPs = root.flows;
    eval.trafficToPs = root.total();

    const int n = totalWorkers();
    if (n > 1 && c > 0.0) {
        const double egress = static_cast<double>(n) * c;
        eval.aggregationRatio =
            (egress - eval.trafficToPs) / (static_cast<double>(n - 1) * c);
        if (eval.aggregationRatio < 0.0)
            eval.aggregationRatio = 0.0;
        if (eval.aggregationRatio > 1.0)
            eval.aggregationRatio = 1.0;
    } else if (n == 1) {
        eval.aggregationRatio = 1.0;
    }
    return eval;
}

} // namespace netpack
