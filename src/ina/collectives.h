/**
 * @file
 * Analytic cost model of the AllReduce alternatives the paper positions
 * INA against (Section 2.1): direct parameter-server exchange, ring
 * AllReduce, recursive halving-doubling, and PS+INA at a given
 * aggregation ratio. For each algorithm we model the per-iteration
 * volumes that drive placement decisions — what each worker sends, what
 * the most loaded link carries — and the resulting communication time
 * at a given per-link rate. This is the quantitative backing for INA's
 * motivation: it collapses the PS bottleneck from n*d to d.
 */

#ifndef NETPACK_INA_COLLECTIVES_H
#define NETPACK_INA_COLLECTIVES_H

#include <string>

#include "common/units.h"

namespace netpack {

/** Gradient exchange strategy. */
enum class CollectiveAlgorithm
{
    /** Workers push to / pull from one PS; PS link carries n*d. */
    PsDirect,
    /** PS exchange with in-network aggregation at a given ratio. */
    PsWithIna,
    /** Ring AllReduce: 2(n-1)/n * d per worker, no PS. */
    RingAllReduce,
    /** Recursive halving-doubling: same volume, log2(n) rounds. */
    HalvingDoubling,
};

/** Display name for tables. */
const char *collectiveName(CollectiveAlgorithm algorithm);

/** Per-iteration traffic profile of a collective. */
struct CollectiveCost
{
    /** Bytes each worker sends per iteration (MB). */
    MBytes perWorkerEgress = 0.0;
    /** Volume crossing the most loaded access link per iteration (MB). */
    MBytes bottleneckVolume = 0.0;
    /** Number of sequential communication rounds. */
    int rounds = 1;

    /**
     * Communication time at @p rate per link plus @p round_latency per
     * round (latency matters for halving-doubling at small d).
     */
    Seconds commTime(Gbps rate, Seconds round_latency = 0.0) const;
};

/**
 * Cost of exchanging a gradient of @p model_mb MB among @p n workers.
 *
 * @param aggregation_ratio for PsWithIna: the fraction of aggregatable
 *        traffic the switches actually merge (1 = full aggregation,
 *        0 = degenerates to PsDirect); ignored otherwise
 */
CollectiveCost collectiveCost(CollectiveAlgorithm algorithm, int n,
                              MBytes model_mb,
                              double aggregation_ratio = 1.0);

/**
 * Analytic per-iteration communication time: collectiveCost() composed
 * with CollectiveCost::commTime(). The single shared implementation of
 * the step-time formulas used by the collective backends
 * (src/backends/) and bench_ext_collectives — keep the math here.
 */
Seconds collectiveStepTime(CollectiveAlgorithm algorithm, int n,
                           MBytes model_mb, Gbps rate,
                           Seconds round_latency = 0.0,
                           double aggregation_ratio = 1.0);

} // namespace netpack

#endif // NETPACK_INA_COLLECTIVES_H
