/**
 * @file
 * Per-job aggregation hierarchy (Section 3.2 runtime properties and
 * Algorithm 1's UpdateFlows): a placed multi-server job forms a tree with
 * the PS as root, the PS rack's ToR below it, remote rack ToRs and worker
 * servers as the lower levels. Each tree edge records the physical links
 * it crosses so the water-filling algorithm can charge bandwidth, and
 * each switch node knows whether statistical INA is enabled for this job
 * on that ToR (z_r^(j)).
 */

#ifndef NETPACK_INA_HIERARCHY_H
#define NETPACK_INA_HIERARCHY_H

#include <cstddef>
#include <vector>

#include "common/units.h"
#include "topology/cluster.h"
#include "topology/ids.h"
#include "workload/job.h"

namespace netpack {

/** One node of a job's aggregation tree. */
struct HierarchyNode
{
    enum class Kind
    {
        /** A worker server (intra-server workers merge locally). */
        Worker,
        /** A ToR switch on the aggregation path. */
        Switch,
        /** The parameter server (tree root). */
        Ps,
    };

    Kind kind = Kind::Worker;
    /** Hosting server for Worker/Ps nodes. */
    ServerId server;
    /** Rack for Switch nodes. */
    RackId rack;
    /** Children node indices (empty for leaves). */
    std::vector<std::size_t> children;
    /** Physical links this node's upward edge crosses (empty for root). */
    std::vector<LinkId> uplinks;
    /** Parent node index (root points at itself). */
    std::size_t parent = 0;
    /**
     * Whether this switch aggregates for the job (z_r^(j)); meaningful
     * only for Switch nodes.
     */
    bool inaEnabled = false;
    /** Upward flow count, recomputed by updateFlows. */
    int flows = 0;
};

/**
 * The aggregation tree of one placed job. Single-server jobs produce an
 * empty tree (local() is true): they generate no network traffic (MIP
 * Eq. 6/7) and are skipped by water-filling.
 */
class JobHierarchy
{
  public:
    /** Build the tree for @p placement of job @p job on @p topo. */
    JobHierarchy(const ClusterTopology &topo, JobId job,
                 const Placement &placement);

    /**
     * Build a tree from explicitly-constructed nodes — how the
     * collective backends (src/backends/) encode non-PS exchange
     * patterns such as ring chains. Index 0 must be the root (parent ==
     * 0, no uplinks); @p worker_servers is the worker-leaf count; the
     * INA rack list is derived from INA-enabled Switch nodes. An empty
     * @p nodes makes a local (traffic-free) hierarchy.
     */
    JobHierarchy(JobId job, std::vector<HierarchyNode> nodes,
                 int worker_servers);

    /** Job this tree belongs to. */
    JobId job() const { return job_; }

    /** True when the job generates no network traffic. */
    bool local() const { return nodes_.empty(); }

    /** All nodes; index 0 is the PS root when non-local. */
    const std::vector<HierarchyNode> &nodes() const { return nodes_; }

    /** Number of worker-server leaves. */
    int workerServerCount() const { return workerServers_; }

    /**
     * Recompute per-node upward flow counts (Algorithm 1 lines 10-15):
     * worker → 1; switch → 1 if it still aggregates (INA enabled and
     * residual PAT > 0 per @p pat_residual, indexed by rack), otherwise
     * the sum of its children's flows; PS → 0.
     */
    void updateFlows(const std::vector<Gbps> &pat_residual);

    /** Racks whose ToR has INA enabled for this job. */
    const std::vector<RackId> &inaRacks() const { return inaRacks_; }

    /** Incoming flows at the switch node for @p rack (0 if absent). */
    int incomingFlowsAtRack(RackId rack) const;

    /** Sum of incoming flows over all INA-enabled switches (AE metric). */
    int totalIncomingInaFlows() const;

    /**
     * Per-link flow counts of this job at the current updateFlows state:
     * for every tree edge, the child's flow count is charged to each
     * physical link the edge crosses. @p accum must have topo.numLinks()
     * entries; counts are added into it.
     */
    void accumulateLinkFlows(std::vector<int> &accum) const;

  private:
    int recomputeFlows(std::size_t node,
                       const std::vector<Gbps> &pat_residual);

    JobId job_;
    std::vector<HierarchyNode> nodes_;
    std::vector<RackId> inaRacks_;
    int workerServers_ = 0;
};

/**
 * Decompose a (possibly multi-PS) placement into its one-PS shard
 * hierarchies: one JobHierarchy per PS, each carrying 1/k of the
 * gradient as its own aggregation tree (Section 4.1's composition).
 * Single-PS placements yield exactly one hierarchy; local placements
 * yield one local hierarchy.
 */
std::vector<JobHierarchy> buildShardHierarchies(const ClusterTopology &topo,
                                                JobId job,
                                                const Placement &placement);

} // namespace netpack

#endif // NETPACK_INA_HIERARCHY_H
