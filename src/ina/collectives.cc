#include "ina/collectives.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace netpack {

const char *
collectiveName(CollectiveAlgorithm algorithm)
{
    switch (algorithm) {
      case CollectiveAlgorithm::PsDirect: return "PS";
      case CollectiveAlgorithm::PsWithIna: return "PS+INA";
      case CollectiveAlgorithm::RingAllReduce: return "Ring";
      case CollectiveAlgorithm::HalvingDoubling: return "HalvDoub";
    }
    return "?";
}

Seconds
CollectiveCost::commTime(Gbps rate, Seconds round_latency) const
{
    NETPACK_REQUIRE(rate > 0.0, "rate must be positive");
    return units::transferTime(bottleneckVolume, rate) +
           static_cast<double>(rounds) * round_latency;
}

CollectiveCost
collectiveCost(CollectiveAlgorithm algorithm, int n, MBytes model_mb,
               double aggregation_ratio)
{
    NETPACK_REQUIRE(n >= 1, "need at least one worker, got " << n);
    NETPACK_REQUIRE(model_mb >= 0.0, "model size must be non-negative");
    NETPACK_REQUIRE(aggregation_ratio >= 0.0 && aggregation_ratio <= 1.0,
                    "aggregation ratio must be in [0, 1], got "
                        << aggregation_ratio);

    CollectiveCost cost;
    if (n == 1 || model_mb == 0.0) {
        cost.rounds = 0; // nothing to exchange: no volume, no latency
        return cost;
    }

    const double dn = static_cast<double>(n);
    switch (algorithm) {
      case CollectiveAlgorithm::PsDirect:
        // Every worker pushes d; the PS access link absorbs all n
        // streams (and multicasts the result back — undirected
        // accounting counts the heavier direction once).
        cost.perWorkerEgress = model_mb;
        cost.bottleneckVolume = dn * model_mb;
        cost.rounds = 1;
        break;
      case CollectiveAlgorithm::PsWithIna: {
        // Switches merge a fraction rho of the removable (n-1)d, so the
        // PS sees n*d - rho*(n-1)*d; full aggregation leaves exactly d.
        cost.perWorkerEgress = model_mb;
        cost.bottleneckVolume =
            dn * model_mb -
            aggregation_ratio * (dn - 1.0) * model_mb;
        cost.rounds = 1;
        break;
      }
      case CollectiveAlgorithm::RingAllReduce:
        // Reduce-scatter + all-gather: 2(n-1) chunks of d/n per worker;
        // every link carries the same volume (no hot spot).
        cost.perWorkerEgress = 2.0 * (dn - 1.0) / dn * model_mb;
        cost.bottleneckVolume = cost.perWorkerEgress;
        cost.rounds = 2 * (n - 1);
        break;
      case CollectiveAlgorithm::HalvingDoubling:
        // Same total volume as ring but in 2*log2(n) larger rounds.
        cost.perWorkerEgress = 2.0 * (dn - 1.0) / dn * model_mb;
        cost.bottleneckVolume = cost.perWorkerEgress;
        cost.rounds = 2 * std::max(1, static_cast<int>(
                                          std::ceil(std::log2(dn))));
        break;
    }
    return cost;
}

Seconds
collectiveStepTime(CollectiveAlgorithm algorithm, int n, MBytes model_mb,
                   Gbps rate, Seconds round_latency,
                   double aggregation_ratio)
{
    const CollectiveCost cost =
        collectiveCost(algorithm, n, model_mb, aggregation_ratio);
    return cost.commTime(rate, round_latency);
}

} // namespace netpack
