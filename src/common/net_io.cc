#include "common/net_io.h"

#include <cerrno>
#include <cstring>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/check.h"

namespace netpack {

int
listenLoopback(std::uint16_t port, int backlog, const char *what,
               std::uint16_t &boundPort)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    NETPACK_REQUIRE(fd >= 0, what << ": socket() failed: "
                                  << std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) != 0 ||
        ::listen(fd, backlog) != 0) {
        const int savedErrno = errno;
        ::close(fd);
        throw ConfigError(std::string(what) + ": cannot listen on port " +
                          std::to_string(port) + ": " +
                          std::strerror(savedErrno));
    }
    socklen_t len = sizeof addr;
    NETPACK_REQUIRE(
        ::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) == 0,
        what << ": getsockname() failed");
    boundPort = ntohs(addr.sin_port);
    return fd;
}

bool
sendAll(int fd, std::string_view payload)
{
    std::size_t sent = 0;
    while (sent < payload.size()) {
        const ssize_t n = ::send(fd, payload.data() + sent,
                                 payload.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false; // peer went away; nothing to clean up
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

long
recvSome(int fd, char *buf, std::size_t cap)
{
    ssize_t n;
    do {
        n = ::recv(fd, buf, cap, 0);
    } while (n < 0 && errno == EINTR);
    return static_cast<long>(n);
}

} // namespace netpack
