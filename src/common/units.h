/**
 * @file
 * Units used throughout NetPack. Rates are plain doubles in Gbps, data
 * volumes in megabytes, times in seconds; the helpers here exist to make
 * the unit of every literal explicit at the point of use.
 */

#ifndef NETPACK_COMMON_UNITS_H
#define NETPACK_COMMON_UNITS_H

namespace netpack {

/** Bandwidth/throughput in Gbps. */
using Gbps = double;
/** Data volume in megabytes. */
using MBytes = double;
/** Time in seconds. */
using Seconds = double;

namespace units {

/** Bits in one megabyte. */
inline constexpr double kBitsPerMByte = 8.0e6;
/** Bits in one gigabit. */
inline constexpr double kBitsPerGbit = 1.0e9;

/** Convert a volume (MB) and a rate (Gbps) into a transfer time. */
constexpr Seconds
transferTime(MBytes volume, Gbps rate)
{
    return (volume * kBitsPerMByte) / (rate * kBitsPerGbit);
}

/** Convert Gbps sustained for @p t seconds into a volume in MB. */
constexpr MBytes
volumeAtRate(Gbps rate, Seconds t)
{
    return rate * kBitsPerGbit * t / kBitsPerMByte;
}

/**
 * Peak Aggregation Throughput of a switch (Section 4.1): a switch with
 * @p memory_packets aggregator slots and round-trip time @p rtt can
 * aggregate at most one window of memory_packets packets per RTT.
 *
 * @param memory_packets number of aggregator slots (one packet each)
 * @param packet_bytes payload bytes carried per aggregator slot
 * @param rtt worker-to-PS round-trip time in seconds
 * @return the PAT in Gbps
 */
constexpr Gbps
patFromMemory(double memory_packets, double packet_bytes, Seconds rtt)
{
    return memory_packets * packet_bytes * 8.0 / rtt / kBitsPerGbit;
}

/** Inverse of patFromMemory: aggregator slots needed to sustain a PAT. */
constexpr double
memoryForPat(Gbps pat, double packet_bytes, Seconds rtt)
{
    return pat * kBitsPerGbit * rtt / (packet_bytes * 8.0);
}

} // namespace units

} // namespace netpack

#endif // NETPACK_COMMON_UNITS_H
