#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace netpack {

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * n2 / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
ci95HalfWidth(const RunningStats &stats)
{
    if (stats.count() < 2)
        return 0.0;
    // Two-sided 97.5% Student-t quantiles for df = 1..30; the normal
    // quantile is within 1% beyond that.
    static const double kT975[] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
        2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
        2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
        2.048,  2.045, 2.042};
    const std::size_t df = stats.count() - 1;
    const double t = df <= 30 ? kT975[df - 1] : 1.96;
    return t * stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
}

double
RunningStats::min() const
{
    return count_ ? min_ : std::numeric_limits<double>::infinity();
}

double
RunningStats::max() const
{
    return count_ ? max_ : -std::numeric_limits<double>::infinity();
}

void
SampleSet::add(double x)
{
    samples_.push_back(x);
    sortedValid_ = false;
}

double
SampleSet::mean() const
{
    RunningStats rs;
    for (double s : samples_)
        rs.add(s);
    return rs.mean();
}

double
SampleSet::stddev() const
{
    RunningStats rs;
    for (double s : samples_)
        rs.add(s);
    return rs.stddev();
}

double
SampleSet::percentile(double p) const
{
    NETPACK_REQUIRE(p >= 0.0 && p <= 100.0,
                    "percentile must be in [0, 100], got " << p);
    NETPACK_REQUIRE(!samples_.empty(),
                    "percentile of an empty sample set");
    if (!sortedValid_) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        sortedValid_ = true;
    }
    if (sorted_.size() == 1)
        return sorted_.front();
    const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double
pearsonCorrelation(const std::vector<double> &xs,
                   const std::vector<double> &ys)
{
    NETPACK_CHECK(xs.size() == ys.size());
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;
    RunningStats sx, sy;
    for (std::size_t i = 0; i < n; ++i) {
        sx.add(xs[i]);
        sy.add(ys[i]);
    }
    const double mx = sx.mean(), my = sy.mean();
    double cov = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        cov += (xs[i] - mx) * (ys[i] - my);
    cov /= static_cast<double>(n - 1);
    const double denom = sx.stddev() * sy.stddev();
    if (denom == 0.0)
        return 0.0;
    return cov / denom;
}

LinearFit
fitLine(const std::vector<double> &xs, const std::vector<double> &ys)
{
    NETPACK_CHECK(xs.size() == ys.size());
    LinearFit fit;
    const std::size_t n = xs.size();
    if (n < 2)
        return fit;
    RunningStats sx, sy;
    for (std::size_t i = 0; i < n; ++i) {
        sx.add(xs[i]);
        sy.add(ys[i]);
    }
    const double mx = sx.mean(), my = sy.mean();
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sxy += (xs[i] - mx) * (ys[i] - my);
        sxx += (xs[i] - mx) * (xs[i] - mx);
        syy += (ys[i] - my) * (ys[i] - my);
    }
    if (sxx == 0.0)
        return fit;
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
    return fit;
}

} // namespace netpack
