/**
 * @file
 * ASCII table and CSV emission for the benchmark harnesses. Every figure
 * bench prints the same rows/series the paper reports, both as an aligned
 * table on stdout and (optionally) as CSV for downstream plotting.
 */

#ifndef NETPACK_COMMON_TABLE_H
#define NETPACK_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace netpack {

/** Column-aligned table with a header row. */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have exactly one cell per column. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: append a row of doubles at the given precision. */
    void addRow(const std::string &label, const std::vector<double> &values,
                int precision = 3);

    /** Number of data rows. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Column headers (machine-readable export). */
    const std::vector<std::string> &headers() const { return headers_; }

    /** Data rows (machine-readable export). */
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

    /** Render as an aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Render as CSV (RFC-4180-ish quoting). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace netpack

#endif // NETPACK_COMMON_TABLE_H
