/**
 * @file
 * JSON string escaping, shared by every layer that emits or parses
 * JSON text: the obs JSON writer/parser, the journal's JSONL event
 * lines, and the serve daemon's wire protocol. One implementation so
 * the "escape/unescape are exact inverses" contract the journal and
 * protocol codecs depend on is proven in one place (tests/common_test,
 * tests/obs_test round-trips).
 */

#ifndef NETPACK_COMMON_JSON_TEXT_H
#define NETPACK_COMMON_JSON_TEXT_H

#include <string>
#include <string_view>

namespace netpack {

/** Escape @p s for inclusion inside a JSON string literal (no quotes). */
std::string jsonEscapeText(std::string_view s);

/**
 * Invert jsonEscapeText: decode the backslash escapes of a JSON string
 * body (the text between the quotes). Handles the two-character escapes
 * and \uXXXX sequences, including UTF-16 surrogate pairs (re-encoded as
 * UTF-8). ConfigError on malformed escapes.
 */
std::string jsonUnescapeText(std::string_view s);

} // namespace netpack

#endif // NETPACK_COMMON_JSON_TEXT_H
