#include "common/json_text.h"

#include <cstdio>

#include "common/check.h"

namespace netpack {

std::string
jsonEscapeText(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** Decode 4 hex digits at s[i..i+3]; ConfigError on short/bad input. */
unsigned
hex4(std::string_view s, std::size_t i)
{
    NETPACK_REQUIRE(i + 4 <= s.size(),
                    "truncated \\u escape in JSON string");
    unsigned code = 0;
    for (std::size_t k = i; k < i + 4; ++k) {
        const char c = s[k];
        code <<= 4;
        if (c >= '0' && c <= '9')
            code |= static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f')
            code |= static_cast<unsigned>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            code |= static_cast<unsigned>(c - 'A' + 10);
        else
            throw ConfigError("bad hex digit in \\u escape");
    }
    return code;
}

/** Append @p code point as UTF-8. */
void
appendUtf8(std::string &out, unsigned code)
{
    if (code < 0x80) {
        out += static_cast<char>(code);
    } else if (code < 0x800) {
        out += static_cast<char>(0xC0 | (code >> 6));
        out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
        out += static_cast<char>(0xE0 | (code >> 12));
        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
        out += static_cast<char>(0xF0 | (code >> 18));
        out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (code & 0x3F));
    }
}

} // namespace

std::string
jsonUnescapeText(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (c != '\\') {
            out += c;
            continue;
        }
        NETPACK_REQUIRE(i + 1 < s.size(),
                        "dangling backslash in JSON string");
        const char e = s[++i];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = hex4(s, i + 1);
            i += 4;
            if (code >= 0xD800 && code <= 0xDBFF) {
                // High surrogate: must pair with \uDC00-\uDFFF.
                NETPACK_REQUIRE(i + 2 < s.size() && s[i + 1] == '\\' &&
                                    s[i + 2] == 'u',
                                "unpaired UTF-16 high surrogate");
                const unsigned low = hex4(s, i + 3);
                NETPACK_REQUIRE(low >= 0xDC00 && low <= 0xDFFF,
                                "invalid UTF-16 low surrogate");
                i += 6;
                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
                NETPACK_REQUIRE(!(code >= 0xDC00 && code <= 0xDFFF),
                                "stray UTF-16 low surrogate");
            }
            appendUtf8(out, code);
            break;
          }
          default:
            throw ConfigError(std::string("unknown JSON escape '\\") + e +
                              "'");
        }
    }
    return out;
}

} // namespace netpack
