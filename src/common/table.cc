#include "common/table.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace netpack {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    NETPACK_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    NETPACK_REQUIRE(cells.size() == headers_.size(),
                    "row has " << cells.size() << " cells, table has "
                               << headers_.size() << " columns");
    rows_.push_back(std::move(cells));
}

void
Table::addRow(const std::string &label, const std::vector<double> &values,
              int precision)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(formatDouble(v, precision));
    addRow(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << "\n";
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto escape = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string out = "\"";
        for (char ch : cell) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << escape(row[c]);
            if (c + 1 < row.size())
                os << ",";
        }
        os << "\n";
    };
    print_row(headers_);
    for (const auto &row : rows_)
        print_row(row);
}

} // namespace netpack
