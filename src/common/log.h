/**
 * @file
 * Minimal leveled logger. Benches and examples print their deliverable
 * tables directly; the logger is for diagnostic traces (placement
 * decisions, water-filling iterations) that can be silenced wholesale.
 */

#ifndef NETPACK_COMMON_LOG_H
#define NETPACK_COMMON_LOG_H

#include <sstream>
#include <string>

namespace netpack {

/** Severity of a log record. */
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Off = 4,
};

/**
 * Process-wide log configuration and sink. The threshold defaults to
 * Warn and is seeded from the NETPACK_LOG_LEVEL environment variable
 * (debug|info|warn|error|off, case-insensitive) on first use; setLevel
 * overrides it programmatically.
 */
class Log
{
  public:
    /** Current threshold; records below it are dropped. */
    static LogLevel level();

    /** Set the threshold (e.g. LogLevel::Off in benchmarks). */
    static void setLevel(LogLevel level);

    /**
     * Emit one record (used by the NETPACK_LOG macro): a UTC wall-clock
     * timestamp and the level, assembled into a single string and
     * written to stderr in one call so records from concurrent benches
     * never interleave.
     */
    static void write(LogLevel level, const std::string &msg);
};

} // namespace netpack

/** Log with lazy formatting: NETPACK_LOG(Info, "placed " << n << " jobs"). */
#define NETPACK_LOG(level_name, expr)                                      \
    do {                                                                   \
        if (::netpack::LogLevel::level_name >= ::netpack::Log::level()) {  \
            std::ostringstream netpack_log_oss_;                           \
            netpack_log_oss_ << expr;                                      \
            ::netpack::Log::write(::netpack::LogLevel::level_name,         \
                                  netpack_log_oss_.str());                 \
        }                                                                  \
    } while (0)

#endif // NETPACK_COMMON_LOG_H
