/**
 * @file
 * Error-handling primitives, following the panic/fatal split used by
 * architecture simulators (gem5): NETPACK_CHECK guards internal invariants
 * (a failure is a NetPack bug), NETPACK_REQUIRE guards user-facing inputs
 * (a failure is a configuration error).
 */

#ifndef NETPACK_COMMON_CHECK_H
#define NETPACK_COMMON_CHECK_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace netpack {

/** Thrown when an internal invariant is violated (a NetPack bug). */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/** Thrown on invalid user input (bad configuration, malformed trace...). */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace detail {

inline std::string
checkMessage(const char *kind, const char *cond, const char *file, int line,
             const std::string &extra)
{
    std::ostringstream oss;
    oss << kind << " failed: (" << cond << ") at " << file << ":" << line;
    if (!extra.empty())
        oss << " — " << extra;
    return oss.str();
}

} // namespace detail

} // namespace netpack

/** Internal invariant; failure means a NetPack bug (panic-class). */
#define NETPACK_CHECK(cond)                                                 \
    do {                                                                    \
        if (!(cond)) {                                                      \
            throw ::netpack::InternalError(::netpack::detail::checkMessage( \
                "NETPACK_CHECK", #cond, __FILE__, __LINE__, ""));           \
        }                                                                   \
    } while (0)

/** Internal invariant with an explanatory message. */
#define NETPACK_CHECK_MSG(cond, msg)                                        \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream netpack_oss_;                                \
            netpack_oss_ << msg;                                            \
            throw ::netpack::InternalError(::netpack::detail::checkMessage( \
                "NETPACK_CHECK", #cond, __FILE__, __LINE__,                 \
                netpack_oss_.str()));                                       \
        }                                                                   \
    } while (0)

/** User-input validation; failure is a configuration error (fatal-class). */
#define NETPACK_REQUIRE(cond, msg)                                          \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream netpack_oss_;                                \
            netpack_oss_ << msg;                                            \
            throw ::netpack::ConfigError(::netpack::detail::checkMessage(   \
                "NETPACK_REQUIRE", #cond, __FILE__, __LINE__,               \
                netpack_oss_.str()));                                       \
        }                                                                   \
    } while (0)

#endif // NETPACK_COMMON_CHECK_H
