/**
 * @file
 * Deterministic random number generation. NetPack experiments must be
 * reproducible run-to-run, so every stochastic component takes an explicit
 * Rng (xoshiro256**) seeded from the experiment configuration.
 */

#ifndef NETPACK_COMMON_RNG_H
#define NETPACK_COMMON_RNG_H

#include <array>
#include <cstdint>

namespace netpack {

/**
 * xoshiro256** generator with SplitMix64 seeding. Satisfies the C++
 * UniformRandomBitGenerator concept so it can drive <random>
 * distributions, but the common draws are provided as members.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed the generator; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Next raw 64-bit draw. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal draw (Box–Muller, cached pair). */
    double normal();

    /** Normal draw with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Exponential draw with the given rate (mean 1/rate). */
    double exponential(double rate);

    /** Log-normal draw: exp(N(mu, sigma)). */
    double logNormal(double mu, double sigma);

    /** Poisson draw with the given mean (inversion for small means). */
    std::int64_t poisson(double mean);

    /** Derive an independent child stream (for per-component seeding). */
    Rng fork();

    /**
     * Complete generator state (xoshiro words plus the Box–Muller
     * cache). Capturing and restoring it resumes the stream exactly
     * where it left off — the journal snapshot layer depends on this.
     */
    struct State
    {
        std::array<std::uint64_t, 4> words{};
        double cachedNormal = 0.0;
        bool hasCachedNormal = false;
    };

    /** Current stream state (for snapshots). */
    State state() const { return {state_, cachedNormal_, hasCachedNormal_}; }

    /** Overwrite the stream state (snapshot restore). */
    void setState(const State &state)
    {
        state_ = state.words;
        cachedNormal_ = state.cachedNormal;
        hasCachedNormal_ = state.hasCachedNormal;
    }

  private:
    std::array<std::uint64_t, 4> state_;
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

} // namespace netpack

#endif // NETPACK_COMMON_RNG_H
