/**
 * @file
 * Small string utilities shared by trace I/O and table printing.
 */

#ifndef NETPACK_COMMON_STRINGS_H
#define NETPACK_COMMON_STRINGS_H

#include <string>
#include <string_view>
#include <vector>

namespace netpack {

/** Split @p s on @p sep; empty fields are preserved. */
std::vector<std::string> split(std::string_view s, char sep);

/** Strip ASCII whitespace from both ends. */
std::string trim(std::string_view s);

/** printf-style number formatting with a fixed precision. */
std::string formatDouble(double x, int precision = 3);

/** Human-friendly engineering format ("1.2K", "3.4M"). */
std::string formatCount(double x);

/** True if @p s begins with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** Lower-case ASCII copy of @p s. */
std::string toLower(std::string_view s);

} // namespace netpack

#endif // NETPACK_COMMON_STRINGS_H
