/**
 * @file
 * Loopback socket plumbing shared by the obs scrape server and the
 * serve daemon: a bind+listen helper restricted to 127.0.0.1 and
 * EINTR/partial-write-safe send/recv wrappers. All writes pass
 * MSG_NOSIGNAL so a peer that disconnects mid-response surfaces as an
 * EPIPE return value instead of a process-killing SIGPIPE — daemons
 * must not die because one client hung up.
 */

#ifndef NETPACK_COMMON_NET_IO_H
#define NETPACK_COMMON_NET_IO_H

#include <cstdint>
#include <string_view>

namespace netpack {

/**
 * Create a TCP socket bound to 127.0.0.1:@p port (0 = ephemeral) and
 * listening with @p backlog. Returns the fd; @p boundPort receives the
 * resolved port. Throws ConfigError (tagged with @p what) when the
 * bind/listen fails — loopback-only by construction, never exposed on
 * external interfaces.
 */
int listenLoopback(std::uint16_t port, int backlog, const char *what,
                   std::uint16_t &boundPort);

/**
 * Write all of @p payload to @p fd, looping over EINTR and short
 * writes, with SIGPIPE suppressed via MSG_NOSIGNAL. Returns true when
 * every byte was written, false when the peer went away (EPIPE,
 * ECONNRESET, ...) — the caller just drops the connection.
 */
bool sendAll(int fd, std::string_view payload);

/**
 * Read up to @p cap bytes into @p buf, retrying on EINTR. Returns the
 * byte count, 0 on orderly shutdown, or -1 on a (non-EINTR) error.
 */
long recvSome(int fd, char *buf, std::size_t cap);

} // namespace netpack

#endif // NETPACK_COMMON_NET_IO_H
