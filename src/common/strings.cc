#include "common/strings.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace netpack {

std::vector<std::string>
split(std::string_view s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = s.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            break;
        }
        out.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string
trim(std::string_view s)
{
    std::size_t begin = 0;
    std::size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return std::string(s.substr(begin, end - begin));
}

std::string
formatDouble(double x, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, x);
    return buf;
}

std::string
formatCount(double x)
{
    const double ax = std::fabs(x);
    char buf[64];
    if (ax >= 1e9)
        std::snprintf(buf, sizeof(buf), "%.1fG", x / 1e9);
    else if (ax >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.1fM", x / 1e6);
    else if (ax >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.1fK", x / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%g", x);
    return buf;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

} // namespace netpack
