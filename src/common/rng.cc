#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace netpack {

namespace {

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits → double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    NETPACK_CHECK(lo <= hi);
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    NETPACK_CHECK(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>((*this)());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw;
    do {
        draw = (*this)();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cachedNormal_ = radius * std::sin(angle);
    hasCachedNormal_ = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    NETPACK_CHECK(stddev >= 0.0);
    return mean + stddev * normal();
}

double
Rng::exponential(double rate)
{
    NETPACK_CHECK(rate > 0.0);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

std::int64_t
Rng::poisson(double mean)
{
    NETPACK_CHECK(mean >= 0.0);
    if (mean == 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth inversion.
        const double threshold = std::exp(-mean);
        std::int64_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= uniform();
        } while (p > threshold);
        return k - 1;
    }
    // Normal approximation with continuity correction for large means.
    const double draw = normal(mean, std::sqrt(mean));
    return draw < 0.0 ? 0 : static_cast<std::int64_t>(draw + 0.5);
}

Rng
Rng::fork()
{
    return Rng((*this)());
}

} // namespace netpack
