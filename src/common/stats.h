/**
 * @file
 * Statistics helpers used by the simulators and the benchmark harnesses:
 * a streaming mean/variance accumulator and a small sample container with
 * percentile queries.
 */

#ifndef NETPACK_COMMON_STATS_H
#define NETPACK_COMMON_STATS_H

#include <cstddef>
#include <vector>

namespace netpack {

/** Streaming mean / variance / extrema (Welford's algorithm). */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Number of observations. */
    std::size_t count() const { return count_; }

    /** Sample mean (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 with <2 observations). */
    double variance() const;

    /** Unbiased sample standard deviation. */
    double stddev() const;

    /** Smallest observation (+inf when empty). */
    double min() const;

    /** Largest observation (-inf when empty). */
    double max() const;

    /** Sum of all observations. */
    double sum() const { return mean_ * static_cast<double>(count_); }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Collects raw samples and answers percentile queries by sorting on
 * demand. Intended for experiment post-processing, not hot paths.
 */
class SampleSet
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples. */
    std::size_t count() const { return samples_.size(); }

    /** Sample mean. */
    double mean() const;

    /** Unbiased sample standard deviation. */
    double stddev() const;

    /**
     * Percentile by linear interpolation between closest ranks.
     * @param p percentile in [0, 100]
     */
    double percentile(double p) const;

    /** Median (50th percentile). */
    double median() const { return percentile(50.0); }

    /** Read access to the raw samples (unsorted insertion order). */
    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool sortedValid_ = false;
};

/**
 * Half-width of the two-sided 95% confidence interval for the sample
 * mean: t_{0.975, n-1} * stddev / sqrt(n). Uses Student-t quantiles for
 * small samples (n <= 31) and the normal 1.96 beyond; returns 0 with
 * fewer than 2 observations (no spread estimate exists).
 */
double ci95HalfWidth(const RunningStats &stats);

/**
 * Pearson correlation coefficient of two equally-sized series.
 * Returns 0 when either series has zero variance or fewer than 2 points.
 */
double pearsonCorrelation(const std::vector<double> &xs,
                          const std::vector<double> &ys);

/** Least-squares line fit y = slope*x + intercept. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination of the fit. */
    double r2 = 0.0;
};

/** Fit a least-squares line through (xs, ys). */
LinearFit fitLine(const std::vector<double> &xs,
                  const std::vector<double> &ys);

} // namespace netpack

#endif // NETPACK_COMMON_STATS_H
