#include "common/log.h"

#include <atomic>
#include <iostream>

namespace netpack {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off: return "OFF";
    }
    return "?";
}

} // namespace

LogLevel
Log::level()
{
    return g_level.load(std::memory_order_relaxed);
}

void
Log::setLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

void
Log::write(LogLevel level, const std::string &msg)
{
    if (level < Log::level())
        return;
    std::cerr << "[netpack " << levelName(level) << "] " << msg << "\n";
}

} // namespace netpack
