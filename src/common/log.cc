#include "common/log.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>

namespace netpack {

namespace {

/** Case-insensitive parse of NETPACK_LOG_LEVEL; unknown values keep the
 * default so a typo cannot silence errors. */
LogLevel
parseLevel(const char *value, LogLevel fallback)
{
    if (value == nullptr || value[0] == '\0')
        return fallback;
    std::string name;
    for (const char *p = value; *p != '\0'; ++p)
        name += static_cast<char>(std::tolower(
            static_cast<unsigned char>(*p)));
    if (name == "debug")
        return LogLevel::Debug;
    if (name == "info")
        return LogLevel::Info;
    if (name == "warn" || name == "warning")
        return LogLevel::Warn;
    if (name == "error")
        return LogLevel::Error;
    if (name == "off" || name == "none")
        return LogLevel::Off;
    return fallback;
}

/** The threshold, seeded from the environment on first use. */
std::atomic<LogLevel> &
levelSlot()
{
    static std::atomic<LogLevel> level{
        parseLevel(std::getenv("NETPACK_LOG_LEVEL"), LogLevel::Warn)};
    return level;
}

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off: return "OFF";
    }
    return "?";
}

/** UTC wall-clock "2026-08-07T12:34:56.789Z". */
std::string
timestamp()
{
    const auto now = std::chrono::system_clock::now();
    const std::time_t secs = std::chrono::system_clock::to_time_t(now);
    const auto millis =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now.time_since_epoch())
            .count() %
        1000;
    std::tm tm{};
    gmtime_r(&secs, &tm);
    char buf[80];
    std::snprintf(buf, sizeof(buf),
                  "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                  tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday,
                  tm.tm_hour, tm.tm_min, tm.tm_sec,
                  static_cast<int>(millis));
    return buf;
}

} // namespace

LogLevel
Log::level()
{
    return levelSlot().load(std::memory_order_relaxed);
}

void
Log::setLevel(LogLevel level)
{
    levelSlot().store(level, std::memory_order_relaxed);
}

void
Log::write(LogLevel level, const std::string &msg)
{
    if (level < Log::level())
        return;
    // Assemble the whole record first and emit it with one write so
    // concurrent benches cannot interleave fragments of two records.
    std::string record;
    record.reserve(msg.size() + 48);
    record += "[netpack ";
    record += timestamp();
    record += ' ';
    record += levelName(level);
    record += "] ";
    record += msg;
    record += '\n';
    std::cerr.write(record.data(),
                    static_cast<std::streamsize>(record.size()));
    std::cerr.flush();
}

} // namespace netpack
