/**
 * @file
 * Live-telemetry primitives for the obs layer:
 *
 *  - LogHistogram: a log-bucketed (HDR/DDSketch-style) histogram with a
 *    quantile(q) query whose relative error is bounded by the spec's
 *    relError. Bucket bounds grow geometrically by g = (1 + relError)^2
 *    and each bucket's representative value is the geometric midpoint of
 *    its bounds, so any estimate is within a factor (1 + relError) of
 *    the true sample at that rank.
 *
 *  - TimeSeries: a fixed-capacity ring buffer of (t, value) points fed
 *    by periodic sampling hooks (per sim epoch or wall clock). When the
 *    ring is full the oldest point is dropped; totalPushed() keeps the
 *    lifetime count so consumers can tell how much history was lost.
 *
 * Both integrate with Registry / MetricScope / merge exactly like the
 * fixed-bucket metrics (see obs/metrics.h) and land in run-manifest
 * schema netpack.run_manifest/4 as the `quantiles` and `series` blocks.
 */

#ifndef NETPACK_OBS_TIMESERIES_H
#define NETPACK_OBS_TIMESERIES_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace netpack {
namespace obs {

/**
 * Shape of a log-bucketed histogram. Observations are resolvable with
 * bounded relative error inside [minValue, maxValue]; anything below
 * clamps to minValue (underflow bucket), anything above to the observed
 * maximum (overflow bucket). Two specs are compatible for merging iff
 * all three fields are equal.
 */
struct LogHistogramSpec
{
    double minValue = 1.0;
    double maxValue = 1e9;
    /** Documented quantile relative-error bound (alpha). */
    double relError = 0.05;

    bool operator==(const LogHistogramSpec &o) const
    {
        return minValue == o.minValue && maxValue == o.maxValue &&
               relError == o.relError;
    }
    bool operator!=(const LogHistogramSpec &o) const { return !(*this == o); }
};

/** Default spec for microsecond latency metrics (`*_us`): 1 µs .. 1000 s
 * at 5% relative error (~213 buckets). */
extern const LogHistogramSpec kLatencySpecUs;

/** Geometric bucket bounds for @p spec: bounds[0] = min, bounds[i] =
 * min * g^i with g = (1 + relError)^2, extended until bounds.back() >=
 * maxValue. Shared by the registry histogram, MetricScope local
 * capture, and tests. */
std::vector<double> logBucketBounds(const LogHistogramSpec &spec);

/**
 * quantile(q) over log-bucketed data: nearest-rank walk of the
 * cumulative counts, returning the geometric midpoint of the selected
 * bucket clamped to the exactly-tracked [observedMin, observedMax]; the
 * extreme ranks (1 and total) return observedMin / observedMax exactly.
 * Returns 0 when total == 0. Bucket layout: counts[0] counts x <= min
 * (underflow), counts[i] counts bounds[i-1] < x <= bounds[i] shifted by
 * one, counts.back() is overflow (x > bounds.back()).
 */
double logQuantile(const LogHistogramSpec &spec,
                   const std::vector<double> &bounds,
                   const std::vector<std::int64_t> &counts,
                   std::int64_t total, double observedMin,
                   double observedMax, double q);

/**
 * Log-bucketed histogram with bounded-relative-error quantiles.
 * Thread-safe recording (relaxed atomics + CAS min/max); layout is fixed
 * by the spec at first registration.
 */
class LogHistogram
{
  public:
    void record(double x);

    /** Quantile estimate; relative error <= spec().relError against the
     * exact nearest-rank sample (see logQuantile). */
    double quantile(double q) const;

    const LogHistogramSpec &spec() const { return spec_; }
    const std::vector<double> &bounds() const { return bounds_; }

    /** bounds().size() + 1 entries: [underflow, ..., overflow]. */
    std::vector<std::int64_t> counts() const;

    std::int64_t total() const
    {
        return total_.load(std::memory_order_relaxed);
    }
    double sum() const { return sum_.load(std::memory_order_relaxed); }
    /** Exact smallest/largest recorded value; +inf/-inf when empty. */
    double observedMin() const
    {
        return min_.load(std::memory_order_relaxed);
    }
    double observedMax() const
    {
        return max_.load(std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    explicit LogHistogram(const LogHistogramSpec &spec);

    LogHistogramSpec spec_;
    std::vector<double> bounds_;
    std::vector<std::atomic<std::int64_t>> counts_;
    std::atomic<std::int64_t> total_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_;
    std::atomic<double> max_;
};

/** One sampled point of a time series. */
struct SeriesPoint
{
    double t = 0.0;
    double value = 0.0;

    bool operator==(const SeriesPoint &o) const
    {
        return t == o.t && value == o.value;
    }
};

/** Default ring capacity for registry time series. */
constexpr std::size_t kDefaultSeriesCapacity = 512;

/**
 * Fixed-capacity ring of (t, value) samples. push() is mutex-guarded —
 * series are fed from periodic sampling hooks, not hot paths.
 */
class TimeSeries
{
  public:
    void push(double t, double value);

    /** Points oldest-to-newest (at most capacity()). */
    std::vector<SeriesPoint> points() const;

    std::size_t capacity() const { return capacity_; }

    /** Lifetime pushes, including points the ring has since dropped. */
    std::uint64_t totalPushed() const;

  private:
    friend class Registry;
    explicit TimeSeries(std::size_t capacity);

    mutable std::mutex mutex_;
    std::size_t capacity_;
    std::vector<SeriesPoint> ring_;
    std::size_t head_ = 0; // next write slot once the ring is full
    std::uint64_t totalPushed_ = 0;
};

} // namespace obs
} // namespace netpack

#endif // NETPACK_OBS_TIMESERIES_H
