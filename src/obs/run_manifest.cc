#include "obs/run_manifest.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "common/log.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace netpack {
namespace obs {

RunSummary
RunSummary::fromMetrics(const std::string &label, const RunMetrics &metrics)
{
    RunSummary summary;
    summary.label = label;
    summary.jobs = metrics.records.size();
    summary.avgJct = metrics.avgJct();
    if (!metrics.records.empty()) {
        const SampleSet jct = metrics.jctSamples();
        summary.p50Jct = jct.percentile(50.0);
        summary.p99Jct = jct.percentile(99.0);
    }
    summary.avgDe = metrics.avgDe();
    summary.makespan = metrics.makespan;
    summary.placementSeconds = metrics.placementSeconds;
    summary.placementRounds = metrics.placementRounds;
    summary.avgGpuUtilization = metrics.avgGpuUtilization;
    summary.avgFragmentation = metrics.avgFragmentation;
    summary.jobRestarts = metrics.jobRestarts;
    return summary;
}

AggregateStat
AggregateStat::fromStats(const RunningStats &stats)
{
    AggregateStat out;
    out.count = stats.count();
    out.mean = stats.mean();
    out.stddev = stats.stddev();
    out.ci95 = ci95HalfWidth(stats);
    return out;
}

void
RunManifest::addCluster(const std::string &name, const ClusterConfig &config)
{
    const auto it = std::find_if(clusters.begin(), clusters.end(),
                                 [&](const auto &entry) {
                                     return entry.first == name;
                                 });
    if (it == clusters.end())
        clusters.emplace_back(name, config);
}

void
RunManifest::addSeed(std::uint64_t seed)
{
    if (std::find(seeds.begin(), seeds.end(), seed) == seeds.end())
        seeds.push_back(seed);
}

void
RunManifest::addRun(const std::string &label, const RunMetrics &metrics)
{
    runs.push_back(RunSummary::fromMetrics(label, metrics));
}

void
RunManifest::addAggregate(const std::string &cell,
                          const RunningStats &avg_jct,
                          const RunningStats &avg_de,
                          const RunningStats &makespan,
                          const RunningStats &gpu_utilization)
{
    AggregateSummary summary;
    summary.cell = cell;
    summary.avgJct = AggregateStat::fromStats(avg_jct);
    summary.avgDe = AggregateStat::fromStats(avg_de);
    summary.makespan = AggregateStat::fromStats(makespan);
    summary.avgGpuUtilization = AggregateStat::fromStats(gpu_utilization);
    const auto it = std::find_if(aggregates.begin(), aggregates.end(),
                                 [&](const AggregateSummary &entry) {
                                     return entry.cell == cell;
                                 });
    if (it != aggregates.end())
        *it = std::move(summary);
    else
        aggregates.push_back(std::move(summary));
}

namespace {

void
writeCluster(JsonWriter &json, const ClusterConfig &config)
{
    json.beginObject();
    json.kv("num_racks", config.numRacks);
    json.kv("servers_per_rack", config.serversPerRack);
    json.kv("gpus_per_server", config.gpusPerServer);
    json.kv("server_link_gbps", config.serverLinkGbps);
    json.kv("oversubscription", config.oversubscription);
    json.kv("tor_pat_gbps", config.torPatGbps);
    json.kv("rtt_seconds", config.rtt);
    json.kv("racks_per_pod", config.racksPerPod);
    json.kv("pod_oversubscription", config.podOversubscription);
    json.endObject();
}

void
writeAggregateStat(JsonWriter &json, const AggregateStat &stat)
{
    json.beginObject();
    json.kv("count", stat.count);
    json.kv("mean", stat.mean);
    json.kv("stddev", stat.stddev);
    json.kv("ci95", stat.ci95);
    json.endObject();
}

void
writeEnvEntry(JsonWriter &json, const char *name)
{
    const char *value = std::getenv(name);
    json.key(name);
    if (value == nullptr)
        json.value(false);
    else
        json.value(std::string_view(value));
}

} // namespace

void
writeRunManifest(const std::string &path, const RunManifest &manifest)
{
    std::ofstream out(path);
    if (!out) {
        NETPACK_LOG(Error, "cannot write run manifest '" << path << "'");
        return;
    }

    JsonWriter json(out);
    json.beginObject();
    json.kv("schema", manifest.schema);
    json.kv("bench", manifest.bench);
    json.kv("title", manifest.title);

    json.key("args");
    json.beginArray();
    for (const std::string &arg : manifest.args)
        json.value(arg);
    json.endArray();

    json.key("env");
    json.beginObject();
    writeEnvEntry(json, "NETPACK_TRACE");
    writeEnvEntry(json, "NETPACK_METRICS");
    writeEnvEntry(json, "NETPACK_LOG_LEVEL");
    writeEnvEntry(json, "NETPACK_VERIFY_INCREMENTAL");
    json.endObject();

    json.key("clusters");
    json.beginObject();
    for (const auto &[name, config] : manifest.clusters) {
        json.key(name);
        writeCluster(json, config);
    }
    json.endObject();

    json.key("seeds");
    json.beginArray();
    for (const std::uint64_t seed : manifest.seeds)
        json.value(static_cast<std::uint64_t>(seed));
    json.endArray();

    json.key("runs");
    json.beginArray();
    for (const RunSummary &run : manifest.runs) {
        json.beginObject();
        json.kv("label", run.label);
        json.kv("jobs", run.jobs);
        json.kv("avg_jct", run.avgJct);
        json.kv("p50_jct", run.p50Jct);
        json.kv("p99_jct", run.p99Jct);
        json.kv("avg_de", run.avgDe);
        json.kv("makespan", run.makespan);
        json.kv("placement_seconds", run.placementSeconds);
        json.kv("placement_rounds", run.placementRounds);
        json.kv("avg_gpu_utilization", run.avgGpuUtilization);
        json.kv("avg_fragmentation", run.avgFragmentation);
        json.kv("job_restarts", run.jobRestarts);
        json.endObject();
    }
    json.endArray();

    json.key("aggregates");
    json.beginArray();
    for (const AggregateSummary &aggregate : manifest.aggregates) {
        json.beginObject();
        json.kv("cell", aggregate.cell);
        json.kv("runs", aggregate.avgJct.count);
        json.key("avg_jct");
        writeAggregateStat(json, aggregate.avgJct);
        json.key("avg_de");
        writeAggregateStat(json, aggregate.avgDe);
        json.key("makespan");
        writeAggregateStat(json, aggregate.makespan);
        json.key("avg_gpu_utilization");
        writeAggregateStat(json, aggregate.avgGpuUtilization);
        json.endObject();
    }
    json.endArray();

    json.key("tables");
    json.beginArray();
    for (const Table &table : manifest.tables) {
        json.beginObject();
        json.key("headers");
        json.beginArray();
        for (const std::string &header : table.headers())
            json.value(header);
        json.endArray();
        json.key("rows");
        json.beginArray();
        for (const auto &row : table.rows()) {
            json.beginArray();
            for (const std::string &cell : row)
                json.value(cell);
            json.endArray();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();

    json.key("journal");
    json.beginObject();
    json.kv("enabled", manifest.journal.enabled);
    json.kv("directory", manifest.journal.directory);
    json.kv("snapshot_every", manifest.journal.snapshotEvery);
    json.kv("events_written", manifest.journal.eventsWritten);
    json.kv("snapshots_written", manifest.journal.snapshotsWritten);
    json.kv("runs_recorded", manifest.journal.runsRecorded);
    json.kv("runs_resumed", manifest.journal.runsResumed);
    json.kv("runs_reused", manifest.journal.runsReused);
    json.kv("replay_divergences", manifest.journal.replayDivergences);
    json.endObject();

    const MetricsSnapshot snap = snapshot();

    // /4: telemetry time series — epoch-sampled registry rings, keyed
    // by sim time, so a manifest carries the shape of the run rather
    // than just its endpoint.
    json.key("series");
    json.beginObject();
    for (const auto &[name, data] : snap.series) {
        json.key(name);
        json.beginObject();
        json.kv("capacity", static_cast<std::int64_t>(data.capacity));
        json.kv("total_pushed",
                static_cast<std::int64_t>(data.totalPushed));
        json.key("points");
        json.beginArray();
        for (const auto &point : data.points) {
            json.beginArray();
            json.value(point.t);
            json.value(point.value);
            json.endArray();
        }
        json.endArray();
        json.endObject();
    }
    json.endObject();

    // /4: headline quantiles of every log-bucketed histogram. The
    // `wallclock` flag marks entries excluded from the --jobs N
    // bit-identity contract (machine-speed dependent).
    json.key("quantiles");
    json.beginObject();
    for (const auto &[name, data] : snap.logHistograms) {
        if (data.total <= 0)
            continue;
        json.key(name);
        json.beginObject();
        json.kv("count", data.total);
        json.kv("sum", data.sum);
        json.kv("min", data.observedMin);
        json.kv("max", data.observedMax);
        json.kv("p50", data.quantile(0.50));
        json.kv("p90", data.quantile(0.90));
        json.kv("p95", data.quantile(0.95));
        json.kv("p99", data.quantile(0.99));
        json.kv("rel_err", data.spec.relError);
        json.kv("wallclock", isWallClockMetric(name));
        json.endObject();
    }
    json.endObject();

    json.key("metrics");
    writeSnapshotJson(json, snap);

    json.endObject();
}

} // namespace obs
} // namespace netpack
