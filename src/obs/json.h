/**
 * @file
 * Minimal streaming JSON emitter used by the observability layer (trace
 * files, metrics dumps, run manifests), plus the matching strict parser
 * the journal layer reads JSONL event lines back with. Escape/unescape
 * are exact inverses (the journal depends on lossless string round-
 * trips), and parsed numbers keep their raw token so 64-bit integers
 * written by JsonWriter::value(std::uint64_t) survive unrounded.
 */

#ifndef NETPACK_OBS_JSON_H
#define NETPACK_OBS_JSON_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace netpack {
namespace obs {

/** Escape @p s for inclusion inside a JSON string literal (no quotes). */
std::string jsonEscape(std::string_view s);

/**
 * Invert jsonEscape: decode the backslash escapes of a JSON string body
 * (the text between the quotes). Handles the two-character escapes and
 * \uXXXX sequences, including UTF-16 surrogate pairs (re-encoded as
 * UTF-8). ConfigError on malformed escapes.
 */
std::string jsonUnescape(std::string_view s);

/**
 * Streaming writer for one JSON document. Usage:
 *
 *   JsonWriter json(os);
 *   json.beginObject();
 *   json.key("jobs"); json.value(42);
 *   json.key("rates"); json.beginArray(); json.value(1.5); json.endArray();
 *   json.endObject();
 */
class JsonWriter
{
  public:
    /** @param indent spaces per nesting level; 0 = compact single line */
    explicit JsonWriter(std::ostream &os, int indent = 2);

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; must be inside an object, before its value. */
    void key(std::string_view name);

    void value(std::string_view s);
    void value(const char *s) { value(std::string_view(s)); }
    void value(bool b);
    void value(std::int64_t n);
    void value(std::uint64_t n);
    void value(int n) { value(static_cast<std::int64_t>(n)); }
    void value(long long n) { value(static_cast<std::int64_t>(n)); }
    void value(unsigned n) { value(static_cast<std::uint64_t>(n)); }
    void value(unsigned long long n)
    {
        value(static_cast<std::uint64_t>(n));
    }
    /** Non-finite doubles (JSON has no inf/nan) are emitted as strings. */
    void value(double x);

    /** key() + value() in one call. */
    template <typename T>
    void kv(std::string_view name, const T &v)
    {
        key(name);
        value(v);
    }

  private:
    void beforeValue();
    void newlineIndent();
    void open(char c);
    void close(char c);

    std::ostream *os_;
    int indent_;
    /** One frame per open object/array: whether a value was emitted. */
    std::vector<bool> hasValue_;
    bool pendingKey_ = false;
};

/**
 * Parsed JSON value (the read side of JsonWriter). A thin immutable
 * tree: objects keep insertion order for deterministic re-emission, and
 * numbers retain their raw token so asUInt64/asInt64 are exact for
 * anything JsonWriter emitted. Accessors throw ConfigError on kind
 * mismatches — journal reading treats malformed documents as bad input,
 * not as internal bugs.
 */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    /** Boolean value; ConfigError unless Kind::Bool. */
    bool asBool() const;

    /** Number as double (%.17g tokens round-trip IEEE doubles). */
    double asDouble() const;

    /** Number as exact signed integer; ConfigError on non-integers. */
    std::int64_t asInt64() const;

    /** Number as exact unsigned integer. */
    std::uint64_t asUInt64() const;

    /** Decoded string value; ConfigError unless Kind::String. */
    const std::string &asString() const;

    /** Array elements; ConfigError unless Kind::Array. */
    const std::vector<JsonValue> &items() const;

    /** Object members in document order; ConfigError unless Object. */
    const std::vector<std::pair<std::string, JsonValue>> &members() const;

    /** Whether the object has member @p key. */
    bool has(std::string_view key) const;

    /** Object member by key; ConfigError when missing. */
    const JsonValue &at(std::string_view key) const;

    /** Object member by key, or nullptr when absent / not an object. */
    const JsonValue *find(std::string_view key) const;

    /** The raw number token as it appeared in the document. */
    const std::string &numberToken() const;

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    /** Raw token for numbers; decoded text for strings. */
    std::string scalar_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/**
 * Parse one JSON document from @p text (complete value, optionally
 * surrounded by whitespace). ConfigError with offset context on
 * malformed input or trailing garbage.
 */
JsonValue parseJson(std::string_view text);

} // namespace obs
} // namespace netpack

#endif // NETPACK_OBS_JSON_H
