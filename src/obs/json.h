/**
 * @file
 * Minimal streaming JSON emitter used by the observability layer (trace
 * files, metrics dumps, run manifests). Handles escaping, indentation,
 * and comma placement; the caller is responsible for balanced
 * begin/end calls (checked at destruction in debug builds via
 * NETPACK_CHECK).
 */

#ifndef NETPACK_OBS_JSON_H
#define NETPACK_OBS_JSON_H

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace netpack {
namespace obs {

/** Escape @p s for inclusion inside a JSON string literal (no quotes). */
std::string jsonEscape(std::string_view s);

/**
 * Streaming writer for one JSON document. Usage:
 *
 *   JsonWriter json(os);
 *   json.beginObject();
 *   json.key("jobs"); json.value(42);
 *   json.key("rates"); json.beginArray(); json.value(1.5); json.endArray();
 *   json.endObject();
 */
class JsonWriter
{
  public:
    /** @param indent spaces per nesting level; 0 = compact single line */
    explicit JsonWriter(std::ostream &os, int indent = 2);

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; must be inside an object, before its value. */
    void key(std::string_view name);

    void value(std::string_view s);
    void value(const char *s) { value(std::string_view(s)); }
    void value(bool b);
    void value(std::int64_t n);
    void value(std::uint64_t n);
    void value(int n) { value(static_cast<std::int64_t>(n)); }
    void value(long long n) { value(static_cast<std::int64_t>(n)); }
    void value(unsigned n) { value(static_cast<std::uint64_t>(n)); }
    void value(unsigned long long n)
    {
        value(static_cast<std::uint64_t>(n));
    }
    /** Non-finite doubles (JSON has no inf/nan) are emitted as strings. */
    void value(double x);

    /** key() + value() in one call. */
    template <typename T>
    void kv(std::string_view name, const T &v)
    {
        key(name);
        value(v);
    }

  private:
    void beforeValue();
    void newlineIndent();
    void open(char c);
    void close(char c);

    std::ostream *os_;
    int indent_;
    /** One frame per open object/array: whether a value was emitted. */
    std::vector<bool> hasValue_;
    bool pendingKey_ = false;
};

} // namespace obs
} // namespace netpack

#endif // NETPACK_OBS_JSON_H
