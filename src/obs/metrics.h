/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and fixed-bucket
 * histograms with a snapshot API. Recording is thread-safe (atomics) and
 * zero-overhead when disabled — every call site first reads a plain bool
 * (no atomic, no lock) and bails out.
 *
 * Enablement: metrics are on when the NETPACK_METRICS environment
 * variable is set (its value is a file path that receives a JSON
 * snapshot at process exit) or after an explicit setMetricsEnabled(true)
 * (the bench harness does this for --json). Instrument hot paths with
 * the macros so the disabled path stays a single branch:
 *
 *   NETPACK_COUNT("waterfill.incremental_hits", 1);
 *   NETPACK_GAUGE("sim.queue_depth", pending.size());
 *   NETPACK_HISTOGRAM("waterfill.iterations", obs::kPow2Buckets, rounds);
 *
 * Naming convention: dot-separated `<subsystem>.<metric>` — see
 * docs/observability.md.
 */

#ifndef NETPACK_OBS_METRICS_H
#define NETPACK_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/timeseries.h"

namespace netpack {
namespace obs {

namespace detail {
/** Plain bool by design: read per call site without atomic traffic.
 * Configure at startup (env) or before spawning threads. */
extern bool g_metricsEnabled;

/** Mirrors flight::enabled() (obs/flight_recorder.h) so NETPACK_COUNT
 * can feed the flight ring without including that header. */
extern bool g_flightEnabled;
} // namespace detail

/** Whether metric recording is active. */
inline bool
metricsEnabled()
{
    return detail::g_metricsEnabled;
}

/** Turn recording on/off (tests, bench --json). Not thread-safe; call
 * before concurrent recording starts. */
void setMetricsEnabled(bool on);

/** Capture a counter add into the flight-recorder ring (defined in
 * obs/flight_recorder.cc; the macros gate on detail::g_flightEnabled). */
void flightRecordCount(const char *name, std::int64_t n);

/**
 * Per-ToR gauge cutoff: clusters with more racks than this emit only
 * the `.mean`/`.max` PAT-utilization gauges, not one gauge per rack.
 * Env-seeded from NETPACK_PER_RACK_GAUGES (default 64); setter is for
 * tests/tools and is not thread-safe.
 */
int perRackGaugeLimit();
void setPerRackGaugeLimit(int limit);

/**
 * Epoch series decimation: the simulator pushes time-series points on
 * every K-th placement epoch (default 1 = every epoch). Configured by
 * bench --sample-every; not thread-safe, set before the run starts.
 */
int seriesSampleEvery();
void setSeriesSampleEvery(int every);

/** Wall-clock metrics (names ending `_us` or `_seconds`) are excluded
 * from the `--jobs N` bit-identity contract — their bucket placement
 * depends on machine speed, not on the simulated workload. */
inline bool
isWallClockMetric(const std::string &name)
{
    const auto endsWith = [&name](const char *suffix, std::size_t len) {
        return name.size() >= len &&
               name.compare(name.size() - len, len, suffix) == 0;
    };
    return endsWith("_us", 3) || endsWith("_seconds", 8);
}

/** Monotonically increasing named count. */
class Counter
{
  public:
    /** Add @p n (recording gate is the caller's NETPACK_COUNT macro). */
    void add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }

    std::int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    Counter() = default;
    std::atomic<std::int64_t> value_{0};
};

/** Last-write-wins named value. */
class Gauge
{
  public:
    void set(double x) { value_.store(x, std::memory_order_relaxed); }

    double value() const { return value_.load(std::memory_order_relaxed); }

  private:
    friend class Registry;
    Gauge() = default;
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram. Bucket i counts observations x with
 * bounds[i-1] < x <= bounds[i]; one extra overflow bucket counts
 * x > bounds.back(). Bounds are fixed at first registration.
 */
class Histogram
{
  public:
    void record(double x);

    const std::vector<double> &bounds() const { return bounds_; }

    /** Per-bucket counts; size() == bounds().size() + 1 (overflow last). */
    std::vector<std::int64_t> counts() const;

    std::int64_t total() const
    {
        return total_.load(std::memory_order_relaxed);
    }

    double sum() const { return sum_.load(std::memory_order_relaxed); }

  private:
    friend class Registry;
    explicit Histogram(std::vector<double> bounds);

    std::vector<double> bounds_;
    std::vector<std::atomic<std::int64_t>> counts_;
    std::atomic<std::int64_t> total_{0};
    std::atomic<double> sum_{0.0};
};

/** Point-in-time copy of every registered metric. */
struct MetricsSnapshot
{
    struct HistogramData
    {
        std::vector<double> bounds;
        /** bounds.size() + 1 entries; the last is the overflow bucket. */
        std::vector<std::int64_t> counts;
        std::int64_t total = 0;
        double sum = 0.0;
    };

    struct LogHistogramData
    {
        LogHistogramSpec spec;
        std::vector<double> bounds;
        /** bounds.size() + 1 entries: [underflow, ..., overflow]. */
        std::vector<std::int64_t> counts;
        std::int64_t total = 0;
        double sum = 0.0;
        /** Exact extremes; min > max means no observations yet. */
        double observedMin = 0.0;
        double observedMax = 0.0;

        /** Same bounded-relative-error estimate as LogHistogram. */
        double quantile(double q) const
        {
            return logQuantile(spec, bounds, counts, total, observedMin,
                               observedMax, q);
        }
    };

    struct SeriesData
    {
        std::size_t capacity = 0;
        std::uint64_t totalPushed = 0;
        /** Oldest-to-newest, at most capacity entries. */
        std::vector<SeriesPoint> points;
    };

    std::map<std::string, std::int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramData> histograms;
    std::map<std::string, LogHistogramData> logHistograms;
    std::map<std::string, SeriesData> series;
};

/** The process-wide registry. Registration takes a mutex; recording on
 * the returned references is lock-free. */
class Registry
{
  public:
    static Registry &instance();

    /** Find-or-create; the reference stays valid for the process life. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);

    /** Find-or-create; @p bounds must be strictly increasing and are
     * fixed by the first registration (later calls ignore theirs). */
    Histogram &histogram(const std::string &name,
                         const std::vector<double> &bounds);

    /** Find-or-create; the spec is fixed by the first registration. */
    LogHistogram &logHistogram(const std::string &name,
                               const LogHistogramSpec &spec);

    /** Find-or-create; the capacity is fixed by the first registration. */
    TimeSeries &series(const std::string &name, std::size_t capacity);

    MetricsSnapshot snapshot() const;

    /**
     * Fold @p snap into the registry: counter values add, gauges are
     * overwritten, histogram buckets add, series points append in call
     * order. A histogram whose bounds/spec disagree with the registered
     * ones is skipped with a warning AND counted in the
     * `obs.merge_skipped` counter so determinism tests can assert it
     * stays zero. Used to publish run-scoped MetricScope snapshots in a
     * deterministic order after a parallel sweep.
     */
    void merge(const MetricsSnapshot &snap);

    /** Zero every value (and drop series points), keeping registrations
     * (test isolation). */
    void reset();

  private:
    Registry() = default;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::map<std::string, std::unique_ptr<LogHistogram>> logHistograms_;
    std::map<std::string, std::unique_ptr<TimeSeries>> series_;
};

/**
 * Run-scoped metric context: while alive on a thread, every NETPACK_*
 * macro on that thread records into this scope's private storage
 * instead of the process-wide registry, so concurrent experiment runs
 * on a thread pool do not interleave their counters. Scopes nest as a
 * thread-local stack: a scope that dies inside an enclosing scope folds
 * its recordings into the parent; the outermost scope publishes
 * nothing — its owner reads snapshot() and decides (the exec sweep
 * runner merges snapshots into the registry in request order, which
 * keeps gauges and histogram sums bit-identical for any worker count).
 *
 * Not movable: the address is pinned on the thread-local stack. A scope
 * must be created and destroyed on the same thread.
 */
class MetricScope
{
  public:
    MetricScope();
    ~MetricScope();

    MetricScope(const MetricScope &) = delete;
    MetricScope &operator=(const MetricScope &) = delete;

    /** The innermost scope on this thread; nullptr when unscoped. */
    static MetricScope *current();

    /** Everything recorded in this scope (nested scopes included). */
    const MetricsSnapshot &snapshot() const { return local_; }

    /** Recording hooks used by the NETPACK_* macros. */
    void count(const std::string &name, std::int64_t n);
    void gauge(const std::string &name, double x);
    void histogram(const std::string &name,
                   const std::vector<double> &bounds, double x);
    void logHistogram(const std::string &name, const LogHistogramSpec &spec,
                      double x);
    void seriesPoint(const std::string &name, std::size_t capacity,
                     double t, double value);

  private:
    /** Fold a dying child scope's recordings into this one. */
    void merge(const MetricsSnapshot &snap);

    MetricScope *parent_;
    MetricsSnapshot local_;
};

namespace detail {
/** Innermost scope of the calling thread (stack head). */
extern thread_local MetricScope *g_scopeHead;
} // namespace detail

inline MetricScope *
MetricScope::current()
{
    return detail::g_scopeHead;
}

/** Shorthands for Registry::instance().x(). */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
Histogram &histogram(const std::string &name,
                     const std::vector<double> &bounds);
LogHistogram &logHistogram(const std::string &name,
                           const LogHistogramSpec &spec);
TimeSeries &series(const std::string &name,
                   std::size_t capacity = kDefaultSeriesCapacity);
MetricsSnapshot snapshot();

/**
 * Scope-aware recording for dynamically-built metric names (per-rack
 * series and the like). The NETPACK_* macros cache a static reference,
 * so they only fit string literals; these route through the innermost
 * MetricScope when one is active, like the macros do. No-ops when
 * metrics are disabled.
 */
void recordCount(const std::string &name, std::int64_t n = 1);
void recordGauge(const std::string &name, double value);
void recordHistogram(const std::string &name,
                     const std::vector<double> &bounds, double value);
/** Record into a log-bucketed quantile histogram (latency metrics; use
 * kLatencySpecUs for `*_us` names). */
void recordLogHistogram(const std::string &name,
                        const LogHistogramSpec &spec, double value);
/** Append a (t, value) sample to a fixed-capacity time-series ring. */
void recordSeriesPoint(const std::string &name, double t, double value,
                       std::size_t capacity = kDefaultSeriesCapacity);

class JsonWriter;

/** Write @p snap as JSON to @p path (the NETPACK_METRICS exit format). */
void writeMetricsFile(const std::string &path, const MetricsSnapshot &snap);

/** Emit @p snap as one JSON object into an in-flight document. */
void writeSnapshotJson(JsonWriter &json, const MetricsSnapshot &snap);

/** Power-of-two bucket bounds 1, 2, 4, ... 1024 (iteration counts,
 * component sizes). */
extern const std::vector<double> kPow2Buckets;

} // namespace obs
} // namespace netpack

/** Increment counter @p name by @p n; single-branch no-op when disabled.
 * Inside a MetricScope the add lands in the scope, not the registry.
 * When the flight recorder is armed the add is also captured in its
 * in-memory event ring (obs/flight_recorder.h). */
#define NETPACK_COUNT(name, n)                                              \
    do {                                                                    \
        if (::netpack::obs::metricsEnabled()) {                             \
            if (::netpack::obs::MetricScope *netpack_obs_s_ =               \
                    ::netpack::obs::MetricScope::current()) {               \
                netpack_obs_s_->count(name, n);                             \
            } else {                                                        \
                static ::netpack::obs::Counter &netpack_obs_c_ =            \
                    ::netpack::obs::counter(name);                          \
                netpack_obs_c_.add(n);                                      \
            }                                                               \
            if (::netpack::obs::detail::g_flightEnabled)                    \
                ::netpack::obs::flightRecordCount(name, n);                 \
        }                                                                   \
    } while (0)

/** Set gauge @p name to @p x; single-branch no-op when disabled. */
#define NETPACK_GAUGE(name, x)                                              \
    do {                                                                    \
        if (::netpack::obs::metricsEnabled()) {                             \
            if (::netpack::obs::MetricScope *netpack_obs_s_ =               \
                    ::netpack::obs::MetricScope::current()) {               \
                netpack_obs_s_->gauge(name, static_cast<double>(x));        \
            } else {                                                        \
                static ::netpack::obs::Gauge &netpack_obs_g_ =              \
                    ::netpack::obs::gauge(name);                            \
                netpack_obs_g_.set(static_cast<double>(x));                 \
            }                                                               \
        }                                                                   \
    } while (0)

/** Record @p x into histogram @p name with @p bounds (first call wins). */
#define NETPACK_HISTOGRAM(name, bounds, x)                                  \
    do {                                                                    \
        if (::netpack::obs::metricsEnabled()) {                             \
            if (::netpack::obs::MetricScope *netpack_obs_s_ =               \
                    ::netpack::obs::MetricScope::current()) {               \
                netpack_obs_s_->histogram(name, bounds,                     \
                                          static_cast<double>(x));          \
            } else {                                                        \
                static ::netpack::obs::Histogram &netpack_obs_h_ =          \
                    ::netpack::obs::histogram(name, bounds);                \
                netpack_obs_h_.record(static_cast<double>(x));              \
            }                                                               \
        }                                                                   \
    } while (0)

#endif // NETPACK_OBS_METRICS_H
