/**
 * @file
 * Machine-readable per-run manifest: everything needed to interpret a
 * bench run after the fact — the cluster configurations used, the trace
 * seeds, per-run RunMetrics summaries, the emitted result tables, and a
 * full snapshot of the obs metrics registry. The bench harness
 * (bench_util) populates one process-wide manifest and writes it when
 * --json <path> is passed, so every figure bench leaves a BENCH_*.json
 * trail. Schema: docs/observability.md.
 */

#ifndef NETPACK_OBS_RUN_MANIFEST_H
#define NETPACK_OBS_RUN_MANIFEST_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "sim/metrics.h"
#include "topology/cluster.h"

namespace netpack {
namespace obs {

/** Flat summary of one RunMetrics (full per-job records stay in-process). */
struct RunSummary
{
    /** What produced this run, e.g. "Philly|simulator|NetPack|seed0". */
    std::string label;
    std::size_t jobs = 0;
    double avgJct = 0.0;
    double p50Jct = 0.0;
    double p99Jct = 0.0;
    double avgDe = 0.0;
    double makespan = 0.0;
    double placementSeconds = 0.0;
    long long placementRounds = 0;
    double avgGpuUtilization = 0.0;
    double avgFragmentation = 0.0;
    long long jobRestarts = 0;

    static RunSummary fromMetrics(const std::string &label,
                                  const RunMetrics &metrics);
};

/** Mean / spread / confidence summary of one metric across seeds. */
struct AggregateStat
{
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    /** Half-width of the two-sided 95% CI for the mean (Student-t). */
    double ci95 = 0.0;

    static AggregateStat fromStats(const RunningStats &stats);
};

/**
 * Cross-seed aggregate for one sweep cell (e.g. "Real|simulator|
 * NetPack"): the multi-seed statistics the exec sweep runner computes
 * over that cell's runs.
 */
struct AggregateSummary
{
    std::string cell;
    AggregateStat avgJct;
    AggregateStat avgDe;
    AggregateStat makespan;
    AggregateStat avgGpuUtilization;
};

/**
 * Journal activity of the process (schema /3): what the run recorded
 * via netpack::journal and what any in-process replay verification
 * found. Zero-valued and disabled when --journal was not passed.
 */
struct JournalSummary
{
    /** Whether journal recording was enabled this run. */
    bool enabled = false;
    /** Directory the per-run journals were written to. */
    std::string directory;
    /** Simulated seconds between snapshots (0 = no snapshots). */
    double snapshotEvery = 0.0;
    /** Event lines written across all journals (prefixes included). */
    std::uint64_t eventsWritten = 0;
    /** Snapshot events among them. */
    std::uint64_t snapshotsWritten = 0;
    /** Runs recorded (fresh or resumed). */
    std::uint64_t runsRecorded = 0;
    /** Runs restored from a snapshot and continued. */
    std::uint64_t runsResumed = 0;
    /** Runs whose complete journal was reused without re-running. */
    std::uint64_t runsReused = 0;
    /** Divergences found by in-process replay verification. */
    std::uint64_t replayDivergences = 0;
};

/** Accumulates a process's run description; written as one JSON file. */
struct RunManifest
{
    /** Manifest schema identifier (bump on breaking changes). */
    std::string schema = "netpack.run_manifest/4";
    /** Bench executable name (argv[0] basename). */
    std::string bench;
    /** Human title from the bench banner. */
    std::string title;
    /** Command-line arguments (argv[1..]). */
    std::vector<std::string> args;
    /** Cluster configurations used, keyed by a caller-chosen name. */
    std::vector<std::pair<std::string, ClusterConfig>> clusters;
    /** Trace seeds consumed, in first-use order. */
    std::vector<std::uint64_t> seeds;
    /** One summary per simulated run. */
    std::vector<RunSummary> runs;
    /** Per-cell multi-seed aggregates (empty for single-run benches). */
    std::vector<AggregateSummary> aggregates;
    /** Every table the bench emitted. */
    std::vector<Table> tables;
    /** Journal recording/replay activity (schema /3). */
    JournalSummary journal;

    /** Record a cluster config once per name (later calls are no-ops). */
    void addCluster(const std::string &name, const ClusterConfig &config);

    /** Record a seed (duplicates are dropped, order preserved). */
    void addSeed(std::uint64_t seed);

    /** Record one run's metrics under @p label. */
    void addRun(const std::string &label, const RunMetrics &metrics);

    /** Record one cell's cross-seed aggregate (replaces same-cell
     * entries so a re-run bench does not duplicate). */
    void addAggregate(const std::string &cell, const RunningStats &avg_jct,
                      const RunningStats &avg_de,
                      const RunningStats &makespan,
                      const RunningStats &gpu_utilization);
};

/**
 * Write @p manifest to @p path as JSON, embedding the current metrics
 * registry snapshot and the observability-relevant environment
 * (NETPACK_TRACE, NETPACK_METRICS, NETPACK_LOG_LEVEL,
 * NETPACK_VERIFY_INCREMENTAL).
 */
void writeRunManifest(const std::string &path, const RunManifest &manifest);

} // namespace obs
} // namespace netpack

#endif // NETPACK_OBS_RUN_MANIFEST_H
