#include "obs/flight_recorder.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "common/log.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace netpack {
namespace obs {

namespace detail {
bool g_flightEnabled = false; // armed by flight::configure (env or call)
} // namespace detail

namespace {

int
nextFlightTid()
{
    static std::atomic<int> next{1};
    return next.fetch_add(1);
}

struct FlightEvent
{
    const char *name = nullptr;
    double tsUs = 0.0;
    double durUs = 0.0; // spans only
    std::int64_t value = 0; // counters only
    bool isSpan = false;
    int tid = 0;
};

/** One thread's bounded event ring. The mutex is uncontended in steady
 * state (only the owning thread records); dump/clear take it briefly. */
struct Ring
{
    mutable std::mutex mutex;
    std::vector<FlightEvent> buf;
    std::size_t head = 0;
    int tid;

    Ring()
        : tid(nextFlightTid())
    {
        buf.reserve(flight::kRingCapacity);
    }

    void push(FlightEvent event)
    {
        event.tid = tid;
        const std::lock_guard<std::mutex> lock(mutex);
        if (buf.size() < flight::kRingCapacity) {
            buf.push_back(event);
        } else {
            buf[head] = event;
            head = (head + 1) % flight::kRingCapacity;
        }
    }

    void collect(std::vector<FlightEvent> &out) const
    {
        const std::lock_guard<std::mutex> lock(mutex);
        for (std::size_t i = 0; i < buf.size(); ++i)
            out.push_back(buf[(head + i) % buf.size()]);
    }

    void clear()
    {
        const std::lock_guard<std::mutex> lock(mutex);
        buf.clear();
        head = 0;
    }
};

struct Global
{
    std::mutex mutex;
    std::vector<std::shared_ptr<Ring>> rings;
    std::string path;
    bool hooksInstalled = false;
};

Global &
global()
{
    static Global g;
    return g;
}

Ring &
threadRing()
{
    thread_local const std::shared_ptr<Ring> ring = [] {
        auto created = std::make_shared<Ring>();
        Global &g = global();
        const std::lock_guard<std::mutex> lock(g.mutex);
        g.rings.push_back(created);
        return created;
    }();
    return *ring;
}

double g_sloBatchUs = [] {
    const char *env = std::getenv("NETPACK_SLO_BATCH_US");
    if (env == nullptr || env[0] == '\0')
        return 0.0;
    char *end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end == env || *end != '\0' || parsed < 0.0) {
        NETPACK_LOG(Warn, "ignoring malformed NETPACK_SLO_BATCH_US='"
                              << env << "'");
        return 0.0;
    }
    return parsed;
}();

void
crashDump(int sig)
{
    // Not async-signal-safe (locks, streams) — a best-effort last act,
    // which is the accepted trade for flight recorders: the process is
    // dying anyway, and a torn dump beats no dump.
    std::signal(sig, SIG_DFL); // no recursion if the dump itself faults
    flight::dump("signal:" + std::to_string(sig));
    std::raise(sig);
}

std::terminate_handler g_previousTerminate = nullptr;

[[noreturn]] void
terminateDump()
{
    flight::dump("terminate");
    if (g_previousTerminate != nullptr)
        g_previousTerminate();
    std::abort();
}

void
installHooksLocked(Global &g)
{
    if (g.hooksInstalled)
        return;
    g.hooksInstalled = true;
    for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT})
        std::signal(sig, crashDump);
    g_previousTerminate = std::set_terminate(terminateDump);
}

/** Arms NETPACK_FLIGHT_RECORDER at static initialization so crash
 * hooks cover the whole process lifetime. */
struct FlightInit
{
    FlightInit()
    {
        const char *env = std::getenv("NETPACK_FLIGHT_RECORDER");
        if (env != nullptr && env[0] != '\0')
            flight::configure(env);
    }
};

FlightInit g_flightInit;

} // namespace

namespace flight {

void
configure(const std::string &path)
{
    Global &g = global();
    const std::lock_guard<std::mutex> lock(g.mutex);
    g.path = path;
    detail::g_flightEnabled = !path.empty();
    if (detail::g_flightEnabled)
        installHooksLocked(g);
}

std::string
dumpPath()
{
    Global &g = global();
    const std::lock_guard<std::mutex> lock(g.mutex);
    return g.path;
}

std::size_t
dump(const std::string &reason)
{
    Global &g = global();
    std::string path;
    std::vector<std::shared_ptr<Ring>> rings;
    {
        const std::lock_guard<std::mutex> lock(g.mutex);
        path = g.path;
        rings = g.rings;
    }
    if (path.empty())
        return 0;
    std::vector<FlightEvent> events;
    for (const auto &ring : rings)
        ring->collect(events);
    std::stable_sort(events.begin(), events.end(),
                     [](const FlightEvent &a, const FlightEvent &b) {
                         return a.tsUs < b.tsUs;
                     });
    std::ofstream out(path);
    if (!out) {
        NETPACK_LOG(Error,
                    "cannot write flight-recorder dump '" << path << "'");
        return 0;
    }
    JsonWriter json(out, /*indent=*/0);
    json.beginObject();
    json.kv("displayTimeUnit", "ms");
    json.key("traceEvents");
    json.beginArray();
    // Instant marker carrying the dump reason.
    json.beginObject();
    json.kv("name", "flight.dump");
    json.kv("cat", "netpack");
    json.kv("ph", "i");
    json.kv("ts", traceNowMicros());
    json.kv("pid", 1);
    json.kv("tid", 0);
    json.kv("s", "g");
    json.key("args");
    json.beginObject();
    json.kv("reason", reason);
    json.endObject();
    json.endObject();
    for (const FlightEvent &event : events) {
        json.beginObject();
        json.kv("name", event.name);
        json.kv("cat", "netpack");
        json.kv("ph", event.isSpan ? "X" : "C");
        json.kv("ts", event.tsUs);
        if (event.isSpan)
            json.kv("dur", event.durUs);
        json.kv("pid", 1);
        json.kv("tid", event.tid);
        if (!event.isSpan) {
            json.key("args");
            json.beginObject();
            json.kv("value", event.value);
            json.endObject();
        }
        json.endObject();
    }
    json.endArray();
    json.endObject();
    NETPACK_LOG(Info, "flight recorder dumped " << events.size()
                                                << " events to '" << path
                                                << "' (" << reason << ")");
    return events.size();
}

void
clear()
{
    Global &g = global();
    std::vector<std::shared_ptr<Ring>> rings;
    {
        const std::lock_guard<std::mutex> lock(g.mutex);
        rings = g.rings;
    }
    for (const auto &ring : rings)
        ring->clear();
}

std::size_t
bufferedEvents()
{
    Global &g = global();
    std::vector<std::shared_ptr<Ring>> rings;
    {
        const std::lock_guard<std::mutex> lock(g.mutex);
        rings = g.rings;
    }
    std::size_t total = 0;
    for (const auto &ring : rings) {
        const std::lock_guard<std::mutex> lock(ring->mutex);
        total += ring->buf.size();
    }
    return total;
}

double
sloBatchUs()
{
    return g_sloBatchUs;
}

void
setSloBatchUs(double us)
{
    g_sloBatchUs = us < 0.0 ? 0.0 : us;
}

bool
checkSlo(const char *name, double us)
{
    const double threshold = sloBatchUs();
    if (threshold <= 0.0 || us <= threshold)
        return false;
    NETPACK_COUNT("obs.slo_breaches", 1);
    if (enabled()) {
        // At most one dump per second: a sustained breach storm should
        // not turn the recorder into a disk-bandwidth problem.
        static std::atomic<std::int64_t> lastDumpMs{-1000000};
        const std::int64_t nowMs =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count();
        std::int64_t last = lastDumpMs.load(std::memory_order_relaxed);
        if (nowMs - last >= 1000 &&
            lastDumpMs.compare_exchange_strong(last, nowMs,
                                               std::memory_order_relaxed))
            dump(std::string("slo:") + name);
    }
    return true;
}

} // namespace flight

void
flightRecordSpan(const char *name, double tsUs, double durUs)
{
    FlightEvent event;
    event.name = name;
    event.tsUs = tsUs;
    event.durUs = durUs;
    event.isSpan = true;
    threadRing().push(event);
}

void
flightRecordCount(const char *name, std::int64_t n)
{
    FlightEvent event;
    event.name = name;
    event.tsUs = traceNowMicros();
    event.value = n;
    event.isSpan = false;
    threadRing().push(event);
}

} // namespace obs
} // namespace netpack
