#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "common/log.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"

namespace netpack {
namespace obs {

namespace detail {

bool g_traceEnabled = [] {
    const char *path = std::getenv("NETPACK_TRACE");
    return path != nullptr && path[0] != '\0';
}();

} // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/** Microseconds since the tracer's first use. */
double
nowMicros()
{
    static const Clock::time_point epoch = Clock::now();
    return std::chrono::duration<double, std::micro>(Clock::now() - epoch)
        .count();
}

int
threadId()
{
    static std::atomic<int> next{1};
    thread_local const int id = next.fetch_add(1);
    return id;
}

/** Buffered span store; flushes the configured file at destruction. */
class TraceWriter
{
  public:
    struct Arg
    {
        const char *key = nullptr;
        bool isInt = false;
        std::int64_t i = 0;
        double d = 0.0;
    };

    static TraceWriter &instance()
    {
        static TraceWriter writer;
        return writer;
    }

    void setPath(std::string path)
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        path_ = std::move(path);
    }

    void record(const char *name, double ts_us, double dur_us, int tid,
                std::vector<Arg> args)
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        events_.push_back(Event{name, ts_us, dur_us, tid, std::move(args)});
    }

    void clear()
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        events_.clear();
    }

    std::size_t count() const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        return events_.size();
    }

    void flush()
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (path_.empty())
            return;
        std::ofstream out(path_);
        if (!out) {
            NETPACK_LOG(Error,
                        "cannot write trace file '" << path_ << "'");
            return;
        }
        // Compact output: trace files hold many events and viewers do
        // not care about whitespace.
        JsonWriter json(out, /*indent=*/0);
        json.beginObject();
        json.kv("displayTimeUnit", "ms");
        json.key("traceEvents");
        json.beginArray();
        for (const Event &event : events_) {
            json.beginObject();
            json.kv("name", event.name);
            json.kv("cat", "netpack");
            json.kv("ph", "X");
            json.kv("ts", event.tsUs);
            json.kv("dur", event.durUs);
            json.kv("pid", 1);
            json.kv("tid", event.tid);
            if (!event.args.empty()) {
                json.key("args");
                json.beginObject();
                for (const Arg &arg : event.args) {
                    if (arg.isInt)
                        json.kv(arg.key, arg.i);
                    else
                        json.kv(arg.key, arg.d);
                }
                json.endObject();
            }
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }

    ~TraceWriter() { flush(); }

  private:
    struct Event
    {
        const char *name;
        double tsUs;
        double durUs;
        int tid;
        std::vector<Arg> args;
    };

    TraceWriter()
    {
        const char *env = std::getenv("NETPACK_TRACE");
        if (env != nullptr && env[0] != '\0')
            path_ = env;
    }

    mutable std::mutex mutex_;
    std::string path_;
    std::vector<Event> events_;
};

} // namespace

double
traceNowMicros()
{
    return nowMicros();
}

void
configureTrace(const std::string &path)
{
    TraceWriter::instance().setPath(path);
    detail::g_traceEnabled = !path.empty();
}

void
flushTrace()
{
    TraceWriter::instance().flush();
}

void
clearTrace()
{
    TraceWriter::instance().clear();
}

std::size_t
traceEventCount()
{
    return TraceWriter::instance().count();
}

void
ScopedSpan::begin(const char *name)
{
    name_ = name;
    startUs_ = nowMicros();
    active_ = true;
}

void
ScopedSpan::end()
{
    const double end_us = nowMicros();
    if (traceEnabled()) {
        std::vector<TraceWriter::Arg> args;
        args.reserve(args_.size());
        for (const SpanArg &arg : args_)
            args.push_back({arg.key, arg.isInt, arg.i, arg.d});
        TraceWriter::instance().record(name_, startUs_, end_us - startUs_,
                                       threadId(), std::move(args));
    }
    if (detail::g_flightEnabled)
        flightRecordSpan(name_, startUs_, end_us - startUs_);
}

void
ScopedSpan::arg(const char *key, std::int64_t value)
{
    if (!active_)
        return;
    args_.push_back({key, true, value, 0.0});
}

void
ScopedSpan::arg(const char *key, double value)
{
    if (!active_)
        return;
    args_.push_back({key, false, 0, value});
}

} // namespace obs
} // namespace netpack
