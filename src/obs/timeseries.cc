#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace netpack {
namespace obs {

const LogHistogramSpec kLatencySpecUs = {1.0, 1e9, 0.05};

std::vector<double>
logBucketBounds(const LogHistogramSpec &spec)
{
    NETPACK_REQUIRE(spec.minValue > 0.0,
                    "log histogram minValue must be positive");
    NETPACK_REQUIRE(spec.maxValue > spec.minValue,
                    "log histogram maxValue must exceed minValue");
    NETPACK_REQUIRE(spec.relError > 0.0 && spec.relError < 1.0,
                    "log histogram relError must be in (0, 1)");
    const double growth = (1.0 + spec.relError) * (1.0 + spec.relError);
    std::vector<double> bounds;
    bounds.push_back(spec.minValue);
    double bound = spec.minValue;
    while (bound < spec.maxValue) {
        bound *= growth;
        bounds.push_back(bound);
    }
    return bounds;
}

namespace {

/** Representative value of bucket @p index in the lower_bound layout:
 * underflow -> minValue, interior -> geometric midpoint, overflow ->
 * the top resolvable bound. */
double
bucketEstimate(const std::vector<double> &bounds, std::size_t index)
{
    if (index == 0)
        return bounds.front();
    if (index >= bounds.size())
        return bounds.back();
    return std::sqrt(bounds[index - 1] * bounds[index]);
}

} // namespace

double
logQuantile(const LogHistogramSpec &spec, const std::vector<double> &bounds,
            const std::vector<std::int64_t> &counts, std::int64_t total,
            double observedMin, double observedMax, double q)
{
    (void)spec;
    if (total <= 0)
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    // Nearest-rank: the smallest bucket whose cumulative count reaches
    // rank ceil(q * total) holds the sample the quantile names.
    std::int64_t rank = static_cast<std::int64_t>(
        std::ceil(q * static_cast<double>(total)));
    rank = std::min(total, std::max<std::int64_t>(1, rank));
    // The extreme ranks are tracked exactly (DDSketch-style): the
    // smallest and largest samples need no bucket estimate at all.
    const bool tracked = observedMin <= observedMax;
    if (tracked && rank == 1)
        return observedMin;
    if (tracked && rank == total)
        return observedMax;
    std::int64_t cumulative = 0;
    std::size_t bucket = counts.size() - 1;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        cumulative += counts[i];
        if (cumulative >= rank) {
            bucket = i;
            break;
        }
    }
    double estimate = bucketEstimate(bounds, bucket);
    // Exact min/max tracking lets the tails beat the bucket bound.
    if (observedMin <= observedMax) {
        estimate = std::max(estimate, observedMin);
        estimate = std::min(estimate, observedMax);
    }
    return estimate;
}

LogHistogram::LogHistogram(const LogHistogramSpec &spec)
    : spec_(spec), bounds_(logBucketBounds(spec)),
      counts_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{
}

void
LogHistogram::record(double x)
{
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
    const auto bucket =
        static_cast<std::size_t>(std::distance(bounds_.begin(), it));
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(x, std::memory_order_relaxed);
    double seen = min_.load(std::memory_order_relaxed);
    while (x < seen &&
           !min_.compare_exchange_weak(seen, x, std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (x > seen &&
           !max_.compare_exchange_weak(seen, x, std::memory_order_relaxed)) {
    }
}

double
LogHistogram::quantile(double q) const
{
    return logQuantile(spec_, bounds_, counts(), total(), observedMin(),
                       observedMax(), q);
}

std::vector<std::int64_t>
LogHistogram::counts() const
{
    std::vector<std::int64_t> out;
    out.reserve(counts_.size());
    for (const auto &c : counts_)
        out.push_back(c.load(std::memory_order_relaxed));
    return out;
}

TimeSeries::TimeSeries(std::size_t capacity)
    : capacity_(capacity)
{
    NETPACK_REQUIRE(capacity_ > 0, "time series capacity must be positive");
    ring_.reserve(capacity_);
}

void
TimeSeries::push(double t, double value)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.size() < capacity_) {
        ring_.push_back({t, value});
    } else {
        ring_[head_] = {t, value};
        head_ = (head_ + 1) % capacity_;
    }
    ++totalPushed_;
}

std::vector<SeriesPoint>
TimeSeries::points() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SeriesPoint> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

std::uint64_t
TimeSeries::totalPushed() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return totalPushed_;
}

} // namespace obs
} // namespace netpack
