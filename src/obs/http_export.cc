#include "obs/http_export.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/check.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"

namespace netpack {
namespace obs {

namespace {

void
sendAll(int fd, const std::string &payload)
{
    std::size_t sent = 0;
    while (sent < payload.size()) {
        const ssize_t n =
            ::send(fd, payload.data() + sent, payload.size() - sent, 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return; // client went away; nothing to clean up
        }
        sent += static_cast<std::size_t>(n);
    }
}

std::string
httpResponse(const char *status, const char *contentType,
             const std::string &body)
{
    std::string out = "HTTP/1.1 ";
    out += status;
    out += "\r\nContent-Type: ";
    out += contentType;
    out += "\r\nContent-Length: ";
    out += std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

} // namespace

MetricsHttpServer::MetricsHttpServer(std::uint16_t port)
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    NETPACK_REQUIRE(listenFd_ >= 0, "metrics server: socket() failed");
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr), sizeof addr) !=
            0 ||
        ::listen(listenFd_, 16) != 0) {
        const int savedErrno = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        throw ConfigError("metrics server: cannot listen on port " +
                          std::to_string(port) + ": " +
                          std::strerror(savedErrno));
    }
    socklen_t len = sizeof addr;
    NETPACK_REQUIRE(::getsockname(listenFd_,
                                  reinterpret_cast<sockaddr *>(&addr),
                                  &len) == 0,
                    "metrics server: getsockname() failed");
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { serveLoop(); });
}

MetricsHttpServer::~MetricsHttpServer()
{
    stop_.store(true, std::memory_order_relaxed);
    if (thread_.joinable())
        thread_.join();
    if (listenFd_ >= 0)
        ::close(listenFd_);
}

void
MetricsHttpServer::serveLoop()
{
    while (!stop_.load(std::memory_order_relaxed)) {
        pollfd pfd;
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        pfd.revents = 0;
        // Short timeout so the stop flag is honoured promptly.
        const int ready = ::poll(&pfd, 1, 50);
        if (ready <= 0)
            continue;
        const int client = ::accept(listenFd_, nullptr, nullptr);
        if (client < 0)
            continue;
        handleConnection(client);
        ::close(client);
    }
}

void
MetricsHttpServer::handleConnection(int client)
{
    // One read is enough for the GET request lines we serve; anything
    // longer is from a client we do not cater to.
    char buf[2048];
    ssize_t n;
    do {
        n = ::recv(client, buf, sizeof buf - 1, 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0)
        return;
    buf[n] = '\0';
    const std::string request(buf);
    const auto lineEnd = request.find("\r\n");
    const std::string requestLine =
        lineEnd == std::string::npos ? request : request.substr(0, lineEnd);

    if (requestLine.compare(0, 13, "GET /metrics ") == 0 ||
        requestLine == "GET /metrics") {
        NETPACK_COUNT("obs.scrapes", 1);
        sendAll(client, httpResponse("200 OK", kOpenMetricsContentType,
                                     renderOpenMetrics()));
    } else if (requestLine.compare(0, 13, "GET /healthz ") == 0) {
        sendAll(client, httpResponse("200 OK", "text/plain", "ok\n"));
    } else {
        sendAll(client,
                httpResponse("404 Not Found", "text/plain", "not found\n"));
    }
}

MetricsHttpServer *
ensureMetricsServer(int port)
{
    static std::unique_ptr<MetricsHttpServer> server;
    if (server)
        return server.get();
    if (port < 0) {
        const char *env = std::getenv("NETPACK_METRICS_PORT");
        if (env == nullptr || env[0] == '\0')
            return nullptr;
        char *end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end == env || *end != '\0' || parsed < 0 || parsed > 65535)
            throw ConfigError(
                std::string("malformed NETPACK_METRICS_PORT='") + env +
                "' (want 0..65535)");
        port = static_cast<int>(parsed);
    }
    NETPACK_REQUIRE(port <= 65535, "metrics port out of range");
    setMetricsEnabled(true);
    server.reset(new MetricsHttpServer(static_cast<std::uint16_t>(port)));
    NETPACK_LOG(Info, "metrics scrape endpoint on http://127.0.0.1:"
                          << server->port() << "/metrics");
    return server.get();
}

} // namespace obs
} // namespace netpack
