#include "obs/http_export.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/check.h"
#include "common/log.h"
#include "common/net_io.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"

namespace netpack {
namespace obs {

namespace {

std::string
httpResponse(const char *status, const char *contentType,
             const std::string &body)
{
    std::string out = "HTTP/1.1 ";
    out += status;
    out += "\r\nContent-Type: ";
    out += contentType;
    out += "\r\nContent-Length: ";
    out += std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

} // namespace

MetricsHttpServer::MetricsHttpServer(std::uint16_t port)
{
    listenFd_ = listenLoopback(port, 16, "metrics server", port_);
    thread_ = std::thread([this] { serveLoop(); });
}

MetricsHttpServer::~MetricsHttpServer()
{
    stop_.store(true, std::memory_order_relaxed);
    if (thread_.joinable())
        thread_.join();
    if (listenFd_ >= 0)
        ::close(listenFd_);
}

void
MetricsHttpServer::serveLoop()
{
    while (!stop_.load(std::memory_order_relaxed)) {
        pollfd pfd;
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        pfd.revents = 0;
        // Short timeout so the stop flag is honoured promptly.
        const int ready = ::poll(&pfd, 1, 50);
        if (ready <= 0)
            continue; // poll timeout, EINTR, and errors all just retry
        int client;
        do {
            client = ::accept(listenFd_, nullptr, nullptr);
        } while (client < 0 && errno == EINTR);
        if (client < 0)
            continue;
        handleConnection(client);
        ::close(client);
    }
}

void
MetricsHttpServer::handleConnection(int client)
{
    // One read is enough for the GET request lines we serve; anything
    // longer is from a client we do not cater to.
    char buf[2048];
    const long n = recvSome(client, buf, sizeof buf - 1);
    if (n <= 0)
        return;
    buf[n] = '\0';
    const std::string request(buf);
    const auto lineEnd = request.find("\r\n");
    const std::string requestLine =
        lineEnd == std::string::npos ? request : request.substr(0, lineEnd);

    if (requestLine.compare(0, 13, "GET /metrics ") == 0 ||
        requestLine == "GET /metrics") {
        NETPACK_COUNT("obs.scrapes", 1);
        sendAll(client, httpResponse("200 OK", kOpenMetricsContentType,
                                     renderOpenMetrics()));
    } else if (requestLine.compare(0, 13, "GET /healthz ") == 0) {
        sendAll(client, httpResponse("200 OK", "text/plain", "ok\n"));
    } else {
        sendAll(client,
                httpResponse("404 Not Found", "text/plain", "not found\n"));
    }
}

MetricsHttpServer *
ensureMetricsServer(int port)
{
    static std::unique_ptr<MetricsHttpServer> server;
    if (server)
        return server.get();
    if (port < 0) {
        const char *env = std::getenv("NETPACK_METRICS_PORT");
        if (env == nullptr || env[0] == '\0')
            return nullptr;
        char *end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end == env || *end != '\0' || parsed < 0 || parsed > 65535)
            throw ConfigError(
                std::string("malformed NETPACK_METRICS_PORT='") + env +
                "' (want 0..65535)");
        port = static_cast<int>(parsed);
    }
    NETPACK_REQUIRE(port <= 65535, "metrics port out of range");
    setMetricsEnabled(true);
    server.reset(new MetricsHttpServer(static_cast<std::uint16_t>(port)));
    NETPACK_LOG(Info, "metrics scrape endpoint on http://127.0.0.1:"
                          << server->port() << "/metrics");
    return server.get();
}

} // namespace obs
} // namespace netpack
