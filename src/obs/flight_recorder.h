/**
 * @file
 * Flight recorder: a bounded per-thread ring of the most recent span and
 * counter events, kept in memory at all times and dumped as Chrome
 * trace-event JSON (Perfetto-loadable) when something goes wrong — a
 * fatal signal, an unhandled exception (std::terminate), or an SLO
 * breach — so tail-latency anomalies in hour-long runs are diagnosable
 * after the fact without paying for full tracing.
 *
 * Arm it with NETPACK_FLIGHT_RECORDER=<file> (or flight::configure).
 * While armed, every ScopedSpan end is captured (independently of
 * NETPACK_TRACE) and every NETPACK_COUNT add is captured when metrics
 * are enabled. Each thread owns a fixed 4096-event ring guarded by its
 * own uncontended mutex; recording never blocks on other threads.
 *
 * SLO breaches: NETPACK_SLO_BATCH_US=<µs> sets a placement-batch
 * latency threshold. The simulator calls flight::checkSlo with each
 * batch's wall-clock latency; a breach bumps `obs.slo_breaches` and
 * triggers a rate-limited dump. Note: breach counts depend on machine
 * speed, so arming an SLO threshold voids the `--jobs N` manifest
 * bit-identity contract — it is a diagnostic mode.
 */

#ifndef NETPACK_OBS_FLIGHT_RECORDER_H
#define NETPACK_OBS_FLIGHT_RECORDER_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace netpack {
namespace obs {

namespace detail {
/** Plain bool by design; see metrics.h. Mirrored there and in trace.h
 * so the capture hooks stay a single predicted branch. */
extern bool g_flightEnabled;
} // namespace detail

namespace flight {

/** Whether the flight recorder is armed. */
inline bool
enabled()
{
    return detail::g_flightEnabled;
}

/** Events each thread's ring retains (oldest overwritten first). */
constexpr std::size_t kRingCapacity = 4096;

/** Arm the recorder: dumps go to @p path; installs the crash (signal)
 * and terminate hooks on first arming. An empty path disarms capture
 * (buffered events are kept). Not thread-safe; configure at startup. */
void configure(const std::string &path);

/** The configured dump file path (empty when disarmed). */
std::string dumpPath();

/** Write every buffered event to the configured path as Chrome
 * trace-event JSON, tagged with @p reason. Returns the number of
 * events written, 0 when disarmed or the file cannot be written. */
std::size_t dump(const std::string &reason);

/** Drop all buffered events (test isolation). */
void clear();

/** Buffered events across all thread rings (diagnostics/tests). */
std::size_t bufferedEvents();

/** Placement-batch latency SLO threshold in µs; 0 disables breach
 * checks. Env-seeded from NETPACK_SLO_BATCH_US. */
double sloBatchUs();
void setSloBatchUs(double us);

/** Report a measured latency against the SLO threshold. On breach:
 * bumps `obs.slo_breaches`, writes a rate-limited dump (at most one
 * per second) tagged `slo:<name>`, and returns true. */
bool checkSlo(const char *name, double us);

} // namespace flight

/** Capture hooks used by ScopedSpan (trace.cc) and NETPACK_COUNT. */
void flightRecordSpan(const char *name, double tsUs, double durUs);
void flightRecordCount(const char *name, std::int64_t n);

} // namespace obs
} // namespace netpack

#endif // NETPACK_OBS_FLIGHT_RECORDER_H
