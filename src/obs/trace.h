/**
 * @file
 * RAII scoped-span tracer emitting Chrome trace-event JSON, loadable in
 * Perfetto (ui.perfetto.dev) or chrome://tracing. Spans buffer in memory
 * and flush to the file named by the NETPACK_TRACE environment variable
 * at process exit (or on an explicit flushTrace()).
 *
 * Zero-overhead when disabled: the span constructor reads one plain
 * bool and returns; no clock read, no allocation, no lock.
 *
 *   {
 *       NETPACK_SPAN(span, "placement.batch");
 *       span.arg("jobs", batch.size());
 *       ... work ...
 *   } // span records its duration here
 *
 * Span and arg names must be string literals (or otherwise outlive the
 * process): the tracer stores the pointers, not copies.
 */

#ifndef NETPACK_OBS_TRACE_H
#define NETPACK_OBS_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace netpack {
namespace obs {

namespace detail {
/** Plain bool by design; see metrics.h. */
extern bool g_traceEnabled;
/** Armed flight recorder (obs/flight_recorder.h); spans are captured
 * into its ring even when full tracing is off. */
extern bool g_flightEnabled;
} // namespace detail

/** Whether span recording is active. */
inline bool
traceEnabled()
{
    return detail::g_traceEnabled;
}

/** Microseconds on the tracer's monotonic clock (first-use epoch);
 * shared with the flight recorder so both timelines align. */
double traceNowMicros();

/** Route spans to @p path and enable tracing (tests, tools). Pass an
 * empty path to disable. Buffered events are kept either way. */
void configureTrace(const std::string &path);

/** Write all buffered events to the configured file now. Called
 * automatically at process exit; idempotent (rewrites the full file). */
void flushTrace();

/** Drop all buffered events (test isolation). */
void clearTrace();

/** Number of buffered events (diagnostics/tests). */
std::size_t traceEventCount();

/** One timed scope; emitted as a Chrome "complete" ("ph":"X") event. */
class ScopedSpan
{
  public:
    /** @param name event name; must be a string literal */
    explicit ScopedSpan(const char *name)
    {
        if (traceEnabled() || detail::g_flightEnabled)
            begin(name);
    }

    ~ScopedSpan()
    {
        if (active_)
            end();
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Attach a key/value to the event (keys must be string literals). */
    void arg(const char *key, std::int64_t value);
    void arg(const char *key, double value);
    void arg(const char *key, int value)
    {
        arg(key, static_cast<std::int64_t>(value));
    }
    void arg(const char *key, std::size_t value)
    {
        arg(key, static_cast<std::int64_t>(value));
    }

  private:
    struct SpanArg
    {
        const char *key = nullptr;
        bool isInt = false;
        std::int64_t i = 0;
        double d = 0.0;
    };

    void begin(const char *name);
    void end();

    const char *name_ = nullptr;
    double startUs_ = 0.0;
    bool active_ = false;
    std::vector<SpanArg> args_;
};

} // namespace obs
} // namespace netpack

/** Open a scoped span named @p name bound to local variable @p var. */
#define NETPACK_SPAN(var, name) ::netpack::obs::ScopedSpan var(name)

#endif // NETPACK_OBS_TRACE_H
