/**
 * @file
 * OpenMetrics / Prometheus text exposition for the metrics registry.
 *
 * Dot-separated netpack names are mangled into the OpenMetrics grammar
 * (`.` and any other illegal character become `_`, a leading digit gets
 * an underscore prefix) under a configurable `netpack` prefix; two
 * distinct raw names that mangle to the same exposition name get
 * deterministic `_2`, `_3`, ... suffixes in render order. Counters are
 * exposed with the OpenMetrics `_total` sample suffix, histograms (both
 * fixed-bucket and log-bucketed) as cumulative `_bucket{le="..."}` /
 * `_sum` / `_count` families. Time series are not exposed — a scraper
 * builds its own history by polling. The payload ends with the
 * mandatory `# EOF` terminator.
 */

#ifndef NETPACK_OBS_OPENMETRICS_H
#define NETPACK_OBS_OPENMETRICS_H

#include <string>

#include "obs/metrics.h"

namespace netpack {
namespace obs {

/** Content-Type for the exposition payload. */
extern const char kOpenMetricsContentType[];

/** Mangle one raw metric name (no prefix): every character outside
 * [a-zA-Z0-9_] becomes `_`; a leading digit gains a `_` prefix. */
std::string openMetricsName(const std::string &raw);

/** Escape a HELP text or label value: `\` -> `\\`, newline -> `\n`,
 * `"` -> `\"`. */
std::string openMetricsEscape(const std::string &raw);

struct ExporterOptions
{
    /** Prepended (with `_`) to every mangled family name. */
    std::string prefix = "netpack";
};

/** Renders a MetricsSnapshot as OpenMetrics text. Stateless other than
 * the options; safe to share across threads. */
class Exporter
{
  public:
    explicit Exporter(ExporterOptions options = {});

    std::string render(const MetricsSnapshot &snap) const;

  private:
    ExporterOptions options_;
};

/** Render the process registry with default options (scrape handler). */
std::string renderOpenMetrics();

} // namespace obs
} // namespace netpack

#endif // NETPACK_OBS_OPENMETRICS_H
