#include "obs/json.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace netpack {
namespace obs {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter(std::ostream &os, int indent)
    : os_(&os), indent_(indent)
{
}

void
JsonWriter::newlineIndent()
{
    if (indent_ <= 0)
        return;
    *os_ << '\n';
    for (std::size_t i = 0; i < hasValue_.size(); ++i) {
        for (int s = 0; s < indent_; ++s)
            *os_ << ' ';
    }
}

void
JsonWriter::beforeValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // the key already placed the comma and indentation
    }
    if (!hasValue_.empty()) {
        if (hasValue_.back())
            *os_ << ',';
        hasValue_.back() = true;
        newlineIndent();
    }
}

void
JsonWriter::open(char c)
{
    beforeValue();
    *os_ << c;
    hasValue_.push_back(false);
}

void
JsonWriter::close(char c)
{
    NETPACK_CHECK_MSG(!hasValue_.empty(),
                      "JsonWriter: unbalanced end call");
    const bool had_values = hasValue_.back();
    hasValue_.pop_back();
    if (had_values)
        newlineIndent();
    *os_ << c;
    if (hasValue_.empty() && indent_ > 0)
        *os_ << '\n';
}

void
JsonWriter::beginObject()
{
    open('{');
}

void
JsonWriter::endObject()
{
    close('}');
}

void
JsonWriter::beginArray()
{
    open('[');
}

void
JsonWriter::endArray()
{
    close(']');
}

void
JsonWriter::key(std::string_view name)
{
    NETPACK_CHECK_MSG(!hasValue_.empty() && !pendingKey_,
                      "JsonWriter: key() outside an object");
    if (hasValue_.back())
        *os_ << ',';
    hasValue_.back() = true;
    newlineIndent();
    *os_ << '"' << jsonEscape(name) << "\":";
    if (indent_ > 0)
        *os_ << ' ';
    pendingKey_ = true;
}

void
JsonWriter::value(std::string_view s)
{
    beforeValue();
    *os_ << '"' << jsonEscape(s) << '"';
}

void
JsonWriter::value(bool b)
{
    beforeValue();
    *os_ << (b ? "true" : "false");
}

void
JsonWriter::value(std::int64_t n)
{
    beforeValue();
    *os_ << n;
}

void
JsonWriter::value(std::uint64_t n)
{
    beforeValue();
    *os_ << n;
}

void
JsonWriter::value(double x)
{
    beforeValue();
    if (!std::isfinite(x)) {
        *os_ << '"' << (std::isnan(x) ? "nan" : (x > 0 ? "inf" : "-inf"))
             << '"';
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", x);
    *os_ << buf;
}

} // namespace obs
} // namespace netpack
