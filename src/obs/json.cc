#include "obs/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"
#include "common/json_text.h"

namespace netpack {
namespace obs {

std::string
jsonEscape(std::string_view s)
{
    return jsonEscapeText(s);
}

std::string
jsonUnescape(std::string_view s)
{
    return jsonUnescapeText(s);
}

JsonWriter::JsonWriter(std::ostream &os, int indent)
    : os_(&os), indent_(indent)
{
}

void
JsonWriter::newlineIndent()
{
    if (indent_ <= 0)
        return;
    *os_ << '\n';
    for (std::size_t i = 0; i < hasValue_.size(); ++i) {
        for (int s = 0; s < indent_; ++s)
            *os_ << ' ';
    }
}

void
JsonWriter::beforeValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // the key already placed the comma and indentation
    }
    if (!hasValue_.empty()) {
        if (hasValue_.back())
            *os_ << ',';
        hasValue_.back() = true;
        newlineIndent();
    }
}

void
JsonWriter::open(char c)
{
    beforeValue();
    *os_ << c;
    hasValue_.push_back(false);
}

void
JsonWriter::close(char c)
{
    NETPACK_CHECK_MSG(!hasValue_.empty(),
                      "JsonWriter: unbalanced end call");
    const bool had_values = hasValue_.back();
    hasValue_.pop_back();
    if (had_values)
        newlineIndent();
    *os_ << c;
    if (hasValue_.empty() && indent_ > 0)
        *os_ << '\n';
}

void
JsonWriter::beginObject()
{
    open('{');
}

void
JsonWriter::endObject()
{
    close('}');
}

void
JsonWriter::beginArray()
{
    open('[');
}

void
JsonWriter::endArray()
{
    close(']');
}

void
JsonWriter::key(std::string_view name)
{
    NETPACK_CHECK_MSG(!hasValue_.empty() && !pendingKey_,
                      "JsonWriter: key() outside an object");
    if (hasValue_.back())
        *os_ << ',';
    hasValue_.back() = true;
    newlineIndent();
    *os_ << '"' << jsonEscape(name) << "\":";
    if (indent_ > 0)
        *os_ << ' ';
    pendingKey_ = true;
}

void
JsonWriter::value(std::string_view s)
{
    beforeValue();
    *os_ << '"' << jsonEscape(s) << '"';
}

void
JsonWriter::value(bool b)
{
    beforeValue();
    *os_ << (b ? "true" : "false");
}

void
JsonWriter::value(std::int64_t n)
{
    beforeValue();
    *os_ << n;
}

void
JsonWriter::value(std::uint64_t n)
{
    beforeValue();
    *os_ << n;
}

void
JsonWriter::value(double x)
{
    beforeValue();
    if (!std::isfinite(x)) {
        *os_ << '"' << (std::isnan(x) ? "nan" : (x > 0 ? "inf" : "-inf"))
             << '"';
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", x);
    *os_ << buf;
}

// ---------------------------------------------------------------------------
// JsonValue + parser
// ---------------------------------------------------------------------------

bool
JsonValue::asBool() const
{
    NETPACK_REQUIRE(kind_ == Kind::Bool, "JSON value is not a boolean");
    return bool_;
}

double
JsonValue::asDouble() const
{
    NETPACK_REQUIRE(kind_ == Kind::Number, "JSON value is not a number");
    return std::strtod(scalar_.c_str(), nullptr);
}

std::int64_t
JsonValue::asInt64() const
{
    NETPACK_REQUIRE(kind_ == Kind::Number, "JSON value is not a number");
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(scalar_.c_str(), &end, 10);
    NETPACK_REQUIRE(errno == 0 && end != nullptr && *end == '\0',
                    "JSON number '" << scalar_
                                    << "' is not a 64-bit integer");
    return static_cast<std::int64_t>(v);
}

std::uint64_t
JsonValue::asUInt64() const
{
    NETPACK_REQUIRE(kind_ == Kind::Number, "JSON value is not a number");
    NETPACK_REQUIRE(!scalar_.empty() && scalar_[0] != '-',
                    "JSON number '" << scalar_ << "' is negative");
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(scalar_.c_str(), &end, 10);
    NETPACK_REQUIRE(errno == 0 && end != nullptr && *end == '\0',
                    "JSON number '" << scalar_
                                    << "' is not a 64-bit unsigned");
    return static_cast<std::uint64_t>(v);
}

const std::string &
JsonValue::asString() const
{
    NETPACK_REQUIRE(kind_ == Kind::String, "JSON value is not a string");
    return scalar_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    NETPACK_REQUIRE(kind_ == Kind::Array, "JSON value is not an array");
    return items_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    NETPACK_REQUIRE(kind_ == Kind::Object, "JSON value is not an object");
    return members_;
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : members_) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

bool
JsonValue::has(std::string_view key) const
{
    return find(key) != nullptr;
}

const JsonValue &
JsonValue::at(std::string_view key) const
{
    const JsonValue *value = find(key);
    NETPACK_REQUIRE(value != nullptr,
                    "JSON object has no member '" << key << "'");
    return *value;
}

const std::string &
JsonValue::numberToken() const
{
    NETPACK_REQUIRE(kind_ == Kind::Number, "JSON value is not a number");
    return scalar_;
}

/** Recursive-descent parser over one in-memory document. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    JsonValue parse()
    {
        JsonValue value = parseValue();
        skipWs();
        NETPACK_REQUIRE(pos_ == text_.size(),
                        "trailing garbage after JSON document at offset "
                            << pos_);
        return value;
    }

  private:
    [[noreturn]] void fail(const std::string &what) const
    {
        throw ConfigError("JSON parse error at offset " +
                          std::to_string(pos_) + ": " + what);
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', found '" + peek() +
                 "'");
        ++pos_;
    }

    bool consumeLiteral(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    /** The body of a string literal, still escaped (cursor past '"'). */
    std::string_view rawString()
    {
        expect('"');
        const std::size_t start = pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                const std::string_view body =
                    text_.substr(start, pos_ - start);
                ++pos_;
                return body;
            }
            if (c == '\\') {
                NETPACK_REQUIRE(pos_ + 1 < text_.size(),
                                "dangling backslash in JSON string");
                pos_ += 2;
                continue;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            ++pos_;
        }
        fail("unterminated string");
    }

    JsonValue parseValue()
    {
        skipWs();
        JsonValue value;
        const char c = peek();
        if (c == '{') {
            ++pos_;
            value.kind_ = JsonValue::Kind::Object;
            skipWs();
            if (peek() == '}') {
                ++pos_;
                return value;
            }
            while (true) {
                skipWs();
                std::string key = jsonUnescape(rawString());
                skipWs();
                expect(':');
                value.members_.emplace_back(std::move(key), parseValue());
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect('}');
                return value;
            }
        }
        if (c == '[') {
            ++pos_;
            value.kind_ = JsonValue::Kind::Array;
            skipWs();
            if (peek() == ']') {
                ++pos_;
                return value;
            }
            while (true) {
                value.items_.push_back(parseValue());
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect(']');
                return value;
            }
        }
        if (c == '"') {
            value.kind_ = JsonValue::Kind::String;
            value.scalar_ = jsonUnescape(rawString());
            return value;
        }
        if (consumeLiteral("true")) {
            value.kind_ = JsonValue::Kind::Bool;
            value.bool_ = true;
            return value;
        }
        if (consumeLiteral("false")) {
            value.kind_ = JsonValue::Kind::Bool;
            value.bool_ = false;
            return value;
        }
        if (consumeLiteral("null"))
            return value;
        // Number: [-]digits[.digits][(e|E)[+-]digits]
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail(std::string("unexpected character '") + c + "'");
        value.kind_ = JsonValue::Kind::Number;
        value.scalar_ = std::string(text_.substr(start, pos_ - start));
        // Validate the token eagerly so asDouble never sees garbage.
        char *end = nullptr;
        std::strtod(value.scalar_.c_str(), &end);
        if (end == nullptr || *end != '\0')
            fail("malformed number '" + value.scalar_ + "'");
        return value;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

JsonValue
parseJson(std::string_view text)
{
    return JsonParser(text).parse();
}

} // namespace obs
} // namespace netpack
