#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <limits>

#include "common/check.h"
#include "common/log.h"
#include "obs/json.h"

namespace netpack {
namespace obs {

namespace detail {

bool g_metricsEnabled = [] {
    const char *path = std::getenv("NETPACK_METRICS");
    return path != nullptr && path[0] != '\0';
}();

thread_local MetricScope *g_scopeHead = nullptr;

} // namespace detail

namespace {

int g_perRackGaugeLimit = [] {
    const char *env = std::getenv("NETPACK_PER_RACK_GAUGES");
    if (env == nullptr || env[0] == '\0')
        return 64;
    char *end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || parsed < 0) {
        NETPACK_LOG(Warn, "ignoring malformed NETPACK_PER_RACK_GAUGES='"
                              << env << "' (want a non-negative integer)");
        return 64;
    }
    return static_cast<int>(parsed);
}();

int g_seriesSampleEvery = 1;

} // namespace

int
perRackGaugeLimit()
{
    return g_perRackGaugeLimit;
}

void
setPerRackGaugeLimit(int limit)
{
    g_perRackGaugeLimit = limit < 0 ? 0 : limit;
}

int
seriesSampleEvery()
{
    return g_seriesSampleEvery;
}

void
setSeriesSampleEvery(int every)
{
    g_seriesSampleEvery = every < 1 ? 1 : every;
}

namespace {

/** Writes the NETPACK_METRICS snapshot file at process exit. */
struct ExitDumper
{
    std::string path;

    ExitDumper()
    {
        // Pin the registry's construction before ours so it is still
        // alive when our destructor snapshots it.
        Registry::instance();
        const char *env = std::getenv("NETPACK_METRICS");
        if (env != nullptr && env[0] != '\0')
            path = env;
    }

    ~ExitDumper()
    {
        if (!path.empty())
            writeMetricsFile(path, snapshot());
    }
};

ExitDumper &
exitDumper()
{
    static ExitDumper dumper;
    return dumper;
}

} // namespace

const std::vector<double> kPow2Buckets = {1,  2,   4,   8,   16, 32,
                                          64, 128, 256, 512, 1024};

void
setMetricsEnabled(bool on)
{
    detail::g_metricsEnabled = on;
    if (on)
        exitDumper(); // arm the exit dump when NETPACK_METRICS is set
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1)
{
    NETPACK_REQUIRE(!bounds_.empty(), "histogram needs at least one bound");
    NETPACK_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                        std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                            bounds_.end(),
                    "histogram bounds must be strictly increasing");
}

void
Histogram::record(double x)
{
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
    const auto bucket =
        static_cast<std::size_t>(std::distance(bounds_.begin(), it));
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(x, std::memory_order_relaxed);
}

std::vector<std::int64_t>
Histogram::counts() const
{
    std::vector<std::int64_t> out;
    out.reserve(counts_.size());
    for (const auto &c : counts_)
        out.push_back(c.load(std::memory_order_relaxed));
    return out;
}

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

Counter &
Registry::counter(const std::string &name)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot.reset(new Counter());
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot.reset(new Gauge());
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name,
                    const std::vector<double> &bounds)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot.reset(new Histogram(bounds));
    return *slot;
}

LogHistogram &
Registry::logHistogram(const std::string &name, const LogHistogramSpec &spec)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = logHistograms_[name];
    if (!slot)
        slot.reset(new LogHistogram(spec));
    return *slot;
}

TimeSeries &
Registry::series(const std::string &name, std::size_t capacity)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = series_[name];
    if (!slot)
        slot.reset(new TimeSeries(capacity));
    return *slot;
}

MetricsSnapshot
Registry::snapshot() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    for (const auto &[name, counter] : counters_)
        snap.counters[name] = counter->value();
    for (const auto &[name, gauge] : gauges_)
        snap.gauges[name] = gauge->value();
    for (const auto &[name, histogram] : histograms_) {
        MetricsSnapshot::HistogramData data;
        data.bounds = histogram->bounds();
        data.counts = histogram->counts();
        data.total = histogram->total();
        data.sum = histogram->sum();
        snap.histograms[name] = std::move(data);
    }
    for (const auto &[name, hist] : logHistograms_) {
        MetricsSnapshot::LogHistogramData data;
        data.spec = hist->spec();
        data.bounds = hist->bounds();
        data.counts = hist->counts();
        data.total = hist->total();
        data.sum = hist->sum();
        data.observedMin = hist->observedMin();
        data.observedMax = hist->observedMax();
        snap.logHistograms[name] = std::move(data);
    }
    for (const auto &[name, series] : series_) {
        MetricsSnapshot::SeriesData data;
        data.capacity = series->capacity();
        data.totalPushed = series->totalPushed();
        data.points = series->points();
        snap.series[name] = std::move(data);
    }
    return snap;
}

void
Registry::merge(const MetricsSnapshot &snap)
{
    for (const auto &[name, value] : snap.counters)
        counter(name).add(value);
    for (const auto &[name, value] : snap.gauges)
        gauge(name).set(value);
    for (const auto &[name, data] : snap.histograms) {
        if (data.bounds.empty())
            continue;
        Histogram &hist = histogram(name, data.bounds);
        if (hist.bounds() != data.bounds) {
            NETPACK_LOG(Warn, "histogram '"
                                  << name
                                  << "' bounds disagree with the registry; "
                                     "dropping the merged buckets");
            counter("obs.merge_skipped").add(1);
            continue;
        }
        for (std::size_t i = 0; i < data.counts.size(); ++i)
            hist.counts_[i].fetch_add(data.counts[i],
                                      std::memory_order_relaxed);
        hist.total_.fetch_add(data.total, std::memory_order_relaxed);
        hist.sum_.fetch_add(data.sum, std::memory_order_relaxed);
    }
    for (const auto &[name, data] : snap.logHistograms) {
        if (data.bounds.empty())
            continue;
        LogHistogram &hist = logHistogram(name, data.spec);
        if (hist.spec() != data.spec) {
            NETPACK_LOG(Warn, "log histogram '"
                                  << name
                                  << "' spec disagrees with the registry; "
                                     "dropping the merged buckets");
            counter("obs.merge_skipped").add(1);
            continue;
        }
        for (std::size_t i = 0; i < data.counts.size(); ++i)
            hist.counts_[i].fetch_add(data.counts[i],
                                      std::memory_order_relaxed);
        hist.total_.fetch_add(data.total, std::memory_order_relaxed);
        hist.sum_.fetch_add(data.sum, std::memory_order_relaxed);
        if (data.observedMin <= data.observedMax) {
            double seen = hist.min_.load(std::memory_order_relaxed);
            while (data.observedMin < seen &&
                   !hist.min_.compare_exchange_weak(
                       seen, data.observedMin, std::memory_order_relaxed)) {
            }
            seen = hist.max_.load(std::memory_order_relaxed);
            while (data.observedMax > seen &&
                   !hist.max_.compare_exchange_weak(
                       seen, data.observedMax, std::memory_order_relaxed)) {
            }
        }
    }
    for (const auto &[name, data] : snap.series) {
        if (data.capacity == 0)
            continue;
        TimeSeries &ts = series(name, data.capacity);
        for (const auto &point : data.points)
            ts.push(point.t, point.value);
        // A scope ring may already have dropped old points; keep the
        // lifetime count honest.
        if (data.totalPushed > data.points.size()) {
            const std::lock_guard<std::mutex> lock(ts.mutex_);
            ts.totalPushed_ += data.totalPushed - data.points.size();
        }
    }
}

MetricScope::MetricScope()
    : parent_(detail::g_scopeHead)
{
    detail::g_scopeHead = this;
}

MetricScope::~MetricScope()
{
    detail::g_scopeHead = parent_;
    if (parent_ != nullptr)
        parent_->merge(local_);
}

void
MetricScope::count(const std::string &name, std::int64_t n)
{
    local_.counters[name] += n;
}

void
MetricScope::gauge(const std::string &name, double x)
{
    local_.gauges[name] = x;
}

void
MetricScope::histogram(const std::string &name,
                       const std::vector<double> &bounds, double x)
{
    MetricsSnapshot::HistogramData &data = local_.histograms[name];
    if (data.bounds.empty()) {
        data.bounds = bounds;
        data.counts.assign(bounds.size() + 1, 0);
    }
    const auto it =
        std::lower_bound(data.bounds.begin(), data.bounds.end(), x);
    const auto bucket =
        static_cast<std::size_t>(std::distance(data.bounds.begin(), it));
    ++data.counts[bucket];
    ++data.total;
    data.sum += x;
}

void
MetricScope::logHistogram(const std::string &name,
                          const LogHistogramSpec &spec, double x)
{
    MetricsSnapshot::LogHistogramData &data = local_.logHistograms[name];
    if (data.bounds.empty()) {
        data.spec = spec;
        data.bounds = logBucketBounds(spec);
        data.counts.assign(data.bounds.size() + 1, 0);
        data.observedMin = std::numeric_limits<double>::infinity();
        data.observedMax = -std::numeric_limits<double>::infinity();
    }
    const auto it =
        std::lower_bound(data.bounds.begin(), data.bounds.end(), x);
    const auto bucket =
        static_cast<std::size_t>(std::distance(data.bounds.begin(), it));
    ++data.counts[bucket];
    ++data.total;
    data.sum += x;
    data.observedMin = std::min(data.observedMin, x);
    data.observedMax = std::max(data.observedMax, x);
}

void
MetricScope::seriesPoint(const std::string &name, std::size_t capacity,
                         double t, double value)
{
    MetricsSnapshot::SeriesData &data = local_.series[name];
    if (data.capacity == 0)
        data.capacity = capacity;
    data.points.push_back({t, value});
    if (data.points.size() > data.capacity)
        data.points.erase(data.points.begin());
    ++data.totalPushed;
}

void
MetricScope::merge(const MetricsSnapshot &snap)
{
    for (const auto &[name, value] : snap.counters)
        local_.counters[name] += value;
    for (const auto &[name, value] : snap.gauges)
        local_.gauges[name] = value;
    for (const auto &[name, data] : snap.histograms) {
        MetricsSnapshot::HistogramData &mine = local_.histograms[name];
        if (mine.bounds.empty()) {
            mine = data;
            continue;
        }
        if (mine.bounds != data.bounds) {
            // call sites disagree; keep the first registration
            ++local_.counters["obs.merge_skipped"];
            continue;
        }
        for (std::size_t i = 0; i < data.counts.size(); ++i)
            mine.counts[i] += data.counts[i];
        mine.total += data.total;
        mine.sum += data.sum;
    }
    for (const auto &[name, data] : snap.logHistograms) {
        MetricsSnapshot::LogHistogramData &mine = local_.logHistograms[name];
        if (mine.bounds.empty()) {
            mine = data;
            continue;
        }
        if (mine.spec != data.spec) {
            ++local_.counters["obs.merge_skipped"];
            continue;
        }
        for (std::size_t i = 0; i < data.counts.size(); ++i)
            mine.counts[i] += data.counts[i];
        mine.total += data.total;
        mine.sum += data.sum;
        if (data.observedMin <= data.observedMax) {
            mine.observedMin = std::min(mine.observedMin, data.observedMin);
            mine.observedMax = std::max(mine.observedMax, data.observedMax);
        }
    }
    for (const auto &[name, data] : snap.series) {
        MetricsSnapshot::SeriesData &mine = local_.series[name];
        if (mine.capacity == 0) {
            mine = data;
            continue;
        }
        for (const auto &point : data.points) {
            mine.points.push_back(point);
            if (mine.points.size() > mine.capacity)
                mine.points.erase(mine.points.begin());
        }
        mine.totalPushed += data.totalPushed;
    }
}

void
Registry::reset()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, counter] : counters_)
        counter->value_.store(0, std::memory_order_relaxed);
    for (auto &[name, gauge] : gauges_)
        gauge->value_.store(0.0, std::memory_order_relaxed);
    for (auto &[name, histogram] : histograms_) {
        for (auto &c : histogram->counts_)
            c.store(0, std::memory_order_relaxed);
        histogram->total_.store(0, std::memory_order_relaxed);
        histogram->sum_.store(0.0, std::memory_order_relaxed);
    }
    for (auto &[name, hist] : logHistograms_) {
        for (auto &c : hist->counts_)
            c.store(0, std::memory_order_relaxed);
        hist->total_.store(0, std::memory_order_relaxed);
        hist->sum_.store(0.0, std::memory_order_relaxed);
        hist->min_.store(std::numeric_limits<double>::infinity(),
                         std::memory_order_relaxed);
        hist->max_.store(-std::numeric_limits<double>::infinity(),
                         std::memory_order_relaxed);
    }
    for (auto &[name, series] : series_) {
        const std::lock_guard<std::mutex> seriesLock(series->mutex_);
        series->ring_.clear();
        series->head_ = 0;
        series->totalPushed_ = 0;
    }
}

Counter &
counter(const std::string &name)
{
    return Registry::instance().counter(name);
}

Gauge &
gauge(const std::string &name)
{
    return Registry::instance().gauge(name);
}

Histogram &
histogram(const std::string &name, const std::vector<double> &bounds)
{
    return Registry::instance().histogram(name, bounds);
}

LogHistogram &
logHistogram(const std::string &name, const LogHistogramSpec &spec)
{
    return Registry::instance().logHistogram(name, spec);
}

TimeSeries &
series(const std::string &name, std::size_t capacity)
{
    return Registry::instance().series(name, capacity);
}

MetricsSnapshot
snapshot()
{
    return Registry::instance().snapshot();
}

void
recordCount(const std::string &name, std::int64_t n)
{
    if (!metricsEnabled())
        return;
    if (MetricScope *scope = MetricScope::current())
        scope->count(name, n);
    else
        Registry::instance().counter(name).add(n);
}

void
recordGauge(const std::string &name, double value)
{
    if (!metricsEnabled())
        return;
    if (MetricScope *scope = MetricScope::current())
        scope->gauge(name, value);
    else
        Registry::instance().gauge(name).set(value);
}

void
recordHistogram(const std::string &name, const std::vector<double> &bounds,
                double value)
{
    if (!metricsEnabled())
        return;
    if (MetricScope *scope = MetricScope::current())
        scope->histogram(name, bounds, value);
    else
        Registry::instance().histogram(name, bounds).record(value);
}

void
recordLogHistogram(const std::string &name, const LogHistogramSpec &spec,
                   double value)
{
    if (!metricsEnabled())
        return;
    if (MetricScope *scope = MetricScope::current())
        scope->logHistogram(name, spec, value);
    else
        Registry::instance().logHistogram(name, spec).record(value);
}

void
recordSeriesPoint(const std::string &name, double t, double value,
                  std::size_t capacity)
{
    if (!metricsEnabled())
        return;
    if (MetricScope *scope = MetricScope::current())
        scope->seriesPoint(name, capacity, t, value);
    else
        Registry::instance().series(name, capacity).push(t, value);
}

void
writeSnapshotJson(JsonWriter &json, const MetricsSnapshot &snap)
{
    json.beginObject();
    json.key("counters");
    json.beginObject();
    for (const auto &[name, value] : snap.counters)
        json.kv(name, value);
    json.endObject();
    json.key("gauges");
    json.beginObject();
    for (const auto &[name, value] : snap.gauges)
        json.kv(name, value);
    json.endObject();
    json.key("histograms");
    json.beginObject();
    for (const auto &[name, data] : snap.histograms) {
        json.key(name);
        json.beginObject();
        json.key("bounds");
        json.beginArray();
        for (const double b : data.bounds)
            json.value(b);
        json.endArray();
        json.key("counts");
        json.beginArray();
        for (const std::int64_t c : data.counts)
            json.value(c);
        json.endArray();
        json.kv("total", data.total);
        json.kv("sum", data.sum);
        json.endObject();
    }
    json.endObject();
    json.key("log_histograms");
    json.beginObject();
    for (const auto &[name, data] : snap.logHistograms) {
        json.key(name);
        json.beginObject();
        json.kv("min_value", data.spec.minValue);
        json.kv("max_value", data.spec.maxValue);
        json.kv("rel_error", data.spec.relError);
        // Sparse exposition: only non-empty buckets, as (bound, count)
        // pairs — the dense geometric ladder is ~200 entries.
        json.key("buckets");
        json.beginArray();
        for (std::size_t i = 0; i < data.counts.size(); ++i) {
            if (data.counts[i] == 0)
                continue;
            json.beginArray();
            json.value(i < data.bounds.size()
                           ? data.bounds[i]
                           : std::numeric_limits<double>::infinity());
            json.value(data.counts[i]);
            json.endArray();
        }
        json.endArray();
        json.kv("total", data.total);
        json.kv("sum", data.sum);
        if (data.total > 0) {
            json.kv("min", data.observedMin);
            json.kv("max", data.observedMax);
        }
        json.endObject();
    }
    json.endObject();
    json.key("series");
    json.beginObject();
    for (const auto &[name, data] : snap.series) {
        json.key(name);
        json.beginObject();
        json.kv("capacity", static_cast<std::int64_t>(data.capacity));
        json.kv("total_pushed",
                static_cast<std::int64_t>(data.totalPushed));
        json.key("points");
        json.beginArray();
        for (const auto &point : data.points) {
            json.beginArray();
            json.value(point.t);
            json.value(point.value);
            json.endArray();
        }
        json.endArray();
        json.endObject();
    }
    json.endObject();
    json.endObject();
}

void
writeMetricsFile(const std::string &path, const MetricsSnapshot &snap)
{
    std::ofstream out(path);
    if (!out) {
        NETPACK_LOG(Error, "cannot write metrics file '" << path << "'");
        return;
    }
    JsonWriter json(out);
    writeSnapshotJson(json, snap);
}

} // namespace obs
} // namespace netpack
