/**
 * @file
 * Minimal single-threaded HTTP scrape server for the OpenMetrics
 * exposition (obs/openmetrics.h). One background thread accepts
 * connections sequentially and answers:
 *
 *   GET /metrics  -> 200, OpenMetrics text of the live registry
 *   GET /healthz  -> 200, "ok\n"
 *   anything else -> 404
 *
 * Enabled per-process via NETPACK_METRICS_PORT=<port> (which also turns
 * the metrics registry on) or the bench `--metrics-port` flag; port 0
 * binds an ephemeral port (query it with port()) for tests. Every
 * served /metrics bumps the `obs.scrapes` counter.
 */

#ifndef NETPACK_OBS_HTTP_EXPORT_H
#define NETPACK_OBS_HTTP_EXPORT_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

namespace netpack {
namespace obs {

class MetricsHttpServer
{
  public:
    /** Bind 127.0.0.1:@p port (0 = ephemeral) and start serving on a
     * background thread. Throws ConfigError when the bind fails. */
    explicit MetricsHttpServer(std::uint16_t port);

    /** Stops the accept loop and joins the thread. */
    ~MetricsHttpServer();

    MetricsHttpServer(const MetricsHttpServer &) = delete;
    MetricsHttpServer &operator=(const MetricsHttpServer &) = delete;

    /** The bound port (resolves ephemeral binds). */
    std::uint16_t port() const { return port_; }

  private:
    void serveLoop();
    void handleConnection(int client);

    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

/**
 * Process-wide scrape server, started at most once. @p port >= 0 wins;
 * @p port < 0 falls back to NETPACK_METRICS_PORT (unset/empty -> no
 * server, returns nullptr). Starting the server force-enables the
 * metrics registry. Later calls return the already-running instance.
 * Throws ConfigError on a malformed port or failed bind.
 */
MetricsHttpServer *ensureMetricsServer(int port = -1);

} // namespace obs
} // namespace netpack

#endif // NETPACK_OBS_HTTP_EXPORT_H
