#include "obs/openmetrics.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

namespace netpack {
namespace obs {

const char kOpenMetricsContentType[] =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

std::string
openMetricsName(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size() + 1);
    for (const char c : raw) {
        const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                           (c >= '0' && c <= '9') || c == '_';
        out.push_back(legal ? c : '_');
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9'))
        out.insert(out.begin(), '_');
    return out;
}

std::string
openMetricsEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '"':
            out += "\\\"";
            break;
        default:
            out.push_back(c);
        }
    }
    return out;
}

namespace {

/** Compact deterministic double rendering for sample values and `le`
 * labels ("+Inf" handled by callers). */
std::string
formatDouble(double x)
{
    if (std::isnan(x))
        return "NaN";
    if (std::isinf(x))
        return x > 0 ? "+Inf" : "-Inf";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", x);
    // Trim to the shortest representation that round-trips.
    for (int precision = 1; precision < 17; ++precision) {
        char shorter[64];
        std::snprintf(shorter, sizeof shorter, "%.*g", precision, x);
        if (std::strtod(shorter, nullptr) == x)
            return shorter;
    }
    return buf;
}

/** Allocates unique exposition family names in render order. */
class NameAllocator
{
  public:
    explicit NameAllocator(const std::string &prefix)
        : prefix_(prefix)
    {
    }

    std::string allocate(const std::string &raw)
    {
        std::string base = prefix_.empty()
                               ? openMetricsName(raw)
                               : prefix_ + "_" + openMetricsName(raw);
        std::string candidate = base;
        for (int suffix = 2; !used_.insert(candidate).second; ++suffix)
            candidate = base + "_" + std::to_string(suffix);
        return candidate;
    }

  private:
    std::string prefix_;
    std::set<std::string> used_;
};

void
renderHeader(std::ostringstream &out, const std::string &family,
             const char *type, const std::string &raw)
{
    out << "# HELP " << family << " netpack metric '"
        << openMetricsEscape(raw) << "'\n";
    out << "# TYPE " << family << " " << type << "\n";
}

/** Emit one cumulative histogram family from bucket upper bounds and
 * per-bucket counts (counts may have one trailing overflow bucket past
 * bounds.size()). */
void
renderHistogram(std::ostringstream &out, const std::string &family,
                const std::vector<double> &bounds,
                const std::vector<std::int64_t> &counts, std::int64_t total,
                double sum, bool sparse)
{
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        cumulative += counts[i];
        if (i >= bounds.size())
            break; // overflow bucket folds into +Inf below
        if (sparse && counts[i] == 0)
            continue;
        out << family << "_bucket{le=\"" << formatDouble(bounds[i]) << "\"} "
            << cumulative << "\n";
    }
    out << family << "_bucket{le=\"+Inf\"} " << total << "\n";
    out << family << "_sum " << formatDouble(sum) << "\n";
    out << family << "_count " << total << "\n";
}

} // namespace

Exporter::Exporter(ExporterOptions options)
    : options_(std::move(options))
{
}

std::string
Exporter::render(const MetricsSnapshot &snap) const
{
    std::ostringstream out;
    NameAllocator names(options_.prefix);
    for (const auto &[raw, value] : snap.counters) {
        const std::string family = names.allocate(raw);
        renderHeader(out, family, "counter", raw);
        out << family << "_total " << value << "\n";
    }
    for (const auto &[raw, value] : snap.gauges) {
        const std::string family = names.allocate(raw);
        renderHeader(out, family, "gauge", raw);
        out << family << " " << formatDouble(value) << "\n";
    }
    for (const auto &[raw, data] : snap.histograms) {
        const std::string family = names.allocate(raw);
        renderHeader(out, family, "histogram", raw);
        renderHistogram(out, family, data.bounds, data.counts, data.total,
                        data.sum, /*sparse=*/false);
    }
    for (const auto &[raw, data] : snap.logHistograms) {
        const std::string family = names.allocate(raw);
        renderHeader(out, family, "histogram", raw);
        // Sparse: the geometric ladder is ~200 buckets, most empty.
        renderHistogram(out, family, data.bounds, data.counts, data.total,
                        data.sum, /*sparse=*/true);
    }
    out << "# EOF\n";
    return out.str();
}

std::string
renderOpenMetrics()
{
    return Exporter().render(Registry::instance().snapshot());
}

} // namespace obs
} // namespace netpack
