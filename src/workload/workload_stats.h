/**
 * @file
 * Trace characterization: the summary statistics trace studies report
 * (demand histogram, model mix, arrival/duration statistics, aggregate
 * compute-vs-communication demand). Backs the workload_report example
 * and lets experiments assert properties of their inputs.
 */

#ifndef NETPACK_WORKLOAD_WORKLOAD_STATS_H
#define NETPACK_WORKLOAD_WORKLOAD_STATS_H

#include <map>
#include <string>

#include "common/stats.h"
#include "workload/trace.h"

namespace netpack {

/** Summary statistics of a job trace. */
struct TraceStats
{
    std::size_t jobs = 0;
    /** GPU demand -> job count. */
    std::map<int, int> demandHistogram;
    /** Model name -> job count. */
    std::map<std::string, int> modelMix;
    /** Per-job inter-arrival times (jobs-1 samples). */
    SampleSet interarrivals;
    /** Per-job compute-only durations (iterations x compute time). */
    SampleSet computeDurations;
    /** Total GPU-seconds of computation the trace demands. */
    double computeGpuSeconds = 0.0;
    /**
     * Total GPU-seconds of communication at the reference rate
     * (single-GPU jobs contribute nothing).
     */
    double commGpuSeconds = 0.0;
    /** Sum of all jobs' GPU demands. */
    int totalGpuDemand = 0;
    /** Largest single-job demand. */
    int maxGpuDemand = 0;
    /** Jobs that need more than one server of @p gpus_per_server. */
    int multiServerJobs = 0;

    /** Fraction of total demanded work that is communication. */
    double commFraction() const
    {
        const double total = computeGpuSeconds + commGpuSeconds;
        return total > 0.0 ? commGpuSeconds / total : 0.0;
    }
};

/**
 * Characterize @p trace. @p reference_rate converts gradient volumes
 * into communication time; @p gpus_per_server classifies jobs as
 * single- vs multi-server.
 */
TraceStats analyzeTrace(const JobTrace &trace, Gbps reference_rate = 50.0,
                        int gpus_per_server = 4);

} // namespace netpack

#endif // NETPACK_WORKLOAD_WORKLOAD_STATS_H
