#include "workload/models.h"

#include "common/check.h"
#include "common/strings.h"

namespace netpack {

const std::vector<ModelProfile> &
ModelZoo::all()
{
    // Gradient sizes are fp32 parameter counts x 4 bytes; compute times
    // are per-iteration forward+backward on a 2080Ti-class GPU at batch
    // size 32 (order-of-magnitude constants; only ratios matter for the
    // placement comparisons).
    static const std::vector<ModelProfile> zoo = {
        {"AlexNet", 244.0, 0.031},
        {"VGG11", 532.0, 0.139},
        {"VGG16", 554.0, 0.193},
        {"VGG19", 575.0, 0.221},
        {"ResNet50", 102.0, 0.127},
        {"ResNet101", 178.0, 0.218},
    };
    return zoo;
}

const ModelProfile &
ModelZoo::byName(const std::string &name)
{
    const std::string needle = toLower(name);
    for (const auto &model : all()) {
        if (toLower(model.name) == needle)
            return model;
    }
    throw ConfigError("unknown model '" + name + "'");
}

bool
ModelZoo::contains(const std::string &name)
{
    const std::string needle = toLower(name);
    for (const auto &model : all()) {
        if (toLower(model.name) == needle)
            return true;
    }
    return false;
}

double
ModelZoo::commIntensity(const ModelProfile &model, Gbps reference_rate)
{
    NETPACK_REQUIRE(reference_rate > 0.0,
                    "reference rate must be positive");
    const Seconds comm = units::transferTime(model.commVolumePerIter(),
                                             reference_rate);
    return comm / model.computeTimePerIter;
}

} // namespace netpack
