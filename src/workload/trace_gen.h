/**
 * @file
 * Synthetic trace generators. The paper replays the Microsoft Philly
 * production trace [19] plus two synthetic traces whose per-job GPU
 * demands follow Poisson / normal distributions. The production trace is
 * proprietary-ish at this scale, so PhillyTraceGenerator reproduces its
 * published statistics instead (see DESIGN.md, substitution table):
 * heavily skewed power-of-two GPU demands dominated by 1-GPU jobs,
 * long-tailed log-normal durations, Poisson arrivals, and models sampled
 * uniformly from the zoo (the paper also samples models randomly because
 * the trace lacks model information).
 */

#ifndef NETPACK_WORKLOAD_TRACE_GEN_H
#define NETPACK_WORKLOAD_TRACE_GEN_H

#include <cstdint>

#include "common/rng.h"
#include "workload/trace.h"

namespace netpack {

/** Which family the per-job GPU demand is drawn from. */
enum class DemandDistribution
{
    /** Philly-like power-of-two mixture (the "Real" trace stand-in). */
    Philly,
    /** Poisson-distributed demands (paper's first synthetic trace). */
    Poisson,
    /** Normal-distributed demands (paper's second synthetic trace). */
    Normal,
};

/** Short display name ("Real", "Poisson", "Normal") for figures. */
const char *demandDistributionName(DemandDistribution d);

/** Knobs shared by all generators. */
struct TraceGenConfig
{
    /** Number of jobs to generate. */
    int numJobs = 1000;
    /** Mean job inter-arrival time in seconds (exponential). */
    Seconds meanInterarrival = 30.0;
    /** Demand family. */
    DemandDistribution distribution = DemandDistribution::Philly;
    /** Mean demand for Poisson/Normal families. */
    double demandMean = 4.0;
    /** Demand standard deviation for the Normal family. */
    double demandStddev = 3.0;
    /** Upper clamp on any single job's demand (e.g. one rack's GPUs). */
    int maxGpuDemand = 64;
    /**
     * Log-normal duration parameters: median exp(mu) seconds with shape
     * sigma. Philly's published durations are minutes-to-days with a
     * heavy tail; defaults give a ~15-minute median.
     */
    double durationLogMu = 6.8;
    double durationLogSigma = 1.4;
    /** Clamp on the duration draw, seconds. */
    Seconds maxDuration = 72.0 * 3600.0;
    /** RNG seed; equal seeds give identical traces. */
    std::uint64_t seed = 1;
};

/**
 * Generate a trace per @p config. Iterations for each job are derived
 * from the drawn duration and the model's ideal iteration time (compute +
 * gradient transfer at @p reference_rate), so a job's "size" is expressed
 * in work rather than wall-clock and placement quality can change its JCT.
 */
JobTrace generateTrace(const TraceGenConfig &config,
                       Gbps reference_rate = 50.0);

/**
 * Draw one GPU demand from the given family (exposed for tests and for
 * the workload-characterization example).
 */
int drawGpuDemand(const TraceGenConfig &config, Rng &rng);

/**
 * Return a copy of @p trace with collective backends assigned at random:
 * each job independently becomes ring_ina with probability
 * @p ring_fraction, rdma_ina with probability @p rdma_fraction, and
 * keeps the default ps_ina otherwise. Kept separate from generateTrace
 * so existing pure-PS traces remain bit-identical; equal seeds give
 * identical assignments.
 */
JobTrace assignBackends(const JobTrace &trace, double ring_fraction,
                        double rdma_fraction, std::uint64_t seed);

} // namespace netpack

#endif // NETPACK_WORKLOAD_TRACE_GEN_H
