/**
 * @file
 * Job descriptions and placement results. A distributed-training job has
 * n workers (one GPU each, per the paper's formulation where g^(j) GPUs
 * host the workers), one parameter server for INA fallback/termination,
 * and a model that defines its per-iteration compute time and gradient
 * volume.
 */

#ifndef NETPACK_WORKLOAD_JOB_H
#define NETPACK_WORKLOAD_JOB_H

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "backends/backend_kind.h"
#include "common/units.h"
#include "topology/cluster.h"
#include "topology/ids.h"
#include "workload/models.h"

namespace netpack {

/** A job request as submitted by a user (Step ① of Figure 4). */
struct JobSpec
{
    JobId id;
    /** Model from the ModelZoo. */
    std::string modelName;
    /** GPU requirement g^(j); one worker per GPU. */
    int gpuDemand = 1;
    /** Submission time (seconds since experiment start). */
    Seconds submitTime = 0.0;
    /** Training length in iterations. */
    std::int64_t iterations = 1;
    /**
     * Importance for the job-subset knapsack (Algorithm 2 step ①). The
     * manager ages this value when the job misses a placement round to
     * prevent starvation.
     */
    double value = 1.0;
    /** Collective backend the job trains with (default: the paper's). */
    BackendKind backend = BackendKind::PsIna;
};

/** Where a job's workers and PS(es) live, and where its INA is enabled. */
struct Placement
{
    /** Worker (=GPU) count per server; only servers with >0 appear. */
    std::map<ServerId, int> workers;
    /** Server hosting the (primary) parameter server. */
    ServerId psServer;
    /**
     * Additional PS servers for sharded jobs. Section 4.1: "AllReduce
     * with multiple PSes is composed of multiple one-PS AllReduces" —
     * the gradient splits evenly into one shard per PS, each shard
     * forming its own aggregation tree.
     */
    std::vector<ServerId> extraPsServers;
    /** Racks where statistical INA is enabled for this job (z_r^(j)). */
    std::set<RackId> inaRacks;
    /**
     * Collective backend this placement was made for. Stamped from the
     * JobSpec by the placer harness so downstream consumers (water-fill,
     * simulator, journal) need only the placement. For ring/rdma jobs
     * `psServer` holds the *leader* worker server (tree root), not a
     * dedicated parameter server.
     */
    BackendKind backend = BackendKind::PsIna;

    /** All PS servers: primary first, then the extras. */
    std::vector<ServerId> psServers() const;

    /** Number of gradient shards (= number of PSes, at least 1). */
    int psShards() const
    {
        return 1 + static_cast<int>(extraPsServers.size());
    }

    /** Total worker count across servers. */
    int totalWorkers() const;

    /** True when every worker and the PS share one server (no traffic). */
    bool singleServer() const;

    /** Racks touched by workers (not including a worker-less PS rack). */
    std::set<RackId> workerRacks(const ClusterTopology &topo) const;

    /** All racks touched by workers or the PS. */
    std::set<RackId> allRacks(const ClusterTopology &topo) const;

    /** True when all workers and the PS are within a single rack. */
    bool singleRack(const ClusterTopology &topo) const;

    /** Validate internal consistency (counts positive, PS set). */
    void validate() const;
};

/**
 * Per-iteration time of a placed job given a sustained communication
 * throughput: compute plus gradient transfer (zero transfer for
 * single-server jobs, which communicate through local memory).
 */
Seconds iterationTime(const JobSpec &spec, const ModelProfile &model,
                      const Placement &placement, Gbps throughput);

} // namespace netpack

#endif // NETPACK_WORKLOAD_JOB_H
