#include "workload/trace_gen.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace netpack {

const char *
demandDistributionName(DemandDistribution d)
{
    switch (d) {
      case DemandDistribution::Philly: return "Real";
      case DemandDistribution::Poisson: return "Poisson";
      case DemandDistribution::Normal: return "Normal";
    }
    return "?";
}

namespace {

/**
 * Published Philly statistics (Jeon et al., ATC'19): most jobs ask for a
 * single GPU, demands are powers of two, and a small fraction are large
 * multi-server jobs.
 */
struct DemandBucket
{
    int gpus;
    double weight;
};

constexpr DemandBucket kPhillyBuckets[] = {
    {1, 0.47}, {2, 0.15}, {4, 0.15}, {8, 0.13},
    {16, 0.06}, {32, 0.03}, {64, 0.01},
};

int
drawPhilly(Rng &rng)
{
    double total = 0.0;
    for (const auto &bucket : kPhillyBuckets)
        total += bucket.weight;
    double draw = rng.uniform(0.0, total);
    for (const auto &bucket : kPhillyBuckets) {
        if (draw < bucket.weight)
            return bucket.gpus;
        draw -= bucket.weight;
    }
    return kPhillyBuckets[std::size(kPhillyBuckets) - 1].gpus;
}

} // namespace

int
drawGpuDemand(const TraceGenConfig &config, Rng &rng)
{
    int demand = 1;
    switch (config.distribution) {
      case DemandDistribution::Philly:
        demand = drawPhilly(rng);
        break;
      case DemandDistribution::Poisson:
        demand = static_cast<int>(rng.poisson(config.demandMean));
        break;
      case DemandDistribution::Normal:
        demand = static_cast<int>(
            std::lround(rng.normal(config.demandMean, config.demandStddev)));
        break;
    }
    return std::clamp(demand, 1, config.maxGpuDemand);
}

JobTrace
generateTrace(const TraceGenConfig &config, Gbps reference_rate)
{
    NETPACK_REQUIRE(config.numJobs > 0,
                    "numJobs must be positive, got " << config.numJobs);
    NETPACK_REQUIRE(config.meanInterarrival > 0.0,
                    "meanInterarrival must be positive");
    NETPACK_REQUIRE(config.maxGpuDemand >= 1,
                    "maxGpuDemand must be >= 1");
    NETPACK_REQUIRE(reference_rate > 0.0,
                    "reference_rate must be positive");

    Rng rng(config.seed);
    const auto &zoo = ModelZoo::all();

    std::vector<JobSpec> jobs;
    jobs.reserve(static_cast<std::size_t>(config.numJobs));
    Seconds clock = 0.0;
    for (int i = 0; i < config.numJobs; ++i) {
        clock += rng.exponential(1.0 / config.meanInterarrival);

        JobSpec spec;
        spec.submitTime = clock;
        spec.gpuDemand = drawGpuDemand(config, rng);
        const auto &model =
            zoo[static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(zoo.size()) - 1))];
        spec.modelName = model.name;

        const Seconds duration =
            std::min(config.maxDuration,
                     rng.logNormal(config.durationLogMu,
                                   config.durationLogSigma));
        // Ideal per-iteration time: compute plus one gradient transfer at
        // the reference rate (single-GPU jobs skip the transfer).
        Seconds ideal_iter = model.computeTimePerIter;
        if (spec.gpuDemand > 1) {
            ideal_iter += units::transferTime(model.commVolumePerIter(),
                                              reference_rate);
        }
        spec.iterations = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(duration / ideal_iter));
        spec.value = 1.0;
        jobs.push_back(std::move(spec));
    }
    return JobTrace(std::move(jobs));
}

JobTrace
assignBackends(const JobTrace &trace, double ring_fraction,
               double rdma_fraction, std::uint64_t seed)
{
    NETPACK_REQUIRE(ring_fraction >= 0.0 && rdma_fraction >= 0.0 &&
                        ring_fraction + rdma_fraction <= 1.0,
                    "backend fractions must be non-negative and sum to <= 1"
                        << " (ring=" << ring_fraction
                        << ", rdma=" << rdma_fraction << ")");
    Rng rng(seed);
    std::vector<JobSpec> jobs = trace.jobs();
    for (JobSpec &spec : jobs) {
        const double draw = rng.uniform(0.0, 1.0);
        if (draw < ring_fraction)
            spec.backend = BackendKind::RingIna;
        else if (draw < ring_fraction + rdma_fraction)
            spec.backend = BackendKind::RdmaIna;
        else
            spec.backend = BackendKind::PsIna;
    }
    return JobTrace(std::move(jobs));
}

} // namespace netpack
