/**
 * @file
 * The model zoo used by the paper's evaluation: VGG11/16/19, AlexNet,
 * ResNet50 and ResNet101 trained on ImageNet. Since we have no GPUs here,
 * each model is characterized analytically by its gradient size (what the
 * network must AllReduce every iteration) and its per-iteration compute
 * time on one 2080Ti-class GPU — exactly the constants that drive JCT in
 * the paper's flow-level simulator.
 */

#ifndef NETPACK_WORKLOAD_MODELS_H
#define NETPACK_WORKLOAD_MODELS_H

#include <string>
#include <vector>

#include "common/units.h"

namespace netpack {

/** Analytical description of one DNN training workload. */
struct ModelProfile
{
    /** Canonical name, e.g. "VGG16". */
    std::string name;
    /** Gradient / model size in MB (fp32 parameters). */
    MBytes modelSizeMb = 0.0;
    /**
     * Per-iteration forward+backward compute time on a single GPU, in
     * seconds, at the evaluation batch size.
     */
    Seconds computeTimePerIter = 0.0;

    /** Communication volume each worker pushes per iteration (MB). */
    MBytes commVolumePerIter() const { return modelSizeMb; }
};

/** The fixed pool of evaluation models. */
class ModelZoo
{
  public:
    /** All six models from the paper's evaluation (Section 6.1). */
    static const std::vector<ModelProfile> &all();

    /** Look up a model by name (case-insensitive); ConfigError if absent. */
    static const ModelProfile &byName(const std::string &name);

    /** True if @p name names a known model. */
    static bool contains(const std::string &name);

    /**
     * Communication-to-computation intensity: seconds of network transfer
     * at @p reference_rate per second of compute. VGG variants score high
     * (communication-intensive), ResNets score low (compute-intensive).
     */
    static double commIntensity(const ModelProfile &model,
                                Gbps reference_rate);
};

} // namespace netpack

#endif // NETPACK_WORKLOAD_MODELS_H
