#include "workload/philly_log.h"

#include <algorithm>
#include <istream>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"

namespace netpack {

PhillyLogParse
parsePhillyCsv(std::istream &is)
{
    PhillyLogParse parse;
    std::string line;
    std::size_t line_no = 0;
    bool first = true;
    while (std::getline(is, line)) {
        ++line_no;
        const std::string trimmed = trim(line);
        if (trimmed.empty())
            continue;
        if (first) {
            first = false;
            if (startsWith(toLower(trimmed), "job_id,"))
                continue; // header
        }
        const auto fields = split(trimmed, ',');
        NETPACK_REQUIRE(fields.size() == 5,
                        "philly log line " << line_no
                                           << ": expected 5 fields, got "
                                           << fields.size());
        // Empty timestamp cells mark killed/unscheduled jobs: skip.
        bool usable = true;
        for (std::size_t f = 1; f <= 4 && usable; ++f)
            usable = !trim(fields[f]).empty();
        if (!usable) {
            ++parse.skipped;
            continue;
        }
        PhillyLogRecord record;
        record.jobName = trim(fields[0]);
        try {
            record.submitTime = std::stod(fields[1]);
            record.startTime = std::stod(fields[2]);
            record.endTime = std::stod(fields[3]);
            record.gpus = std::stoi(fields[4]);
        } catch (const std::exception &e) {
            throw ConfigError("philly log line " + std::to_string(line_no) +
                              ": " + e.what());
        }
        // Sanitize: jobs must have run for a positive time on >= 1 GPU.
        if (record.gpus < 1 || record.endTime <= record.startTime ||
            record.startTime < record.submitTime) {
            ++parse.skipped;
            continue;
        }
        parse.records.push_back(std::move(record));
    }
    return parse;
}

JobTrace
traceFromPhillyLog(const std::vector<PhillyLogRecord> &records,
                   const PhillyConversionConfig &config)
{
    NETPACK_REQUIRE(config.referenceRate > 0.0,
                    "referenceRate must be positive");
    Rng rng(config.modelSeed);
    const auto &zoo = ModelZoo::all();

    Seconds base = 0.0;
    if (config.rebaseToZero && !records.empty()) {
        base = records.front().submitTime;
        for (const auto &record : records)
            base = std::min(base, record.submitTime);
    }

    std::vector<JobSpec> jobs;
    jobs.reserve(records.size());
    for (const auto &record : records) {
        JobSpec spec;
        spec.submitTime = record.submitTime - base;
        spec.gpuDemand = record.gpus;
        if (config.maxGpuDemand > 0)
            spec.gpuDemand = std::min(spec.gpuDemand, config.maxGpuDemand);
        // The logs carry no model type: draw one at random, as the
        // paper does (Section 6.1).
        const auto &model =
            zoo[static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(zoo.size()) - 1))];
        spec.modelName = model.name;

        // The logged run time (end - start) becomes the job's work: the
        // iteration count it would take at the reference network rate.
        const Seconds run_time = record.endTime - record.startTime;
        Seconds ideal_iter = model.computeTimePerIter;
        if (spec.gpuDemand > 1) {
            ideal_iter += units::transferTime(model.commVolumePerIter(),
                                              config.referenceRate);
        }
        spec.iterations = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(run_time / ideal_iter));
        jobs.push_back(std::move(spec));
    }
    return JobTrace(std::move(jobs));
}

} // namespace netpack
