#include "workload/trace.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "common/check.h"
#include "common/strings.h"

namespace netpack {

JobTrace::JobTrace(std::vector<JobSpec> jobs)
    : jobs_(std::move(jobs))
{
    normalize();
}

void
JobTrace::add(JobSpec spec)
{
    jobs_.push_back(std::move(spec));
    normalize();
}

void
JobTrace::normalize()
{
    std::stable_sort(jobs_.begin(), jobs_.end(),
                     [](const JobSpec &a, const JobSpec &b) {
                         return a.submitTime < b.submitTime;
                     });
    for (std::size_t i = 0; i < jobs_.size(); ++i)
        jobs_[i].id = JobId(static_cast<int>(i));
}

const std::vector<JobSpec> &
JobTrace::jobs() const
{
    return jobs_;
}

const JobSpec &
JobTrace::at(std::size_t i) const
{
    NETPACK_CHECK(i < jobs_.size());
    return jobs_[i];
}

int
JobTrace::totalGpuDemand() const
{
    int total = 0;
    for (const auto &job : jobs_)
        total += job.gpuDemand;
    return total;
}

int
JobTrace::maxGpuDemand() const
{
    int best = 0;
    for (const auto &job : jobs_)
        best = std::max(best, job.gpuDemand);
    return best;
}

JobTrace
JobTrace::prefix(std::size_t n) const
{
    std::vector<JobSpec> subset(jobs_.begin(),
                                jobs_.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        std::min(n, jobs_.size())));
    return JobTrace(std::move(subset));
}

void
JobTrace::saveCsv(std::ostream &os) const
{
    // Emit the optional backend column only when a non-default backend is
    // present, so pure-PS traces stay byte-identical to pre-backend files.
    bool mixed = false;
    for (const auto &job : jobs_)
        mixed = mixed || job.backend != BackendKind::PsIna;
    os << "id,model,gpus,submit_time,iterations,value";
    if (mixed)
        os << ",backend";
    os << "\n";
    for (const auto &job : jobs_) {
        os << job.id.value << "," << job.modelName << "," << job.gpuDemand
           << "," << formatDouble(job.submitTime, 6) << ","
           << job.iterations << "," << formatDouble(job.value, 6);
        if (mixed)
            os << "," << backendName(job.backend);
        os << "\n";
    }
}

JobTrace
JobTrace::loadCsv(std::istream &is)
{
    std::vector<JobSpec> jobs;
    std::string line;
    bool first = true;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const std::string trimmed = trim(line);
        if (trimmed.empty())
            continue;
        if (first) {
            first = false;
            if (startsWith(trimmed, "id,"))
                continue; // header row
        }
        const auto fields = split(trimmed, ',');
        NETPACK_REQUIRE(fields.size() == 6 || fields.size() == 7,
                        "trace line " << line_no
                                      << ": expected 6 or 7 fields, got "
                                      << fields.size());
        JobSpec spec;
        try {
            spec.id = JobId(std::stoi(fields[0]));
            spec.modelName = trim(fields[1]);
            spec.gpuDemand = std::stoi(fields[2]);
            spec.submitTime = std::stod(fields[3]);
            spec.iterations = std::stoll(fields[4]);
            spec.value = std::stod(fields[5]);
        } catch (const std::exception &e) {
            throw ConfigError("trace line " + std::to_string(line_no) +
                              ": " + e.what());
        }
        if (fields.size() == 7) {
            try {
                spec.backend = backendFromName(trim(fields[6]));
            } catch (const ConfigError &e) {
                throw ConfigError("trace line " + std::to_string(line_no) +
                                  ": " + e.what());
            }
        }
        NETPACK_REQUIRE(ModelZoo::contains(spec.modelName),
                        "trace line " << line_no << ": unknown model '"
                                      << spec.modelName << "'");
        NETPACK_REQUIRE(spec.gpuDemand >= 1,
                        "trace line " << line_no
                                      << ": gpuDemand must be >= 1");
        NETPACK_REQUIRE(spec.iterations >= 1,
                        "trace line " << line_no
                                      << ": iterations must be >= 1");
        jobs.push_back(std::move(spec));
    }
    return JobTrace(std::move(jobs));
}

} // namespace netpack
