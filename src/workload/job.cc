#include "workload/job.h"

#include <limits>

#include "common/check.h"

namespace netpack {

int
Placement::totalWorkers() const
{
    int total = 0;
    for (const auto &[server, count] : workers) {
        (void)server;
        total += count;
    }
    return total;
}

std::vector<ServerId>
Placement::psServers() const
{
    std::vector<ServerId> out;
    if (psServer.valid())
        out.push_back(psServer);
    out.insert(out.end(), extraPsServers.begin(), extraPsServers.end());
    return out;
}

bool
Placement::singleServer() const
{
    return workers.size() == 1 && psServer.valid() &&
           workers.begin()->first == psServer && extraPsServers.empty();
}

std::set<RackId>
Placement::workerRacks(const ClusterTopology &topo) const
{
    std::set<RackId> racks;
    for (const auto &[server, count] : workers) {
        (void)count;
        racks.insert(topo.rackOf(server));
    }
    return racks;
}

std::set<RackId>
Placement::allRacks(const ClusterTopology &topo) const
{
    std::set<RackId> racks = workerRacks(topo);
    for (ServerId ps : psServers())
        racks.insert(topo.rackOf(ps));
    return racks;
}

bool
Placement::singleRack(const ClusterTopology &topo) const
{
    return allRacks(topo).size() <= 1;
}

void
Placement::validate() const
{
    NETPACK_CHECK_MSG(!workers.empty(), "placement has no workers");
    for (const auto &[server, count] : workers) {
        NETPACK_CHECK_MSG(server.valid(), "invalid worker server");
        NETPACK_CHECK_MSG(count > 0, "non-positive worker count");
    }
    // A single-worker job needs no PS (it has no AllReduce); multi-worker
    // jobs must have one (MIP constraint Eq. 6).
    if (totalWorkers() > 1 && !singleServer()) {
        NETPACK_CHECK_MSG(psServer.valid(),
                          "multi-server job without a PS");
    }
    // Extra PSes require a primary and must be distinct servers.
    if (!extraPsServers.empty()) {
        NETPACK_CHECK_MSG(psServer.valid(),
                          "extra PSes without a primary PS");
        std::set<int> seen = {psServer.value};
        for (ServerId ps : extraPsServers) {
            NETPACK_CHECK_MSG(ps.valid(), "invalid extra PS server");
            NETPACK_CHECK_MSG(seen.insert(ps.value).second,
                              "duplicate PS server " << ps.value);
        }
    }
}

Seconds
iterationTime(const JobSpec &spec, const ModelProfile &model,
              const Placement &placement, Gbps throughput)
{
    NETPACK_CHECK(spec.gpuDemand >= 1);
    if (placement.singleServer() || placement.totalWorkers() <= 1)
        return model.computeTimePerIter;
    if (throughput <= 0.0)
        return std::numeric_limits<double>::infinity();
    // Backends move different multiples of the gradient per iteration
    // (ring reduce-scatter + all-gather moves 2(k-1)/k of it; PS and
    // switch-reduction push it once). A factor of 0 (single-server ring)
    // cannot happen here: singleServer() already returned above.
    const double factor = backendVolumeFactor(
        placement.backend, static_cast<int>(placement.workers.size()));
    const Seconds comm = units::transferTime(
        model.commVolumePerIter() * factor, throughput);
    return model.computeTimePerIter + comm;
}

} // namespace netpack
