/**
 * @file
 * Job traces: an ordered sequence of JobSpecs plus CSV persistence so a
 * generated trace can be inspected, archived, and replayed bit-for-bit.
 */

#ifndef NETPACK_WORKLOAD_TRACE_H
#define NETPACK_WORKLOAD_TRACE_H

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/job.h"

namespace netpack {

/** An immutable-ish sequence of job submissions ordered by submit time. */
class JobTrace
{
  public:
    JobTrace() = default;

    /** Take ownership of @p jobs; sorts by submit time and re-ids 0..n-1. */
    explicit JobTrace(std::vector<JobSpec> jobs);

    /** Append a job (re-sorts lazily on access). */
    void add(JobSpec spec);

    /** Jobs in submit-time order. */
    const std::vector<JobSpec> &jobs() const;

    /** Number of jobs. */
    std::size_t size() const { return jobs_.size(); }

    bool empty() const { return jobs_.empty(); }

    /** Job by position (submit-time order). */
    const JobSpec &at(std::size_t i) const;

    /** Sum of all jobs' GPU demands. */
    int totalGpuDemand() const;

    /** Largest single-job GPU demand. */
    int maxGpuDemand() const;

    /** Keep only the first @p n jobs (prefix in submit order). */
    JobTrace prefix(std::size_t n) const;

    /**
     * Serialize as CSV: id,model,gpus,submit_time,iterations,value with a
     * trailing ",backend" column only when any job uses a non-default
     * backend (keeps pure-PS traces byte-identical to older files).
     */
    void saveCsv(std::ostream &os) const;

    /** Parse the CSV produced by saveCsv; ConfigError on malformed rows. */
    static JobTrace loadCsv(std::istream &is);

  private:
    void normalize();

    std::vector<JobSpec> jobs_;
};

} // namespace netpack

#endif // NETPACK_WORKLOAD_TRACE_H
