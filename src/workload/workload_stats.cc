#include "workload/workload_stats.h"

#include <algorithm>

#include "common/check.h"

namespace netpack {

TraceStats
analyzeTrace(const JobTrace &trace, Gbps reference_rate,
             int gpus_per_server)
{
    NETPACK_REQUIRE(reference_rate > 0.0,
                    "reference_rate must be positive");
    NETPACK_REQUIRE(gpus_per_server >= 1,
                    "gpus_per_server must be >= 1");

    TraceStats stats;
    stats.jobs = trace.size();
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const JobSpec &job = trace.at(i);
        ++stats.demandHistogram[job.gpuDemand];
        ++stats.modelMix[job.modelName];
        stats.totalGpuDemand += job.gpuDemand;
        stats.maxGpuDemand = std::max(stats.maxGpuDemand, job.gpuDemand);
        if (job.gpuDemand > gpus_per_server)
            ++stats.multiServerJobs;

        const ModelProfile &model = ModelZoo::byName(job.modelName);
        const double iters = static_cast<double>(job.iterations);
        stats.computeDurations.add(iters * model.computeTimePerIter);
        stats.computeGpuSeconds += iters * model.computeTimePerIter *
                                   static_cast<double>(job.gpuDemand);
        if (job.gpuDemand > 1) {
            stats.commGpuSeconds +=
                iters *
                units::transferTime(model.commVolumePerIter(),
                                    reference_rate) *
                static_cast<double>(job.gpuDemand);
        }
        if (i > 0) {
            stats.interarrivals.add(job.submitTime -
                                    trace.at(i - 1).submitTime);
        }
    }
    return stats;
}

} // namespace netpack
