/**
 * @file
 * Adapter for Microsoft Philly-style production logs (Jeon et al.,
 * ATC'19 — the paper's "Real" trace, [19]). The paper constructs each
 * job's training time and GPU requirement from the log's submit/start/
 * end timestamps and GPU count, and assigns a random model from the
 * evaluation pool because the logs carry no model information; this
 * adapter performs exactly that conversion from a CSV export of the
 * log:
 *
 *     job_id,submit_time,start_time,end_time,gpus
 *
 * with times in epoch seconds (fractions allowed). Rows with missing or
 * inconsistent timestamps (killed/failed jobs) are skipped and counted.
 */

#ifndef NETPACK_WORKLOAD_PHILLY_LOG_H
#define NETPACK_WORKLOAD_PHILLY_LOG_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "workload/trace.h"

namespace netpack {

/** One parsed log row. */
struct PhillyLogRecord
{
    std::string jobName;
    Seconds submitTime = 0.0;
    Seconds startTime = 0.0;
    Seconds endTime = 0.0;
    int gpus = 0;
};

/** Result of parsing a log export. */
struct PhillyLogParse
{
    std::vector<PhillyLogRecord> records;
    /** Rows dropped for missing/inconsistent fields. */
    std::size_t skipped = 0;
};

/**
 * Parse a CSV export of the Philly log under the repo's tolerant-read
 * contract (the same one journal::JournalReader applies to event
 * lines): malformed *syntax* — wrong field counts, non-numeric cells —
 * raises ConfigError naming the line, because broken framing means the
 * file is not what it claims to be; semantically unusable rows
 * (end <= start, start < submit, non-positive GPUs, empty timestamp
 * cells as produced for killed jobs) are expected in real exports and
 * are skipped and counted in PhillyLogParse::skipped instead,
 * mirroring how trace studies sanitize the log. Blank lines and an
 * optional header row are ignored without counting.
 */
PhillyLogParse parsePhillyCsv(std::istream &is);

/** Conversion knobs from log records to a NetPack trace. */
struct PhillyConversionConfig
{
    /** Seed for the random model assignment (logs carry no model). */
    std::uint64_t modelSeed = 1;
    /**
     * Reference network rate used to convert a job's wall-clock run
     * time into an iteration count (compute + transfer at this rate).
     */
    Gbps referenceRate = 50.0;
    /** Clamp on any single job's GPU demand (0 = no clamp). */
    int maxGpuDemand = 0;
    /** Rebase submit times so the first job arrives at t = 0. */
    bool rebaseToZero = true;
};

/**
 * Convert parsed records into a replayable JobTrace: submit times come
 * from the log, durations (end - start) become iteration counts under a
 * randomly assigned model, exactly as Section 6.1 describes.
 */
JobTrace traceFromPhillyLog(const std::vector<PhillyLogRecord> &records,
                            const PhillyConversionConfig &config = {});

} // namespace netpack

#endif // NETPACK_WORKLOAD_PHILLY_LOG_H
