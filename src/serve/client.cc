#include "serve/client.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/check.h"
#include "common/net_io.h"

namespace netpack {
namespace serve {

ServeClient::ServeClient(std::uint16_t port)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    NETPACK_REQUIRE(fd_ >= 0, "serve client: socket() failed");
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    int rc;
    do {
        rc = ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        const int savedErrno = errno;
        ::close(fd_);
        fd_ = -1;
        throw ConfigError("serve client: cannot connect to port " +
                          std::to_string(port) + ": " +
                          std::strerror(savedErrno));
    }
}

ServeClient::~ServeClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::string
ServeClient::readLine()
{
    while (true) {
        const std::size_t eol = inbuf_.find('\n');
        if (eol != std::string::npos) {
            std::string line = inbuf_.substr(0, eol);
            inbuf_.erase(0, eol + 1);
            return line;
        }
        char buf[4096];
        const long n = recvSome(fd_, buf, sizeof buf);
        NETPACK_REQUIRE(n > 0,
                        "serve client: server closed the connection");
        inbuf_.append(buf, static_cast<std::size_t>(n));
    }
}

Response
ServeClient::call(const Request &request)
{
    return parseResponse(callRaw(serializeRequest(request)));
}

std::string
ServeClient::callRaw(const std::string &line)
{
    NETPACK_REQUIRE(sendAll(fd_, line + "\n"),
                    "serve client: send failed (server gone)");
    return readLine();
}

} // namespace serve
} // namespace netpack
