/**
 * @file
 * Blocking NDJSON client for the placement daemon: connect to a
 * loopback port, send one request line, read one response line. Used
 * by the netpack_serve CLI's client modes, the bench_serve load
 * generator, and the socket smoke tests — all of them speak through
 * the protocol codecs, so a response parses into the same Response the
 * server built.
 */

#ifndef NETPACK_SERVE_CLIENT_H
#define NETPACK_SERVE_CLIENT_H

#include <cstdint>
#include <string>

#include "serve/protocol.h"

namespace netpack {
namespace serve {

/** One connection to a PlacementServer. */
class ServeClient
{
  public:
    /** Connect to 127.0.0.1:@p port. ConfigError when refused. */
    explicit ServeClient(std::uint16_t port);

    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Send @p request and block for its response. ConfigError when
     * the server hangs up mid-exchange. */
    Response call(const Request &request);

    /** Send a raw line (malformed-input tests) and read the reply. */
    std::string callRaw(const std::string &line);

  private:
    /** Read up to the next newline (buffered). */
    std::string readLine();

    int fd_ = -1;
    std::string inbuf_;
};

} // namespace serve
} // namespace netpack

#endif // NETPACK_SERVE_CLIENT_H
