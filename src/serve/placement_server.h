/**
 * @file
 * The placement-as-a-service daemon (ROADMAP item 1). A
 * PlacementServer listens on a loopback socket, speaks the NDJSON
 * protocol (serve/protocol.h), and serializes every mutation through
 * one service thread that owns the PlacementEngine — the same
 * single-writer discipline that keeps the simulator deterministic.
 * Read-only what-if queries fan out across an exec::ThreadPool over
 * state clones, so they scale with cores without a lock.
 *
 * Durability: with a WAL configured, every place/depart is appended
 * and flushed BEFORE it is applied (serve/wal.h), so a kill -9 at any
 * instant recovers bit-identically on restart (--recover): restore the
 * latest snapshot, replay the tail through the same apply code path.
 *
 * Admission control: a bounded queue between the sockets and the
 * engine. Overflow requests get an explicit `rejected` response
 * (reason "queue_full") instead of unbounded buffering.
 *
 * Observability: per-request latency lands in `serve.request_us` /
 * `serve.<op>_us` quantile histograms (PR-7 convention), place latency
 * is checked against NETPACK_SLO_BATCH_US with flight-recorder
 * forensics on breach, and the OpenMetrics scrape endpoint
 * (NETPACK_METRICS_PORT) exposes all of it live.
 */

#ifndef NETPACK_SERVE_PLACEMENT_SERVER_H
#define NETPACK_SERVE_PLACEMENT_SERVER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/admission.h"
#include "serve/engine.h"
#include "serve/wal.h"

namespace netpack {
namespace exec {
class ThreadPool;
}

namespace serve {

/** Construction parameters of a PlacementServer. */
struct ServerConfig
{
    /** Loopback port to bind (0 = ephemeral; query with port()). */
    std::uint16_t port = 0;
    EngineConfig engine;
    /** WAL path; empty runs without durability (tests, benches). */
    std::string walPath;
    /**
     * Recover from an existing WAL at walPath. The WAL header must
     * match the engine config; a missing file starts fresh (so a
     * supervisor can always pass --recover). A torn tail is dropped by
     * an atomic rewrite before the WAL reopens for append.
     */
    bool recover = false;
    /** Admission queue bound (requests). */
    std::size_t admissionCapacity = 1024;
    /** Auto-snapshot every N mutations (0 = only on request). */
    std::uint64_t snapshotEvery = 0;
    /**
     * What-if query fan-out: -1 = pool with default thread count,
     * 0 = serial (in the service thread), N > 0 = pool of N.
     */
    int queryThreads = -1;
};

/** The daemon. Starts serving on construction; drains on stop(). */
class PlacementServer
{
  public:
    explicit PlacementServer(const ServerConfig &config);

    /** Stops (hard if still running) and joins the service thread. */
    ~PlacementServer();

    PlacementServer(const PlacementServer &) = delete;
    PlacementServer &operator=(const PlacementServer &) = delete;

    /** The bound port (resolves ephemeral binds). */
    std::uint16_t port() const { return port_; }

    /**
     * Request a graceful drain: stop accepting connections, answer
     * everything already admitted, flush, exit the service loop.
     * A client's `drain` op triggers the same path remotely.
     */
    void stop() { stop_.store(true, std::memory_order_relaxed); }

    /** Wait for the service loop to finish (after stop()/drain). */
    void join();

    /** True once the service loop has exited (e.g. a remote drain). */
    bool finished() const
    {
        return finished_.load(std::memory_order_acquire);
    }

    /** WAL sequence of the last applied mutation. */
    std::uint64_t seq() const
    {
        return seq_.load(std::memory_order_relaxed);
    }

    /** Requests processed (shed requests excluded). */
    std::uint64_t requestsServed() const
    {
        return requests_.load(std::memory_order_relaxed);
    }

    /**
     * The engine. Only safe once the service loop has exited (after
     * join()) — the daemon CLI reads the final state through this.
     */
    PlacementEngine &engine() { return *engine_; }

  private:
    /** One client connection and its partial-line read buffer. */
    struct Connection
    {
        int fd = -1;
        std::string inbuf;
        bool closed = false;
    };

    void serviceLoop();
    void acceptClients();
    void readClient(Connection &conn);
    void drainQueue();
    Response dispatch(const Request &request);
    void respond(int client, const Response &response);
    void maybeAutoSnapshot();

    ServerConfig config_;
    std::unique_ptr<PlacementEngine> engine_;
    std::unique_ptr<WalWriter> wal_;
    std::unique_ptr<exec::ThreadPool> pool_;
    AdmissionQueue queue_;

    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    std::atomic<bool> finished_{false};
    std::atomic<std::uint64_t> seq_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::uint64_t mutationsSinceSnapshot_ = 0;
    std::vector<Connection> conns_;
    std::thread thread_;
};

} // namespace serve
} // namespace netpack

#endif // NETPACK_SERVE_PLACEMENT_SERVER_H
