/**
 * @file
 * Admission control of the placement daemon: a bounded FIFO of parsed
 * requests. The service loop parses every complete line its sockets
 * deliver and offers the requests here; when clients pipeline faster
 * than the engine places, the queue fills and tryEnqueue refuses — the
 * server then sheds the request with an explicit `rejected` response
 * instead of buffering unboundedly or stalling the poll loop.
 *
 * Deliberately a plain single-threaded container (the service loop is
 * the only toucher) so shedding behaviour is deterministic and
 * unit-testable without sockets or timing.
 */

#ifndef NETPACK_SERVE_ADMISSION_H
#define NETPACK_SERVE_ADMISSION_H

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "serve/protocol.h"

namespace netpack {
namespace serve {

/** A parsed request plus the connection that must get its response. */
struct Envelope
{
    Request request;
    /** Client fd (transport detail; -1 in unit tests). */
    int client = -1;
};

/** Bounded request queue with shed accounting. */
class AdmissionQueue
{
  public:
    /** @param capacity maximum queued requests (>= 1). */
    explicit AdmissionQueue(std::size_t capacity) : capacity_(capacity) {}

    /** Admit @p envelope, or refuse (and count a shed) when full. */
    bool tryEnqueue(Envelope envelope)
    {
        if (queue_.size() >= capacity_) {
            ++shed_;
            return false;
        }
        queue_.push_back(std::move(envelope));
        return true;
    }

    /** Pop the oldest admitted request; nullopt when empty. */
    std::optional<Envelope> pop()
    {
        if (queue_.empty())
            return std::nullopt;
        Envelope envelope = std::move(queue_.front());
        queue_.pop_front();
        return envelope;
    }

    std::size_t size() const { return queue_.size(); }
    std::size_t capacity() const { return capacity_; }
    bool empty() const { return queue_.empty(); }

    /** Requests refused since construction. */
    std::uint64_t shedCount() const { return shed_; }

  private:
    std::size_t capacity_;
    std::deque<Envelope> queue_;
    std::uint64_t shed_ = 0;
};

} // namespace serve
} // namespace netpack

#endif // NETPACK_SERVE_ADMISSION_H
