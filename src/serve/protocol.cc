#include "serve/protocol.h"

#include <sstream>

#include "common/check.h"
#include "journal/serialize.h"
#include "obs/json.h"

namespace netpack {
namespace serve {

namespace {

/** The wire names, indexed by Op. */
constexpr const char *kOpNames[] = {
    "place", "depart", "query", "stats", "snapshot", "drain",
};

Op
opByName(const std::string &name)
{
    for (std::size_t i = 0; i < std::size(kOpNames); ++i) {
        if (name == kOpNames[i])
            return static_cast<Op>(i);
    }
    throw ConfigError("unknown serve op '" + name + "'");
}

void
writeJobIds(obs::JsonWriter &json, const std::vector<JobId> &ids)
{
    json.beginArray();
    for (JobId id : ids)
        json.value(id.value);
    json.endArray();
}

std::vector<JobId>
readJobIds(const obs::JsonValue &value)
{
    std::vector<JobId> ids;
    for (const obs::JsonValue &id : value.items())
        ids.push_back(JobId(static_cast<int>(id.asInt64())));
    return ids;
}

} // namespace

const char *
opName(Op op)
{
    return kOpNames[static_cast<int>(op)];
}

std::string
serializeRequest(const Request &request)
{
    std::ostringstream line;
    obs::JsonWriter json(line, 0);
    json.beginObject();
    json.kv("op", opName(request.op));
    json.kv("id", request.id);
    if (request.op == Op::Place || request.op == Op::Query) {
        json.key("jobs");
        json.beginArray();
        for (const JobSpec &spec : request.jobs)
            journal::writeJobSpec(json, spec);
        json.endArray();
    } else if (request.op == Op::Depart) {
        json.key("jobs");
        writeJobIds(json, request.departs);
    }
    json.endObject();
    return line.str();
}

Request
parseRequest(std::string_view line)
{
    const obs::JsonValue value = obs::parseJson(line);
    NETPACK_REQUIRE(value.isObject(), "serve request must be an object");
    Request request;
    request.op = opByName(value.at("op").asString());
    request.id = value.at("id").asInt64();
    if (request.op == Op::Place || request.op == Op::Query) {
        for (const obs::JsonValue &spec : value.at("jobs").items())
            request.jobs.push_back(journal::readJobSpec(spec));
    } else if (request.op == Op::Depart) {
        request.departs = readJobIds(value.at("jobs"));
    }
    return request;
}

std::string
serializeResponse(const Response &response)
{
    std::ostringstream line;
    obs::JsonWriter json(line, 0);
    json.beginObject();
    json.kv("id", response.id);
    json.kv("ok", response.ok);
    if (response.rejected) {
        json.kv("rejected", true);
        json.kv("reason", response.error);
    } else if (!response.ok) {
        json.kv("error", response.error);
    }
    if (!response.placed.empty()) {
        json.key("placed");
        json.beginArray();
        for (const PlacedJob &job : response.placed)
            journal::writePlacedJob(json, job);
        json.endArray();
    }
    if (!response.deferred.empty()) {
        json.key("deferred");
        writeJobIds(json, response.deferred);
    }
    if (!response.queryResults.empty()) {
        json.key("results");
        json.beginArray();
        for (const QueryResult &result : response.queryResults) {
            json.beginObject();
            json.kv("job", result.job.value);
            json.kv("placeable", result.placeable);
            if (result.placeable) {
                json.key("placement");
                journal::writePlacement(json, result.placement);
            }
            json.kv("comm_time", result.commTime);
            json.endObject();
        }
        json.endArray();
    }
    if (response.hasStats) {
        const StatsBody &stats = response.stats;
        json.key("stats");
        json.beginObject();
        json.kv("seq", stats.seq);
        json.kv("running_jobs", stats.runningJobs);
        json.kv("free_gpus", stats.freeGpus);
        json.kv("requests", stats.requests);
        json.kv("placed_jobs", stats.placedJobs);
        json.kv("departed_jobs", stats.departedJobs);
        json.kv("deferred_jobs", stats.deferredJobs);
        json.kv("rejected", stats.rejected);
        json.kv("digest", stats.digest);
        json.endObject();
    }
    if (response.seq != 0)
        json.kv("seq", response.seq);
    json.endObject();
    return line.str();
}

Response
parseResponse(std::string_view line)
{
    const obs::JsonValue value = obs::parseJson(line);
    NETPACK_REQUIRE(value.isObject(), "serve response must be an object");
    Response response;
    response.id = value.at("id").asInt64();
    response.ok = value.at("ok").asBool();
    if (const obs::JsonValue *rejected = value.find("rejected"))
        response.rejected = rejected->asBool();
    if (const obs::JsonValue *reason = value.find("reason"))
        response.error = reason->asString();
    else if (const obs::JsonValue *error = value.find("error"))
        response.error = error->asString();
    if (const obs::JsonValue *placed = value.find("placed")) {
        for (const obs::JsonValue &job : placed->items())
            response.placed.push_back(journal::readPlacedJob(job));
    }
    if (const obs::JsonValue *deferred = value.find("deferred"))
        response.deferred = readJobIds(*deferred);
    if (const obs::JsonValue *results = value.find("results")) {
        for (const obs::JsonValue &entry : results->items()) {
            QueryResult result;
            result.job =
                JobId(static_cast<int>(entry.at("job").asInt64()));
            result.placeable = entry.at("placeable").asBool();
            if (result.placeable)
                result.placement =
                    journal::readPlacement(entry.at("placement"));
            result.commTime = journal::readDouble(entry.at("comm_time"));
            response.queryResults.push_back(std::move(result));
        }
    }
    if (const obs::JsonValue *stats = value.find("stats")) {
        response.hasStats = true;
        StatsBody &body = response.stats;
        body.seq = stats->at("seq").asUInt64();
        body.runningJobs = stats->at("running_jobs").asInt64();
        body.freeGpus = stats->at("free_gpus").asInt64();
        body.requests = stats->at("requests").asUInt64();
        body.placedJobs = stats->at("placed_jobs").asUInt64();
        body.departedJobs = stats->at("departed_jobs").asUInt64();
        body.deferredJobs = stats->at("deferred_jobs").asUInt64();
        body.rejected = stats->at("rejected").asUInt64();
        body.digest = stats->at("digest").asString();
    }
    if (const obs::JsonValue *seq = value.find("seq"))
        response.seq = seq->asUInt64();
    return response;
}

} // namespace serve
} // namespace netpack
