/**
 * @file
 * The placement daemon's state machine, decoupled from sockets so tests
 * drive it directly. A PlacementEngine owns the live topology, the GPU
 * ledger, the PlacementContext, and the serving placer; the same
 * applyPlace/applyDepart methods execute both live requests and WAL
 * replay, which is what makes recovery bit-identical — there is exactly
 * one code path that mutates state.
 *
 * Not thread-safe: the server serializes all mutations through its
 * single service thread. Read-only what-if queries run on clones
 * (exportState/importState, the PortfolioPlacer idiom) and can fan out
 * across an exec::ThreadPool without touching the live state.
 */

#ifndef NETPACK_SERVE_ENGINE_H
#define NETPACK_SERVE_ENGINE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/placement_context.h"
#include "placement/placer.h"
#include "serve/protocol.h"
#include "serve/wal.h"
#include "topology/cluster.h"
#include "topology/gpu_ledger.h"

namespace netpack {
namespace exec {
class ThreadPool;
}

namespace serve {

/** Construction parameters of a PlacementEngine. */
struct EngineConfig
{
    ClusterConfig cluster;
    /** Serving placer (makePlacerByName). */
    std::string placer = "NetPack";
    /** RNG seed for stochastic placers. */
    std::uint64_t seed = 0;
    /**
     * Intra-epoch worker count handed to the placer
     * (makePlacerByName): parallelizes NetPack's per-table scoring
     * without changing any decision. What-if placers inherit it too;
     * when a what-if runs on a query-pool task the placer degrades to
     * serial by itself.
     */
    int jobs = 1;
};

/** Live placement state + the deterministic mutation/query paths. */
class PlacementEngine
{
  public:
    explicit PlacementEngine(const EngineConfig &config);

    const EngineConfig &config() const { return config_; }
    const ClusterTopology &topology() const { return topo_; }
    PlacementContext &context() { return ctx_; }
    const GpuLedger &ledger() const { return gpus_; }

    /**
     * Validate a place batch: ids must be valid, unique within the
     * batch, and untracked; models known; gpuDemand >= 1. ConfigError
     * on violation — called BEFORE the WAL append so invalid requests
     * never enter the journal.
     */
    void validatePlace(const std::vector<JobSpec> &jobs) const;

    /** Validate a depart batch: ids unique and currently tracked. */
    void validateDepart(const std::vector<JobId> &ids) const;

    /**
     * Place @p jobs through the serving placer. Deferred jobs are
     * returned, not retained (the daemon has no arrival queue — retry
     * is the client's policy). Shared by live serving and WAL replay.
     */
    BatchResult applyPlace(const std::vector<JobSpec> &jobs);

    /** Release @p ids (context + GPU ledger). */
    void applyDepart(const std::vector<JobId> &ids);

    /**
     * Read-only what-if: for each candidate independently, clone the
     * live state and ask the placer where the job would go and what
     * communication time it would see. Results in request order
     * (deterministic for any pool size); the live context, ledger, and
     * placer are never touched. @p pool null = run serially.
     */
    std::vector<QueryResult> whatIf(const std::vector<JobSpec> &candidates,
                                    exec::ThreadPool *pool);

    /** Capture the full engine state at WAL sequence @p seq. */
    ServeSnapshot snapshot(std::uint64_t seq) const;

    /** Restore a captured state (crash recovery). */
    void restore(const ServeSnapshot &snap);

    /**
     * Canonical JSON of the complete serialized state (schema
     * "netpack.serve_state/1"): context, GPU holdings, counters, and
     * @p seq. Equal states produce equal bytes — the CI kill/restart
     * check diffs two of these files.
     */
    std::string canonicalState(std::uint64_t seq) const;

    /** FNV-1a 64-bit digest of canonicalState (hex, 16 chars). */
    std::string stateDigest(std::uint64_t seq) const;

    /** Jobs currently placed. */
    std::int64_t runningJobs() const
    {
        return static_cast<std::int64_t>(ctx_.jobCount());
    }

    /** Free GPUs cluster-wide. */
    std::int64_t freeGpus() const { return gpus_.totalFreeGpus(); }

    /** Lifetime jobs placed (replay restores these via snapshots). */
    std::uint64_t placedJobs() const { return placedJobs_; }
    std::uint64_t departedJobs() const { return departedJobs_; }
    std::uint64_t deferredJobs() const { return deferredJobs_; }

  private:
    EngineConfig config_;
    ClusterTopology topo_;
    GpuLedger gpus_;
    PlacementContext ctx_;
    std::unique_ptr<Placer> placer_;

    std::uint64_t placedJobs_ = 0;
    std::uint64_t departedJobs_ = 0;
    std::uint64_t deferredJobs_ = 0;
};

/**
 * Rebuild an engine from a loaded WAL: restore the latest snapshot (if
 * any), then re-execute every later place/depart through the same
 * deterministic apply paths. Returns the engine and the sequence of the
 * last applied mutation via @p lastSeq.
 */
std::unique_ptr<PlacementEngine> recoverEngine(const WalLoad &load,
                                               std::uint64_t &lastSeq);

} // namespace serve
} // namespace netpack

#endif // NETPACK_SERVE_ENGINE_H
