#include "serve/wal.h"

#include <sstream>

#include <cstdio>

#include "common/check.h"
#include "journal/serialize.h"
#include "obs/json.h"

namespace netpack {
namespace serve {

namespace {

constexpr const char *kKindNames[] = {"place", "depart", "snapshot"};

void
writeSnapshotBody(obs::JsonWriter &json, const ServeSnapshot &snap)
{
    json.beginObject();
    json.kv("seq", snap.seq);
    json.key("context");
    journal::writeContextState(json, snap.context);
    json.key("gpu_holdings");
    journal::writeGpuHoldings(json, snap.holdings);
    if (snap.hasPlacerRng) {
        json.key("placer_rng");
        journal::writeRngState(json, snap.placerRng);
    }
    json.kv("placed_jobs", snap.placedJobs);
    json.kv("departed_jobs", snap.departedJobs);
    json.kv("deferred_jobs", snap.deferredJobs);
    json.endObject();
}

ServeSnapshot
readSnapshotBody(const obs::JsonValue &value)
{
    ServeSnapshot snap;
    snap.seq = value.at("seq").asUInt64();
    snap.context = journal::readContextState(value.at("context"));
    snap.holdings = journal::readGpuHoldings(value.at("gpu_holdings"));
    if (const obs::JsonValue *rng = value.find("placer_rng")) {
        snap.hasPlacerRng = true;
        snap.placerRng = journal::readRngState(*rng);
    }
    snap.placedJobs = value.at("placed_jobs").asUInt64();
    snap.departedJobs = value.at("departed_jobs").asUInt64();
    snap.deferredJobs = value.at("deferred_jobs").asUInt64();
    return snap;
}

WalEvent
parseEventLine(const std::string &line)
{
    const obs::JsonValue value = obs::parseJson(line);
    NETPACK_REQUIRE(value.isObject(), "WAL event must be an object");
    WalEvent event;
    const std::string &kind = value.at("kind").asString();
    if (kind == "place") {
        event.kind = WalEvent::Kind::Place;
        event.seq = value.at("seq").asUInt64();
        for (const obs::JsonValue &spec : value.at("jobs").items())
            event.jobs.push_back(journal::readJobSpec(spec));
    } else if (kind == "depart") {
        event.kind = WalEvent::Kind::Depart;
        event.seq = value.at("seq").asUInt64();
        for (const obs::JsonValue &id : value.at("jobs").items())
            event.departs.push_back(
                JobId(static_cast<int>(id.asInt64())));
    } else if (kind == "snapshot") {
        event.kind = WalEvent::Kind::Snapshot;
        event.snapshot = std::make_shared<ServeSnapshot>(
            readSnapshotBody(value.at("state")));
        event.seq = event.snapshot->seq;
    } else {
        throw ConfigError("unknown WAL event kind '" + kind + "'");
    }
    return event;
}

} // namespace

std::string
serializeWalHeader(const WalHeader &header)
{
    std::ostringstream line;
    obs::JsonWriter json(line, 0);
    json.beginObject();
    json.kv("schema", kServeWalSchema);
    json.kv("kind", "header");
    json.key("cluster");
    journal::writeClusterConfig(json, header.cluster);
    json.kv("placer", header.placer);
    json.kv("seed", header.seed);
    json.endObject();
    return line.str();
}

std::string
serializeWalEvent(const WalEvent &event)
{
    std::ostringstream line;
    obs::JsonWriter json(line, 0);
    json.beginObject();
    json.kv("kind", kKindNames[static_cast<int>(event.kind)]);
    switch (event.kind) {
      case WalEvent::Kind::Place:
        json.kv("seq", event.seq);
        json.key("jobs");
        json.beginArray();
        for (const JobSpec &spec : event.jobs)
            journal::writeJobSpec(json, spec);
        json.endArray();
        break;
      case WalEvent::Kind::Depart:
        json.kv("seq", event.seq);
        json.key("jobs");
        json.beginArray();
        for (JobId id : event.departs)
            json.value(id.value);
        json.endArray();
        break;
      case WalEvent::Kind::Snapshot:
        NETPACK_CHECK_MSG(event.snapshot != nullptr,
                          "snapshot event without payload");
        json.key("state");
        writeSnapshotBody(json, *event.snapshot);
        break;
    }
    json.endObject();
    return line.str();
}

WalWriter::WalWriter(const std::string &path, const WalHeader &header)
    : os_(path, std::ios::trunc), path_(path)
{
    NETPACK_REQUIRE(os_.good(), "cannot open WAL for writing: " << path);
    os_ << serializeWalHeader(header) << '\n';
    os_.flush();
    NETPACK_REQUIRE(os_.good(), "WAL header write failed: " << path);
}

WalWriter::WalWriter(const std::string &path, bool append)
    : os_(path, append ? std::ios::app : std::ios::trunc), path_(path)
{
    NETPACK_REQUIRE(append, "use the header constructor for fresh WALs");
    NETPACK_REQUIRE(os_.good(), "cannot reopen WAL for append: " << path);
}

void
WalWriter::writeLine(const std::string &line)
{
    os_ << line << '\n';
    // Write-ahead guarantee: the event must be durable before the
    // mutation it describes is applied.
    os_.flush();
    NETPACK_REQUIRE(os_.good(), "WAL append failed: " << path_);
    ++eventsWritten_;
}

void
WalWriter::appendPlace(std::uint64_t seq, const std::vector<JobSpec> &jobs)
{
    WalEvent event;
    event.kind = WalEvent::Kind::Place;
    event.seq = seq;
    event.jobs = jobs;
    writeLine(serializeWalEvent(event));
}

void
WalWriter::appendDepart(std::uint64_t seq, const std::vector<JobId> &ids)
{
    WalEvent event;
    event.kind = WalEvent::Kind::Depart;
    event.seq = seq;
    event.departs = ids;
    writeLine(serializeWalEvent(event));
}

void
WalWriter::appendSnapshot(const ServeSnapshot &snap)
{
    std::ostringstream line;
    obs::JsonWriter json(line, 0);
    json.beginObject();
    json.kv("kind", "snapshot");
    json.key("state");
    writeSnapshotBody(json, snap);
    json.endObject();
    writeLine(line.str());
}

WalLoad
loadWal(const std::string &path)
{
    std::ifstream is(path);
    NETPACK_REQUIRE(is.good(), "cannot open WAL: " << path);

    WalLoad load;
    std::string line;
    NETPACK_REQUIRE(std::getline(is, line),
                    "WAL is empty (no header): " << path);
    // The header must parse: a file without one is not a WAL at all.
    const obs::JsonValue header = obs::parseJson(line);
    NETPACK_REQUIRE(header.isObject() &&
                        header.at("schema").asString() == kServeWalSchema,
                    "not a serve WAL (bad schema): " << path);
    load.header.cluster =
        journal::readClusterConfig(header.at("cluster"));
    load.header.placer = header.at("placer").asString();
    load.header.seed = header.at("seed").asUInt64();

    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        try {
            load.events.push_back(parseEventLine(line));
        } catch (const ConfigError &err) {
            // Torn tail: a crash mid-append left a partial line. Keep
            // the completed prefix; the caller rewrites the file.
            load.torn = true;
            load.tornError = err.what();
            break;
        }
    }
    return load;
}

void
rewriteWal(const std::string &path, const WalHeader &header,
           const std::vector<WalEvent> &events)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        NETPACK_REQUIRE(os.good(), "cannot open WAL rewrite: " << tmp);
        os << serializeWalHeader(header) << '\n';
        for (const WalEvent &event : events)
            os << serializeWalEvent(event) << '\n';
        os.flush();
        NETPACK_REQUIRE(os.good(), "WAL rewrite failed: " << tmp);
    }
    NETPACK_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
                    "cannot rename " << tmp << " over " << path);
}

} // namespace serve
} // namespace netpack
