#include "serve/engine.h"

#include <cstdio>
#include <sstream>
#include <unordered_set>

#include "common/check.h"
#include "exec/deterministic_map.h"
#include "journal/serialize.h"
#include "obs/json.h"
#include "placement/baselines.h"
#include "workload/models.h"

namespace netpack {
namespace serve {

PlacementEngine::PlacementEngine(const EngineConfig &config)
    : config_(config), topo_(config.cluster), gpus_(topo_), ctx_(topo_),
      placer_(makePlacerByName(config.placer, config.seed, config.jobs))
{
}

void
PlacementEngine::validatePlace(const std::vector<JobSpec> &jobs) const
{
    NETPACK_REQUIRE(!jobs.empty(), "place request carries no jobs");
    std::unordered_set<int> seen;
    for (const JobSpec &spec : jobs) {
        NETPACK_REQUIRE(spec.id.valid(),
                        "place: job id " << spec.id.value << " is invalid");
        NETPACK_REQUIRE(seen.insert(spec.id.value).second,
                        "place: duplicate job id " << spec.id.value
                                                   << " in batch");
        NETPACK_REQUIRE(!ctx_.tracks(spec.id),
                        "place: job " << spec.id.value
                                      << " is already placed");
        NETPACK_REQUIRE(ModelZoo::contains(spec.modelName),
                        "place: unknown model '" << spec.modelName
                                                 << "' for job "
                                                 << spec.id.value);
        NETPACK_REQUIRE(spec.gpuDemand >= 1,
                        "place: job " << spec.id.value
                                      << " demands " << spec.gpuDemand
                                      << " GPUs (want >= 1)");
    }
}

void
PlacementEngine::validateDepart(const std::vector<JobId> &ids) const
{
    NETPACK_REQUIRE(!ids.empty(), "depart request carries no jobs");
    std::unordered_set<int> seen;
    for (JobId id : ids) {
        NETPACK_REQUIRE(seen.insert(id.value).second,
                        "depart: duplicate job id " << id.value);
        NETPACK_REQUIRE(ctx_.tracks(id),
                        "depart: job " << id.value << " is not placed");
    }
}

BatchResult
PlacementEngine::applyPlace(const std::vector<JobSpec> &jobs)
{
    BatchResult result = placer_->placeBatch(jobs, topo_, gpus_, ctx_);
    placedJobs_ += result.placed.size();
    deferredJobs_ += result.deferred.size();
    return result;
}

void
PlacementEngine::applyDepart(const std::vector<JobId> &ids)
{
    for (JobId id : ids) {
        ctx_.removeJob(id);
        gpus_.releaseJob(id);
        ++departedJobs_;
    }
}

std::vector<QueryResult>
PlacementEngine::whatIf(const std::vector<JobSpec> &candidates,
                        exec::ThreadPool *pool)
{
    std::vector<QueryResult> results(candidates.size());
    if (candidates.empty())
        return results;

    // One base capture serves every candidate; each task works on a
    // private clone so the live state is never perturbed (same idiom
    // as PortfolioPlacer's lineup evaluation).
    const PlacementContext::State base = ctx_.exportState();

    const auto evaluate = [&](std::size_t i) {
        const JobSpec &candidate = candidates[i];
        PlacementContext clone(topo_);
        clone.importState(base);
        GpuLedger ledger = gpus_;
        // Fresh placer per task: stochastic placers draw from a private
        // stream, so what-if answers are deterministic in request order
        // (though not necessarily what a subsequent place would pick).
        std::unique_ptr<Placer> placer =
            makePlacerByName(config_.placer, config_.seed, config_.jobs);
        const std::vector<JobSpec> batch{candidate};
        BatchResult outcome =
            placer->placeBatch(batch, topo_, ledger, clone);
        QueryResult &result = results[i];
        result.job = candidate.id;
        if (!outcome.placed.empty()) {
            result.placeable = true;
            result.placement = outcome.placed.front().placement;
            result.commTime =
                placement_util::batchCommTime(batch, clone);
        }
    };

    exec::deterministicMap(pool, candidates.size(), evaluate);
    return results;
}

ServeSnapshot
PlacementEngine::snapshot(std::uint64_t seq) const
{
    ServeSnapshot snap;
    snap.seq = seq;
    snap.context = ctx_.exportState();
    snap.holdings = gpus_.holdings();
    snap.hasPlacerRng = placer_->captureRngState(snap.placerRng);
    snap.placedJobs = placedJobs_;
    snap.departedJobs = departedJobs_;
    snap.deferredJobs = deferredJobs_;
    return snap;
}

void
PlacementEngine::restore(const ServeSnapshot &snap)
{
    ctx_.importState(snap.context);
    // Replaying holdings through allocate() reproduces the ledger
    // exactly (GpuLedger::holdings contract).
    GpuLedger fresh(topo_);
    for (const GpuLedger::Holding &holding : snap.holdings) {
        for (const auto &[server, count] : holding.servers)
            fresh.allocate(server, holding.job, count);
    }
    gpus_ = fresh;
    if (snap.hasPlacerRng)
        placer_->restoreRngState(snap.placerRng);
    placedJobs_ = snap.placedJobs;
    departedJobs_ = snap.departedJobs;
    deferredJobs_ = snap.deferredJobs;
}

std::string
PlacementEngine::canonicalState(std::uint64_t seq) const
{
    std::ostringstream out;
    obs::JsonWriter json(out, 0);
    json.beginObject();
    json.kv("schema", "netpack.serve_state/1");
    json.kv("seq", seq);
    json.kv("placer", config_.placer);
    json.kv("placed_jobs", placedJobs_);
    json.kv("departed_jobs", departedJobs_);
    json.kv("deferred_jobs", deferredJobs_);
    json.key("context");
    journal::writeContextState(json, ctx_.exportState());
    json.key("gpu_holdings");
    journal::writeGpuHoldings(json, gpus_.holdings());
    json.endObject();
    return out.str();
}

std::string
PlacementEngine::stateDigest(std::uint64_t seq) const
{
    const std::string state = canonicalState(seq);
    // FNV-1a, 64-bit: deterministic, dependency-free, and plenty for a
    // bit-identity regression check (a mismatch means the full states
    // differ; the states themselves are diffable via --state-out).
    std::uint64_t hash = 14695981039346656037ull;
    for (const char c : state) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

std::unique_ptr<PlacementEngine>
recoverEngine(const WalLoad &load, std::uint64_t &lastSeq)
{
    EngineConfig config;
    config.cluster = load.header.cluster;
    config.placer = load.header.placer;
    config.seed = load.header.seed;
    auto engine = std::make_unique<PlacementEngine>(config);
    lastSeq = 0;

    // Start from the latest snapshot (it folds in everything before
    // it), then re-execute the tail through the live apply paths.
    std::size_t replayFrom = 0;
    for (std::size_t i = 0; i < load.events.size(); ++i) {
        if (load.events[i].kind == WalEvent::Kind::Snapshot)
            replayFrom = i + 1;
    }
    if (replayFrom > 0) {
        const WalEvent &snap = load.events[replayFrom - 1];
        engine->restore(*snap.snapshot);
        lastSeq = snap.seq;
    }
    for (std::size_t i = replayFrom; i < load.events.size(); ++i) {
        const WalEvent &event = load.events[i];
        switch (event.kind) {
          case WalEvent::Kind::Place:
            engine->applyPlace(event.jobs);
            lastSeq = event.seq;
            break;
          case WalEvent::Kind::Depart:
            engine->applyDepart(event.departs);
            lastSeq = event.seq;
            break;
          case WalEvent::Kind::Snapshot:
            break; // unreachable: replayFrom is past the last snapshot
        }
    }
    return engine;
}

} // namespace serve
} // namespace netpack
