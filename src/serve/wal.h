/**
 * @file
 * Write-ahead log of the placement daemon (schema
 * "netpack.serve_journal/1"). One JSONL file: a header line embedding
 * the cluster config, placer name, and seed — the WAL is self-contained
 * enough to rebuild the engine — followed by one event line per
 * mutating request (place, depart) and periodic full-state snapshot
 * events that bound replay cost.
 *
 * Durability contract: the server appends AND flushes an event before
 * applying its mutation, so a kill -9 at any instant leaves a journal
 * whose completed prefix describes exactly the applied state (plus at
 * most one un-applied trailing event, which replay simply applies).
 * Loading is torn-tail tolerant — the same contract as
 * journal::record's tryLoad: the first malformed line ends the load,
 * keeping the parseable prefix. Recovery rewrites the journal to that
 * prefix atomically (tmp + rename) before reopening it for append.
 */

#ifndef NETPACK_SERVE_WAL_H
#define NETPACK_SERVE_WAL_H

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/placement_context.h"
#include "topology/cluster.h"
#include "topology/gpu_ledger.h"
#include "workload/job.h"

namespace netpack {
namespace serve {

/** Version tag of the serve WAL format. */
inline constexpr const char *kServeWalSchema = "netpack.serve_journal/1";

/** The self-describing first line of every WAL. */
struct WalHeader
{
    ClusterConfig cluster;
    /** Factory name of the serving placer (makePlacerByName). */
    std::string placer = "NetPack";
    /** RNG seed for stochastic placers. */
    std::uint64_t seed = 0;
};

/**
 * Full engine state at one WAL sequence point. Restoring it and
 * re-executing the events after it reproduces the live engine
 * bit-identically (the placer path is deterministic; stochastic
 * placers carry their RNG stream here).
 */
struct ServeSnapshot
{
    /** Sequence of the last mutation folded into this snapshot. */
    std::uint64_t seq = 0;
    PlacementContext::State context;
    std::vector<GpuLedger::Holding> holdings;
    bool hasPlacerRng = false;
    Rng::State placerRng;
    /** Lifetime counters (part of the bit-identity surface). */
    std::uint64_t placedJobs = 0;
    std::uint64_t departedJobs = 0;
    std::uint64_t deferredJobs = 0;
};

/** One parsed WAL event line. */
struct WalEvent
{
    enum class Kind
    {
        Place,
        Depart,
        Snapshot,
    };
    Kind kind = Kind::Place;
    /** Mutation sequence (snapshots carry the seq they cover). */
    std::uint64_t seq = 0;
    /** Place: the requested batch, verbatim. */
    std::vector<JobSpec> jobs;
    /** Depart: the released job ids. */
    std::vector<JobId> departs;
    /** Snapshot payload (behind a pointer: events stay cheap to copy). */
    std::shared_ptr<ServeSnapshot> snapshot;
};

/**
 * Append-side of the WAL. Every append flushes before returning —
 * that is the write-ahead guarantee the daemon's crash recovery
 * depends on, and the throughput cost is what bench_serve measures.
 */
class WalWriter
{
  public:
    /** Open @p path fresh (truncate) and write the header line. */
    WalWriter(const std::string &path, const WalHeader &header);

    /**
     * Reopen an existing (already rewritten-clean) WAL for append.
     * The header must already be on disk; nothing is written.
     */
    WalWriter(const std::string &path, bool append);

    WalWriter(const WalWriter &) = delete;
    WalWriter &operator=(const WalWriter &) = delete;

    /** Append + flush one place event. */
    void appendPlace(std::uint64_t seq, const std::vector<JobSpec> &jobs);

    /** Append + flush one depart event. */
    void appendDepart(std::uint64_t seq, const std::vector<JobId> &ids);

    /** Append + flush one snapshot event. */
    void appendSnapshot(const ServeSnapshot &snap);

    /** Event lines appended by this writer (header excluded). */
    std::uint64_t eventsWritten() const { return eventsWritten_; }

  private:
    void writeLine(const std::string &line);

    std::ofstream os_;
    std::string path_;
    std::uint64_t eventsWritten_ = 0;
};

/** Result of loading a WAL file. */
struct WalLoad
{
    WalHeader header;
    /** The parseable event prefix, in file order. */
    std::vector<WalEvent> events;
    /** Whether a torn/malformed tail was dropped. */
    bool torn = false;
    /** The parse error that ended the load (diagnostics). */
    std::string tornError;
};

/**
 * Load @p path tolerantly: a malformed header is a ConfigError (the
 * file is not a WAL), but a malformed event line ends the load and
 * keeps the completed prefix — the torn-tail contract. Serialization
 * helpers are exposed for tests that craft torn files byte-exactly.
 */
WalLoad loadWal(const std::string &path);

/**
 * Atomically rewrite @p path to hold exactly @p header + @p events
 * (tmp + rename, same idiom as journal::record resume). Recovery calls
 * this to drop a torn tail before reopening the WAL for append.
 */
void rewriteWal(const std::string &path, const WalHeader &header,
                const std::vector<WalEvent> &events);

/** One event as its exact WAL line (no trailing newline). */
std::string serializeWalEvent(const WalEvent &event);

/** The header as its exact WAL line (no trailing newline). */
std::string serializeWalHeader(const WalHeader &header);

} // namespace serve
} // namespace netpack

#endif // NETPACK_SERVE_WAL_H
