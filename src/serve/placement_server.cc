#include "serve/placement_server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <fstream>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/check.h"
#include "common/log.h"
#include "common/net_io.h"
#include "exec/thread_pool.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace netpack {
namespace serve {

namespace {

bool
fileExists(const std::string &path)
{
    std::ifstream is(path);
    return is.good();
}

double
microsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

PlacementServer::PlacementServer(const ServerConfig &config)
    : config_(config), queue_(config.admissionCapacity)
{
    NETPACK_REQUIRE(config.admissionCapacity >= 1,
                    "admission capacity must be >= 1");

    if (!config_.walPath.empty() && config_.recover &&
        fileExists(config_.walPath)) {
        WalLoad load = loadWal(config_.walPath);
        // The WAL is authoritative about what it journals: a config
        // mismatch would silently replay into a different cluster.
        WalHeader expected;
        expected.cluster = config_.engine.cluster;
        expected.placer = config_.engine.placer;
        expected.seed = config_.engine.seed;
        NETPACK_REQUIRE(serializeWalHeader(load.header) ==
                            serializeWalHeader(expected),
                        "WAL header does not match the server config: "
                            << config_.walPath);
        std::uint64_t lastSeq = 0;
        engine_ = recoverEngine(load, lastSeq);
        seq_.store(lastSeq, std::memory_order_relaxed);
        if (load.torn) {
            NETPACK_LOG(Warn, "serve: dropped torn WAL tail ("
                                  << load.tornError << ")");
            rewriteWal(config_.walPath, load.header, load.events);
        }
        wal_ = std::make_unique<WalWriter>(config_.walPath,
                                           /*append=*/true);
        NETPACK_LOG(Info, "serve: recovered " << load.events.size()
                                              << " WAL events, seq "
                                              << lastSeq);
    } else {
        engine_ = std::make_unique<PlacementEngine>(config_.engine);
        if (!config_.walPath.empty()) {
            WalHeader header;
            header.cluster = config_.engine.cluster;
            header.placer = config_.engine.placer;
            header.seed = config_.engine.seed;
            wal_ = std::make_unique<WalWriter>(config_.walPath, header);
        }
    }

    if (config_.queryThreads != 0) {
        pool_ = std::make_unique<exec::ThreadPool>(
            config_.queryThreads < 0
                ? 0
                : static_cast<std::size_t>(config_.queryThreads));
    }

    listenFd_ = listenLoopback(config_.port, 64, "serve", port_);
    // Non-blocking accept: the service loop drains a whole connection
    // burst per poll wakeup without risking a block on the last one.
    ::fcntl(listenFd_, F_SETFL,
            ::fcntl(listenFd_, F_GETFL, 0) | O_NONBLOCK);
    thread_ = std::thread([this] { serviceLoop(); });
}

PlacementServer::~PlacementServer()
{
    stop();
    join();
    if (listenFd_ >= 0)
        ::close(listenFd_);
}

void
PlacementServer::join()
{
    if (thread_.joinable())
        thread_.join();
}

void
PlacementServer::serviceLoop()
{
    while (true) {
        const bool draining = stop_.load(std::memory_order_relaxed);
        std::vector<pollfd> pfds;
        if (!draining) {
            pollfd listen;
            listen.fd = listenFd_;
            listen.events = POLLIN;
            listen.revents = 0;
            pfds.push_back(listen);
        }
        for (const Connection &conn : conns_) {
            pollfd pfd;
            pfd.fd = conn.fd;
            pfd.events = POLLIN;
            pfd.revents = 0;
            pfds.push_back(pfd);
        }

        if (draining && queue_.empty()) {
            // Graceful drain: everything admitted has been answered.
            break;
        }

        const int ready =
            ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 50);
        if (ready > 0) {
            std::size_t base = 0;
            if (!draining) {
                if (pfds[0].revents & POLLIN)
                    acceptClients();
                base = 1;
            }
            for (std::size_t i = 0; i + base < pfds.size(); ++i) {
                if (pfds[i + base].revents &
                    (POLLIN | POLLHUP | POLLERR))
                    readClient(conns_[i]);
            }
        }

        drainQueue();
        conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                    [](const Connection &conn) {
                                        if (conn.closed)
                                            ::close(conn.fd);
                                        return conn.closed;
                                    }),
                     conns_.end());
    }
    for (Connection &conn : conns_)
        ::close(conn.fd);
    conns_.clear();
    finished_.store(true, std::memory_order_release);
}

void
PlacementServer::acceptClients()
{
    while (true) {
        int client;
        do {
            client = ::accept(listenFd_, nullptr, nullptr);
        } while (client < 0 && errno == EINTR);
        if (client < 0)
            return; // would block (or transient error): poll again
        Connection conn;
        conn.fd = client;
        conns_.push_back(std::move(conn));
    }
}

void
PlacementServer::readClient(Connection &conn)
{
    char buf[4096];
    const long n = recvSome(conn.fd, buf, sizeof buf);
    if (n <= 0) {
        conn.closed = true;
        return;
    }
    conn.inbuf.append(buf, static_cast<std::size_t>(n));

    std::size_t start = 0;
    while (true) {
        const std::size_t eol = conn.inbuf.find('\n', start);
        if (eol == std::string::npos)
            break;
        const std::string_view line(conn.inbuf.data() + start,
                                    eol - start);
        start = eol + 1;
        if (line.empty())
            continue;
        Request request;
        try {
            request = parseRequest(line);
        } catch (const ConfigError &err) {
            Response response;
            response.ok = false;
            response.error = err.what();
            respond(conn.fd, response);
            continue;
        }
        const std::int64_t requestId = request.id;
        if (!queue_.tryEnqueue(Envelope{std::move(request), conn.fd})) {
            NETPACK_COUNT("serve.rejected", 1);
            Response response;
            response.id = requestId;
            response.ok = false;
            response.rejected = true;
            response.error = "queue_full";
            respond(conn.fd, response);
        }
    }
    conn.inbuf.erase(0, start);
}

void
PlacementServer::drainQueue()
{
    while (std::optional<Envelope> envelope = queue_.pop()) {
        const Request &request = envelope->request;
        const bool timed = obs::metricsEnabled();
        const auto start = std::chrono::steady_clock::now();
        const Response response = dispatch(request);
        if (timed) {
            const double us = microsSince(start);
            obs::recordLogHistogram("serve.request_us",
                                    obs::kLatencySpecUs, us);
            obs::recordLogHistogram(std::string("serve.") +
                                        opName(request.op) + "_us",
                                    obs::kLatencySpecUs, us);
            if (request.op == Op::Place)
                obs::flight::checkSlo("serve.place", us);
        }
        requests_.fetch_add(1, std::memory_order_relaxed);
        NETPACK_COUNT("serve.requests", 1);
        respond(envelope->client, response);
    }
}

Response
PlacementServer::dispatch(const Request &request)
{
    Response response;
    response.id = request.id;
    try {
        switch (request.op) {
          case Op::Place: {
            engine_->validatePlace(request.jobs);
            const std::uint64_t seq =
                seq_.load(std::memory_order_relaxed) + 1;
            if (wal_)
                wal_->appendPlace(seq, request.jobs);
            BatchResult result = engine_->applyPlace(request.jobs);
            seq_.store(seq, std::memory_order_relaxed);
            ++mutationsSinceSnapshot_;
            NETPACK_COUNT("serve.placed_jobs",
                          static_cast<std::int64_t>(
                              result.placed.size()));
            response.ok = true;
            response.placed = std::move(result.placed);
            response.deferred = std::move(result.deferred);
            maybeAutoSnapshot();
            break;
          }
          case Op::Depart: {
            engine_->validateDepart(request.departs);
            const std::uint64_t seq =
                seq_.load(std::memory_order_relaxed) + 1;
            if (wal_)
                wal_->appendDepart(seq, request.departs);
            engine_->applyDepart(request.departs);
            seq_.store(seq, std::memory_order_relaxed);
            ++mutationsSinceSnapshot_;
            NETPACK_COUNT("serve.departed_jobs",
                          static_cast<std::int64_t>(
                              request.departs.size()));
            response.ok = true;
            maybeAutoSnapshot();
            break;
          }
          case Op::Query: {
            NETPACK_COUNT("serve.queries", 1);
            response.queryResults =
                engine_->whatIf(request.jobs, pool_.get());
            response.ok = true;
            break;
          }
          case Op::Stats: {
            const std::uint64_t seq =
                seq_.load(std::memory_order_relaxed);
            StatsBody &stats = response.stats;
            stats.seq = seq;
            stats.runningJobs = engine_->runningJobs();
            stats.freeGpus = engine_->freeGpus();
            stats.requests =
                requests_.load(std::memory_order_relaxed);
            stats.placedJobs = engine_->placedJobs();
            stats.departedJobs = engine_->departedJobs();
            stats.deferredJobs = engine_->deferredJobs();
            stats.rejected = queue_.shedCount();
            stats.digest = engine_->stateDigest(seq);
            response.hasStats = true;
            response.ok = true;
            break;
          }
          case Op::Snapshot: {
            const std::uint64_t seq =
                seq_.load(std::memory_order_relaxed);
            if (wal_)
                wal_->appendSnapshot(engine_->snapshot(seq));
            mutationsSinceSnapshot_ = 0;
            response.ok = true;
            response.seq = seq;
            break;
          }
          case Op::Drain: {
            stop_.store(true, std::memory_order_relaxed);
            response.ok = true;
            response.seq = seq_.load(std::memory_order_relaxed);
            break;
          }
        }
    } catch (const ConfigError &err) {
        response.ok = false;
        response.error = err.what();
    }
    return response;
}

void
PlacementServer::respond(int client, const Response &response)
{
    if (client < 0)
        return;
    const std::string line = serializeResponse(response) + "\n";
    if (!sendAll(client, line)) {
        // Peer went away mid-response; its connection will be reaped
        // on the next read attempt.
        for (Connection &conn : conns_) {
            if (conn.fd == client)
                conn.closed = true;
        }
    }
}

void
PlacementServer::maybeAutoSnapshot()
{
    if (config_.snapshotEvery == 0 || wal_ == nullptr ||
        mutationsSinceSnapshot_ < config_.snapshotEvery)
        return;
    wal_->appendSnapshot(
        engine_->snapshot(seq_.load(std::memory_order_relaxed)));
    mutationsSinceSnapshot_ = 0;
    NETPACK_COUNT("serve.auto_snapshots", 1);
}

} // namespace serve
} // namespace netpack
