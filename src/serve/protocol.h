/**
 * @file
 * Wire protocol of the placement daemon: newline-delimited JSON, one
 * request or response object per line (schema "netpack.serve/1").
 * Parse/serialize are symmetric — the server, the CLI client, the load
 * generator, and the tests all speak through these codecs, so a request
 * round-trips byte-compatibly and malformed input surfaces as a
 * ConfigError (bad data, not a bug).
 *
 * Requests:
 *   {"op":"place","id":N,"jobs":[<JobSpec>...]}
 *   {"op":"depart","id":N,"jobs":[<job id>...]}
 *   {"op":"query","id":N,"jobs":[<JobSpec>...]}   (read-only what-if)
 *   {"op":"stats","id":N}
 *   {"op":"snapshot","id":N}                      (WAL snapshot barrier)
 *   {"op":"drain","id":N}                         (graceful shutdown)
 *
 * Responses always carry the request id and "ok". Failures carry
 * "error"; load-shed requests carry "rejected":true and a "reason"
 * instead of being silently dropped, so a closed-loop client can tell
 * backpressure from breakage.
 */

#ifndef NETPACK_SERVE_PROTOCOL_H
#define NETPACK_SERVE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "waterfill/steady_state.h"
#include "workload/job.h"

namespace netpack {
namespace serve {

/** Version tag carried by every request/response line. */
inline constexpr const char *kServeSchema = "netpack.serve/1";

/** Request discriminator. */
enum class Op
{
    Place,
    Depart,
    Query,
    Stats,
    Snapshot,
    Drain,
};

/** The wire name of @p op. */
const char *opName(Op op);

/** One client request. */
struct Request
{
    /** Client-chosen correlation id, echoed in the response. */
    std::int64_t id = 0;
    Op op = Op::Stats;
    /** Place/Query: the candidate jobs. */
    std::vector<JobSpec> jobs;
    /** Depart: the jobs to release. */
    std::vector<JobId> departs;
};

/** Outcome of one read-only what-if candidate (Op::Query). */
struct QueryResult
{
    JobId job;
    /** Whether the candidate fits the live cluster state. */
    bool placeable = false;
    /** Its placement when placeable. */
    Placement placement;
    /** Projected communication time of the candidate (s; 0 = local). */
    double commTime = 0.0;
};

/** Op::Stats payload. */
struct StatsBody
{
    /** WAL sequence number of the last applied mutation. */
    std::uint64_t seq = 0;
    /** Jobs currently placed. */
    std::int64_t runningJobs = 0;
    /** Free GPUs cluster-wide. */
    std::int64_t freeGpus = 0;
    /** Requests processed (all ops, shed requests excluded). */
    std::uint64_t requests = 0;
    /** Jobs placed / departed / deferred over the server's lifetime. */
    std::uint64_t placedJobs = 0;
    std::uint64_t departedJobs = 0;
    std::uint64_t deferredJobs = 0;
    /** Requests shed by admission control. */
    std::uint64_t rejected = 0;
    /** FNV-1a digest of the canonical engine state (bit-identity). */
    std::string digest;
};

/** One server response. */
struct Response
{
    std::int64_t id = 0;
    bool ok = false;
    /** Set (with ok=false) when admission control shed the request. */
    bool rejected = false;
    /** Failure reason (parse error, validation error, shed reason). */
    std::string error;

    /** Place: jobs placed this request (GPU allocations applied). */
    std::vector<PlacedJob> placed;
    /** Place: jobs that did not fit (not retained by the server). */
    std::vector<JobId> deferred;
    /** Query: per-candidate outcomes, in request order. */
    std::vector<QueryResult> queryResults;
    /** Stats: present when hasStats. */
    bool hasStats = false;
    StatsBody stats;
    /** Snapshot/Drain: the WAL sequence the ack covers. */
    std::uint64_t seq = 0;
};

/** Serialize @p request as one compact JSON line (no trailing \n). */
std::string serializeRequest(const Request &request);

/** Parse one request line. ConfigError on malformed input. */
Request parseRequest(std::string_view line);

/** Serialize @p response as one compact JSON line (no trailing \n). */
std::string serializeResponse(const Response &response);

/** Parse one response line. ConfigError on malformed input. */
Response parseResponse(std::string_view line);

} // namespace serve
} // namespace netpack

#endif // NETPACK_SERVE_PROTOCOL_H
