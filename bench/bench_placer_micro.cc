/**
 * @file
 * Tracked microbenchmark of the placement hot path: the optimized
 * NetPackPlacer (flat SteadyStateView snapshots, reusable scratch
 * buffers, in-place worker DP with a contiguous decision arena, DP-cell
 * upper-bound pruning) against the frozen naive reference placer, over
 * a rack-count x batch-size sweep with retirement churn.
 *
 * Three lanes per epoch: the reference, the optimized placer serial
 * (jobs=1), and the optimized placer with the intra-epoch fan-out at
 * --jobs workers. The per-epoch placement latency of each lane is
 * sampled and reported as p50/p95 alongside the ref-relative speedups.
 * All three lanes must produce byte-identical decisions — the bench
 * aborts on the first divergence (same guarantee tests/placer_test.cc
 * pins, here additionally exercised with real pool threads).
 *
 * The CI perf-smoke job runs this bench in Release mode and archives
 * the --json manifest (BENCH_placer_micro.json), making the speedups
 * tracked numbers rather than one-off claims. Acceptance points: the
 * 64-rack row (the Figure 9 scale point) at opt >= 3x ref p50, and the
 * 256-rack row at par >= 4x ref p50. The 256-rack point runs batch 8
 * only with a reduced epoch count — the reference lane dominates its
 * cost.
 */

#include <chrono>
#include <cstring>
#include <deque>
#include <iostream>

#include "bench_util.h"
#include "core/placement_context.h"
#include "placement/netpack_placer.h"
#include "placement/reference_placer.h"

namespace netpack {
namespace {

/** One placer's lane of the head-to-head run. */
template <typename PlacerT> struct Lane
{
    /** Extra args construct the placer in place (it may be immovable —
     * the optimized placer owns a mutex and a thread pool). */
    template <typename... PlacerArgs>
    explicit Lane(const ClusterTopology &topo, PlacerArgs &&...args)
        : placer(std::forward<PlacerArgs>(args)...), gpus(topo), ctx(topo)
    {
    }

    PlacerT placer;
    GpuLedger gpus;
    PlacementContext ctx;
    std::deque<JobId> runningQueue;
    SampleSet epochSeconds;
};

bool
samePlacement(const Placement &a, const Placement &b)
{
    return a.workers == b.workers && a.psServer == b.psServer &&
           a.extraPsServers == b.extraPsServers &&
           a.inaRacks == b.inaRacks;
}

bool
sameResult(const BatchResult &a, const BatchResult &b)
{
    if (a.placed.size() != b.placed.size() ||
        a.deferred.size() != b.deferred.size())
        return false;
    for (std::size_t i = 0; i < a.placed.size(); ++i) {
        if (a.placed[i].id != b.placed[i].id ||
            !samePlacement(a.placed[i].placement, b.placed[i].placement))
            return false;
    }
    for (std::size_t i = 0; i < a.deferred.size(); ++i) {
        if (a.deferred[i] != b.deferred[i])
            return false;
    }
    return true;
}

bool
sameScores(const std::vector<double> &a, const std::vector<double> &b)
{
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(),
                        a.size() * sizeof(double)) == 0);
}

/** Timed placeBatch into the lane, with the fig10-style churn. */
template <typename PlacerT>
BatchResult
runEpoch(Lane<PlacerT> &lane, const std::vector<JobSpec> &batch,
         const ClusterTopology &topo)
{
    const auto t0 = std::chrono::steady_clock::now();
    BatchResult result =
        lane.placer.placeBatch(batch, topo, lane.gpus, lane.ctx);
    const auto t1 = std::chrono::steady_clock::now();
    lane.epochSeconds.add(std::chrono::duration<double>(t1 - t0).count());

    for (const PlacedJob &job : result.placed)
        lane.runningQueue.push_back(job.id);
    // Keep the cluster realistically loaded: retire the oldest jobs
    // once occupancy passes 60%.
    while (lane.gpus.totalFreeGpus() < topo.totalGpus() * 2 / 5 &&
           !lane.runningQueue.empty()) {
        const JobId victim = lane.runningQueue.front();
        lane.runningQueue.pop_front();
        lane.gpus.releaseJob(victim);
        lane.ctx.removeJob(victim);
    }
    return result;
}

} // namespace
} // namespace netpack

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Placer microbenchmark — allocation-free hot path vs naive "
        "reference",
        "Section 5.2 / Figure 10 (algorithm cost)",
        "identical placement decisions; the optimized placer >= 3x "
        "faster per epoch at the 64-rack scale point and the parallel "
        "lane >= 4x at 256 racks");

    const std::vector<int> rack_counts =
        options.full ? std::vector<int>{8, 16, 32, 64, 96, 256}
                     : std::vector<int>{8, 16, 64, 256};
    const std::vector<int> batch_sizes =
        options.full ? std::vector<int>{8, 32, 96}
                     : std::vector<int>{8, 32};
    const int epochs = options.full ? 24 : 10;

    NetPackConfig par_config;
    par_config.jobs = std::max(1, options.jobs);

    Table table({"racks", "batch", "ref p50 (ms)", "ref p95 (ms)",
                 "opt p50 (ms)", "opt p95 (ms)", "par p50 (ms)",
                 "par p95 (ms)", "speedup p50", "speedup p95",
                 "speedup par p50", "speedup par p95"});
    bool met_target = true;
    bool met_par_target = true;
    for (int racks : rack_counts) {
        ClusterConfig cluster = benchutil::simulatorCluster();
        cluster.numRacks = racks;
        // The Figure 9 scale sweep oversubscribes the core; keeping that
        // here exercises the rack/pod-restricted DP variants and the
        // crossing-penalty path, the most expensive parts of step ③.
        cluster.oversubscription = 4.0;
        const ClusterTopology topo(cluster);

        // The naive reference dominates the 256-rack rows; cap that
        // point at batch 8 and fewer epochs to keep CI runtimes sane.
        const std::vector<int> batches_here =
            racks >= 256 ? std::vector<int>{8} : batch_sizes;
        const int epochs_here = racks >= 256 ? std::min(epochs, 4)
                                             : epochs;

        for (int batch_size : batches_here) {
            TraceGenConfig gen;
            gen.numJobs = epochs_here * batch_size;
            gen.seed = 5;
            gen.maxGpuDemand = 64;
            const JobTrace trace = generateTrace(gen);

            Lane<ReferenceNetPackPlacer> ref(topo);
            Lane<NetPackPlacer> opt(topo);
            Lane<NetPackPlacer> par(topo, par_config);

            std::size_t cursor = 0;
            while (cursor < trace.size()) {
                std::vector<JobSpec> batch;
                for (int i = 0;
                     i < batch_size && cursor < trace.size(); ++i)
                    batch.push_back(trace.at(cursor++));
                const BatchResult ref_result =
                    runEpoch(ref, batch, topo);
                const BatchResult opt_result =
                    runEpoch(opt, batch, topo);
                const BatchResult par_result =
                    runEpoch(par, batch, topo);
                if (!sameResult(ref_result, opt_result) ||
                    !sameScores(ref.placer.lastScores(),
                                opt.placer.lastScores())) {
                    std::cerr << "FATAL: optimized placer diverged from "
                                 "the reference (racks="
                              << racks << ", batch=" << batch_size
                              << ")\n";
                    return 1;
                }
                if (!sameResult(ref_result, par_result) ||
                    !sameScores(ref.placer.lastScores(),
                                par.placer.lastScores())) {
                    std::cerr << "FATAL: parallel placer (jobs="
                              << par_config.jobs
                              << ") diverged from the reference (racks="
                              << racks << ", batch=" << batch_size
                              << ")\n";
                    return 1;
                }
            }

            const double ref_p50 = ref.epochSeconds.percentile(50.0);
            const double ref_p95 = ref.epochSeconds.percentile(95.0);
            const double opt_p50 = opt.epochSeconds.percentile(50.0);
            const double opt_p95 = opt.epochSeconds.percentile(95.0);
            const double par_p50 = par.epochSeconds.percentile(50.0);
            const double par_p95 = par.epochSeconds.percentile(95.0);
            const double speedup_p50 = ref_p50 / std::max(opt_p50, 1e-12);
            const double speedup_p95 = ref_p95 / std::max(opt_p95, 1e-12);
            const double speedup_par_p50 =
                ref_p50 / std::max(par_p50, 1e-12);
            const double speedup_par_p95 =
                ref_p95 / std::max(par_p95, 1e-12);
            if (racks == 64 && speedup_p50 < 3.0)
                met_target = false;
            if (racks == 256 && speedup_par_p50 < 4.0)
                met_par_target = false;

            table.addRow({std::to_string(racks),
                          std::to_string(batch_size),
                          formatDouble(ref_p50 * 1e3, 3),
                          formatDouble(ref_p95 * 1e3, 3),
                          formatDouble(opt_p50 * 1e3, 3),
                          formatDouble(opt_p95 * 1e3, 3),
                          formatDouble(par_p50 * 1e3, 3),
                          formatDouble(par_p95 * 1e3, 3),
                          formatDouble(speedup_p50, 2) + "x",
                          formatDouble(speedup_p95, 2) + "x",
                          formatDouble(speedup_par_p50, 2) + "x",
                          formatDouble(speedup_par_p95, 2) + "x"});
        }
    }
    benchutil::emit(table, options);

    if (!met_target)
        std::cout << "note: speedup below the 3x target at 64 racks "
                     "(expected only in unoptimized/debug builds)\n";
    if (!met_par_target)
        std::cout << "note: parallel speedup below the 4x target at 256 "
                     "racks (expected in unoptimized/debug builds or at "
                     "--jobs 1 on a loaded machine)\n";
    return 0;
}
