#include "bench_util.h"

#include <cstdlib>
#include <iostream>
#include <mutex>

#include "common/check.h"
#include "common/rng.h"
#include "obs/http_export.h"
#include "obs/metrics.h"

namespace netpack {
namespace benchutil {

namespace {

/** Guards the shared RunManifest against concurrent pool workers. */
std::mutex g_manifestMutex;

/** Parse a positive int operand; empty optional on malformed input. */
std::optional<int>
parsePositiveInt(const std::string &text)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        return std::nullopt;
    try {
        const int value = std::stoi(text);
        return value >= 1 ? std::optional<int>(value) : std::nullopt;
    } catch (const std::exception &) {
        return std::nullopt; // out of int range
    }
}

} // namespace

obs::RunManifest &
manifest()
{
    static obs::RunManifest instance;
    return instance;
}

void
recordRun(const std::string &label, const RunMetrics &metrics)
{
    const std::lock_guard<std::mutex> lock(g_manifestMutex);
    manifest().addRun(label, metrics);
}

std::string
usageText(const std::string &argv0)
{
    return "usage: " + argv0 +
           " [--full] [--csv] [--json <path>] [--jobs <n>] [--seeds <k>]\n"
           "       [--journal <dir>] [--snapshot-every <sim-s>] "
           "[--resume]\n"
           "       [--metrics-port <p>] [--sample-every <k>]\n"
           "  --full         paper-scale parameters (slower)\n"
           "  --csv          also emit CSV\n"
           "  --json <path>  write a machine-readable run manifest\n"
           "                 (enables metrics)\n"
           "  --jobs <n>     fan independent runs out over n worker\n"
           "                 threads (default 1; results are identical\n"
           "                 for any n)\n"
           "  --seeds <k>    replicate each sweep cell over k trace\n"
           "                 seeds and report mean/stddev/95% CI\n"
           "                 (default: the bench's own profile)\n"
           "  --journal <dir>\n"
           "                 record an event journal per run into dir\n"
           "                 (replay with examples/netpack_replay)\n"
           "  --snapshot-every <sim-s>\n"
           "                 simulated seconds between journal\n"
           "                 snapshots (resume points; flow runs only)\n"
           "  --resume       reuse/resume runs whose journals already\n"
           "                 exist in --journal dir\n"
           "  --metrics-port <p>\n"
           "                 serve live OpenMetrics on\n"
           "                 http://127.0.0.1:<p>/metrics (0 picks an\n"
           "                 ephemeral port; enables metrics; env\n"
           "                 NETPACK_METRICS_PORT does the same)\n"
           "  --sample-every <k>\n"
           "                 push telemetry time-series points every\n"
           "                 k-th placement epoch (default 1)\n"
           "  --help         show this message and exit\n";
}

std::optional<std::string>
parseOptionsInto(int argc, char **argv, Options &options)
{
    obs::RunManifest &man = manifest();
    const std::string argv0 = argv[0];
    const std::size_t slash = argv0.find_last_of('/');
    man.bench = slash == std::string::npos ? argv0
                                           : argv0.substr(slash + 1);
    const auto operand = [&](int &i) -> std::optional<std::string> {
        if (i + 1 >= argc)
            return std::nullopt;
        const std::string value = argv[++i];
        man.args.push_back(value);
        return value;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        man.args.push_back(arg);
        if (arg == "--full") {
            options.full = true;
        } else if (arg == "--csv") {
            options.csv = true;
        } else if (arg == "--json") {
            const auto value = operand(i);
            if (!value)
                return "--json requires a file path";
            options.jsonPath = *value;
        } else if (arg == "--jobs") {
            const auto value = operand(i);
            if (!value)
                return "--jobs requires a thread count";
            const auto jobs = parsePositiveInt(*value);
            if (!jobs)
                return "--jobs operand '" + *value +
                       "' is not a positive integer";
            options.jobs = *jobs;
        } else if (arg == "--seeds") {
            const auto value = operand(i);
            if (!value)
                return "--seeds requires a replicate count";
            const auto seeds = parsePositiveInt(*value);
            if (!seeds)
                return "--seeds operand '" + *value +
                       "' is not a positive integer";
            options.seeds = *seeds;
        } else if (arg == "--journal") {
            const auto value = operand(i);
            if (!value)
                return "--journal requires a directory path";
            options.journalDir = *value;
        } else if (arg == "--snapshot-every") {
            const auto value = operand(i);
            if (!value)
                return "--snapshot-every requires a simulated-seconds "
                       "period";
            try {
                options.snapshotEvery = std::stod(*value);
            } catch (const std::exception &) {
                return "--snapshot-every operand '" + *value +
                       "' is not a number";
            }
            if (!(options.snapshotEvery > 0.0))
                return "--snapshot-every operand '" + *value +
                       "' must be positive";
        } else if (arg == "--resume") {
            options.resume = true;
        } else if (arg == "--metrics-port") {
            const auto value = operand(i);
            if (!value)
                return "--metrics-port requires a port number";
            if (value->empty() ||
                value->find_first_not_of("0123456789") != std::string::npos)
                return "--metrics-port operand '" + *value +
                       "' is not a port number";
            try {
                options.metricsPort = std::stoi(*value);
            } catch (const std::exception &) {
                return "--metrics-port operand '" + *value +
                       "' is out of range";
            }
            if (options.metricsPort > 65535)
                return "--metrics-port operand '" + *value +
                       "' is out of range (0..65535)";
        } else if (arg == "--sample-every") {
            const auto value = operand(i);
            if (!value)
                return "--sample-every requires an epoch count";
            const auto every = parsePositiveInt(*value);
            if (!every)
                return "--sample-every operand '" + *value +
                       "' is not a positive integer";
            options.sampleEvery = *every;
        } else if (arg == "--help" || arg == "-h") {
            options.help = true;
        } else {
            return "unknown option '" + arg + "'";
        }
    }
    if (options.journalDir.empty() &&
        (options.resume || options.snapshotEvery > 0.0))
        return "--resume and --snapshot-every require --journal <dir>";
    // The manifest embeds a metrics snapshot; make sure there is one.
    if (!options.jsonPath.empty())
        obs::setMetricsEnabled(true);
    if (options.sampleEvery > 0)
        obs::setSeriesSampleEvery(options.sampleEvery);
    // Live scrape endpoint: the flag wins; with no flag the env var
    // NETPACK_METRICS_PORT (if set) starts it. Idempotent.
    try {
        obs::ensureMetricsServer(options.metricsPort);
    } catch (const ConfigError &e) {
        return std::string(e.what());
    }
    return std::nullopt;
}

exec::SweepOptions
sweepOptions(const Options &options)
{
    exec::SweepOptions sweep;
    sweep.jobs =
        options.jobs < 1 ? 1 : static_cast<std::size_t>(options.jobs);
    sweep.journalDir = options.journalDir;
    sweep.snapshotEvery = options.snapshotEvery;
    sweep.resume = options.resume;
    return sweep;
}

void
recordJournalActivity(const exec::SweepResult &result,
                      const Options &options)
{
    if (options.journalDir.empty())
        return;
    const std::lock_guard<std::mutex> lock(g_manifestMutex);
    obs::JournalSummary &journal = manifest().journal;
    journal.enabled = true;
    journal.directory = options.journalDir;
    journal.snapshotEvery = options.snapshotEvery;
    for (const exec::RunResult &run : result.runs) {
        if (run.journalPath.empty())
            continue;
        journal.eventsWritten += run.journalEvents;
        journal.snapshotsWritten += run.journalSnapshots;
        if (run.journalReused)
            ++journal.runsReused;
        else
            ++journal.runsRecorded;
        if (run.journalResumed)
            ++journal.runsResumed;
    }
}

Options
parseOptions(int argc, char **argv)
{
    Options options;
    const auto error = parseOptionsInto(argc, argv, options);
    if (error) {
        std::cerr << *error << "\n" << usageText(argv[0]);
        std::exit(2);
    }
    if (options.help) {
        std::cout << usageText(argv[0]);
        std::exit(0);
    }
    return options;
}

int
effectiveSeeds(const Options &options, int fallback)
{
    return options.seeds > 0 ? options.seeds : fallback;
}

ClusterConfig
testbedCluster()
{
    ClusterConfig config;
    config.numRacks = 1;
    config.serversPerRack = 5;
    config.gpusPerServer = 2;
    config.serverLinkGbps = 100.0;
    config.torPatGbps = 400.0;
    config.rtt = 50e-6;
    {
        const std::lock_guard<std::mutex> lock(g_manifestMutex);
        manifest().addCluster("testbed", config);
    }
    return config;
}

ClusterConfig
simulatorCluster()
{
    ClusterConfig config;
    config.numRacks = 16;
    config.serversPerRack = 16;
    config.gpusPerServer = 4;
    config.serverLinkGbps = 100.0;
    config.oversubscription = 1.0;
    config.torPatGbps = 1000.0; // 1 Tbps, the paper's default
    config.rtt = 50e-6;
    {
        const std::lock_guard<std::mutex> lock(g_manifestMutex);
        manifest().addCluster("simulator", config);
    }
    return config;
}

JobTrace
testbedTrace(DemandDistribution dist, int jobs, std::uint64_t seed)
{
    TraceGenConfig gen;
    gen.numJobs = jobs;
    gen.seed = seed;
    gen.distribution = dist;
    gen.demandMean = 3.0;
    gen.demandStddev = 2.0;
    gen.maxGpuDemand = 8; // the testbed has 10 GPUs total
    gen.meanInterarrival = 6.0;
    gen.durationLogMu = 3.6; // short jobs: the packet model is RTT-level
    gen.durationLogSigma = 0.8;
    return generateTrace(gen);
}

JobTrace
simulatorTrace(DemandDistribution dist, int jobs, std::uint64_t seed)
{
    TraceGenConfig gen;
    gen.numJobs = jobs;
    gen.seed = seed;
    gen.distribution = dist;
    // Sized so steady-state demand sits near the 16x16x4-GPU cluster's
    // capacity: ~90 s median durations arriving every ~1 s with ~8-GPU
    // demands keeps roughly 700 GPUs requested — placement decisions
    // matter only under contention.
    gen.demandMean = 8.0;
    gen.demandStddev = 5.0;
    gen.maxGpuDemand = 64;
    gen.meanInterarrival = 0.5;
    gen.durationLogMu = 4.8;
    gen.durationLogSigma = 1.0;
    return generateTrace(gen);
}

std::vector<ServerFailure>
poissonFailureSchedule(double mtbf, Seconds window, int servers,
                       std::uint64_t seed, Seconds downtime)
{
    std::vector<ServerFailure> failures;
    if (mtbf <= 0.0)
        return failures;
    Rng rng(seed);
    Seconds t = 0.0;
    while (true) {
        t += rng.exponential(1.0 / mtbf);
        if (t > window)
            break;
        ServerFailure failure;
        failure.time = t;
        failure.server = ServerId(
            static_cast<int>(rng.uniformInt(0, servers - 1)));
        failure.downtime = downtime;
        failures.push_back(failure);
    }
    return failures;
}

void
printHeader(const std::string &title, const std::string &paper_ref,
            const std::string &expectation)
{
    std::cout << "==========================================================="
                 "=====================\n"
              << title << "\n"
              << "Paper reference: " << paper_ref << "\n"
              << "Expected shape:  " << expectation << "\n"
              << "==========================================================="
                 "=====================\n";
    if (manifest().title.empty())
        manifest().title = title;
}

void
emit(const Table &table, const Options &options)
{
    table.print(std::cout);
    if (options.csv) {
        std::cout << "\n--- CSV ---\n";
        table.printCsv(std::cout);
    }
    std::cout << "\n";
    // Accumulate every emitted table; rewrite the manifest each time so
    // a partial file still exists if a later stage aborts.
    const std::lock_guard<std::mutex> lock(g_manifestMutex);
    manifest().tables.push_back(table);
    if (!options.jsonPath.empty())
        obs::writeRunManifest(options.jsonPath, manifest());
}

std::vector<std::string>
figurePlacers()
{
    return {"NetPack", "GB", "FB", "LF", "Optimus", "Tetris"};
}

namespace {

/** Publish the sweep's per-cell aggregates into the manifest. */
void
recordAggregates(const exec::SweepResult &result)
{
    const std::lock_guard<std::mutex> lock(g_manifestMutex);
    for (const auto &[cell, stats] : result.cells)
        manifest().addAggregate(cell, stats.avgJct, stats.avgDe,
                                stats.makespan, stats.avgGpuUtilization);
}

/** Record every run of a finished sweep, in request order. */
void
recordSweepRuns(const std::vector<exec::RunRequest> &requests,
                const exec::SweepResult &result)
{
    for (std::size_t i = 0; i < requests.size(); ++i)
        recordRun(requests[i].label, result.runs[i].metrics);
}

} // namespace

Figure7Matrix
runFigure7Matrix(const Options &options)
{
    Figure7Matrix matrix;
    matrix.placers = figurePlacers();
    matrix.traces = {DemandDistribution::Philly,
                     DemandDistribution::Poisson,
                     DemandDistribution::Normal};
    matrix.platforms = {"testbed", "simulator"};

    const int testbed_jobs = options.full ? 40 : 16;
    const int simulator_jobs = options.full ? 800 : 300;
    // The paper repeats each experiment ten times and reports avg +
    // stddev; the quick profile uses three seeds.
    const int seeds = effectiveSeeds(options, options.full ? 10 : 3);

    // Build the whole request matrix up front — trace generation and
    // seed derivation happen here, serially, so the parallel phase has
    // nothing stochastic left to order.
    std::vector<exec::RunRequest> requests;
    for (DemandDistribution dist : matrix.traces) {
        const std::string trace_name = demandDistributionName(dist);
        for (const std::string &platform : matrix.platforms) {
            const bool testbed = platform == "testbed";
            // Per-(trace, platform) stream base; seed replicates are
            // counter-derived so any K extends the same sequence.
            const std::uint64_t stream_base =
                7 + 13 * static_cast<std::uint64_t>(dist) +
                (testbed ? 0 : 1000);
            for (int seed = 0; seed < seeds; ++seed) {
                ExperimentConfig config;
                config.cluster = testbed ? testbedCluster()
                                         : simulatorCluster();
                // Scarce PAT makes the placement decision matter (the
                // paper reserves 1 Tbps for the big simulator cluster,
                // still contended across 16 servers per ToR).
                if (testbed)
                    config.cluster.torPatGbps = 200.0;
                config.fidelity =
                    testbed ? Fidelity::Packet : Fidelity::Flow;
                config.sim.placementPeriod = testbed ? 5.0 : 10.0;
                const std::uint64_t trace_seed =
                    exec::streamSeed(stream_base,
                                     static_cast<std::uint64_t>(seed));
                manifest().addSeed(trace_seed);
                const JobTrace trace =
                    testbed ? testbedTrace(dist, testbed_jobs, trace_seed)
                            : simulatorTrace(dist, simulator_jobs,
                                             trace_seed);
                for (std::size_t p = 0; p < matrix.placers.size(); ++p) {
                    exec::RunRequest request;
                    request.cell = Figure7Matrix::key(
                        trace_name, platform, matrix.placers[p]);
                    request.label =
                        request.cell + "|seed" + std::to_string(seed);
                    request.config = config;
                    request.config.placer = matrix.placers[p];
                    request.config.seed = exec::streamSeed(trace_seed, p);
                    request.trace = trace;
                    requests.push_back(std::move(request));
                }
            }
        }
    }

    const exec::SweepResult result =
        exec::runSweep(requests, sweepOptions(options));
    recordSweepRuns(requests, result);
    recordAggregates(result);
    recordJournalActivity(result, options);

    // Normalize per (trace, platform, seed) group — requests lay each
    // group out contiguously with NetPack (placers.front()) first.
    const std::size_t group = matrix.placers.size();
    for (std::size_t base = 0; base < requests.size(); base += group) {
        const RunMetrics &reference = result.runs[base].metrics;
        const double ref_jct = reference.avgJct();
        const double ref_de = reference.avgDe();
        for (std::size_t p = 0; p < group; ++p) {
            MatrixCell &cell = matrix.cells[requests[base + p].cell];
            const RunMetrics &metrics = result.runs[base + p].metrics;
            cell.jctRatio.add(metrics.avgJct() / ref_jct);
            cell.deRatio.add(metrics.avgDe() / ref_de);
        }
    }
    return matrix;
}

Table
matrixTable(const Figure7Matrix &matrix, bool use_de, bool with_ci)
{
    std::vector<std::string> headers = {"workload"};
    for (const std::string &placer : matrix.placers) {
        headers.push_back(placer);
        if (with_ci)
            headers.push_back(placer + " ci95");
    }
    Table table(std::move(headers));

    for (const std::string &platform : matrix.platforms) {
        for (DemandDistribution dist : matrix.traces) {
            const std::string trace_name = demandDistributionName(dist);
            std::vector<std::string> row = {platform + "/" + trace_name};
            for (const std::string &placer : matrix.placers) {
                const MatrixCell &cell = matrix.cells.at(
                    Figure7Matrix::key(trace_name, platform, placer));
                const RunningStats &ratio =
                    use_de ? cell.deRatio : cell.jctRatio;
                row.push_back(formatDouble(ratio.mean(), 3) + "±" +
                              formatDouble(ratio.stddev(), 2));
                if (with_ci)
                    row.push_back(
                        formatDouble(ci95HalfWidth(ratio), 3));
            }
            table.addRow(std::move(row));
        }
    }
    return table;
}

Table
placerSweepTable(const std::string &axis_header,
                 const std::vector<SweepRow> &rows,
                 const std::vector<std::string> &placers,
                 const Options &options, bool use_de)
{
    std::vector<exec::RunRequest> requests;
    for (std::size_t r = 0; r < rows.size(); ++r) {
        for (std::size_t t = 0; t < rows[r].traces.size(); ++t) {
            for (std::size_t p = 0; p < placers.size(); ++p) {
                exec::RunRequest request;
                request.cell = rows[r].label + "|" + placers[p];
                request.label =
                    request.cell + "|seed" + std::to_string(t);
                request.config = rows[r].config;
                request.config.placer = placers[p];
                request.config.seed =
                    exec::streamSeed(r * 1000003 + t, p);
                request.trace = rows[r].traces[t];
                requests.push_back(std::move(request));
            }
        }
    }

    const exec::SweepResult result =
        exec::runSweep(requests, sweepOptions(options));
    recordSweepRuns(requests, result);
    recordAggregates(result);
    recordJournalActivity(result, options);

    const bool with_ci = options.seeds > 1;
    std::vector<std::string> headers = {axis_header};
    for (const std::string &placer : placers) {
        headers.push_back(placer);
        if (with_ci)
            headers.push_back(placer + " ci95");
    }
    Table table(std::move(headers));

    // Requests are laid out row-major with placers contiguous per
    // (row, seed) and placers.front() first — the normalization
    // reference of its group.
    std::size_t index = 0;
    for (const SweepRow &sweep_row : rows) {
        std::vector<RunningStats> ratios(placers.size());
        for (std::size_t t = 0; t < sweep_row.traces.size(); ++t) {
            const RunMetrics &reference = result.runs[index].metrics;
            const double ref = use_de ? reference.avgDe()
                                      : reference.avgJct();
            for (std::size_t p = 0; p < placers.size(); ++p, ++index) {
                const RunMetrics &metrics = result.runs[index].metrics;
                ratios[p].add(
                    (use_de ? metrics.avgDe() : metrics.avgJct()) / ref);
            }
        }
        std::vector<std::string> cells = {sweep_row.label};
        for (std::size_t p = 0; p < placers.size(); ++p) {
            std::string cell = formatDouble(ratios[p].mean(), 3);
            if (ratios[p].count() > 1)
                cell += "±" + formatDouble(ratios[p].stddev(), 2);
            cells.push_back(std::move(cell));
            if (with_ci)
                cells.push_back(
                    formatDouble(ci95HalfWidth(ratios[p]), 3));
        }
        table.addRow(std::move(cells));
    }
    return table;
}

} // namespace benchutil
} // namespace netpack
