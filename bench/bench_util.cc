#include "bench_util.h"

#include <cstdlib>
#include <iostream>

#include "obs/metrics.h"

namespace netpack {
namespace benchutil {

obs::RunManifest &
manifest()
{
    static obs::RunManifest instance;
    return instance;
}

void
recordRun(const std::string &label, const RunMetrics &metrics)
{
    manifest().addRun(label, metrics);
}

Options
parseOptions(int argc, char **argv)
{
    Options options;
    obs::RunManifest &man = manifest();
    const std::string argv0 = argv[0];
    const std::size_t slash = argv0.find_last_of('/');
    man.bench = slash == std::string::npos ? argv0
                                           : argv0.substr(slash + 1);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        man.args.push_back(arg);
        if (arg == "--full") {
            options.full = true;
        } else if (arg == "--csv") {
            options.csv = true;
        } else if (arg == "--json") {
            if (i + 1 >= argc) {
                std::cerr << "--json requires a file path\n";
                std::exit(2);
            }
            options.jsonPath = argv[++i];
            man.args.push_back(options.jsonPath);
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: " << argv[0]
                      << " [--full] [--csv] [--json <path>]\n"
                      << "  --full         paper-scale parameters (slower)\n"
                      << "  --csv          also emit CSV\n"
                      << "  --json <path>  write a machine-readable run\n"
                      << "                 manifest (enables metrics)\n";
            std::exit(0);
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            std::exit(2);
        }
    }
    // The manifest embeds a metrics snapshot; make sure there is one.
    if (!options.jsonPath.empty())
        obs::setMetricsEnabled(true);
    return options;
}

ClusterConfig
testbedCluster()
{
    ClusterConfig config;
    config.numRacks = 1;
    config.serversPerRack = 5;
    config.gpusPerServer = 2;
    config.serverLinkGbps = 100.0;
    config.torPatGbps = 400.0;
    config.rtt = 50e-6;
    manifest().addCluster("testbed", config);
    return config;
}

ClusterConfig
simulatorCluster()
{
    ClusterConfig config;
    config.numRacks = 16;
    config.serversPerRack = 16;
    config.gpusPerServer = 4;
    config.serverLinkGbps = 100.0;
    config.oversubscription = 1.0;
    config.torPatGbps = 1000.0; // 1 Tbps, the paper's default
    config.rtt = 50e-6;
    manifest().addCluster("simulator", config);
    return config;
}

JobTrace
testbedTrace(DemandDistribution dist, int jobs, std::uint64_t seed)
{
    TraceGenConfig gen;
    gen.numJobs = jobs;
    gen.seed = seed;
    gen.distribution = dist;
    gen.demandMean = 3.0;
    gen.demandStddev = 2.0;
    gen.maxGpuDemand = 8; // the testbed has 10 GPUs total
    gen.meanInterarrival = 6.0;
    gen.durationLogMu = 3.6; // short jobs: the packet model is RTT-level
    gen.durationLogSigma = 0.8;
    return generateTrace(gen);
}

JobTrace
simulatorTrace(DemandDistribution dist, int jobs, std::uint64_t seed)
{
    TraceGenConfig gen;
    gen.numJobs = jobs;
    gen.seed = seed;
    gen.distribution = dist;
    // Sized so steady-state demand sits near the 16x16x4-GPU cluster's
    // capacity: ~90 s median durations arriving every ~1 s with ~8-GPU
    // demands keeps roughly 700 GPUs requested — placement decisions
    // matter only under contention.
    gen.demandMean = 8.0;
    gen.demandStddev = 5.0;
    gen.maxGpuDemand = 64;
    gen.meanInterarrival = 0.5;
    gen.durationLogMu = 4.8;
    gen.durationLogSigma = 1.0;
    return generateTrace(gen);
}

void
printHeader(const std::string &title, const std::string &paper_ref,
            const std::string &expectation)
{
    std::cout << "==========================================================="
                 "=====================\n"
              << title << "\n"
              << "Paper reference: " << paper_ref << "\n"
              << "Expected shape:  " << expectation << "\n"
              << "==========================================================="
                 "=====================\n";
    if (manifest().title.empty())
        manifest().title = title;
}

void
emit(const Table &table, const Options &options)
{
    table.print(std::cout);
    if (options.csv) {
        std::cout << "\n--- CSV ---\n";
        table.printCsv(std::cout);
    }
    std::cout << "\n";
    // Accumulate every emitted table; rewrite the manifest each time so
    // a partial file still exists if a later stage aborts.
    manifest().tables.push_back(table);
    if (!options.jsonPath.empty())
        obs::writeRunManifest(options.jsonPath, manifest());
}

std::vector<std::string>
figurePlacers()
{
    return {"NetPack", "GB", "FB", "LF", "Optimus", "Tetris"};
}

Figure7Matrix
runFigure7Matrix(const Options &options)
{
    Figure7Matrix matrix;
    matrix.placers = figurePlacers();
    matrix.traces = {DemandDistribution::Philly,
                     DemandDistribution::Poisson,
                     DemandDistribution::Normal};
    matrix.platforms = {"testbed", "simulator"};

    const int testbed_jobs = options.full ? 40 : 16;
    const int simulator_jobs = options.full ? 800 : 300;
    // The paper repeats each experiment ten times and reports avg +
    // stddev; the quick profile uses three seeds.
    const int seeds = options.full ? 10 : 3;

    for (DemandDistribution dist : matrix.traces) {
        const std::string trace_name = demandDistributionName(dist);
        for (const std::string &platform : matrix.platforms) {
            const bool testbed = platform == "testbed";
            for (int seed = 0; seed < seeds; ++seed) {
                ExperimentConfig config;
                config.cluster = testbed ? testbedCluster()
                                         : simulatorCluster();
                // Scarce PAT makes the placement decision matter (the
                // paper reserves 1 Tbps for the big simulator cluster,
                // still contended across 16 servers per ToR).
                if (testbed)
                    config.cluster.torPatGbps = 200.0;
                config.fidelity =
                    testbed ? Fidelity::Packet : Fidelity::Flow;
                config.sim.placementPeriod = testbed ? 5.0 : 10.0;
                const std::uint64_t trace_seed =
                    7 + 13 * static_cast<std::uint64_t>(dist) +
                    101 * static_cast<std::uint64_t>(seed);
                manifest().addSeed(testbed ? trace_seed : trace_seed + 4);
                const JobTrace trace =
                    testbed ? testbedTrace(dist, testbed_jobs, trace_seed)
                            : simulatorTrace(dist, simulator_jobs,
                                             trace_seed + 4);

                // Normalize per seed (NetPack = 1 within each run set).
                std::map<std::string, RunMetrics> runs;
                for (const std::string &placer : matrix.placers) {
                    config.placer = placer;
                    runs.emplace(placer, runExperiment(config, trace));
                    recordRun(trace_name + "|" + platform + "|" + placer +
                                  "|seed" + std::to_string(seed),
                              runs.at(placer));
                }
                const double ref_jct = runs.at("NetPack").avgJct();
                const double ref_de = runs.at("NetPack").avgDe();
                for (const std::string &placer : matrix.placers) {
                    MatrixCell &cell =
                        matrix.cells[Figure7Matrix::key(trace_name,
                                                        platform,
                                                        placer)];
                    cell.jctRatio.add(runs.at(placer).avgJct() /
                                      ref_jct);
                    cell.deRatio.add(runs.at(placer).avgDe() / ref_de);
                }
            }
        }
    }
    return matrix;
}

Table
matrixTable(const Figure7Matrix &matrix, bool use_de)
{
    std::vector<std::string> headers = {"workload"};
    for (const std::string &placer : matrix.placers)
        headers.push_back(placer);
    Table table(std::move(headers));

    for (const std::string &platform : matrix.platforms) {
        for (DemandDistribution dist : matrix.traces) {
            const std::string trace_name = demandDistributionName(dist);
            std::vector<std::string> row = {platform + "/" + trace_name};
            for (const std::string &placer : matrix.placers) {
                const MatrixCell &cell = matrix.cells.at(
                    Figure7Matrix::key(trace_name, platform, placer));
                const RunningStats &ratio =
                    use_de ? cell.deRatio : cell.jctRatio;
                row.push_back(formatDouble(ratio.mean(), 3) + "±" +
                              formatDouble(ratio.stddev(), 2));
            }
            table.addRow(std::move(row));
        }
    }
    return table;
}

} // namespace benchutil
} // namespace netpack
