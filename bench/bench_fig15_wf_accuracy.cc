/**
 * @file
 * Figure 15: water-filling estimation accuracy. Jobs arrive staggered
 * into the packet-level simulator; at every sample instant the harness
 * compares each running job's *measured* bandwidth against the
 * water-filling *estimate* computed from the same placements. The
 * paper's plot shows the estimates tracking the testbed measurements,
 * with a short lag while new jobs ramp up.
 */

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "placement/baselines.h"
#include "sim/cluster_sim.h"
#include "sim/packet_model.h"
#include "waterfill/steady_state.h"

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Figure 15 — measured bandwidth vs water-filling estimate",
        "Section 6.4, Figure 15",
        "estimates track the packet-level measurement; small error "
        "except during AIMD ramp-up right after placements");

    ClusterConfig cluster = benchutil::testbedCluster();
    cluster.torPatGbps = 150.0;
    const ClusterTopology topo(cluster);

    // Four staggered cross-server jobs.
    std::vector<JobSpec> jobs;
    for (int j = 0; j < 4; ++j) {
        JobSpec spec;
        spec.id = JobId(j);
        spec.modelName = "VGG16";
        spec.gpuDemand = 4;
        spec.iterations = options.full ? 400 : 150;
        spec.submitTime = 6.0 * j;
        jobs.push_back(spec);
    }
    const JobTrace trace{std::move(jobs)};

    ExperimentConfig config;
    config.cluster = cluster;
    config.fidelity = Fidelity::Packet;
    config.sim.placementPeriod = 2.0;
    config.sim.samplePeriod = 2.0;

    ClusterSimulator sim(topo, makeNetworkModel(config, topo),
                         makePlacerByName("NetPack"), config.sim);

    Table table({"t (s)", "job", "measured (Gbps)", "estimated (Gbps)",
                 "abs err"});
    WaterFillingEstimator estimator(topo);
    RunningStats error;
    sim.setObserver([&](Seconds now, const NetworkModel &model,
                        const std::vector<PlacedJob> &running) {
        if (running.empty())
            return;
        const SteadyState steady = estimator.estimate(running);
        for (const PlacedJob &job : running) {
            const Gbps measured = model.currentRate(job.id);
            const Gbps estimated = steady.jobThroughput(job.id);
            if (!std::isfinite(measured) || !std::isfinite(estimated))
                continue;
            error.add(std::abs(measured - estimated));
            table.addRow({formatDouble(now, 0),
                          std::to_string(job.id.value),
                          formatDouble(measured, 2),
                          formatDouble(estimated, 2),
                          formatDouble(std::abs(measured - estimated),
                                       2)});
        }
    });
    sim.run(trace);

    benchutil::emit(table, options);
    std::cout << "Mean |measured - estimated| = "
              << formatDouble(error.mean(), 2) << " Gbps over "
              << error.count() << " samples (link capacity "
              << formatDouble(cluster.serverLinkGbps, 0) << " Gbps)\n";
    return 0;
}
