/**
 * @file
 * Figure 5 (and Table 1): flow counts of a hierarchically aggregated job
 * as the worker send rate sweeps past each switch's PAT. The paper's
 * example has four racks with two workers each and PATs
 * A1 < Ap < A3 < A4; FS (flows on the ToR(PS)->PS link) and FC (flows on
 * the DCN->ToR(PS) hop) climb stepwise from (1, 3) to (8, 6).
 */

#include <iostream>

#include "bench_util.h"
#include "ina/aggregation.h"

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Figure 5 — hierarchical aggregation flow counts vs send rate",
        "Section 4.1, Figure 5b and Table 1",
        "FS/FC staircase: (FS,FC)=(1,3) at low rate; FC->4 past A1; "
        "FS->6 past Ap; FC->6, FS->8 past A4");

    // The paper's example: A1 < Ap < A3 < A4.
    HierarchicalJobModel model;
    model.remoteRackWorkers = {2, 2, 2};
    model.remoteRackPat = {10.0, 30.0, 40.0}; // A1, A3, A4
    model.psRackWorkers = 2;
    model.psRackPat = 20.0; // Ap

    Table table({"send rate C (Gbps)", "FS (ToR_PS->PS)",
                 "FC (DCN->ToR_PS)", "traffic to PS (Gbps)",
                 "agg ratio"});
    const double step = options.full ? 1.0 : 2.5;
    for (double c = step; c <= 50.0 + 1e-9; c += step) {
        const auto eval = model.evaluate(c);
        table.addRow({formatDouble(c, 1), std::to_string(eval.flowsToPs),
                      std::to_string(eval.flowsCrossRack),
                      formatDouble(eval.trafficToPs, 1),
                      formatDouble(eval.aggregationRatio, 3)});
    }
    benchutil::emit(table, options);

    // Table 1 itself, for reference.
    Table t1({"case", "flows", "aggregated", "unaggregated"});
    const auto full = aggregateAtSwitch(10.0, 20.0, 4);
    const auto partial = aggregateAtSwitch(10.0, 4.0, 4);
    t1.addRow({"A >= C (A=20, C=10, n=4)", std::to_string(full.flows),
               formatDouble(full.aggregated, 1),
               formatDouble(full.unaggregated, 1)});
    t1.addRow({"A <  C (A=4, C=10, n=4)", std::to_string(partial.flows),
               formatDouble(partial.aggregated, 1),
               formatDouble(partial.unaggregated, 1)});
    std::cout << "Table 1 — per-switch aggregation model\n";
    benchutil::emit(t1, options);
    return 0;
}
