/**
 * @file
 * Figure 2: statistical vs synchronous INA when switch memory is
 * insufficient. Two phase-interleaving training jobs share one ToR; the
 * available aggregator memory (expressed as PAT) is swept downward. In
 * the paper (ATP vs SwitchML, cited from INAlloc), statistical INA
 * sustains equal-or-higher job throughput at every memory size and the
 * gap widens as memory shrinks, because transiently-released aggregators
 * let one job use the pool while the other computes.
 */

#include <iostream>

#include "bench_util.h"
#include "sim/packet_model.h"

namespace netpack {
namespace {

using benchutil::Options;

/** The three memory-management modes of Section 2.2. */
enum class MemoryMode
{
    /** ATP-style shared aggregator pool. */
    Statistical,
    /** SwitchML-style static per-job regions. */
    SyncStatic,
    /** INAlloc-style periodically rescheduled regions (>= 10 s). */
    SyncInalloc,
};

/** Run two jobs to completion; return aggregate throughput (iters/s). */
double
runTwoJobs(Gbps pat, MemoryMode mode, std::int64_t iterations)
{
    ClusterConfig cluster = benchutil::testbedCluster();
    cluster.torPatGbps = pat;
    const ClusterTopology topo(cluster);

    PacketModelConfig config;
    config.synchronousIna = mode != MemoryMode::Statistical;
    if (mode == MemoryMode::SyncInalloc)
        config.syncReallocPeriod = 10.0; // INAlloc's minimum interval
    PacketNetworkModel model(topo, config);

    // Asymmetric fan-ins (2 worker servers vs 1) so INAlloc's
    // proportional regions differ from the static equal split.
    for (int j = 0; j < 2; ++j) {
        JobSpec spec;
        spec.id = JobId(j);
        spec.modelName = "VGG16";
        spec.gpuDemand = j == 0 ? 4 : 2;
        spec.iterations = iterations;
        Placement placement;
        if (j == 0) {
            placement.workers[ServerId(0)] = 2;
            placement.workers[ServerId(1)] = 2;
            placement.psServer = ServerId(4);
        } else {
            placement.workers[ServerId(2)] = 2;
            placement.psServer = ServerId(3);
        }
        placement.inaRacks = {RackId(0)};
        model.jobStarted(spec, placement, 0.0);
    }

    Seconds now = 0.0;
    int done = 0;
    std::vector<JobId> completed;
    while (done < 2 && now < 36000.0) {
        now = model.advance(now, now + 10.0, completed);
        for (JobId id : completed) {
            model.jobFinished(id, now);
            ++done;
        }
    }
    if (done < 2)
        return 0.0; // halted (synchronous INA with no memory)
    return 2.0 * static_cast<double>(iterations) / now;
}

} // namespace
} // namespace netpack

int
main(int argc, char **argv)
{
    using namespace netpack;
    const Options options = benchutil::parseOptions(argc, argv);
    const std::int64_t iterations = options.full ? 120 : 40;

    benchutil::printHeader(
        "Figure 2 — statistical vs synchronous INA under scarce memory",
        "Section 2.2, Figure 2 (ATP vs SwitchML behaviour)",
        "statistical >= synchronous (to within ~3% AIMD sawtooth noise "
        "when memory is ample); gap grows as memory shrinks; "
        "synchronous collapses near zero memory");

    // Memory expressed as PAT relative to one job's full demand
    // (~100 Gbps): 2x covers both jobs, 1/8x is heavily contended.
    const std::vector<double> fractions = {2.0, 1.0, 0.5, 0.25, 0.125, 0.0};

    Table table({"memory (xjob)", "PAT Gbps", "statistical iters/s",
                 "sync-static iters/s", "sync-INAlloc iters/s",
                 "stat/static"});
    for (double fraction : fractions) {
        const Gbps pat = fraction * 100.0;
        const double stat =
            runTwoJobs(pat, MemoryMode::Statistical, iterations);
        const double sync =
            runTwoJobs(pat, MemoryMode::SyncStatic, iterations);
        const double inalloc =
            runTwoJobs(pat, MemoryMode::SyncInalloc, iterations);
        table.addRow({formatDouble(fraction, 3), formatDouble(pat, 0),
                      formatDouble(stat, 3), formatDouble(sync, 3),
                      formatDouble(inalloc, 3),
                      sync > 0.0 ? formatDouble(stat / sync, 2) : "inf"});
    }
    benchutil::emit(table, options);
    return 0;
}
