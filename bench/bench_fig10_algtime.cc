/**
 * @file
 * Figure 10: execution time of the NetPack placement algorithm versus
 * cluster size and job count. The paper reports that placing 4K jobs
 * takes under a minute on clusters of 100-10K servers, that the total
 * time grows linearly with the job count, and that the per-job time
 * grows roughly linearly with the cluster size (3.25e-4 s at 100 nodes
 * to 1.36e-2 s at 10K nodes).
 *
 * The harness drives the placer directly (no simulation): jobs are
 * placed in epoch-sized batches, and whenever occupancy crosses 60% the
 * oldest jobs retire so that every placement sees a realistically
 * fragmented, partly loaded cluster.
 *
 * Two modes run per configuration: "full" rebuilds the resource engine
 * from the running set every batch (the pre-PlacementContext behavior),
 * "incr" owns one PlacementContext across all batches so each
 * steady-state query re-converges only the dirtied component. Both must
 * produce identical placements; the speedup column is the point, and the
 * "incr est" / "full est" columns report how many steady-state queries
 * the persistent context answered incrementally versus with a full
 * rebuild (PlacementContext::Stats, the same counts exported as the
 * waterfill.incremental_hits / waterfill.full_fallbacks metrics).
 */

#include <chrono>
#include <deque>
#include <iostream>

#include "bench_util.h"
#include "core/placement_context.h"
#include "placement/netpack_placer.h"

namespace netpack {
namespace {

/** One batch-churn run; returns placement seconds. */
struct PlacementTiming
{
    double fullSeconds = 0.0;
    double incrSeconds = 0.0;
};

/**
 * Time placing @p trace onto a fresh cluster, batch by batch with
 * retirement churn. When @p incremental, one context persists across
 * batches (adds from the placer, removes from the retirement loop);
 * otherwise every batch pays a from-scratch context, matching the
 * legacy convenience overload.
 */
double
timePlacement(const ClusterTopology &topo, const JobTrace &trace,
              int batch_size, bool incremental,
              std::vector<JobId> *placed_order = nullptr,
              PlacementContext::Stats *stats_out = nullptr)
{
    GpuLedger gpus(topo);
    NetPackPlacer placer;
    PlacementContext context(topo);
    std::deque<PlacedJob> running_queue;
    std::vector<PlacedJob> running;

    double elapsed = 0.0;
    std::size_t cursor = 0;
    while (cursor < trace.size()) {
        std::vector<JobSpec> batch;
        for (int i = 0; i < batch_size && cursor < trace.size(); ++i)
            batch.push_back(trace.at(cursor++));

        const auto t0 = std::chrono::steady_clock::now();
        BatchResult result =
            incremental ? placer.placeBatch(batch, topo, gpus, context)
                        : placer.placeBatch(batch, topo, gpus, running);
        const auto t1 = std::chrono::steady_clock::now();
        elapsed += std::chrono::duration<double>(t1 - t0).count();

        for (PlacedJob &job : result.placed) {
            if (placed_order != nullptr)
                placed_order->push_back(job.id);
            running_queue.push_back(job);
            if (!incremental)
                running.push_back(std::move(job));
        }
        // Keep the cluster realistically loaded: retire the oldest jobs
        // once occupancy passes 60%.
        while (gpus.totalFreeGpus() < topo.totalGpus() * 2 / 5 &&
               !running_queue.empty()) {
            const JobId victim = running_queue.front().id;
            running_queue.pop_front();
            gpus.releaseJob(victim);
            if (incremental) {
                context.removeJob(victim);
            } else {
                running.erase(std::find_if(running.begin(), running.end(),
                                           [&](const PlacedJob &j) {
                                               return j.id == victim;
                                           }));
            }
        }
    }
    if (stats_out != nullptr)
        *stats_out = context.stats();
    return elapsed;
}

} // namespace
} // namespace netpack

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Figure 10 — placement algorithm execution time",
        "Section 6.2, Figure 10",
        "total time linear in #jobs; per-job time grows ~linearly with "
        "cluster size; the incremental resource engine (incr) beats the "
        "per-batch rebuild (full) without changing any placement");

    const std::vector<int> scales =
        options.full ? std::vector<int>{96, 1008, 10000}
                     : std::vector<int>{96, 1008};
    const std::vector<int> job_counts =
        options.full ? std::vector<int>{1000, 2000, 4000}
                     : std::vector<int>{250, 500, 1000};

    Table table({"servers", "jobs", "full (s)", "incr (s)", "speedup",
                 "per-job (ms)", "incr est", "full est"});
    for (int servers : scales) {
        ClusterConfig cluster = benchutil::simulatorCluster();
        cluster.serversPerRack = std::max(1, servers / 16);
        const ClusterTopology topo(cluster);

        for (int jobs : job_counts) {
            TraceGenConfig gen;
            gen.numJobs = jobs;
            gen.seed = 5;
            gen.maxGpuDemand = 64;
            const JobTrace trace = generateTrace(gen);

            std::vector<JobId> full_order, incr_order;
            const double full_s =
                timePlacement(topo, trace, 64, false, &full_order);
            PlacementContext::Stats incr_stats;
            const double incr_s = timePlacement(topo, trace, 64, true,
                                                &incr_order, &incr_stats);
            if (full_order != incr_order) {
                std::cerr << "FATAL: incremental mode changed the "
                             "placement decisions\n";
                return 1;
            }

            table.addRow(
                {std::to_string(cluster.serversPerRack * 16),
                 std::to_string(jobs), formatDouble(full_s, 3),
                 formatDouble(incr_s, 3),
                 formatDouble(full_s / std::max(incr_s, 1e-12), 2) + "x",
                 formatDouble(incr_s * 1000.0 / static_cast<double>(jobs),
                              4),
                 std::to_string(incr_stats.incrementalEstimates),
                 std::to_string(incr_stats.fullEstimates)});
        }
    }
    benchutil::emit(table, options);
    return 0;
}
