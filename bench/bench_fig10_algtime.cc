/**
 * @file
 * Figure 10: execution time of the NetPack placement algorithm versus
 * cluster size and job count. The paper reports that placing 4K jobs
 * takes under a minute on clusters of 100-10K servers, that the total
 * time grows linearly with the job count, and that the per-job time
 * grows roughly linearly with the cluster size (3.25e-4 s at 100 nodes
 * to 1.36e-2 s at 10K nodes).
 *
 * The harness drives the placer directly (no simulation): jobs are
 * placed in epoch-sized batches, and whenever occupancy crosses 60% the
 * oldest jobs retire so that every placement sees a realistically
 * fragmented, partly loaded cluster.
 */

#include <chrono>
#include <deque>
#include <iostream>

#include "bench_util.h"
#include "placement/netpack_placer.h"

namespace netpack {
namespace {

/** Time placing @p trace onto a fresh cluster; returns seconds. */
double
timePlacement(const ClusterConfig &cluster, const JobTrace &trace,
              int batch_size)
{
    const ClusterTopology topo(cluster);
    GpuLedger gpus(topo);
    NetPackPlacer placer;
    std::deque<PlacedJob> running_queue;
    std::vector<PlacedJob> running;

    double elapsed = 0.0;
    std::size_t cursor = 0;
    while (cursor < trace.size()) {
        std::vector<JobSpec> batch;
        for (int i = 0; i < batch_size && cursor < trace.size(); ++i)
            batch.push_back(trace.at(cursor++));

        const auto t0 = std::chrono::steady_clock::now();
        BatchResult result = placer.placeBatch(batch, topo, gpus, running);
        const auto t1 = std::chrono::steady_clock::now();
        elapsed += std::chrono::duration<double>(t1 - t0).count();

        for (PlacedJob &job : result.placed) {
            running_queue.push_back(job);
            running.push_back(std::move(job));
        }
        // Keep the cluster realistically loaded: retire the oldest jobs
        // once occupancy passes 60%.
        while (gpus.totalFreeGpus() < topo.totalGpus() * 2 / 5 &&
               !running_queue.empty()) {
            const JobId victim = running_queue.front().id;
            running_queue.pop_front();
            gpus.releaseJob(victim);
            running.erase(std::find_if(running.begin(), running.end(),
                                       [&](const PlacedJob &j) {
                                           return j.id == victim;
                                       }));
        }
    }
    return elapsed;
}

} // namespace
} // namespace netpack

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Figure 10 — placement algorithm execution time",
        "Section 6.2, Figure 10",
        "total time linear in #jobs; per-job time grows ~linearly with "
        "cluster size; 4K jobs on 10K servers well under a minute");

    const std::vector<int> scales =
        options.full ? std::vector<int>{96, 1008, 10000}
                     : std::vector<int>{96, 1008};
    const std::vector<int> job_counts =
        options.full ? std::vector<int>{1000, 2000, 4000}
                     : std::vector<int>{250, 500, 1000};

    Table table({"servers", "jobs", "total time (s)", "per-job (ms)"});
    for (int servers : scales) {
        ClusterConfig cluster = benchutil::simulatorCluster();
        cluster.serversPerRack = std::max(1, servers / 16);

        for (int jobs : job_counts) {
            TraceGenConfig gen;
            gen.numJobs = jobs;
            gen.seed = 5;
            gen.maxGpuDemand = 64;
            const JobTrace trace = generateTrace(gen);
            const double elapsed = timePlacement(cluster, trace, 64);
            table.addRow(
                {std::to_string(cluster.serversPerRack * 16),
                 std::to_string(jobs), formatDouble(elapsed, 3),
                 formatDouble(elapsed * 1000.0 /
                                  static_cast<double>(jobs),
                              4)});
        }
    }
    benchutil::emit(table, options);
    return 0;
}
