/**
 * @file
 * Figure 9: average JCT versus cluster scale. The paper replays a
 * 4K-job real workload on clusters of 100 to 10K servers (16 racks) and
 * reports that NetPack's advantage persists across scales (~31% average
 * JCT reduction against the baselines).
 */

#include <iostream>

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Figure 9 — normalized average JCT vs cluster scale "
        "(NetPack = 1.0 per row)",
        "Section 6.2, Figure 9",
        "NetPack lowest at every scale; paper reports ~31% average "
        "reduction vs baselines");

    // 16 racks as in the paper; servers per rack sets the scale.
    const std::vector<int> scales =
        options.full ? std::vector<int>{96, 400, 1600, 6400, 10000}
                     : std::vector<int>{96, 400, 1600};
    const auto placers = benchutil::figurePlacers();
    const int jobs_per_100_servers = options.full ? 40 : 20;
    const int seeds = benchutil::effectiveSeeds(options, 1);

    std::vector<benchutil::SweepRow> rows;
    for (int servers : scales) {
        benchutil::SweepRow row;
        row.label = std::to_string(servers);
        row.config.cluster = benchutil::simulatorCluster();
        row.config.cluster.serversPerRack = servers / 16;
        row.config.sim.placementPeriod = 10.0;
        // Load scales with the cluster so contention stays comparable:
        // both the job count and the arrival rate track the capacity.
        const int jobs =
            std::max(60, servers * jobs_per_100_servers / 100);
        TraceGenConfig gen;
        gen.numJobs = jobs;
        gen.distribution = DemandDistribution::Poisson;
        gen.demandMean = 8.0;
        gen.demandStddev = 5.0;
        gen.maxGpuDemand = 64;
        gen.meanInterarrival = 0.5 * 1024.0 / static_cast<double>(
                                                  servers * 4);
        gen.durationLogMu = 4.8;
        gen.durationLogSigma = 1.0;
        for (int s = 0; s < seeds; ++s) {
            gen.seed = exec::streamSeed(
                71 + static_cast<std::uint64_t>(servers),
                static_cast<std::uint64_t>(s));
            benchutil::manifest().addSeed(gen.seed);
            row.traces.push_back(generateTrace(gen));
        }
        rows.push_back(std::move(row));
    }
    benchutil::emit(
        benchutil::placerSweepTable("servers", rows, placers, options),
        options);
    return 0;
}
