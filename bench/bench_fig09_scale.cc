/**
 * @file
 * Figure 9: average JCT versus cluster scale. The paper replays a
 * 4K-job real workload on clusters of 100 to 10K servers (16 racks) and
 * reports that NetPack's advantage persists across scales (~31% average
 * JCT reduction against the baselines).
 */

#include <iostream>

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Figure 9 — normalized average JCT vs cluster scale "
        "(NetPack = 1.0 per row)",
        "Section 6.2, Figure 9",
        "NetPack lowest at every scale; paper reports ~31% average "
        "reduction vs baselines");

    // 16 racks as in the paper; servers per rack sets the scale.
    const std::vector<int> scales =
        options.full ? std::vector<int>{96, 400, 1600, 6400, 10000}
                     : std::vector<int>{96, 400, 1600};
    const auto placers = benchutil::figurePlacers();
    const int jobs_per_100_servers = options.full ? 40 : 20;

    std::vector<std::string> headers = {"servers"};
    for (const auto &placer : placers)
        headers.push_back(placer);
    Table table(std::move(headers));

    for (int servers : scales) {
        ExperimentConfig config;
        config.cluster = benchutil::simulatorCluster();
        config.cluster.serversPerRack = servers / 16;
        config.sim.placementPeriod = 10.0;
        // Load scales with the cluster so contention stays comparable:
        // both the job count and the arrival rate track the capacity.
        const int jobs =
            std::max(60, servers * jobs_per_100_servers / 100);
        TraceGenConfig gen;
        gen.numJobs = jobs;
        gen.seed = 71;
        gen.distribution = DemandDistribution::Poisson;
        gen.demandMean = 8.0;
        gen.demandStddev = 5.0;
        gen.maxGpuDemand = 64;
        gen.meanInterarrival = 0.5 * 1024.0 / static_cast<double>(
                                                  servers * 4);
        gen.durationLogMu = 4.8;
        gen.durationLogSigma = 1.0;
        const JobTrace trace = generateTrace(gen);

        std::map<std::string, double> jct;
        for (const auto &placer : placers) {
            config.placer = placer;
            jct[placer] = runExperiment(config, trace).avgJct();
        }
        const auto normalized = normalizeTo(jct, "NetPack");
        std::vector<std::string> row = {std::to_string(servers)};
        for (const auto &placer : placers)
            row.push_back(formatDouble(normalized.at(placer), 3));
        table.addRow(std::move(row));
    }
    benchutil::emit(table, options);
    return 0;
}
