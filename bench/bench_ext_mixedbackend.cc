/**
 * @file
 * Extension: mixed collective backends as first-class placeable jobs.
 * Sweeps the fraction of ring_ina / rdma_ina jobs in a Poisson trace
 * (assignBackends) and replays each mix under the full placer lineup on
 * the flow simulator, reporting Figure 7/8-style normalized JCT and DE
 * tables (NetPack = 1 per row). The pure-PS row is the regression
 * anchor — it must match the pre-backend numbers — while the mixed rows
 * show NetPack's rack-adjacency scoring of leaderful backends holding
 * its lead when the workload is no longer all PS stars. The second
 * table reports deployment efficiency (Figure 8's metric) of the same
 * sweep.
 */

#include <iostream>

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Extension — mixed collective backends: JCT and DE vs backend "
        "mix (NetPack = 1.0 per row)",
        "docs/backends.md (pluggable backends, ROADMAP item 3)",
        "NetPack <= baselines on every mix; the pure-PS row reproduces "
        "the Figure 7 simulator column");

    struct Mix
    {
        const char *label;
        double ring;
        double rdma;
    };
    const std::vector<Mix> mixes = {
        {"pure ps_ina", 0.0, 0.0},
        {"25% ring", 0.25, 0.0},
        {"25% ring + 25% rdma", 0.25, 0.25},
        {"70% ring + 30% rdma", 0.7, 0.3},
    };
    const auto placers = benchutil::figurePlacers();
    const int jobs = options.full ? 240 : 100;
    const int seeds = benchutil::effectiveSeeds(options, options.full ? 3 : 1);

    // The same per-seed base traces feed every row; only the backend
    // assignment moves, so the mix axis is the single variable.
    TraceGenConfig gen;
    gen.numJobs = jobs;
    gen.distribution = DemandDistribution::Poisson;
    gen.demandMean = 10.0;
    gen.maxGpuDemand = 32;
    gen.meanInterarrival = 1.0;
    gen.durationLogMu = 4.6;
    gen.durationLogSigma = 0.9;
    std::vector<JobTrace> base;
    for (int s = 0; s < seeds; ++s) {
        gen.seed = exec::streamSeed(97, static_cast<std::uint64_t>(s));
        benchutil::manifest().addSeed(gen.seed);
        base.push_back(generateTrace(gen));
    }

    std::vector<benchutil::SweepRow> rows;
    for (const Mix &mix : mixes) {
        benchutil::SweepRow row;
        row.label = mix.label;
        row.config.cluster = benchutil::simulatorCluster();
        row.config.cluster.serversPerRack = 8; // tighter: 128 servers
        row.config.cluster.torPatGbps = 400.0;
        row.config.sim.placementPeriod = 10.0;
        for (std::size_t s = 0; s < base.size(); ++s)
            row.traces.push_back(assignBackends(
                base[s], mix.ring, mix.rdma,
                exec::streamSeed(131, static_cast<std::uint64_t>(s))));
        rows.push_back(std::move(row));
    }

    benchutil::emit(benchutil::placerSweepTable("backend mix", rows,
                                                placers, options,
                                                /*use_de=*/false),
                    options);
    std::cout << "Deployment efficiency (same sweep, DE normalized so "
                 "NetPack = 1; baselines <= 1):\n";
    benchutil::emit(benchutil::placerSweepTable("backend mix", rows,
                                                placers, options,
                                                /*use_de=*/true),
                    options);
    return 0;
}
