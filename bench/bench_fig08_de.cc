/**
 * @file
 * Figure 8: average Distribution Efficiency
 * (DE = JCT_with_1_GPU / (Real_JCT x No_of_GPUs)) for the same
 * experiment matrix as Figure 7. DE factors job length and model size
 * out of JCT, isolating the placement effect; the paper reports a
 * 13-46% improvement on the testbed and up to 2.4x in simulation.
 * Values are normalized so NetPack = 1; baselines should read <= 1.
 */

#include <iostream>

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Figure 8 — normalized average Distribution Efficiency "
        "(NetPack = 1.0)",
        "Section 6.2, Figure 8",
        "NetPack highest in every group; paper: baselines 0.69x-0.88x "
        "on the testbed, down to 0.42x in simulation");

    const auto matrix = benchutil::runFigure7Matrix(options);
    benchutil::emit(benchutil::matrixTable(matrix, /*use_de=*/true,
                                           /*with_ci=*/options.seeds > 1),
                    options);
    return 0;
}
