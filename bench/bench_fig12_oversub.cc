/**
 * @file
 * Figure 12: average JCT in oversubscribed networks. The cross-rack
 * bandwidth shrinks from 1:1 to 20:1; NetPack's rack-aware penalty and
 * selective INA enabling should widen its lead as the core gets tighter
 * (the paper reports the average reduction growing from 52% at 1:1 to
 * 89% at 20:1).
 */

#include <iostream>

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Figure 12 — normalized average JCT vs core oversubscription "
        "(NetPack = 1.0 per row)",
        "Section 6.3, Figure 12",
        "baselines >= 1 everywhere and their gap grows with the "
        "oversubscription ratio");

    const std::vector<double> ratios =
        options.full ? std::vector<double>{1.0, 2.0, 4.0, 10.0, 20.0}
                     : std::vector<double>{1.0, 4.0, 20.0};
    const auto placers = benchutil::figurePlacers();
    const int jobs = options.full ? 300 : 100;

    // Cross-rack pressure needs multi-server jobs: Poisson(8) demands.
    TraceGenConfig gen;
    gen.numJobs = jobs;
    gen.seed = 57;
    gen.distribution = DemandDistribution::Poisson;
    gen.demandMean = 10.0;
    gen.maxGpuDemand = 64;
    gen.meanInterarrival = 1.0;
    gen.durationLogMu = 4.6;
    gen.durationLogSigma = 0.9;
    const JobTrace trace = generateTrace(gen);

    std::vector<std::string> headers = {"oversubscription"};
    for (const auto &placer : placers)
        headers.push_back(placer);
    Table table(std::move(headers));

    for (double ratio : ratios) {
        ExperimentConfig config;
        config.cluster = benchutil::simulatorCluster();
        config.cluster.serversPerRack = 8; // tighter cluster: 128 servers
        config.cluster.oversubscription = ratio;
        config.cluster.torPatGbps = 400.0;
        config.sim.placementPeriod = 10.0;

        std::map<std::string, double> jct;
        for (const auto &placer : placers) {
            config.placer = placer;
            jct[placer] = runExperiment(config, trace).avgJct();
        }
        const auto normalized = normalizeTo(jct, "NetPack");
        std::vector<std::string> row = {formatDouble(ratio, 0) + ":1"};
        for (const auto &placer : placers)
            row.push_back(formatDouble(normalized.at(placer), 3));
        table.addRow(std::move(row));
    }
    benchutil::emit(table, options);
    return 0;
}
