/**
 * @file
 * Figure 12: average JCT in oversubscribed networks. The cross-rack
 * bandwidth shrinks from 1:1 to 20:1; NetPack's rack-aware penalty and
 * selective INA enabling should widen its lead as the core gets tighter
 * (the paper reports the average reduction growing from 52% at 1:1 to
 * 89% at 20:1).
 */

#include <iostream>

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Figure 12 — normalized average JCT vs core oversubscription "
        "(NetPack = 1.0 per row)",
        "Section 6.3, Figure 12",
        "baselines >= 1 everywhere and their gap grows with the "
        "oversubscription ratio");

    const std::vector<double> ratios =
        options.full ? std::vector<double>{1.0, 2.0, 4.0, 10.0, 20.0}
                     : std::vector<double>{1.0, 4.0, 20.0};
    const auto placers = benchutil::figurePlacers();
    const int jobs = options.full ? 300 : 100;
    const int seeds = benchutil::effectiveSeeds(options, 1);

    // Cross-rack pressure needs multi-server jobs: Poisson(8) demands.
    // Every oversubscription row replays the same per-seed traces so
    // the ratio axis is the only thing that moves.
    TraceGenConfig gen;
    gen.numJobs = jobs;
    gen.distribution = DemandDistribution::Poisson;
    gen.demandMean = 10.0;
    gen.maxGpuDemand = 64;
    gen.meanInterarrival = 1.0;
    gen.durationLogMu = 4.6;
    gen.durationLogSigma = 0.9;
    std::vector<JobTrace> traces;
    for (int s = 0; s < seeds; ++s) {
        gen.seed = exec::streamSeed(57, static_cast<std::uint64_t>(s));
        benchutil::manifest().addSeed(gen.seed);
        traces.push_back(generateTrace(gen));
    }

    std::vector<benchutil::SweepRow> rows;
    for (double ratio : ratios) {
        benchutil::SweepRow row;
        row.label = formatDouble(ratio, 0) + ":1";
        row.config.cluster = benchutil::simulatorCluster();
        row.config.cluster.serversPerRack = 8; // tighter: 128 servers
        row.config.cluster.oversubscription = ratio;
        row.config.cluster.torPatGbps = 400.0;
        row.config.sim.placementPeriod = 10.0;
        row.traces = traces;
        rows.push_back(std::move(row));
    }
    benchutil::emit(benchutil::placerSweepTable("oversubscription", rows,
                                                placers, options),
                    options);
    return 0;
}
