/**
 * @file
 * Extension: the AllReduce-alternative comparison behind Section 2.1's
 * motivation. For the evaluation models and growing fan-in, prints the
 * per-iteration bottleneck volume and communication time of direct PS
 * exchange, ring AllReduce, halving-doubling, and PS+INA — showing the
 * n*d -> d collapse that makes in-network aggregation attractive, and
 * where latency-bound collectives win instead (tiny gradients).
 */

#include <iostream>

#include "bench_util.h"
#include "ina/collectives.h"
#include "workload/models.h"

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Extension — AllReduce alternatives vs PS+INA",
        "Section 2.1 (AllReduce methods) and the INA motivation",
        "bottleneck volume: PS = n*d, Ring ~= 2d, INA = d; INA's comm "
        "time lowest at every fan-in for large gradients");

    const Gbps rate = 100.0;
    const Seconds latency = 50e-6;

    Table table({"model", "workers", "PS (MB | ms)", "Ring (MB | ms)",
                 "HalvDoub (MB | ms)", "PS+INA (MB | ms)"});
    const std::vector<int> fanins =
        options.full ? std::vector<int>{2, 4, 8, 16, 32, 64}
                     : std::vector<int>{2, 8, 32};
    for (const char *model_name : {"VGG16", "ResNet50"}) {
        const ModelProfile &model = ModelZoo::byName(model_name);
        for (int n : fanins) {
            const auto cell = [&](CollectiveAlgorithm algorithm) {
                const CollectiveCost cost =
                    collectiveCost(algorithm, n, model.modelSizeMb, 1.0);
                const Seconds time = collectiveStepTime(
                    algorithm, n, model.modelSizeMb, rate, latency, 1.0);
                return formatDouble(cost.bottleneckVolume, 0) + " | " +
                       formatDouble(time * 1e3, 1);
            };
            table.addRow({model.name, std::to_string(n),
                          cell(CollectiveAlgorithm::PsDirect),
                          cell(CollectiveAlgorithm::RingAllReduce),
                          cell(CollectiveAlgorithm::HalvingDoubling),
                          cell(CollectiveAlgorithm::PsWithIna)});
        }
    }
    benchutil::emit(table, options);

    std::cout << "Partial aggregation (VGG16, 8 workers): bottleneck "
                 "volume vs aggregation ratio\n";
    Table partial({"agg ratio", "PS-side volume (MB)", "comm time (ms)"});
    for (double ratio : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        const CollectiveCost cost = collectiveCost(
            CollectiveAlgorithm::PsWithIna, 8, 554.0, ratio);
        const Seconds time = collectiveStepTime(
            CollectiveAlgorithm::PsWithIna, 8, 554.0, rate, 0.0, ratio);
        partial.addRow({formatDouble(ratio, 2),
                        formatDouble(cost.bottleneckVolume, 0),
                        formatDouble(time * 1e3, 1)});
    }
    benchutil::emit(partial, options);
    return 0;
}
