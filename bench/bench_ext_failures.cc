/**
 * @file
 * Extension: placement under server failures. Servers fail on a Poisson
 * schedule and every affected job restarts from scratch, so placement
 * policies that concentrate jobs onto few servers lose less work per
 * crash than policies that scatter them (a failed server kills every
 * job touching it). Reports JCT and restart counts per policy as the
 * failure rate grows.
 */

#include <iostream>

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Extension — JCT and lost work under injected server failures",
        "DESIGN.md extension (failure injection)",
        "restarts scale with per-job server spread; NetPack stays "
        "competitive while policies that scatter workers restart more "
        "jobs per crash");

    const int jobs = options.full ? 200 : 80;
    TraceGenConfig gen;
    gen.numJobs = jobs;
    gen.seed = 31;
    gen.distribution = DemandDistribution::Poisson;
    gen.demandMean = 8.0;
    gen.maxGpuDemand = 32;
    gen.meanInterarrival = 1.5;
    gen.durationLogMu = 4.4;
    const JobTrace trace = generateTrace(gen);

    ClusterConfig cluster = benchutil::simulatorCluster();
    cluster.serversPerRack = 8;
    cluster.torPatGbps = 200.0;

    Table table({"MTBF (s)", "placer", "avg JCT (s)", "restarts"});
    for (double mtbf : {0.0, 120.0, 30.0}) {
        // Poisson failure schedule over the trace's active window.
        const std::vector<ServerFailure> failures =
            benchutil::poissonFailureSchedule(
                mtbf, 600.0, cluster.numRacks * cluster.serversPerRack,
                17);

        for (const std::string placer : {"NetPack", "GB", "Optimus"}) {
            ExperimentConfig config;
            config.cluster = cluster;
            config.placer = placer;
            config.sim.placementPeriod = 5.0;
            config.sim.failures = failures;
            const RunMetrics metrics = runExperiment(config, trace);
            table.addRow({mtbf > 0.0 ? formatDouble(mtbf, 0) : "none",
                          placer, formatDouble(metrics.avgJct(), 2),
                          std::to_string(metrics.jobRestarts)});
        }
    }
    benchutil::emit(table, options);
    return 0;
}
