/**
 * @file
 * Figure 6: simulator validation. The same job traces are replayed on
 * the packet-level model (the testbed stand-in) and on the flow-level
 * simulator; the paper reports a 98% linear correlation between the two
 * normalized JCT series. We regenerate the scatter, the least-squares
 * fit, and the Pearson coefficient.
 */

#include <iostream>

#include "bench_util.h"
#include "common/stats.h"

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Figure 6 — simulator validation (flow-level vs packet-level JCT)",
        "Section 6.1, Figure 6",
        "strongly linear relation; paper reports correlation ~0.98");

    const int traces = options.full ? 12 : 6;
    const int jobs = options.full ? 16 : 10;

    std::vector<double> flow_jcts, packet_jcts;
    Table table({"trace", "flow-sim avg JCT (s)", "packet-sim avg JCT (s)"});
    for (int t = 0; t < traces; ++t) {
        const JobTrace trace = benchutil::testbedTrace(
            t % 2 == 0 ? DemandDistribution::Philly
                       : DemandDistribution::Poisson,
            jobs, 1000 + static_cast<std::uint64_t>(t));

        ExperimentConfig config;
        config.cluster = benchutil::testbedCluster();
        config.sim.placementPeriod = 5.0;
        config.fidelity = Fidelity::Flow;
        const double flow_jct = runExperiment(config, trace).avgJct();
        config.fidelity = Fidelity::Packet;
        const double packet_jct = runExperiment(config, trace).avgJct();

        flow_jcts.push_back(flow_jct);
        packet_jcts.push_back(packet_jct);
        table.addRow({"trace-" + std::to_string(t),
                      formatDouble(flow_jct, 2),
                      formatDouble(packet_jct, 2)});
    }
    benchutil::emit(table, options);

    const double r = pearsonCorrelation(flow_jcts, packet_jcts);
    const LinearFit fit = fitLine(flow_jcts, packet_jcts);
    std::cout << "Pearson correlation: " << formatDouble(r, 4)
              << " (paper: ~0.98)\n"
              << "Linear fit: packet = " << formatDouble(fit.slope, 3)
              << " * flow + " << formatDouble(fit.intercept, 3)
              << "  (R^2 = " << formatDouble(fit.r2, 4) << ")\n";
    return 0;
}
