/**
 * @file
 * Section 5.1 ablation: exact (MIP-style) placement vs NetPack's DP.
 * The paper reports Gurobi needing >4 hours on large instances; our
 * exhaustive branch-and-enumerate solver is the exact stand-in. On
 * small instances this bench shows (1) the exact search space exploding
 * combinatorially with instance size while the DP stays microseconds,
 * and (2) the DP objective landing close to the optimum.
 */

#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "placement/exhaustive.h"
#include "placement/netpack_placer.h"

namespace netpack {
namespace {

struct Instance
{
    int racks;
    int serversPerRack;
    int gpusPerServer;
    std::vector<int> demands;
};

} // namespace
} // namespace netpack

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "MIP (exact) vs NetPack DP — quality and runtime",
        "Section 5.1 (MIP intractability) and 5.2 (DP quality)",
        "exact plan count explodes with instance size; DP stays fast "
        "with objective close to the optimum");

    std::vector<Instance> instances = {
        {2, 2, 2, {3}},
        {2, 2, 2, {3, 3}},
        {2, 3, 2, {3, 3}},
    };
    if (options.full)
        instances.push_back({2, 3, 2, {3, 3, 4}});

    Table table({"instance", "exact plans", "exact time (s)",
                 "exact objective (s)", "DP time (s)",
                 "DP objective (s)", "gap"});
    for (const Instance &instance : instances) {
        ClusterConfig cluster;
        cluster.numRacks = instance.racks;
        cluster.serversPerRack = instance.serversPerRack;
        cluster.gpusPerServer = instance.gpusPerServer;
        cluster.serverLinkGbps = 100.0;
        cluster.torPatGbps = 200.0;
        cluster.oversubscription = 4.0;
        const ClusterTopology topo(cluster);

        std::vector<JobSpec> jobs;
        for (std::size_t j = 0; j < instance.demands.size(); ++j) {
            JobSpec spec;
            spec.id = JobId(static_cast<int>(j));
            spec.modelName = "VGG16";
            spec.gpuDemand = instance.demands[j];
            spec.iterations = 10;
            jobs.push_back(spec);
        }

        GpuLedger exact_gpus(topo);
        ExhaustiveSolver solver(50'000'000);
        const auto t0 = std::chrono::steady_clock::now();
        const auto exact = solver.solve(jobs, topo, exact_gpus);
        const auto t1 = std::chrono::steady_clock::now();

        GpuLedger dp_gpus(topo);
        NetPackPlacer placer;
        const auto t2 = std::chrono::steady_clock::now();
        const auto dp = placer.placeBatch(jobs, topo, dp_gpus, {});
        const auto t3 = std::chrono::steady_clock::now();
        const double dp_objective =
            placementObjective(topo, jobs, dp.placed);

        std::string label = std::to_string(instance.racks *
                                           instance.serversPerRack) +
                            " servers / " +
                            std::to_string(instance.demands.size()) +
                            " jobs";
        table.addRow(
            {label, std::to_string(exact.plansEvaluated),
             formatDouble(std::chrono::duration<double>(t1 - t0).count(),
                          3),
             formatDouble(exact.objective, 4),
             formatDouble(std::chrono::duration<double>(t3 - t2).count(),
                          6),
             formatDouble(dp_objective, 4),
             exact.objective > 0.0
                 ? formatDouble(dp_objective / exact.objective, 2) + "x"
                 : "n/a"});
    }
    benchutil::emit(table, options);
    return 0;
}
