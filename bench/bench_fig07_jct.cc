/**
 * @file
 * Figure 7: normalized average job completion time of NetPack vs the
 * five baselines (GB, FB, LF, Optimus, Tetris) on the Real (Philly-
 * like), Poisson, and Normal traces, both on the testbed stand-in
 * (packet model) and in the large flow-level simulator. The paper
 * reports 13-45% JCT reduction on the testbed and up to 78% in
 * simulation; here every row is normalized so NetPack = 1 and all
 * baselines should read >= 1.
 */

#include <iostream>

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Figure 7 — normalized average JCT (NetPack = 1.0)",
        "Section 6.2, Figure 7",
        "NetPack lowest in every group; paper: baselines 1.13x-1.45x on "
        "the testbed, up to 4.5x in simulation");

    const auto matrix = benchutil::runFigure7Matrix(options);
    benchutil::emit(benchutil::matrixTable(matrix, /*use_de=*/false,
                                           /*with_ci=*/options.seeds > 1),
                    options);
    return 0;
}
