/**
 * @file
 * Figure 11: average JCT on the testbed stand-in as the switch memory
 * available to INA shrinks (other switch functions may occupy memory in
 * practice). The paper reports 30-92% JCT reduction over baselines,
 * with NetPack's advantage *growing* as memory shrinks, and a large win
 * even at PAT = 0 because its heuristics also balance GPU and
 * bandwidth.
 */

#include <iostream>

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Figure 11 — normalized average JCT vs switch memory "
        "(NetPack = 1.0 per row)",
        "Section 6.3, Figure 11",
        "baselines >= 1 everywhere; their gap grows as PAT shrinks; "
        "NetPack still wins at PAT = 0");

    const std::vector<Gbps> pats =
        options.full ? std::vector<Gbps>{400.0, 200.0, 100.0, 50.0, 25.0,
                                         0.0}
                     : std::vector<Gbps>{400.0, 100.0, 25.0, 0.0};
    const std::vector<std::string> placers = {"NetPack", "GB", "LF",
                                              "Tetris"};
    const int jobs = options.full ? 32 : 16;
    const JobTrace trace =
        benchutil::testbedTrace(DemandDistribution::Philly, jobs, 97);

    std::vector<std::string> headers = {"PAT (Gbps)"};
    for (const auto &placer : placers)
        headers.push_back(placer);
    Table table(std::move(headers));

    for (Gbps pat : pats) {
        ExperimentConfig config;
        config.cluster = benchutil::testbedCluster();
        config.cluster.torPatGbps = pat;
        config.fidelity = Fidelity::Packet;
        config.sim.placementPeriod = 5.0;

        std::map<std::string, double> jct;
        for (const auto &placer : placers) {
            config.placer = placer;
            jct[placer] = runExperiment(config, trace).avgJct();
        }
        const auto normalized = normalizeTo(jct, "NetPack");
        std::vector<std::string> row = {formatDouble(pat, 0)};
        for (const auto &placer : placers)
            row.push_back(formatDouble(normalized.at(placer), 3));
        table.addRow(std::move(row));
    }
    benchutil::emit(table, options);
    return 0;
}
