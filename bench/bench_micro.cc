/**
 * @file
 * Micro-benchmarks (google-benchmark) of the hot paths: water-filling
 * steady-state estimation, the worker-placement DP, the job-subset
 * knapsack, hierarchy construction, and one packet-model slot.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "placement/knapsack.h"
#include "placement/netpack_placer.h"
#include "sim/packet_model.h"
#include "waterfill/steady_state.h"

namespace netpack {
namespace {

/** A cluster with `racks` racks of 8 servers, partially loaded. */
ClusterTopology
scaledTopo(int racks)
{
    ClusterConfig config;
    config.numRacks = racks;
    config.serversPerRack = 8;
    config.gpusPerServer = 4;
    config.serverLinkGbps = 100.0;
    config.torPatGbps = 400.0;
    return ClusterTopology(config);
}

/** `n` cross-server jobs spread deterministically over the cluster. */
std::vector<PlacedJob>
spreadJobs(const ClusterTopology &topo, int n)
{
    std::vector<PlacedJob> jobs;
    for (int j = 0; j < n; ++j) {
        PlacedJob job;
        job.id = JobId(j);
        const int base = (j * 3) % (topo.numServers() - 2);
        job.placement.workers[ServerId(base)] = 2;
        job.placement.workers[ServerId(base + 1)] = 2;
        job.placement.psServer = ServerId(base + 2);
        for (RackId rack : job.placement.allRacks(topo))
            job.placement.inaRacks.insert(rack);
        jobs.push_back(std::move(job));
    }
    return jobs;
}

void
BM_WaterFilling(benchmark::State &state)
{
    const ClusterTopology topo(scaledTopo(static_cast<int>(state.range(0))));
    WaterFillingEstimator estimator(topo);
    const auto jobs = spreadJobs(topo, static_cast<int>(state.range(1)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(estimator.estimate(jobs));
    }
    state.SetLabel(std::to_string(topo.numServers()) + " servers, " +
                   std::to_string(jobs.size()) + " jobs");
}
BENCHMARK(BM_WaterFilling)
    ->Args({2, 8})
    ->Args({16, 32})
    ->Args({64, 128});

void
BM_WorkerPlacementDp(benchmark::State &state)
{
    const ClusterTopology topo(scaledTopo(static_cast<int>(state.range(0))));
    GpuLedger gpus(topo);
    NetPackPlacer placer;
    JobSpec spec;
    spec.id = JobId(0);
    spec.modelName = "VGG16";
    spec.gpuDemand = 4 * topo.gpusPerServer() + 2; // forces the DP path
    spec.iterations = 10;
    for (auto _ : state) {
        GpuLedger fresh = gpus;
        benchmark::DoNotOptimize(
            placer.placeBatch({spec}, topo, fresh, {}));
    }
    state.SetLabel(std::to_string(topo.numServers()) + " servers");
}
BENCHMARK(BM_WorkerPlacementDp)->Arg(2)->Arg(16)->Arg(64)->Arg(256);

void
BM_Knapsack(benchmark::State &state)
{
    Rng rng(5);
    std::vector<KnapsackItem> items;
    for (int i = 0; i < state.range(0); ++i)
        items.push_back({static_cast<int>(rng.uniformInt(1, 64)),
                         rng.uniform(0.5, 4.0)});
    const int capacity = static_cast<int>(state.range(0)) * 16;
    for (auto _ : state) {
        benchmark::DoNotOptimize(solveKnapsack(items, capacity));
    }
}
BENCHMARK(BM_Knapsack)->Arg(64)->Arg(512)->Arg(2048);

void
BM_HierarchyBuild(benchmark::State &state)
{
    const ClusterTopology topo(scaledTopo(8));
    Placement placement;
    for (int s = 0; s < static_cast<int>(state.range(0)); ++s)
        placement.workers[ServerId(s * 2)] = 2;
    placement.psServer = ServerId(1);
    for (RackId rack : placement.allRacks(topo))
        placement.inaRacks.insert(rack);
    for (auto _ : state) {
        JobHierarchy h(topo, JobId(0), placement);
        benchmark::DoNotOptimize(h);
    }
}
BENCHMARK(BM_HierarchyBuild)->Arg(2)->Arg(8)->Arg(24);

void
BM_PacketSlot(benchmark::State &state)
{
    const ClusterTopology topo(scaledTopo(2));
    PacketNetworkModel model(topo);
    for (int j = 0; j < state.range(0); ++j) {
        JobSpec spec;
        spec.id = JobId(j);
        spec.modelName = "VGG16";
        spec.gpuDemand = 4;
        spec.iterations = 1'000'000;
        Placement placement;
        placement.workers[ServerId((2 * j) % 15)] = 2;
        placement.workers[ServerId((2 * j + 1) % 15)] = 2;
        placement.psServer = ServerId(15);
        placement.inaRacks = {topo.rackOf(placement.psServer)};
        for (RackId rack : placement.allRacks(topo))
            placement.inaRacks.insert(rack);
        model.jobStarted(spec, placement, 0.0);
    }
    std::vector<JobId> completed;
    Seconds now = 0.0;
    for (auto _ : state) {
        now = model.advance(now, now + 50e-6, completed);
    }
    state.SetLabel(std::to_string(state.range(0)) + " jobs");
}
BENCHMARK(BM_PacketSlot)->Arg(2)->Arg(8);

} // namespace
} // namespace netpack
