/**
 * @file
 * Ablation of the 2-D knapsack weight (Section 5.2 step ②): the worker
 * DP tracks (max per-server flows, GPUs) so that the PS-placement
 * hot-spot penalty can punish plans that pile flows onto one server.
 * With the flow dimension disabled the weight degenerates to GPUs only.
 * This bench compares JCT with and without the 2-D weight on a
 * flow-contended workload.
 */

#include <iostream>

#include "bench_util.h"
#include "placement/netpack_placer.h"
#include "sim/flow_model.h"

namespace netpack {
namespace {

double
runWith(bool two_dim, const JobTrace &trace, const ClusterConfig &cluster)
{
    NetPackConfig placer_config;
    placer_config.twoDimWeight = two_dim;
    const ClusterTopology topo(cluster);
    SimConfig sim_config;
    sim_config.placementPeriod = 5.0;
    ClusterSimulator sim(topo, std::make_unique<FlowNetworkModel>(topo),
                         std::make_unique<NetPackPlacer>(placer_config),
                         sim_config);
    return sim.run(trace).avgJct();
}

} // namespace
} // namespace netpack

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Ablation — 2-D knapsack weight (flows x GPUs) vs GPUs only",
        "DESIGN.md ablation for Section 5.2 step ② / Equation 1",
        "the 2-D weight should match or beat the 1-D variant, most "
        "visibly on communication-heavy mixes");

    ClusterConfig cluster = benchutil::simulatorCluster();
    cluster.serversPerRack = 8;
    cluster.torPatGbps = 200.0;

    const int jobs = options.full ? 240 : 90;
    Table table({"workload", "2-D weight JCT (s)", "1-D weight JCT (s)",
                 "1-D / 2-D"});
    for (DemandDistribution dist : {DemandDistribution::Philly,
                                    DemandDistribution::Poisson}) {
        TraceGenConfig gen;
        gen.numJobs = jobs;
        gen.seed = 143;
        gen.distribution = dist;
        gen.demandMean = 10.0;
        gen.maxGpuDemand = 32;
        gen.meanInterarrival = 3.0;
        gen.durationLogMu = 4.3;
        const JobTrace trace = generateTrace(gen);

        const double with2d = runWith(true, trace, cluster);
        const double with1d = runWith(false, trace, cluster);
        table.addRow({demandDistributionName(dist),
                      formatDouble(with2d, 2), formatDouble(with1d, 2),
                      formatDouble(with1d / with2d, 3)});
    }
    benchutil::emit(table, options);
    return 0;
}
