/**
 * @file
 * Shared scaffolding for the figure-regeneration benches: the two
 * canonical cluster configurations (the 5-server testbed stand-in and
 * the paper's default 16-rack simulator cluster), trace builders sized
 * for each, and uniform banner/CSV output. Every bench accepts
 * `--full` (paper-scale parameters; slower), `--csv` (machine-
 * readable output in addition to the table), `--json <path>` (write a
 * run manifest — see docs/observability.md), `--jobs N` (fan
 * independent simulator runs out over N worker threads; results are
 * bit-identical for any N), and `--seeds K` (replicate each sweep cell
 * over K trace seeds and report mean / stddev / 95% CI).
 */

#ifndef NETPACK_BENCH_BENCH_UTIL_H
#define NETPACK_BENCH_BENCH_UTIL_H

#include <optional>
#include <string>

#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/experiment.h"
#include "exec/sweep.h"
#include "obs/run_manifest.h"
#include "workload/trace_gen.h"

namespace netpack {
namespace benchutil {

/** Parsed command-line options shared by all benches. */
struct Options
{
    /** Paper-scale parameters (slower); default is a quick profile. */
    bool full = false;
    /** Also emit CSV after the human-readable table. */
    bool csv = false;
    /** When non-empty, write a run manifest here (enables metrics). */
    std::string jsonPath;
    /** Worker threads for matrix sweeps; 1 = serial. */
    int jobs = 1;
    /** Seed replicates per sweep cell; 0 = the bench's own default. */
    int seeds = 0;
    /** When non-empty, record per-run journals into this directory. */
    std::string journalDir;
    /** Simulated seconds between journal snapshots; 0 = none. */
    double snapshotEvery = 0.0;
    /** Resume incomplete journals instead of re-running from scratch. */
    bool resume = false;
    /** OpenMetrics scrape port (0 = ephemeral); -1 = flag absent, fall
     * back to NETPACK_METRICS_PORT. Starting the server enables
     * metrics. */
    int metricsPort = -1;
    /** Push telemetry series points every K-th placement epoch;
     * 0 = keep the process default (1 = every epoch). */
    int sampleEvery = 0;
    /** --help was passed (parseOptions prints usage and exits). */
    bool help = false;
};

/** The usage text printed for --help and on malformed invocations. */
std::string usageText(const std::string &argv0);

/**
 * Parse into @p options without exiting (tests use this directly):
 * returns an error message on unknown flags, missing operands, or
 * non-numeric / out-of-range --jobs / --seeds; empty on success. Also
 * seeds the process manifest with the invocation.
 */
std::optional<std::string> parseOptionsInto(int argc, char **argv,
                                            Options &options);

/** Parse --full / --csv / --json / --jobs / --seeds / --journal /
 * --snapshot-every / --resume; exits with usage on anything else. */
Options parseOptions(int argc, char **argv);

/** exec sweep options derived from the parsed bench options (worker
 * count plus the journal recording knobs). */
exec::SweepOptions sweepOptions(const Options &options);

/** Fold a finished sweep's journal activity into the manifest's
 * journal block (no-op when journaling was off). */
void recordJournalActivity(const exec::SweepResult &result,
                           const Options &options);

/**
 * The process-wide manifest the bench scaffolding populates. The
 * reference itself is not synchronized — mutate it from the main
 * thread only; pool workers go through recordRun, which locks.
 */
obs::RunManifest &manifest();

/** Record one simulated run in the manifest under @p label
 * (thread-safe; callable from pool workers). */
void recordRun(const std::string &label, const RunMetrics &metrics);

/**
 * The testbed stand-in (paper Section 6.1): five 2-GPU servers under a
 * single ToR with 100 Gbps links.
 */
ClusterConfig testbedCluster();

/**
 * The paper's default simulated cluster: 16 racks x 16 servers x 4
 * GPUs, 1:1 oversubscription, 1 Tbps PAT per ToR.
 */
ClusterConfig simulatorCluster();

/** A trace sized for the testbed (small jobs, short durations). */
JobTrace testbedTrace(DemandDistribution dist, int jobs,
                      std::uint64_t seed);

/** A trace sized for the simulator cluster. */
JobTrace simulatorTrace(DemandDistribution dist, int jobs,
                        std::uint64_t seed);

/**
 * A Poisson server-failure schedule: exponential inter-failure gaps
 * with mean @p mtbf over [0, @p window], each hitting a uniformly
 * random server in [0, @p servers), down for @p downtime seconds.
 * Deterministic in @p seed; empty when @p mtbf <= 0.
 */
std::vector<ServerFailure> poissonFailureSchedule(
    double mtbf, Seconds window, int servers, std::uint64_t seed,
    Seconds downtime = 60.0);

/** Print the bench banner: what figure, what the paper showed. */
void printHeader(const std::string &title, const std::string &paper_ref,
                 const std::string &expectation);

/** Print @p table, then CSV when requested. */
void emit(const Table &table, const Options &options);

/** The Figure 7-9 placer lineup including NetPack. */
std::vector<std::string> figurePlacers();

/**
 * The Figure 7/8 experiment matrix: {Real, Poisson, Normal} traces x
 * {testbed (packet model), simulator (flow model)} x the full placer
 * lineup. Both figures share the same runs (JCT for Figure 7, DE for
 * Figure 8), so the matrix is computed once per bench invocation.
 */
struct MatrixCell
{
    /** Per-seed JCT ratios vs NetPack (the paper's error bars). */
    RunningStats jctRatio;
    /** Per-seed DE ratios vs NetPack. */
    RunningStats deRatio;
};

struct Figure7Matrix
{
    std::vector<std::string> placers;
    std::vector<DemandDistribution> traces;
    std::vector<std::string> platforms; // "testbed", "simulator"
    /** key: trace|platform|placer */
    std::map<std::string, MatrixCell> cells;

    static std::string key(const std::string &trace,
                           const std::string &platform,
                           const std::string &placer)
    {
        return trace + "|" + platform + "|" + placer;
    }
};

/**
 * Run the full Figure 7/8 matrix (shared by both benches) on the exec
 * sweep runner: options.jobs worker threads, options.seeds replicates
 * per cell (default 3, or 10 with --full). Bit-identical for any jobs.
 */
Figure7Matrix runFigure7Matrix(const Options &options);

/**
 * Render one metric of the matrix as a table with rows = trace x
 * platform groups, columns = placers, normalized so NetPack = 1.
 * @param with_ci also emit a "<placer> ci95" column per placer (the
 *        95% CI half-width of the normalized ratio across seeds)
 */
Table matrixTable(const Figure7Matrix &matrix, bool use_de,
                  bool with_ci = false);

/**
 * One row of a generic "rows x placers" figure sweep (Figures 9, 12,
 * 13): an experiment configuration replayed under every placer for
 * each per-seed trace replicate.
 */
struct SweepRow
{
    /** First-column value; also prefixes the aggregation cell key. */
    std::string label;
    /** Template config; placer and RNG stream are set per run. */
    ExperimentConfig config;
    /** One trace per seed replicate. */
    std::vector<JobTrace> traces;
};

/** Seed-replicate count for a sweep: --seeds K wins, else @p fallback. */
int effectiveSeeds(const Options &options, int fallback);

/**
 * Run rows x traces x placers through exec::runSweep (options.jobs
 * workers), record every run and per-cell aggregate in the manifest,
 * and render one table: rows labelled by SweepRow::label, one column
 * per placer normalized so placers.front() = 1 within each (row, seed)
 * — the mean ratio over seeds, ±stddev when replicated, plus a ci95
 * column per placer when --seeds > 1.
 */
Table placerSweepTable(const std::string &axis_header,
                       const std::vector<SweepRow> &rows,
                       const std::vector<std::string> &placers,
                       const Options &options, bool use_de = false);

} // namespace benchutil
} // namespace netpack

#endif // NETPACK_BENCH_BENCH_UTIL_H
