/**
 * @file
 * Shared scaffolding for the figure-regeneration benches: the two
 * canonical cluster configurations (the 5-server testbed stand-in and
 * the paper's default 16-rack simulator cluster), trace builders sized
 * for each, and uniform banner/CSV output. Every bench accepts
 * `--full` (paper-scale parameters; slower), `--csv` (machine-
 * readable output in addition to the table), and `--json <path>`
 * (write a run manifest — see docs/observability.md).
 */

#ifndef NETPACK_BENCH_BENCH_UTIL_H
#define NETPACK_BENCH_BENCH_UTIL_H

#include <string>

#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/experiment.h"
#include "obs/run_manifest.h"
#include "workload/trace_gen.h"

namespace netpack {
namespace benchutil {

/** Parsed command-line options shared by all benches. */
struct Options
{
    /** Paper-scale parameters (slower); default is a quick profile. */
    bool full = false;
    /** Also emit CSV after the human-readable table. */
    bool csv = false;
    /** When non-empty, write a run manifest here (enables metrics). */
    std::string jsonPath;
};

/** Parse --full / --csv / --json; exits with usage on anything else. */
Options parseOptions(int argc, char **argv);

/** The process-wide manifest the bench scaffolding populates. */
obs::RunManifest &manifest();

/** Record one simulated run in the manifest under @p label. */
void recordRun(const std::string &label, const RunMetrics &metrics);

/**
 * The testbed stand-in (paper Section 6.1): five 2-GPU servers under a
 * single ToR with 100 Gbps links.
 */
ClusterConfig testbedCluster();

/**
 * The paper's default simulated cluster: 16 racks x 16 servers x 4
 * GPUs, 1:1 oversubscription, 1 Tbps PAT per ToR.
 */
ClusterConfig simulatorCluster();

/** A trace sized for the testbed (small jobs, short durations). */
JobTrace testbedTrace(DemandDistribution dist, int jobs,
                      std::uint64_t seed);

/** A trace sized for the simulator cluster. */
JobTrace simulatorTrace(DemandDistribution dist, int jobs,
                        std::uint64_t seed);

/** Print the bench banner: what figure, what the paper showed. */
void printHeader(const std::string &title, const std::string &paper_ref,
                 const std::string &expectation);

/** Print @p table, then CSV when requested. */
void emit(const Table &table, const Options &options);

/** The Figure 7-9 placer lineup including NetPack. */
std::vector<std::string> figurePlacers();

/**
 * The Figure 7/8 experiment matrix: {Real, Poisson, Normal} traces x
 * {testbed (packet model), simulator (flow model)} x the full placer
 * lineup. Both figures share the same runs (JCT for Figure 7, DE for
 * Figure 8), so the matrix is computed once per bench invocation.
 */
struct MatrixCell
{
    /** Per-seed JCT ratios vs NetPack (the paper's error bars). */
    RunningStats jctRatio;
    /** Per-seed DE ratios vs NetPack. */
    RunningStats deRatio;
};

struct Figure7Matrix
{
    std::vector<std::string> placers;
    std::vector<DemandDistribution> traces;
    std::vector<std::string> platforms; // "testbed", "simulator"
    /** key: trace|platform|placer */
    std::map<std::string, MatrixCell> cells;

    static std::string key(const std::string &trace,
                           const std::string &platform,
                           const std::string &placer)
    {
        return trace + "|" + platform + "|" + placer;
    }
};

/** Run the full Figure 7/8 matrix (shared by both benches). */
Figure7Matrix runFigure7Matrix(const Options &options);

/**
 * Render one metric of the matrix as a table with rows = trace x
 * platform groups, columns = placers, normalized so NetPack = 1.
 */
Table matrixTable(const Figure7Matrix &matrix, bool use_de);

} // namespace benchutil
} // namespace netpack

#endif // NETPACK_BENCH_BENCH_UTIL_H
