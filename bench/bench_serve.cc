/**
 * @file
 * Serving throughput and latency of netpack::serve (docs/serving.md):
 * an in-process PlacementServer on a 64-rack cluster under closed-loop
 * load from multiple client connections, each sending a deterministic
 * place/depart/query mix. Departures track placements so the cluster
 * reaches a steady running-job population rather than filling up.
 *
 * Reports sustained requests/s and client-observed p50/p99 latency,
 * then hard-asserts the ISSUE 8 acceptance floor — >= 1,000 req/s with
 * p99 < 50 ms — and exits non-zero on a miss, so CI can run this bench
 * as a serving-regression gate. `--jobs N` sets the connection count,
 * `--full` quadruples the request budget.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serve/client.h"
#include "serve/placement_server.h"
#include "workload/models.h"

namespace {

using namespace netpack;

/**
 * One closed-loop client: place jobs, depart them a short window later
 * (steady state), and sprinkle what-if queries. Job ids are striped by
 * client index so connections never collide. Appends one latency
 * sample (microseconds) per request to @p latencies.
 */
void
clientLoop(std::uint16_t port, int client, std::uint64_t requests,
           std::vector<double> &latencies)
{
    serve::ServeClient conn(port);
    Rng rng(0x5e57 + static_cast<std::uint64_t>(client));
    const auto &models = ModelZoo::all();
    const int base = 1000000 * (client + 1);
    std::vector<JobId> running;
    latencies.reserve(requests);

    for (std::uint64_t k = 0; k < requests; ++k) {
        serve::Request request;
        request.id = static_cast<std::int64_t>(k);
        const std::uint64_t slot = rng() % 10;
        if (slot < 4 || running.empty()) {
            request.op = serve::Op::Place;
            JobSpec spec;
            spec.id = JobId(base + static_cast<int>(k));
            spec.modelName = models[rng() % models.size()].name;
            spec.gpuDemand = 1 + static_cast<int>(rng() % 8);
            spec.iterations = 1000;
            request.jobs.push_back(std::move(spec));
        } else if (slot < 8) {
            request.op = serve::Op::Depart;
            const std::size_t pick = rng() % running.size();
            request.departs.push_back(running[pick]);
            running.erase(running.begin() +
                          static_cast<std::ptrdiff_t>(pick));
        } else if (slot == 8) {
            request.op = serve::Op::Query;
            JobSpec spec;
            spec.id = JobId(base + 900000 + static_cast<int>(k));
            spec.modelName = models[rng() % models.size()].name;
            spec.gpuDemand = 1 + static_cast<int>(rng() % 8);
            request.jobs.push_back(std::move(spec));
        } else {
            request.op = serve::Op::Stats;
        }

        const auto start = std::chrono::steady_clock::now();
        const serve::Response response = conn.call(request);
        latencies.push_back(
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - start)
                .count());
        for (const PlacedJob &placed : response.placed)
            running.push_back(placed.id);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Serving throughput — netpack::serve on a 64-rack cluster",
        "placement-as-a-service daemon: closed-loop NDJSON load over "
        "loopback",
        ">= 1000 req/s sustained with client-observed p99 < 50 ms");

    const int clients =
        std::max(1, std::min(options.jobs > 0 ? options.jobs : 4, 16));
    const std::uint64_t total =
        options.full ? std::uint64_t(40000) : std::uint64_t(10000);
    const std::uint64_t perClient = total / clients;

    serve::ServerConfig config;
    config.engine.cluster = benchutil::simulatorCluster();
    config.engine.cluster.numRacks = 64;
    config.engine.seed = 1;
    serve::PlacementServer server(config);

    std::vector<std::vector<double>> latencies(clients);
    std::vector<std::thread> threads;
    const auto begin = std::chrono::steady_clock::now();
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            clientLoop(server.port(), c, perClient, latencies[c]);
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      begin)
            .count();

    SampleSet merged;
    for (const std::vector<double> &samples : latencies)
        for (const double us : samples)
            merged.add(us);
    const double served = static_cast<double>(merged.count());
    const double reqPerSec = served / seconds;
    const double p50Ms = merged.percentile(50.0) / 1000.0;
    const double p99Ms = merged.percentile(99.0) / 1000.0;

    Table table({"load", "clients", "requests", "seconds", "req/s",
                 "p50 ms", "p99 ms"});
    table.addRow("closed-loop",
                 {static_cast<double>(clients), served, seconds,
                  reqPerSec, p50Ms, p99Ms});
    benchutil::emit(table, options);

    server.stop();
    server.join();

    if (reqPerSec < 1000.0 || p99Ms >= 50.0) {
        std::cerr << "FAIL: serving floor missed (" << reqPerSec
                  << " req/s, p99 " << p99Ms << " ms; need >= 1000 "
                  << "req/s and p99 < 50 ms)\n";
        return 1;
    }
    std::cout << "serving floor held: " << static_cast<long>(reqPerSec)
              << " req/s, p99 " << p99Ms << " ms\n";
    return 0;
}
