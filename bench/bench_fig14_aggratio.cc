/**
 * @file
 * Figure 14: validation of the aggregation-pattern model and of
 * max-min resource fair sharing. A job with two workers and one PS is
 * pinned at 10 Gbps while the switch memory (PAT) sweeps from 0 to a
 * full rate's worth (14a, theory y = x); then a second identical job is
 * added with the *same* total memory (14b, theory y = 0.5x per job,
 * with measurements allowed to sit slightly above because the jobs'
 * compute phases interleave and they take turns using the pool).
 */

#include <iostream>

#include "bench_util.h"
#include "sim/packet_model.h"

namespace netpack {
namespace {

/** Run @p num_jobs pinned-rate jobs; return the mean aggregation ratio. */
std::vector<double>
measureRatios(double pat_ratio, int num_jobs, std::int64_t iterations,
              bool hash_collisions = false)
{
    const Gbps job_rate = 10.0;
    ClusterConfig cluster = benchutil::testbedCluster();
    cluster.torPatGbps = pat_ratio * job_rate;
    const ClusterTopology topo(cluster);

    PacketModelConfig config;
    config.maxRate = job_rate; // the paper fixes throughput at 10 Gbps
    config.modelHashCollisions = hash_collisions;
    PacketNetworkModel model(topo, config);

    for (int j = 0; j < num_jobs; ++j) {
        JobSpec spec;
        spec.id = JobId(j);
        spec.modelName = "VGG16";
        spec.gpuDemand = 4;
        spec.iterations = iterations;
        Placement placement;
        placement.workers[ServerId(2 * j)] = 2;
        placement.workers[ServerId(2 * j + 1)] = 2;
        placement.psServer = ServerId(4);
        placement.inaRacks = {RackId(0)};
        model.jobStarted(spec, placement, 0.0);
    }

    Seconds now = 0.0;
    int done = 0;
    std::vector<JobId> completed;
    while (done < num_jobs && now < 86000.0) {
        now = model.advance(now, now + 20.0, completed);
        for (JobId id : completed) {
            model.jobFinished(id, now);
            ++done;
        }
    }
    std::vector<double> ratios;
    for (int j = 0; j < num_jobs; ++j)
        ratios.push_back(model.aggregationCounters(JobId(j)).ratio());
    return ratios;
}

} // namespace
} // namespace netpack

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);
    const std::int64_t iterations = options.full ? 60 : 25;

    benchutil::printHeader(
        "Figure 14 — aggregation ratio vs PAT ratio "
        "(job throughput pinned at 10 Gbps)",
        "Section 6.4, Figures 14a/14b",
        "one job: ratio ~= PAT ratio (y = x); two jobs: per-job ratio "
        "~= 0.5x or slightly above (phase interleaving), and the two "
        "jobs' ratios match (fair sharing)");

    Table table({"PAT ratio x", "1-job ratio (th: x)",
                 "1-job w/ hash collisions", "2-job job0 (th: x/2)",
                 "2-job job1 (th: x/2)"});
    const std::vector<double> sweep =
        options.full
            ? std::vector<double>{0.0, 0.2, 0.4, 0.6, 0.8, 1.0}
            : std::vector<double>{0.0, 0.25, 0.5, 0.75, 1.0};
    for (double x : sweep) {
        const auto one = measureRatios(x, 1, iterations);
        const auto collide = measureRatios(x, 1, iterations, true);
        const auto two = measureRatios(x, 2, iterations);
        table.addRow({formatDouble(x, 2), formatDouble(one[0], 3),
                      formatDouble(collide[0], 3),
                      formatDouble(two[0], 3), formatDouble(two[1], 3)});
    }
    benchutil::emit(table, options);
    std::cout << "The hash-collision column models FCFS aggregator "
                 "occupancy (eff = pool x (1 - e^-demand/pool)); the "
                 "paper's testbed shows the same small downward "
                 "deviation from y = x.\n";
    return 0;
}
