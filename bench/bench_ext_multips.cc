/**
 * @file
 * Extension: sharded parameter servers. Section 4.1 notes that
 * multi-PS AllReduce composes from one-PS AllReduces; this bench
 * quantifies the composition on a PS-bottlenecked workload — sweeping
 * the shard count and reporting JCT under the flow-level simulator.
 * Sharding helps until the extra shards start competing for the same
 * links (and extra PSes consume server bandwidth cluster-wide).
 */

#include <iostream>

#include "bench_util.h"
#include "placement/netpack_placer.h"
#include "sim/flow_model.h"

namespace netpack {
namespace {

double
runWithShards(int shards, const JobTrace &trace,
              const ClusterConfig &cluster)
{
    NetPackConfig placer_config;
    placer_config.psShards = shards;
    const ClusterTopology topo(cluster);
    SimConfig sim_config;
    sim_config.placementPeriod = 5.0;
    ClusterSimulator sim(topo, std::make_unique<FlowNetworkModel>(topo),
                         std::make_unique<NetPackPlacer>(placer_config),
                         sim_config);
    return sim.run(trace).avgJct();
}

} // namespace
} // namespace netpack

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Extension — sharded PS AllReduce (k one-PS trees per job)",
        "Section 4.1 (multi-PS composition), DESIGN.md extension",
        "moderate sharding relieves PS-side bottlenecks on "
        "communication-heavy jobs; returns diminish as shards contend");

    const int jobs = options.full ? 200 : 80;
    TraceGenConfig gen;
    gen.numJobs = jobs;
    gen.seed = 311;
    gen.distribution = DemandDistribution::Poisson;
    gen.demandMean = 10.0; // multi-server, comm-heavy jobs
    gen.maxGpuDemand = 32;
    gen.meanInterarrival = 1.2;
    gen.durationLogMu = 4.4;
    const JobTrace trace = generateTrace(gen);

    ClusterConfig cluster = benchutil::simulatorCluster();
    cluster.serversPerRack = 8;
    cluster.torPatGbps = 200.0;

    Table table({"PS shards", "avg JCT (s)", "vs 1 shard"});
    double base = 0.0;
    for (int shards : {1, 2, 4}) {
        const double jct = runWithShards(shards, trace, cluster);
        if (shards == 1)
            base = jct;
        table.addRow({std::to_string(shards), formatDouble(jct, 2),
                      formatDouble(jct / base, 3)});
    }
    benchutil::emit(table, options);
    return 0;
}
