/**
 * @file
 * Extension: placement on a two-tier (pod-based) core. The paper
 * evaluates the "one big switch" abstraction; real fat-trees also
 * oversubscribe at the pod layer. This bench sweeps the pod uplink
 * oversubscription on a 4-pod cluster and compares NetPack (whose
 * PS-scoring penalty extends to pod uplinks) against the baselines —
 * the cross-rack story of Figure 12 should repeat one tier higher.
 */

#include <iostream>

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Extension — two-tier core: JCT vs pod oversubscription "
        "(NetPack = 1.0 per row)",
        "DESIGN.md extension (Figure 12's shape at the pod layer)",
        "baselines >= 1 and their gap grows with pod oversubscription");

    const std::vector<double> ratios =
        options.full ? std::vector<double>{1.0, 4.0, 8.0, 16.0}
                     : std::vector<double>{1.0, 8.0, 16.0};
    const auto placers = benchutil::figurePlacers();
    const int jobs = options.full ? 240 : 100;

    TraceGenConfig gen;
    gen.numJobs = jobs;
    gen.seed = 83;
    gen.distribution = DemandDistribution::Poisson;
    gen.demandMean = 10.0;
    gen.maxGpuDemand = 32;
    gen.meanInterarrival = 1.0;
    gen.durationLogMu = 4.6;
    const JobTrace trace = generateTrace(gen);

    std::vector<std::string> headers = {"pod oversub"};
    for (const auto &placer : placers)
        headers.push_back(placer);
    Table table(std::move(headers));

    for (double ratio : ratios) {
        ExperimentConfig config;
        config.cluster = benchutil::simulatorCluster();
        config.cluster.numRacks = 16;
        config.cluster.serversPerRack = 8;
        config.cluster.racksPerPod = 4; // 4 pods
        config.cluster.podOversubscription = ratio;
        config.cluster.torPatGbps = 400.0;
        config.sim.placementPeriod = 10.0;

        std::map<std::string, double> jct;
        for (const auto &placer : placers) {
            config.placer = placer;
            jct[placer] = runExperiment(config, trace).avgJct();
        }
        const auto normalized = normalizeTo(jct, "NetPack");
        std::vector<std::string> row = {formatDouble(ratio, 0) + ":1"};
        for (const auto &placer : placers)
            row.push_back(formatDouble(normalized.at(placer), 3));
        table.addRow(std::move(row));
    }
    benchutil::emit(table, options);
    return 0;
}
