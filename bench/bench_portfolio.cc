/**
 * @file
 * Portfolio and local-search placement vs plain NetPack: normalized
 * average JCT and deadline-equivalent (DE) throughput on the Figure 7
 * traces (Real/Philly, Poisson, Normal) over the flow-level simulator
 * cluster. Both meta-placers run the NetPack core, so neither should
 * read worse than 1.0 by more than noise; Portfolio additionally picks
 * the best of the full deterministic lineup each epoch.
 *
 * Before the sweep, the bench asserts the portfolio determinism
 * contract: `--jobs N` placement decisions are bit-identical to
 * `--jobs 1` (the evaluation fan-out must not leak scheduling order
 * into the outcome). Any divergence exits non-zero, so CI can run this
 * bench as a determinism gate.
 */

#include <cstdlib>
#include <iostream>

#include "bench_util.h"
#include "placement/portfolio.h"

namespace {

using namespace netpack;

/**
 * Replay the same placement epochs through a serial and a 4-way
 * parallel portfolio and require identical decisions. Returns false on
 * the first divergence.
 */
bool
portfolioDeterminismHolds()
{
    ClusterConfig cluster = benchutil::simulatorCluster();
    cluster.numRacks = 4; // enough pressure to force deferrals
    const ClusterTopology topo(cluster);

    PortfolioConfig serial_cfg;
    serial_cfg.jobs = 1;
    PortfolioConfig parallel_cfg;
    parallel_cfg.jobs = 4;
    PortfolioPlacer serial(serial_cfg), parallel(parallel_cfg);

    GpuLedger serial_gpus(topo), parallel_gpus(topo);
    PlacementContext serial_ctx(topo), parallel_ctx(topo);

    const JobTrace trace =
        benchutil::simulatorTrace(DemandDistribution::Poisson, 48, 97);
    std::vector<JobSpec> batch;
    int epoch = 0;
    for (std::size_t next = 0; next < trace.size();) {
        batch.clear();
        for (int j = 0; j < 8 && next < trace.size(); ++j, ++next)
            batch.push_back(trace.at(next));

        const BatchResult a =
            serial.placeBatch(batch, topo, serial_gpus, serial_ctx);
        const BatchResult b =
            parallel.placeBatch(batch, topo, parallel_gpus, parallel_ctx);
        ++epoch;

        if (serial.lastWinner() != parallel.lastWinner() ||
            a.deferred != b.deferred ||
            a.placed.size() != b.placed.size()) {
            std::cerr << "portfolio determinism violated at epoch "
                      << epoch << ": winner '" << serial.lastWinner()
                      << "' vs '" << parallel.lastWinner() << "'\n";
            return false;
        }
        for (std::size_t i = 0; i < a.placed.size(); ++i) {
            if (a.placed[i].id != b.placed[i].id ||
                a.placed[i].placement.workers !=
                    b.placed[i].placement.workers ||
                a.placed[i].placement.psServer !=
                    b.placed[i].placement.psServer ||
                a.placed[i].placement.inaRacks !=
                    b.placed[i].placement.inaRacks) {
                std::cerr << "portfolio determinism violated at epoch "
                          << epoch << ": job "
                          << a.placed[i].id.value
                          << " placed differently under --jobs 4\n";
                return false;
            }
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Portfolio placement — normalized average JCT and DE "
        "(NetPack = 1.0)",
        "transactional placer harness: portfolio + local search on the "
        "Figure 7 traces",
        "NetPack+LS and Portfolio <= 1.0 JCT within noise; portfolio "
        "--jobs N decisions bit-identical to --jobs 1");

    if (!portfolioDeterminismHolds()) {
        std::cerr << "FAIL: portfolio --jobs 4 diverged from --jobs 1\n";
        return 1;
    }
    std::cout << "portfolio determinism: --jobs 4 == --jobs 1 (ok)\n\n";

    const std::vector<std::string> placers = {"NetPack", "NetPack+LS",
                                              "Portfolio"};
    const int jobs = options.full ? 300 : 80;
    const int seeds = benchutil::effectiveSeeds(options, 1);

    const struct
    {
        DemandDistribution dist;
        const char *label;
    } traces[] = {
        {DemandDistribution::Philly, "Real"},
        {DemandDistribution::Poisson, "Poisson"},
        {DemandDistribution::Normal, "Normal"},
    };

    std::vector<benchutil::SweepRow> rows;
    for (const auto &trace : traces) {
        benchutil::SweepRow row;
        row.label = trace.label;
        // Oversubscribed core (as in Figure 12): without cross-rack
        // pressure every strategy converges on the same placements and
        // the comparison degenerates to 1.000 across the board.
        row.config.cluster = benchutil::simulatorCluster();
        row.config.cluster.serversPerRack = 8;
        row.config.cluster.oversubscription = 4.0;
        row.config.cluster.torPatGbps = 400.0;
        row.config.sim.placementPeriod = 10.0;
        for (int s = 0; s < seeds; ++s) {
            const std::uint64_t seed =
                exec::streamSeed(91, static_cast<std::uint64_t>(s));
            benchutil::manifest().addSeed(seed);
            row.traces.push_back(
                benchutil::simulatorTrace(trace.dist, jobs, seed));
        }
        rows.push_back(std::move(row));
    }

    benchutil::emit(benchutil::placerSweepTable("trace", rows, placers,
                                                options),
                    options);
    benchutil::emit(benchutil::placerSweepTable("trace", rows, placers,
                                                options, /*use_de=*/true),
                    options);
    return 0;
}
