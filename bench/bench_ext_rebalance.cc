/**
 * @file
 * Extension: runtime INA rebalancing — the paper's future-work "joint
 * placement and scheduling" restricted to the migration-free resource
 * (INA enablement). As jobs churn, the static placement-time INA
 * assignment drifts from the optimum; this bench measures the JCT
 * effect of re-running the AE-ordered selective assignment over running
 * jobs at different periods, under scarce PAT where the assignment
 * actually binds.
 */

#include <iostream>

#include "bench_util.h"
#include "placement/netpack_placer.h"
#include "sim/flow_model.h"

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Extension — runtime INA rebalancing of running jobs",
        "Section 7 future work (joint placement + scheduling), "
        "DESIGN.md extension",
        "rebalancing should never hurt (estimator-guarded) and helps "
        "most under scarce PAT with heavy churn");

    const int jobs = options.full ? 240 : 100;
    TraceGenConfig gen;
    gen.numJobs = jobs;
    gen.seed = 271;
    gen.distribution = DemandDistribution::Poisson;
    gen.demandMean = 10.0;
    gen.maxGpuDemand = 32;
    gen.meanInterarrival = 1.5;
    gen.durationLogMu = 4.4;
    const JobTrace trace = generateTrace(gen);

    Table table({"PAT (Gbps)", "no rebalance JCT (s)",
                 "period 60s JCT (s)", "period 20s JCT (s)",
                 "best speedup"});
    for (Gbps pat : {200.0, 100.0, 50.0}) {
        ClusterConfig cluster = benchutil::simulatorCluster();
        cluster.serversPerRack = 8;
        cluster.torPatGbps = pat;
        const ClusterTopology topo(cluster);

        const auto run = [&](Seconds period) {
            SimConfig sim_config;
            sim_config.placementPeriod = 5.0;
            sim_config.inaRebalancePeriod = period;
            ClusterSimulator sim(
                topo, std::make_unique<FlowNetworkModel>(topo),
                std::make_unique<NetPackPlacer>(), sim_config);
            return sim.run(trace).avgJct();
        };
        const double none = run(0.0);
        const double slow = run(60.0);
        const double fast = run(20.0);
        table.addRow({formatDouble(pat, 0), formatDouble(none, 2),
                      formatDouble(slow, 2), formatDouble(fast, 2),
                      formatDouble(none / std::min(slow, fast), 3)});
    }
    benchutil::emit(table, options);
    return 0;
}
