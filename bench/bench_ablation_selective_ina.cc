/**
 * @file
 * Ablation of selective INA enabling (Section 5.2 step ④): NetPack
 * shifts scarce switch memory toward jobs with the highest aggregation
 * efficiency AE = throughput x fan-in, instead of enabling INA for
 * everyone. The effect shows when PAT is scarce and/or the core is
 * oversubscribed (Figure 12's explanation credits this step).
 */

#include <iostream>

#include "bench_util.h"
#include "placement/netpack_placer.h"
#include "sim/flow_model.h"

namespace netpack {
namespace {

double
runWith(bool selective, const JobTrace &trace,
        const ClusterConfig &cluster)
{
    NetPackConfig placer_config;
    placer_config.selectiveIna = selective;
    const ClusterTopology topo(cluster);
    SimConfig sim_config;
    sim_config.placementPeriod = 5.0;
    ClusterSimulator sim(topo, std::make_unique<FlowNetworkModel>(topo),
                         std::make_unique<NetPackPlacer>(placer_config),
                         sim_config);
    return sim.run(trace).avgJct();
}

} // namespace
} // namespace netpack

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Ablation — selective INA enabling vs INA-for-all",
        "DESIGN.md ablation for Section 5.2 step ④",
        "selective enabling should match or beat INA-for-all, most "
        "visibly under scarce PAT and oversubscription");

    const int jobs = options.full ? 240 : 90;
    TraceGenConfig gen;
    gen.numJobs = jobs;
    gen.seed = 177;
    gen.distribution = DemandDistribution::Poisson;
    gen.demandMean = 10.0;
    gen.maxGpuDemand = 32;
    gen.meanInterarrival = 3.0;
    gen.durationLogMu = 4.3;
    const JobTrace trace = generateTrace(gen);

    Table table({"PAT (Gbps)", "oversub", "selective JCT (s)",
                 "INA-for-all JCT (s)", "all / selective"});
    struct Point
    {
        Gbps pat;
        double oversub;
    };
    const std::vector<Point> points = {{400.0, 1.0},
                                       {100.0, 1.0},
                                       {100.0, 4.0},
                                       {50.0, 10.0}};
    for (const Point &point : points) {
        ClusterConfig cluster = benchutil::simulatorCluster();
        cluster.serversPerRack = 8;
        cluster.torPatGbps = point.pat;
        cluster.oversubscription = point.oversub;

        const double selective = runWith(true, trace, cluster);
        const double all = runWith(false, trace, cluster);
        table.addRow({formatDouble(point.pat, 0),
                      formatDouble(point.oversub, 0) + ":1",
                      formatDouble(selective, 2), formatDouble(all, 2),
                      formatDouble(all / selective, 3)});
    }
    benchutil::emit(table, options);
    return 0;
}
