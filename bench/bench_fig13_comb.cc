/**
 * @file
 * Figure 13: NetPack vs the naive combination strategy Comb, which
 * sorts servers by available GPUs, then ToR memory, then link bandwidth
 * — considering the resources separately instead of jointly. The paper
 * reports NetPack beating Comb by up to 63% JCT across the three
 * workloads, validating the joint multi-resource optimization.
 */

#include <iostream>

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Figure 13 — NetPack vs naive combination (Comb), normalized JCT",
        "Section 6.4, Figure 13",
        "Comb >= 1 on all three workloads (paper: up to 1.63x)");

    const int jobs = options.full ? 32 : 20;
    const int seeds = options.full ? 5 : 3;
    Table table({"workload", "NetPack", "Comb"});
    for (DemandDistribution dist : {DemandDistribution::Philly,
                                    DemandDistribution::Poisson,
                                    DemandDistribution::Normal}) {
        double netpack_total = 0.0, comb_total = 0.0;
        for (int s = 0; s < seeds; ++s) {
            const JobTrace trace = benchutil::testbedTrace(
                dist, jobs,
                201 + 31 * static_cast<std::uint64_t>(s) +
                    static_cast<std::uint64_t>(dist));
            ExperimentConfig config;
            config.cluster = benchutil::testbedCluster();
            config.cluster.torPatGbps = 150.0; // contended memory
            config.fidelity = Fidelity::Packet;
            config.sim.placementPeriod = 5.0;

            config.placer = "NetPack";
            netpack_total += runExperiment(config, trace).avgJct();
            config.placer = "Comb";
            comb_total += runExperiment(config, trace).avgJct();
        }
        table.addRow({demandDistributionName(dist), "1.000",
                      formatDouble(comb_total / netpack_total, 3)});
    }
    benchutil::emit(table, options);
    return 0;
}
