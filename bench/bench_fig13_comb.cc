/**
 * @file
 * Figure 13: NetPack vs the naive combination strategy Comb, which
 * sorts servers by available GPUs, then ToR memory, then link bandwidth
 * — considering the resources separately instead of jointly. The paper
 * reports NetPack beating Comb by up to 63% JCT across the three
 * workloads, validating the joint multi-resource optimization.
 */

#include <iostream>

#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace netpack;
    const auto options = benchutil::parseOptions(argc, argv);

    benchutil::printHeader(
        "Figure 13 — NetPack vs naive combination (Comb), normalized JCT",
        "Section 6.4, Figure 13",
        "Comb >= 1 on all three workloads (paper: up to 1.63x)");

    const int jobs = options.full ? 32 : 20;
    const int seeds = benchutil::effectiveSeeds(options,
                                                options.full ? 5 : 3);
    std::vector<benchutil::SweepRow> rows;
    for (DemandDistribution dist : {DemandDistribution::Philly,
                                    DemandDistribution::Poisson,
                                    DemandDistribution::Normal}) {
        benchutil::SweepRow row;
        row.label = demandDistributionName(dist);
        row.config.cluster = benchutil::testbedCluster();
        row.config.cluster.torPatGbps = 150.0; // contended memory
        row.config.fidelity = Fidelity::Packet;
        row.config.sim.placementPeriod = 5.0;
        for (int s = 0; s < seeds; ++s) {
            const std::uint64_t seed = exec::streamSeed(
                201 + static_cast<std::uint64_t>(dist),
                static_cast<std::uint64_t>(s));
            benchutil::manifest().addSeed(seed);
            row.traces.push_back(benchutil::testbedTrace(dist, jobs, seed));
        }
        rows.push_back(std::move(row));
    }
    benchutil::emit(benchutil::placerSweepTable("workload", rows,
                                                {"NetPack", "Comb"},
                                                options),
                    options);
    return 0;
}
